"""Bridge: route DyconitTracer decisions onto the telemetry timeline.

``DyconitTracer`` (S10) predates the telemetry hub and keeps its own ring
buffer; a :class:`TelemetryTracer` is a drop-in replacement that *also*
mirrors every middleware decision into the hub as a ``trace.<kind>``
event and a ``trace_events_total{kind=...}`` counter — so flush reasons,
bound changes, and merges/splits line up against tick-phase spans on one
timeline.
"""

from __future__ import annotations

from typing import Hashable

from repro.core.trace import DyconitTracer
from repro.telemetry.hub import Telemetry


class TelemetryTracer(DyconitTracer):
    """A DyconitTracer that mirrors events into a telemetry hub."""

    def __init__(self, telemetry: Telemetry, capacity: int = 10_000) -> None:
        super().__init__(capacity=capacity)
        self.telemetry = telemetry

    def record(
        self,
        time: float,
        kind: str,
        dyconit_id: Hashable,
        subscriber_id: int | None = None,
        detail: str = "",
    ) -> None:
        super().record(time, kind, dyconit_id, subscriber_id, detail)
        telemetry = self.telemetry
        if not telemetry.enabled:
            return
        telemetry.counter("trace_events_total", kind=kind).increment()
        telemetry.event(
            "trace." + kind,
            dyconit=repr(dyconit_id),
            subscriber="" if subscriber_id is None else str(subscriber_id),
            detail=detail,
        )


def install_tracer(system, telemetry: Telemetry, capacity: int = 10_000) -> TelemetryTracer:
    """Attach a :class:`TelemetryTracer` to a DyconitSystem and return it."""
    tracer = TelemetryTracer(telemetry, capacity=capacity)
    system.tracer = tracer
    return tracer
