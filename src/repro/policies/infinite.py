"""Infinite-bounds policy: the bandwidth-savings upper bound."""

from __future__ import annotations

from typing import Hashable

from repro.core.bounds import Bounds
from repro.core.policy import Policy
from repro.core.subscription import Subscriber


class InfiniteBoundsPolicy(Policy):
    """Every subscription gets infinite bounds: updates queue forever.

    Nothing is ever delivered through the middleware (players still get
    initial state sync from interest management). Useless as a real
    policy — inconsistency grows without bound — but it measures the
    maximum traffic the middleware *could* remove, the yardstick the
    relative-savings numbers are read against.
    """

    def initial_bounds(
        self, system, dyconit_id: Hashable, subscriber: Subscriber
    ) -> Bounds:
        return Bounds.INFINITE
