"""Unit tests for the authoritative world."""

import pytest

from repro.world.block import BlockType
from repro.world.entity import EntityKind
from repro.world.events import (
    BlockChangeEvent,
    ChatEvent,
    EntityDespawnEvent,
    EntityMoveEvent,
    EntitySpawnEvent,
)
from repro.world.geometry import BlockPos, ChunkPos, Vec3


@pytest.fixture
def events(world):
    captured = []
    world.add_listener(captured.append)
    return captured


def test_chunks_generate_lazily(world):
    assert world.loaded_chunk_count == 0
    world.get_chunk(ChunkPos(0, 0))
    assert world.loaded_chunk_count == 1
    assert world.is_chunk_loaded(ChunkPos(0, 0))
    assert not world.is_chunk_loaded(ChunkPos(5, 5))


def test_get_chunk_is_cached(world):
    a = world.get_chunk(ChunkPos(1, 1))
    b = world.get_chunk(ChunkPos(1, 1))
    assert a is b


def test_set_block_emits_event(world, events):
    pos = BlockPos(4, 30, 4)
    old = world.get_block(pos)
    assert world.set_block(pos, BlockType.GLASS, actor_id=None)
    assert world.get_block(pos) == BlockType.GLASS
    block_events = [e for e in events if isinstance(e, BlockChangeEvent)]
    assert len(block_events) == 1
    assert block_events[0].old_block == old
    assert block_events[0].new_block == BlockType.GLASS


def test_noop_set_block_emits_nothing(world, events):
    pos = BlockPos(4, 30, 4)
    current = world.get_block(pos)
    assert not world.set_block(pos, current)
    assert events == []


def test_set_block_rejects_out_of_range_y(world):
    with pytest.raises(ValueError):
        world.set_block(BlockPos(0, 99, 0), BlockType.STONE)


def test_spawn_entity_assigns_unique_ids(world):
    a = world.spawn_entity(EntityKind.PLAYER, Vec3(0, 30, 0))
    b = world.spawn_entity(EntityKind.COW, Vec3(1, 30, 1))
    assert a.entity_id != b.entity_id
    assert world.entity_count == 2


def test_entity_ids_never_reused(world):
    a = world.spawn_entity(EntityKind.PLAYER, Vec3(0, 30, 0))
    world.despawn_entity(a.entity_id)
    b = world.spawn_entity(EntityKind.PLAYER, Vec3(0, 30, 0))
    assert b.entity_id > a.entity_id


def test_spawn_emits_event(world, events):
    entity = world.spawn_entity(EntityKind.ZOMBIE, Vec3(5, 30, 5), name="bob")
    spawns = [e for e in events if isinstance(e, EntitySpawnEvent)]
    assert len(spawns) == 1
    assert spawns[0].entity_id == entity.entity_id
    assert spawns[0].kind == EntityKind.ZOMBIE
    assert spawns[0].name == "bob"


def test_despawn_emits_event_and_removes(world, events):
    entity = world.spawn_entity(EntityKind.COW, Vec3(0, 30, 0))
    world.despawn_entity(entity.entity_id)
    assert world.get_entity(entity.entity_id) is None
    despawns = [e for e in events if isinstance(e, EntityDespawnEvent)]
    assert len(despawns) == 1


def test_despawn_unknown_raises(world):
    with pytest.raises(KeyError):
        world.despawn_entity(12345)


def test_move_entity_updates_position_and_emits(world, events):
    entity = world.spawn_entity(EntityKind.PLAYER, Vec3(0, 30, 0))
    world.move_entity(entity.entity_id, Vec3(3, 30, 4), yaw=90.0)
    assert entity.position == Vec3(3, 30, 4)
    assert entity.yaw == 90.0
    moves = [e for e in events if isinstance(e, EntityMoveEvent)]
    assert len(moves) == 1
    assert moves[0].old_position == Vec3(0, 30, 0)


def test_move_unknown_entity_raises(world):
    with pytest.raises(KeyError):
        world.move_entity(999, Vec3(0, 0, 0))


def test_entities_in_chunk_index_follows_moves(world):
    entity = world.spawn_entity(EntityKind.PLAYER, Vec3(0, 30, 0))
    assert [e.entity_id for e in world.entities_in_chunk(ChunkPos(0, 0))] == [
        entity.entity_id
    ]
    world.move_entity(entity.entity_id, Vec3(20, 30, 0))
    assert world.entities_in_chunk(ChunkPos(0, 0)) == []
    assert [e.entity_id for e in world.entities_in_chunk(ChunkPos(1, 0))] == [
        entity.entity_id
    ]


def test_despawn_removes_from_chunk_index(world):
    entity = world.spawn_entity(EntityKind.PLAYER, Vec3(0, 30, 0))
    world.despawn_entity(entity.entity_id)
    assert world.entities_in_chunk(ChunkPos(0, 0)) == []


def test_chunk_index_prunes_empty_buckets(world):
    """A wandering entity must not leave an empty set behind for every
    chunk it ever crossed (unbounded memory on trek workloads)."""
    entity = world.spawn_entity(EntityKind.PLAYER, Vec3(0, 30, 0))
    for step in range(1, 50):
        world.move_entity(entity.entity_id, Vec3(16.0 * step, 30, 0))
    assert len(world._entities_by_chunk) == 1
    world.despawn_entity(entity.entity_id)
    assert world._entities_by_chunk == {}


def test_chunk_index_keeps_bucket_while_occupied(world):
    a = world.spawn_entity(EntityKind.PLAYER, Vec3(0, 30, 0))
    b = world.spawn_entity(EntityKind.COW, Vec3(1, 30, 1))
    world.move_entity(a.entity_id, Vec3(20, 30, 0))
    assert [e.entity_id for e in world.entities_in_chunk(ChunkPos(0, 0))] == [
        b.entity_id
    ]
    assert len(world._entities_by_chunk) == 2


def test_chat_emits_global_event(world, events):
    world.chat(sender_id=1, text="hello world")
    chats = [e for e in events if isinstance(e, ChatEvent)]
    assert len(chats) == 1
    assert chats[0].text == "hello world"


def test_listener_removal(world, events):
    listener = events.append
    world.remove_listener(listener)
    world.chat(1, "unheard")
    assert events == []


def test_surface_position_is_above_ground(world):
    position = world.surface_position(10.0, 10.0)
    below = position.to_block_pos().offset(dy=-1)
    assert world.get_block(below) != BlockType.AIR


def test_event_time_follows_time_source(world, events):
    world.time_source = lambda: 777.0
    world.chat(1, "timed")
    assert events[-1].time == 777.0


def test_manual_time_without_source(world, events):
    world.time = 55.0
    world.chat(1, "manual")
    assert events[-1].time == 55.0
