"""Unit tests for table rendering."""

import pytest

from repro.metrics.report import render_table


def test_renders_headers_and_rows():
    table = render_table(["name", "value"], [["a", 1], ["b", 2]])
    lines = table.splitlines()
    assert "name" in lines[0] and "value" in lines[0]
    assert set(lines[1]) <= {"-", "+"}
    assert "a" in lines[2]
    assert "b" in lines[3]


def test_title_is_first_line():
    table = render_table(["x"], [[1]], title="My Table")
    assert table.splitlines()[0] == "My Table"


def test_number_formatting():
    table = render_table(["v"], [[1234567.0], [3.14159], [0.001234], [0.0]])
    assert "1,234,567" in table
    assert "3.14" in table
    assert "0.0012" in table


def test_columns_are_aligned():
    table = render_table(["col"], [["short"], ["much longer cell"]])
    lines = table.splitlines()
    widths = {len(line) for line in lines}
    assert len(widths) == 1  # every line padded to the same width


def test_rejects_ragged_rows():
    with pytest.raises(ValueError):
        render_table(["a", "b"], [["only one"]])


def test_empty_rows_ok():
    table = render_table(["a"], [])
    assert "a" in table
