"""Differential tests for the shard-parallel tick runtime (S18).

The contract :class:`~repro.cluster.runner.ParallelShardRunner` makes is
absolute: an N-shard parallel run is **packet-for-packet identical** to
the serial N-shard :class:`~repro.cluster.facade.ShardedCluster` run of
the same seeded workload — per client, in order, byte-equal under the
wire codec. Everything else here hangs off that oracle:

* per-shard transport/metrics/dyconit counters pulled out of the workers
  at :meth:`finalize` match the serial shards';
* staleness deadlines re-armed from ``oldest_pending_time`` inside a
  worker fire exactly as often as in-process (the deadline heap never
  crosses the pipe — only its observable flushes do);
* telemetry counters folded from per-worker hubs at the barrier total
  the same as the serial single-hub run;
* checked mode audits the *merged* post-barrier state without tripping;
* the ``spawn`` start method (fresh interpreters, nothing inherited)
  produces the same bytes as ``fork``.
"""

import hashlib

import pytest

from repro.bots.workload import BehaviorMix, Workload, WorkloadSpec
from repro.cluster import ParallelShardRunner, ShardedCluster
from repro.core.bounds import Bounds
from repro.policies import FixedBoundsPolicy
from repro.policies.zero import ZeroBoundsPolicy
from repro.server.config import ServerConfig
from repro.sim.simulator import Simulation
from repro.telemetry.hub import Telemetry

SEED = 77
DURATION_MS = 8_000.0

#: Telemetry counter families that must total identically across the
#: serial hub and the folded per-worker hubs. ``sim_*`` is deliberately
#: absent: the parallel parent schedules (and cancels) its own tick
#: events, so the simulator's dispatch count legitimately differs.
FOLDED_COUNTER_PREFIXES = (
    "server_",
    "link_",
    "dyconit_",
    "cluster_",
    "invariant_",
)


def make_spec():
    return WorkloadSpec(
        bots=8,
        seed=SEED,
        movement="gathering",
        behavior=BehaviorMix(build=0.1, dig=0.05, chat=0.01),
        arrival_stagger_ms=40.0,
    )


def make_bounded_policy():
    """Module-level (spawn-picklable) factory with a tight staleness
    bound, so the deadline heap does real work inside the workers."""
    return FixedBoundsPolicy(bounds=Bounds(numerical=10.0, staleness_ms=500.0))


def tap(server):
    captures: dict[str, list] = {}
    original_connect = server.connect

    def tapping_connect(name, handler, **kwargs):
        log = captures.setdefault(name, [])

        def tapped(delivered):
            log.append(delivered.packet)
            handler(delivered)

        return original_connect(name, tapped, **kwargs)

    server.connect = tapping_connect
    return captures


def run_cluster(
    parallel,
    shards=2,
    policy_factory=ZeroBoundsPolicy,
    duration_ms=DURATION_MS,
    telemetry=None,
    audit_every_n_ticks=0,
    mp_context=None,
):
    sim = Simulation()
    config = ServerConfig(
        seed=SEED,
        synchronous_delivery=True,
        mob_count=3,
        audit_every_n_ticks=audit_every_n_ticks,
    )
    if parallel:
        cluster = ParallelShardRunner(
            sim,
            shards=shards,
            strip_width=4,
            config=config,
            policy_factory=policy_factory,
            telemetry=telemetry,
            mp_context=mp_context,
        )
    else:
        cluster = ShardedCluster(
            sim,
            shards=shards,
            strip_width=4,
            config=config,
            policy_factory=policy_factory,
            telemetry=telemetry,
        )
    cluster.start()
    workload = Workload(sim, cluster, make_spec())
    captures = tap(cluster)
    workload.start()
    sim.run_until(duration_ms)
    if parallel:
        cluster.finalize()
    return captures, cluster


def digest(captures) -> str:
    h = hashlib.sha256()
    for name in sorted(captures):
        h.update(name.encode())
        for packet in captures[name]:
            h.update(repr(packet).encode())
    return h.hexdigest()


@pytest.fixture(scope="module")
def serial_run():
    return run_cluster(parallel=False)


@pytest.fixture(scope="module")
def parallel_run():
    return run_cluster(parallel=True)


def test_parallel_two_shard_run_is_packet_identical_to_serial(
    serial_run, parallel_run
):
    serial_caps, serial = serial_run
    par_caps, par = parallel_run
    assert set(serial_caps) == set(par_caps)
    for name in sorted(serial_caps):
        assert serial_caps[name] == par_caps[name], (
            f"packet stream diverged for {name}"
        )
    # The run must actually exercise the seams: handoffs, bus traffic.
    assert serial.handoffs > 0
    assert serial.handoffs == par.handoffs
    assert serial.bus.total_bytes == par.bus.total_bytes
    assert serial.bus.total_messages == par.bus.total_messages
    assert serial.bus.messages_by_kind == par.bus.messages_by_kind


def test_parallel_per_shard_state_matches_serial_after_finalize(
    serial_run, parallel_run
):
    __, serial = serial_run
    __, par = parallel_run
    for s, p in zip(serial.shards, par.shards):
        assert s.transport.total_bytes() == p.transport.total_bytes()
        assert s.transport.total_packets() == p.transport.total_packets()
        assert s.transport.bytes_by_kind() == p.transport.bytes_by_kind()
        assert s.tick_count == p.tick_count
        assert sorted(s.sessions) == sorted(p.sessions)
        assert s.ghost_ids == p.ghost_ids
        serial_ticks = s.metrics.series("tick_duration_ms")
        mirror_ticks = p.metrics.series("tick_duration_ms")
        assert list(serial_ticks.times) == list(mirror_ticks.times)
        assert list(serial_ticks.values) == list(mirror_ticks.values)


def test_parallel_world_mirror_matches_serial_entities(serial_run, parallel_run):
    __, serial = serial_run
    __, par = parallel_run
    for s, p in zip(serial.shards, par.shards):
        assert s.world.entity_count == p.world.entity_count
        for entity in s.world.entities():
            mirror = p.world.get_entity(entity.entity_id)
            assert mirror is not None
            assert mirror.position == entity.position
            assert mirror.kind == entity.kind


def test_deadline_rearm_from_oldest_pending_survives_worker_round_trip():
    """Staleness deadlines are a heap keyed on ``oldest_pending_time``
    living inside each worker; after every drain/refill cycle — and
    after every cross-shard batch a pump ships in — the heap must
    re-arm from the queue's new oldest entry. If re-arming broke in the
    worker, staleness flushes would stall and the counts (and packet
    streams) would diverge from serial."""
    serial_caps, serial = run_cluster(
        parallel=False, policy_factory=make_bounded_policy
    )
    par_caps, par = run_cluster(parallel=True, policy_factory=make_bounded_policy)
    assert digest(serial_caps) == digest(par_caps)
    for s, p in zip(serial.shards, par.shards):
        assert s.dyconits.stats.flushes_staleness == p.dyconits.stats.flushes_staleness
        assert s.dyconits.stats.bound_checks == p.dyconits.stats.bound_checks
        assert s.dyconits.stats.commits == p.dyconits.stats.commits
    # Vacuity guard: the bounded policy really does flush on staleness.
    assert sum(s.dyconits.stats.flushes_staleness for s in serial.shards) > 0


def test_worker_telemetry_folds_to_serial_counter_totals():
    """Workers run fresh per-process hubs (never the parent's forked
    copy); finalize folds them back. Counter totals must equal the
    serial run's single shared hub, family by family."""

    def totals(hub):
        rows = {}
        for (name, labels), counter in hub.counters().items():
            if name.startswith(FOLDED_COUNTER_PREFIXES):
                rows[(name, labels)] = counter.value
        return rows

    serial_hub = Telemetry(enabled=True)
    par_hub = Telemetry(enabled=True)
    run_cluster(parallel=False, telemetry=serial_hub)
    run_cluster(parallel=True, telemetry=par_hub)
    serial_totals = totals(serial_hub)
    par_totals = totals(par_hub)
    assert serial_totals == par_totals
    # Vacuity guards: the comparison covers worker-side families (ticks,
    # packets, dyconit commits) and the parent-side pump counters.
    assert any(name == "server_ticks_total" for name, __ in serial_totals)
    assert any(name == "link_packets_sent_total" for name, __ in serial_totals)
    assert any(name == "cluster_pumps_total" for name, __ in serial_totals)
    # Both runtimes publish the pump-convergence gauge at every barrier.
    for hub in (serial_hub, par_hub):
        assert any(name == "bus_pump_rounds" for name, __ in hub.gauges())


def test_audited_parallel_run_is_clean_and_identical_to_audited_serial():
    """Checked mode in the parallel runtime: per-shard structural
    invariants run inside each worker, the cross-shard pairs run in the
    parent against the merged post-barrier mirrors. A clean workload
    must audit clean — and still produce the serial bytes."""
    serial_caps, __ = run_cluster(
        parallel=False,
        policy_factory=make_bounded_policy,
        audit_every_n_ticks=50,
    )
    par_caps, par = run_cluster(
        parallel=True,
        policy_factory=make_bounded_policy,
        audit_every_n_ticks=50,
    )
    assert digest(serial_caps) == digest(par_caps)
    # And an explicit end-of-run barrier audit on the final state.
    par2_caps, par2 = run_cluster(
        parallel=True, policy_factory=make_bounded_policy
    )
    assert digest(par2_caps) == digest(par_caps)
    assert par.handoffs == par2.handoffs


def test_parallel_final_audit_at_the_barrier():
    sim = Simulation()
    cluster = ParallelShardRunner(
        sim,
        shards=2,
        strip_width=4,
        config=ServerConfig(seed=SEED, synchronous_delivery=True, mob_count=3),
        policy_factory=ZeroBoundsPolicy,
    )
    cluster.start()
    workload = Workload(sim, cluster, make_spec())
    workload.start()
    sim.run_until(4_000.0)
    try:
        cluster.audit_now()  # raises InvariantViolationError on any hit
    finally:
        cluster.finalize()


def test_spawn_context_produces_the_same_bytes():
    """``spawn`` workers inherit nothing from the parent (fresh
    interpreter, re-imported modules); byte-identity across start
    methods pins that all worker state really travels in the spec."""
    fork_caps, __ = run_cluster(parallel=True, duration_ms=4_000.0)
    spawn_caps, __ = run_cluster(
        parallel=True, duration_ms=4_000.0, mp_context="spawn"
    )
    serial_caps, __ = run_cluster(parallel=False, duration_ms=4_000.0)
    assert digest(spawn_caps) == digest(fork_caps) == digest(serial_caps)


def test_parallel_runner_rejects_scheduled_delivery():
    with pytest.raises(ValueError, match="synchronous_delivery"):
        ParallelShardRunner(
            Simulation(),
            shards=2,
            config=ServerConfig(seed=1, synchronous_delivery=False),
            policy_factory=ZeroBoundsPolicy,
        )


def test_parallel_runner_requires_a_policy():
    with pytest.raises(ValueError, match="policy_factory"):
        ParallelShardRunner(Simulation(), shards=2)


def test_finalize_is_idempotent(parallel_run):
    __, par = parallel_run
    par.finalize()
    par.finalize()
    assert par.shards[0].transport.total_packets() > 0
