"""Round-trip tests for experiment result persistence."""

from repro.core.bounds import Bounds
from repro.experiments.configs import ExperimentConfig
from repro.experiments.runner import run_experiment
from repro.experiments.store import load_results, result_from_dict, result_to_dict, save_results


def small_result():
    config = ExperimentConfig(
        policy="fixed",
        fixed_bounds=Bounds(5.0, 400.0),
        bots=4,
        duration_ms=3_000.0,
        warmup_ms=1_000.0,
        seed=13,
    )
    return run_experiment(config)


def test_dict_roundtrip_preserves_metrics():
    result = small_result()
    rebuilt = result_from_dict(result_to_dict(result))
    assert rebuilt.bytes_total == result.bytes_total
    assert rebuilt.packets_total == result.packets_total
    assert rebuilt.tick_duration == result.tick_duration
    assert rebuilt.dyconit_stats == result.dyconit_stats
    assert rebuilt.bandwidth_timeline == result.bandwidth_timeline


def test_dict_roundtrip_preserves_config():
    result = small_result()
    rebuilt = result_from_dict(result_to_dict(result))
    assert rebuilt.config.policy == "fixed"
    assert rebuilt.config.fixed_bounds == Bounds(5.0, 400.0)
    assert rebuilt.config.bots == 4
    assert rebuilt.config.seed == 13


def test_file_roundtrip(tmp_path):
    result = small_result()
    path = tmp_path / "results.json"
    save_results(path, {"e-test": result})
    loaded = load_results(path)
    assert set(loaded) == {"e-test"}
    assert loaded["e-test"].bytes_total == result.bytes_total


def test_rebuilt_result_renders_row():
    result = small_result()
    rebuilt = result_from_dict(result_to_dict(result))
    assert rebuilt.as_row()["policy"] == "fixed"


def cluster_result():
    config = ExperimentConfig(
        policy="adaptive",
        bots=6,
        movement="gathering",
        duration_ms=4_000.0,
        warmup_ms=1_000.0,
        seed=13,
        shards=2,
    )
    return run_experiment(config)


def test_cluster_roundtrip_preserves_shard_counters():
    result = cluster_result()
    rebuilt = result_from_dict(result_to_dict(result))
    assert rebuilt.shards == 2
    assert rebuilt.handoffs == result.handoffs
    assert rebuilt.handoffs_cancelled == result.handoffs_cancelled
    assert rebuilt.entity_transfers == result.entity_transfers
    assert rebuilt.intershard_bytes == result.intershard_bytes > 0
    assert rebuilt.intershard_messages == result.intershard_messages
    assert rebuilt.intershard_bytes_per_second == result.intershard_bytes_per_second
    assert rebuilt.intershard_messages_by_kind == result.intershard_messages_by_kind
    assert rebuilt.shard_tick_p95_ms == result.shard_tick_p95_ms
    assert len(rebuilt.shard_tick_p95_ms) == 2
    assert rebuilt.shard_players == result.shard_players
    assert sum(rebuilt.shard_players) == 6


def test_pre_sharding_payloads_load_with_single_server_defaults():
    result = small_result()
    payload = result_to_dict(result)
    # Simulate an archived pre-S16 store: none of the cluster keys exist.
    for key in (
        "shards", "handoffs", "handoffs_cancelled", "entity_transfers",
        "intershard_bytes", "intershard_messages",
        "intershard_bytes_per_second", "intershard_messages_by_kind",
        "shard_tick_p95_ms", "shard_players",
    ):
        payload.pop(key, None)
    rebuilt = result_from_dict(payload)
    assert rebuilt.shards == 1
    assert rebuilt.handoffs == 0
    assert rebuilt.intershard_bytes == 0
    assert rebuilt.shard_tick_p95_ms == []
