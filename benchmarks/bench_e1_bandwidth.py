"""E1 — bandwidth by policy (paper: "reduces network bandwidth by up to 85%").

Regenerates the bandwidth-per-policy comparison: one identical hotspot
workload per policy, steady-state outgoing bytes/s, and the reduction
relative to the vanilla-equivalent zero-bounds baseline.
"""

import pytest

from repro.experiments.figures import bandwidth_by_policy


@pytest.mark.benchmark(group="e1-bandwidth", min_rounds=1, max_time=1.0, warmup=False)
def test_e1_bandwidth_by_policy(benchmark, scale, jobs):
    result = benchmark.pedantic(
        bandwidth_by_policy,
        kwargs=dict(
            bots=scale["bots"],
            duration_ms=scale["duration_ms"],
            warmup_ms=scale["warmup_ms"],
            jobs=jobs,
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(result["table"])

    rows = {row["policy"]: row for row in result["rows"]}
    baseline = rows["zero"]["kB/s"]
    assert baseline > 0

    # Shape assertions mirroring the paper's findings:
    # 1. zero-bounds == vanilla (the middleware is thin).
    assert rows["vanilla"]["kB/s"] == pytest.approx(baseline, rel=1e-6)
    # 2. every bounded policy reduces bandwidth.
    for policy in ("fixed", "distance", "aoi"):
        assert rows[policy]["kB/s"] < baseline
    # 3. infinite bounds is the savings ceiling among middleware policies.
    middleware = ("fixed", "distance", "aoi", "adaptive", "infinite")
    assert rows["infinite"]["kB/s"] == min(rows[p]["kB/s"] for p in middleware)
