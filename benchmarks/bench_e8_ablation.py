"""E8 — ablations of the design choices DESIGN.md calls out.

(a) flush-time update merging on/off — merging should be where most of
    the packet savings come from;
(b) dyconit granularity (chunk / region / global) — finer granularity
    targets updates better;
(c) adaptive policy evaluation period — responsiveness vs overhead.
"""

import pytest

from repro.experiments.figures import (
    ablation_granularity,
    ablation_merging,
    ablation_policy_period,
)


@pytest.mark.benchmark(group="e8-ablation", min_rounds=1, max_time=1.0, warmup=False)
def test_e8a_merging(benchmark, scale):
    result = benchmark.pedantic(
        ablation_merging,
        kwargs=dict(
            bots=scale["bots"],
            duration_ms=scale["duration_ms"],
            warmup_ms=scale["warmup_ms"],
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(result["table"])
    with_merge, without_merge = result["rows"]
    assert with_merge["merging"] == "on"
    # Merging must remove a meaningful share of packets.
    assert with_merge["pkts"] < without_merge["pkts"] * 0.9
    assert without_merge["merge %"] == 0.0


@pytest.mark.benchmark(group="e8-ablation", min_rounds=1, max_time=1.0, warmup=False)
def test_e8b_granularity(benchmark, scale):
    result = benchmark.pedantic(
        ablation_granularity,
        kwargs=dict(
            bots=scale["bots"],
            duration_ms=scale["duration_ms"],
            warmup_ms=scale["warmup_ms"],
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(result["table"])
    rows = {row["granularity"]: row for row in result["rows"]}
    # Finer partitioning creates more dyconits...
    assert rows["chunk"]["dyconits"] > rows["region:4"]["dyconits"] > rows["global"]["dyconits"]
    # ...and the single global dyconit destroys spatial targeting: its
    # one-bound-fits-all behaviour must cost either traffic or error.
    assert (
        rows["global"]["kB/s"] >= rows["chunk"]["kB/s"] * 0.9
        or rows["global"]["err p99"] >= rows["chunk"]["err p99"]
    )


@pytest.mark.benchmark(group="e8-ablation", min_rounds=1, max_time=1.0, warmup=False)
def test_e8c_policy_period(benchmark, scale):
    result = benchmark.pedantic(
        ablation_policy_period,
        kwargs=dict(
            bots=scale["bots"],
            duration_ms=scale["duration_ms"],
            warmup_ms=scale["warmup_ms"],
            periods_ms=(250.0, 1000.0, 4000.0),
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(result["table"])
    rows = result["rows"]
    # More frequent evaluation -> more policy work.
    evals = [row["policy evals"] for row in rows]
    assert evals == sorted(evals, reverse=True)
