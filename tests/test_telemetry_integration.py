"""End-to-end telemetry: instrumented server runs, tracer bridge, CLI."""

import json

from repro.core.bounds import Bounds
from repro.experiments.__main__ import main
from repro.experiments.configs import ExperimentConfig
from repro.experiments.runner import run_experiment
from repro.experiments.store import save_telemetry
from repro.policies.fixed import FixedBoundsPolicy
from repro.server.config import ServerConfig
from repro.server.engine import GameServer
from repro.sim.simulator import Simulation
from repro.telemetry import Telemetry, TelemetryTracer, install_tracer
from repro.world.world import World


def run_instrumented_server(telemetry: Telemetry, duration_ms: float = 2_000.0):
    sim = Simulation(telemetry=telemetry)
    server = GameServer(
        sim,
        world=World(seed=7),
        config=ServerConfig(seed=7, mob_count=4),
        policy=FixedBoundsPolicy(Bounds(5.0, 500.0)),
        telemetry=telemetry,
    )
    install_tracer(server.dyconits, telemetry)
    server.start()
    server.connect("alice", lambda delivered: None)
    server.connect("bob", lambda delivered: None)
    sim.run_until(duration_ms)
    return server


def test_server_emits_tick_phase_spans_and_counters():
    telemetry = Telemetry(enabled=True)
    run_instrumented_server(telemetry)
    names = set(telemetry.span_names())
    assert {"tick.input", "tick.flush", "tick.policy", "tick.simulate"} <= names
    snapshot = telemetry.snapshot()
    assert snapshot["server_ticks_total"] > 0
    assert snapshot["dyconit_commits_total"] > 0
    assert snapshot["link_packets_sent_total"] > 0
    assert snapshot["sim_events_dispatched_total"] > 0
    # Spans are stamped with simulated time, not wall time.
    assert any(span.sim_time > 0 for span in telemetry.spans)


def test_disabled_telemetry_server_records_nothing():
    telemetry = Telemetry(enabled=False)
    run_instrumented_server(telemetry)
    assert telemetry.spans == []
    assert telemetry.snapshot() == {}


def test_tracer_bridge_mirrors_middleware_decisions():
    telemetry = Telemetry(enabled=True)
    server = run_instrumented_server(telemetry)
    tracer = server.dyconits.tracer
    assert isinstance(tracer, TelemetryTracer)
    assert len(tracer) > 0  # ring buffer still works as a DyconitTracer
    flush_events = [e for e in telemetry.events if e.kind == "trace.flush"]
    assert len(flush_events) == tracer.counts["flush"]
    assert telemetry.snapshot()["trace_events_total{kind=flush}"] > 0


def test_run_experiment_with_explicit_hub():
    telemetry = Telemetry(enabled=True)
    config = ExperimentConfig(
        name="tiny", policy="adaptive", bots=3,
        duration_ms=3_000.0, warmup_ms=1_000.0, seed=5,
    )
    result = run_experiment(config, telemetry=telemetry)
    assert result.tick_duration.count > 0
    run_spans = [span for span in telemetry.spans if span.name == "experiment.run"]
    assert len(run_spans) == 1
    assert dict(run_spans[0].labels)["policy"] == "adaptive"


def test_save_telemetry_writes_both_artifacts(tmp_path):
    telemetry = Telemetry(enabled=True)
    telemetry.counter("c").increment()
    jsonl_path, prom_path = save_telemetry(tmp_path / "run.jsonl", telemetry)
    assert jsonl_path.exists() and prom_path.exists()
    assert prom_path.name == "run.jsonl.prom"
    assert "repro_c 1" in prom_path.read_text()


def test_cli_telemetry_flag_emits_artifacts(tmp_path, capsys):
    out_path = tmp_path / "e1.jsonl"
    assert main(
        ["e1", "--bots", "4", "--duration", "4", "--seed", "3",
         "--telemetry", str(out_path)]
    ) == 0
    captured = capsys.readouterr().out
    assert "Tick-phase profile" in captured
    assert "telemetry: wrote" in captured
    lines = out_path.read_text().splitlines()
    assert json.loads(lines[0])["type"] == "meta"
    assert any(json.loads(line)["type"] == "span" for line in lines[1:50])
    prom_text = (tmp_path / "e1.jsonl.prom").read_text()
    assert "repro_dyconit_commits_total" in prom_text
    assert "repro_span_duration_ms" in prom_text

    # The ambient hub is restored afterwards: a following run is clean.
    from repro.telemetry import NULL_TELEMETRY, get_telemetry

    assert get_telemetry() is NULL_TELEMETRY
