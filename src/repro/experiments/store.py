"""Persisting experiment results.

EXPERIMENTS.md is regenerated from saved runs; this module serializes
:class:`~repro.experiments.runner.ExperimentResult` to JSON and back so a
long paper-scale run can be archived and re-rendered without re-running.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path

from repro.core.bounds import Bounds
from repro.experiments.configs import ExperimentConfig
from repro.experiments.runner import ExperimentResult
from repro.metrics.summary import Summary


def result_to_dict(result: ExperimentResult) -> dict:
    """JSON-safe dictionary of one experiment result."""
    config = asdict(result.config)
    # BehaviorMix / CostCoefficients / Bounds become plain dicts via
    # asdict; tag the config with its class for forward compatibility.
    payload = {
        "config": config,
        "bytes_total": result.bytes_total,
        "packets_total": result.packets_total,
        "steady_bytes_per_second": result.steady_bytes_per_second,
        "steady_packets_per_second": result.steady_packets_per_second,
        "steady_bytes_per_player_per_second": result.steady_bytes_per_player_per_second,
        "bytes_by_kind": result.bytes_by_kind,
        "packets_by_kind": result.packets_by_kind,
        "tick_duration": result.tick_duration.as_dict(),
        "effective_tick_rate_hz": result.effective_tick_rate_hz,
        "dyconit_stats": result.dyconit_stats,
        "update_queue_delay_p50_ms": result.update_queue_delay_p50_ms,
        "update_queue_delay_p99_ms": result.update_queue_delay_p99_ms,
        "positional_error_mean": result.positional_error_mean,
        "positional_error_p95": result.positional_error_p95,
        "positional_error_p99": result.positional_error_p99,
        "positional_error_max": result.positional_error_max,
        "staleness_p50_ms": result.staleness_p50_ms,
        "staleness_p99_ms": result.staleness_p99_ms,
        "packet_latency": result.packet_latency.as_dict(),
        "bandwidth_timeline": result.bandwidth_timeline,
        "player_timeline": result.player_timeline,
        "factor_timeline": result.factor_timeline,
    }
    return payload


def _summary_from_dict(data: dict) -> Summary:
    return Summary(
        count=int(data["count"]),
        mean=data["mean"],
        minimum=data["min"],
        p50=data["p50"],
        p95=data["p95"],
        p99=data["p99"],
        maximum=data["max"],
    )


def result_from_dict(data: dict) -> ExperimentResult:
    """Rebuild a result (config is restored field-by-field)."""
    config_data = dict(data["config"])
    fixed_bounds = config_data.pop("fixed_bounds", None)
    behavior = config_data.pop("behavior")
    cost = config_data.pop("cost")

    from repro.bots.workload import BehaviorMix
    from repro.server.costmodel import CostCoefficients

    config = ExperimentConfig(
        behavior=BehaviorMix(**behavior),
        cost=CostCoefficients(**cost),
        fixed_bounds=Bounds(**fixed_bounds) if fixed_bounds else None,
        **config_data,
    )
    result = ExperimentResult(config=config)
    result.bytes_total = data["bytes_total"]
    result.packets_total = data["packets_total"]
    result.steady_bytes_per_second = data["steady_bytes_per_second"]
    result.steady_packets_per_second = data["steady_packets_per_second"]
    result.steady_bytes_per_player_per_second = data["steady_bytes_per_player_per_second"]
    result.bytes_by_kind = data["bytes_by_kind"]
    result.packets_by_kind = data["packets_by_kind"]
    result.tick_duration = _summary_from_dict(data["tick_duration"])
    result.effective_tick_rate_hz = data["effective_tick_rate_hz"]
    result.dyconit_stats = data["dyconit_stats"]
    result.update_queue_delay_p50_ms = data["update_queue_delay_p50_ms"]
    result.update_queue_delay_p99_ms = data["update_queue_delay_p99_ms"]
    result.positional_error_mean = data["positional_error_mean"]
    result.positional_error_p95 = data["positional_error_p95"]
    result.positional_error_p99 = data["positional_error_p99"]
    result.positional_error_max = data["positional_error_max"]
    result.staleness_p50_ms = data["staleness_p50_ms"]
    result.staleness_p99_ms = data["staleness_p99_ms"]
    result.packet_latency = _summary_from_dict(data["packet_latency"])
    result.bandwidth_timeline = [tuple(point) for point in data["bandwidth_timeline"]]
    result.player_timeline = [tuple(point) for point in data["player_timeline"]]
    result.factor_timeline = [tuple(point) for point in data["factor_timeline"]]
    return result


def save_results(path: str | Path, results: dict[str, ExperimentResult]) -> None:
    """Write a named collection of results as JSON."""
    payload = {name: result_to_dict(result) for name, result in results.items()}
    Path(path).write_text(json.dumps(payload, indent=2, default=_jsonify))


def save_telemetry(path: str | Path, telemetry) -> tuple[Path, Path]:
    """Archive a run's telemetry next to its JSON results.

    Writes the JSONL span/metric stream to ``path`` and a Prometheus
    text snapshot to ``path`` with a ``.prom`` suffix appended; returns
    both paths.
    """
    from repro.telemetry.exporters import export_jsonl, export_prometheus

    jsonl_path = Path(path)
    prom_path = jsonl_path.with_suffix(jsonl_path.suffix + ".prom")
    # A missing parent must not discard the run's telemetry after the
    # (possibly long) run already completed.
    jsonl_path.parent.mkdir(parents=True, exist_ok=True)
    export_jsonl(telemetry, jsonl_path)
    export_prometheus(telemetry, prom_path)
    return jsonl_path, prom_path


def load_results(path: str | Path) -> dict[str, ExperimentResult]:
    payload = json.loads(Path(path).read_text())
    return {name: result_from_dict(data) for name, data in payload.items()}


def _jsonify(value):
    if isinstance(value, float):
        return value
    if hasattr(value, "as_dict"):
        return value.as_dict()
    raise TypeError(f"cannot serialize {type(value).__name__}")
