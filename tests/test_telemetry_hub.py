"""Unit tests for the telemetry hub: spans, labeled metrics, no-op path."""

import tracemalloc

from repro.telemetry.hub import (
    NULL_SPAN,
    NULL_TELEMETRY,
    Telemetry,
    get_telemetry,
    set_telemetry,
)


def test_span_records_wall_and_sim_time():
    clock = [125.0]
    telemetry = Telemetry(enabled=True, time_source=lambda: clock[0])
    with telemetry.span("tick.flush"):
        pass
    assert len(telemetry.spans) == 1
    span = telemetry.spans[0]
    assert span.name == "tick.flush"
    assert span.sim_time == 125.0
    assert span.duration_ms >= 0.0
    assert span.parent_id is None


def test_spans_nest_hierarchically():
    telemetry = Telemetry(enabled=True)
    with telemetry.span("outer"):
        with telemetry.span("inner"):
            pass
    inner, outer = telemetry.spans  # inner finishes first
    assert inner.name == "inner" and outer.name == "outer"
    assert inner.parent_id == outer.span_id
    assert outer.parent_id is None


def test_span_labels_are_recorded():
    telemetry = Telemetry(enabled=True)
    with telemetry.span("experiment.run", policy="adaptive", bots=100):
        pass
    assert telemetry.spans[0].labels == (("bots", "100"), ("policy", "adaptive"))


def test_span_durations_feed_percentiles():
    telemetry = Telemetry(enabled=True)
    for _ in range(10):
        with telemetry.span("tick.input"):
            pass
    histogram = telemetry.span_stats("tick.input")
    assert histogram.count == 10
    rows = telemetry.span_summary()
    assert rows[0]["span"] == "tick.input"
    assert rows[0]["count"] == 10
    assert rows[0]["p99_ms"] >= 0.0


def test_span_buffer_is_bounded_but_histograms_survive():
    telemetry = Telemetry(enabled=True, max_spans=5)
    for _ in range(8):
        with telemetry.span("tick.input"):
            pass
    assert len(telemetry.spans) == 5
    assert telemetry.dropped_spans == 3
    assert telemetry.span_stats("tick.input").count == 8  # percentiles keep all


def test_disabled_span_is_shared_noop_singleton():
    telemetry = Telemetry(enabled=False)
    assert telemetry.span("a") is NULL_SPAN
    assert telemetry.span("b") is telemetry.span("c")
    with telemetry.span("a"):
        pass
    assert telemetry.spans == []
    assert telemetry.span_names() == []


def test_disabled_span_allocates_nothing():
    telemetry = Telemetry(enabled=False)
    telemetry.span("warmup")  # pre-touch any lazy state
    tracemalloc.start()
    before = tracemalloc.take_snapshot()
    for _ in range(1000):
        with telemetry.span("hot.path"):
            pass
    after = tracemalloc.take_snapshot()
    tracemalloc.stop()
    total_new = sum(stat.size_diff for stat in after.compare_to(before, "lineno"))
    # Zero per-span allocation: any residue is tracemalloc's own bookkeeping,
    # far below one object per iteration.
    assert total_new < 1000


def test_disabled_event_records_nothing():
    telemetry = Telemetry(enabled=False)
    telemetry.event("trace.flush", detail="x")
    assert telemetry.events == []


def test_event_records_fields_and_times():
    clock = [50.0]
    telemetry = Telemetry(enabled=True, time_source=lambda: clock[0])
    telemetry.event("trace.flush", dyconit="('chunk', 0, 0)", reason="numerical")
    event = telemetry.events[0]
    assert event.kind == "trace.flush"
    assert event.sim_time == 50.0
    assert dict(event.fields)["reason"] == "numerical"


def test_event_buffer_is_bounded():
    telemetry = Telemetry(enabled=True, max_events=3)
    for index in range(5):
        telemetry.event("k", i=index)
    assert len(telemetry.events) == 3
    assert telemetry.dropped_events == 2


def test_labeled_counters_are_distinct_instances():
    telemetry = Telemetry(enabled=True)
    telemetry.counter("flushes_total", reason="numerical").increment(2)
    telemetry.counter("flushes_total", reason="staleness").increment()
    telemetry.counter("flushes_total", reason="numerical").increment()
    snapshot = telemetry.snapshot()
    assert snapshot["flushes_total{reason=numerical}"] == 3
    assert snapshot["flushes_total{reason=staleness}"] == 1


def test_gauge_and_histogram_accessors():
    telemetry = Telemetry(enabled=True)
    telemetry.gauge("players").set(7)
    telemetry.histogram("latency_ms", min_value=0.1).record(4.2)
    assert telemetry.snapshot()["players"] == 7
    assert telemetry.histogram("latency_ms").count == 1


def test_reset_clears_everything_but_keeps_config():
    telemetry = Telemetry(enabled=True, max_spans=5)
    with telemetry.span("s"):
        telemetry.counter("c").increment()
        telemetry.event("e")
    telemetry.reset()
    assert telemetry.spans == [] and telemetry.events == []
    assert telemetry.snapshot() == {}
    assert telemetry.span_names() == []
    assert telemetry.max_spans == 5 and telemetry.enabled


def test_ambient_hub_install_and_restore():
    hub = Telemetry(enabled=True)
    previous = set_telemetry(hub)
    try:
        assert get_telemetry() is hub
    finally:
        set_telemetry(previous)
    assert get_telemetry() is NULL_TELEMETRY


def test_null_telemetry_is_disabled():
    assert NULL_TELEMETRY.enabled is False
    assert NULL_TELEMETRY.span("x") is NULL_SPAN
