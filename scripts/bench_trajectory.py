#!/usr/bin/env python3
"""Record the fan-out wall-clock trajectory into BENCH_fanout.json.

Usage: [PYTHONPATH=src] python scripts/bench_trajectory.py [--quick]
           [--out PATH] [--bots N [N ...]] [--faults]
           [--sweep] [--jobs N] [--sweep-out PATH] [--guard-commit]
           [--guard-parallel]

Runs the :mod:`repro.experiments.wallclock` suite (direct-mode broadcast
scan vs indexed, entity-crossing handler scan vs indexed, interest
refresh, dyconit commit/flush) at each fleet size and writes the rows +
scan→indexed speedups to ``BENCH_fanout.json`` at the repo root. When a
previous file exists, prints a before/after comparison first so perf
regressions are visible at regeneration time.

``--quick`` shrinks every op count ~10x (CI smoke; numbers are noisy,
use only for crash detection).

``--faults`` installs the fault-injection layer on every link with a
null (all-zero-rate) plan. Compare the rows against a run without the
flag to verify the layer costs nothing on the fan-out hot path when no
faults are configured.

``--guard-commit`` turns the run into a perf-regression gate for the
S17 batched commit pipeline: on the commit benches (``dyconit_commit``,
``commit_batch``) the batched ``us_per_op`` must not exceed legacy. On a
starved runner (single CPU) the guard records an honest skip with the
reason in the payload instead of asserting — time-sliced noise there
fails good code more often than it catches regressions.

``--guard-parallel`` gates the S18 shard-parallel tick runtime. The
determinism half always runs: a 2-shard workload under the serial
:class:`ShardedCluster` and the process-parallel
:class:`ParallelShardRunner` must produce byte-identical packet streams,
on any machine — determinism is not noise-sensitive. The wall-clock half
(parallel speedup over serial) records an honest skip with the CPU count
and reason on single-core hosts, same precedent as ``--guard-commit``.

``--sweep`` additionally benchmarks the parallel sweep executor
(cold serial vs cold ``--jobs N`` vs warm-cache rerun over a small
E1+E9-shaped grid) and writes BENCH_sweep.json. The payload records the
machine's CPU count next to the speedup — on a single-core box the
speedup is *suppressed* (``parallel_speedup: null`` plus an explanatory
``parallel_speedup_suppressed`` note): workers time-slicing one core
measure scheduler overhead, not parallelism. Only the warm-cache
fraction and byte-identity check are meaningful there.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.experiments import wallclock  # noqa: E402


def compare(previous: dict, current: dict) -> str:
    """Row-by-row ops/sec delta against the previously committed file."""
    old_rows = {
        (row["bench"], row["impl"], row["bots"]): row
        for row in previous.get("rows", [])
    }
    lines = [
        f"{'bench':<18} {'impl':<8} {'bots':>5} "
        f"{'before op/s':>14} {'after op/s':>14} {'delta':>8}"
    ]
    for row in current["rows"]:
        key = (row["bench"], row["impl"], row["bots"])
        old = old_rows.get(key)
        before = f"{old['ops_per_sec']:,.0f}" if old else "-"
        delta = (
            f"{(row['ops_per_sec'] / old['ops_per_sec'] - 1.0) * 100.0:+.1f}%"
            if old and old["ops_per_sec"]
            else "-"
        )
        lines.append(
            f"{row['bench']:<18} {row['impl']:<8} {row['bots']:>5} "
            f"{before:>14} {row['ops_per_sec']:>14,.0f} {delta:>8}"
        )
    return "\n".join(lines)


def render(payload: dict) -> str:
    lines = [
        f"{'bench':<18} {'impl':<8} {'bots':>5} {'ops/sec':>14} "
        f"{'us/op':>10} {'ms/tick':>9}"
    ]
    for row in payload["rows"]:
        per_tick = f"{row['per_tick_ms']:.3f}" if row["per_tick_ms"] is not None else "-"
        lines.append(
            f"{row['bench']:<18} {row['impl']:<8} {row['bots']:>5} "
            f"{row['ops_per_sec']:>14,.0f} {row['us_per_op']:>10,.2f} {per_tick:>9}"
        )
    lines.append("")
    lines.append("speedups (indexed vs scan; batched vs legacy):")
    for key, ratio in sorted(payload["speedups"].items()):
        lines.append(f"  {key:<24} {ratio:.2f}x")
    return "\n".join(lines)


def commit_guard(payload: dict) -> dict:
    """Gate the S17 pipeline: batched must not be slower than legacy.

    Compares ``us_per_op`` on the commit benches (``dyconit_commit``,
    ``commit_batch``) at every fleet size. Skips (recording why) when the
    host has a single CPU — the PR 6 sweep-benchmark precedent: a
    time-sliced core measures scheduler noise, not the code under test.
    """
    import os

    cpu_count = os.cpu_count() or 1
    if cpu_count < 2:
        return {
            "status": "skipped",
            "cpu_count": cpu_count,
            "reason": (
                f"cpu_count={cpu_count}: single-CPU runner; wall-clock "
                "comparison would gate on scheduler noise"
            ),
        }
    by_key = {
        (row["bench"], row["impl"], row["bots"]): row for row in payload["rows"]
    }
    # Commit-path benches only: the flush drain trades a little per-op
    # materialization cost for the vectorized enqueue (it replays the
    # shared log on demand) and is ~500x off the hot path; gating it
    # here would fail the PR that the commit speedup pays for.
    gated = {"dyconit_commit", "commit_batch"}
    checks = []
    for (bench, impl, bots), row in sorted(by_key.items()):
        if impl != "batched" or bench not in gated:
            continue
        legacy = by_key.get((bench, "legacy", bots))
        if legacy is None:
            continue
        checks.append(
            {
                "bench": bench,
                "bots": bots,
                "legacy_us_per_op": legacy["us_per_op"],
                "batched_us_per_op": row["us_per_op"],
                "ok": row["us_per_op"] <= legacy["us_per_op"],
            }
        )
    status = "passed" if checks and all(c["ok"] for c in checks) else "failed"
    return {"status": status, "cpu_count": cpu_count, "checks": checks}


def parallel_guard(quick: bool, jobs: int) -> dict:
    """Gate the S18 parallel shard runtime (see module docstring).

    Determinism always; speedup only where a wall-clock comparison means
    something (>= 2 CPUs and enough of them to host ``jobs`` workers).
    """
    import hashlib
    import os
    import time

    from repro.bots.workload import BehaviorMix, Workload, WorkloadSpec
    from repro.cluster import ParallelShardRunner, ShardedCluster
    from repro.policies.zero import ZeroBoundsPolicy
    from repro.server.config import ServerConfig
    from repro.sim.simulator import Simulation

    shards = max(2, jobs)
    duration_ms = 3_000.0 if quick else 10_000.0

    def run(parallel: bool) -> tuple[str, float]:
        sim = Simulation()
        config = ServerConfig(seed=1234, synchronous_delivery=True, mob_count=3)
        cluster_cls = ParallelShardRunner if parallel else ShardedCluster
        cluster = cluster_cls(
            sim, shards=shards, strip_width=4, config=config,
            policy_factory=ZeroBoundsPolicy,
        )
        cluster.start()
        # Digest per-client streams (sorted by client): that is what a
        # client observes. Cross-client interleaving inside one sim
        # timestamp is unobservable and legitimately differs — the
        # parallel barrier replays merged per-shard batches in shard
        # order while serial delivers inline mid-tick.
        captures: dict[str, list] = {}
        original_connect = cluster.connect

        def tapping_connect(name, handler, **kwargs):
            log = captures.setdefault(name, [])

            def tapped(delivered):
                log.append(repr(delivered.packet))
                handler(delivered)

            return original_connect(name, tapped, **kwargs)

        cluster.connect = tapping_connect
        workload = Workload(sim, cluster, WorkloadSpec(
            bots=8, seed=1234, movement="gathering",
            behavior=BehaviorMix(build=0.1, dig=0.05, chat=0.01),
            arrival_stagger_ms=40.0,
        ))
        workload.start()
        started = time.perf_counter()
        sim.run_until(duration_ms)
        if parallel:
            cluster.finalize()
        elapsed = time.perf_counter() - started
        digest = hashlib.sha256()
        for name in sorted(captures):
            digest.update(name.encode())
            for packet in captures[name]:
                digest.update(packet.encode())
        return digest.hexdigest(), elapsed

    serial_digest, serial_s = run(parallel=False)
    parallel_digest, parallel_s = run(parallel=True)
    result = {
        "shards": shards,
        "duration_ms": duration_ms,
        "serial_digest": serial_digest,
        "parallel_digest": parallel_digest,
        "identical": serial_digest == parallel_digest,
    }
    cpu_count = os.cpu_count() or 1
    result["cpu_count"] = cpu_count
    if cpu_count < 2:
        result["speedup"] = None
        result["speedup_suppressed"] = (
            f"cpu_count={cpu_count}: single-CPU host; worker processes "
            "time-slice one core, so wall-clock speedup measures "
            "scheduler overhead, not parallelism"
        )
    else:
        result["serial_wall_s"] = serial_s
        result["parallel_wall_s"] = parallel_s
        result["speedup"] = serial_s / parallel_s if parallel_s else None
    result["status"] = "passed" if result["identical"] else "failed"
    return result


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="~10x smaller op counts (CI smoke)")
    parser.add_argument("--out", type=Path,
                        default=REPO_ROOT / "BENCH_fanout.json")
    parser.add_argument("--bots", type=int, nargs="+", default=[50, 150])
    parser.add_argument("--faults", action="store_true",
                        help="run with a null FaultPlan on every link "
                        "(overhead-when-disabled check)")
    parser.add_argument("--sweep", action="store_true",
                        help="also benchmark the parallel sweep executor "
                        "and write BENCH_sweep.json")
    parser.add_argument("--jobs", type=int, default=4,
                        help="worker count for the --sweep benchmark")
    parser.add_argument("--sweep-out", type=Path,
                        default=REPO_ROOT / "BENCH_sweep.json")
    parser.add_argument("--guard-commit", action="store_true",
                        help="fail if the batched commit pipeline is "
                        "slower than legacy (honest skip on 1-CPU hosts)")
    parser.add_argument("--guard-parallel", action="store_true",
                        help="fail if a parallel shard run diverges from "
                        "serial bytes; records speedup (honest skip of "
                        "the timing half on 1-CPU hosts)")
    args = parser.parse_args()

    scale = dict(events=200, crossings=100, refreshes=40, commits=2_000) if args.quick \
        else dict(events=2_000, crossings=1_000, refreshes=400, commits=20_000)
    if args.faults:
        from repro.faults import FaultPlan

        scale["faults"] = FaultPlan()
    payload = wallclock.run_suite(bot_counts=tuple(args.bots), **scale)
    payload["quick"] = args.quick
    payload["python"] = platform.python_version()

    if args.out.exists():
        try:
            previous = json.loads(args.out.read_text())
        except json.JSONDecodeError:
            previous = {}
        print("before/after vs committed file:")
        print(compare(previous, payload))
        print()

    guard = None
    if args.guard_commit:
        guard = commit_guard(payload)
        payload["commit_guard"] = guard

    par_guard = None
    if args.guard_parallel:
        par_guard = parallel_guard(quick=args.quick, jobs=args.jobs)
        payload["parallel_guard"] = par_guard

    print(render(payload))
    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {args.out}")

    if guard is not None:
        if guard["status"] == "skipped":
            print(f"commit guard: SKIPPED ({guard['reason']})")
        else:
            for check in guard["checks"]:
                verdict = "ok" if check["ok"] else "REGRESSION"
                print(
                    f"commit guard: {check['bench']}@{check['bots']} "
                    f"legacy {check['legacy_us_per_op']:.2f}us -> batched "
                    f"{check['batched_us_per_op']:.2f}us [{verdict}]"
                )
            print(f"commit guard: {guard['status'].upper()}")
            if guard["status"] == "failed":
                sys.exit(1)

    if par_guard is not None:
        verdict = "identical" if par_guard["identical"] else "DIVERGED"
        print(
            f"parallel guard: {par_guard['shards']}-shard "
            f"{par_guard['duration_ms']:.0f}ms run serial vs parallel "
            f"bytes [{verdict}]"
        )
        if par_guard["speedup"] is None:
            print(
                "parallel guard: speedup SKIPPED "
                f"({par_guard['speedup_suppressed']})"
            )
        else:
            print(
                f"parallel guard: speedup {par_guard['speedup']:.2f}x "
                f"(serial {par_guard['serial_wall_s']:.2f}s, parallel "
                f"{par_guard['parallel_wall_s']:.2f}s, "
                f"{par_guard['cpu_count']} CPUs)"
            )
        print(f"parallel guard: {par_guard['status'].upper()}")
        if par_guard["status"] == "failed":
            sys.exit(1)

    if args.sweep:
        from repro.experiments.parallel import default_bench_cells, sweep_benchmark

        cells = (
            default_bench_cells(bots=4, duration_ms=2_500.0, points=4)
            if args.quick
            else default_bench_cells()
        )
        sweep_payload = sweep_benchmark(cells=cells, jobs=args.jobs)
        sweep_payload["quick"] = args.quick
        sweep_payload["python"] = platform.python_version()
        print()
        print(f"{'mode':<14} {'jobs':>5} {'cache hits':>11} {'wall s':>9}")
        for row in sweep_payload["rows"]:
            print(
                f"{row['mode']:<14} {row['jobs']:>5} "
                f"{row['cache_hits']:>11} {row['wall_s']:>9.3f}"
            )
        speedup = sweep_payload["parallel_speedup"]
        speedup_text = (
            f"{speedup}x" if speedup is not None
            else "suppressed (single-CPU host)"
        )
        print(
            f"parallel speedup: {speedup_text} "
            f"({sweep_payload['params']['cpu_count']} CPUs); "
            f"warm rerun: {100 * sweep_payload['warm_fraction_of_cold']:.1f}% "
            f"of cold; stores byte-identical: "
            f"{sweep_payload['stores_byte_identical']}"
        )
        args.sweep_out.write_text(json.dumps(sweep_payload, indent=2) + "\n")
        print(f"wrote {args.sweep_out}")


if __name__ == "__main__":
    main()
