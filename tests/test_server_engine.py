"""Unit/behavioural tests for the game server engine."""

import pytest

from repro.net.protocol import (
    ChunkDataPacket,
    JoinGamePacket,
    KeepAlivePacket,
    PlayerActionPacket,
    SpawnEntityPacket,
)
from repro.policies.zero import ZeroBoundsPolicy
from repro.world.block import BlockType
from repro.world.geometry import BlockPos, Vec3


class Client:
    """Minimal packet sink used as the connect handler."""

    def __init__(self):
        self.packets = []

    def __call__(self, delivered):
        self.packets.append(delivered.packet)

    def of_kind(self, kind):
        return [p for p in self.packets if isinstance(p, kind)]


def test_server_requires_policy_unless_direct(sim, server_factory):
    with pytest.raises(ValueError):
        server_factory(policy=None, direct_mode=False)


def test_connect_sends_join_and_initial_view(sim, server_factory):
    server = server_factory(policy=ZeroBoundsPolicy(), synchronous_delivery=True)
    client = Client()
    session = server.connect("alice", handler=client)
    assert server.player_count == 1
    assert len(client.of_kind(JoinGamePacket)) == 1
    view_size = (2 * session.view_distance + 1) ** 2
    assert len(client.of_kind(ChunkDataPacket)) == view_size
    assert len(session.view_chunks) == view_size


def test_second_player_sees_first(sim, server_factory):
    server = server_factory(policy=ZeroBoundsPolicy(), synchronous_delivery=True)
    alice, bob = Client(), Client()
    server.connect("alice", handler=alice, position=Vec3(8, 30, 8))
    server.connect("bob", handler=bob, position=Vec3(10, 30, 10))
    # Bob received a snapshot of alice during view sync.
    names = [p.name for p in bob.of_kind(SpawnEntityPacket)]
    assert "alice" in names
    # Alice saw bob's spawn broadcast through the middleware.
    names = [p.name for p in alice.of_kind(SpawnEntityPacket)]
    assert "bob" in names


def test_player_does_not_see_own_spawn(sim, server_factory):
    server = server_factory(policy=ZeroBoundsPolicy(), synchronous_delivery=True)
    alice = Client()
    server.connect("alice", handler=alice)
    assert [p.name for p in alice.of_kind(SpawnEntityPacket)] == []


def test_move_action_applies_at_next_tick(sim, server_factory):
    server = server_factory(policy=ZeroBoundsPolicy(), synchronous_delivery=True)
    client = Client()
    session = server.connect("alice", handler=client, position=Vec3(8, 30, 8))
    target = Vec3(9.0, 30.0, 8.0)
    server.submit_action(session.client_id, PlayerActionPacket("move", position=target))
    entity = server.world.get_entity(session.entity_id)
    assert entity.position != target
    sim.run_until(sim.now + 100.0)
    assert entity.position == target


def test_place_and_dig_actions(sim, server_factory):
    server = server_factory(policy=ZeroBoundsPolicy(), synchronous_delivery=True)
    client = Client()
    session = server.connect("alice", handler=client, position=Vec3(8, 30, 8))
    pos = BlockPos(9, 40, 9)
    server.submit_action(
        session.client_id,
        PlayerActionPacket("place", block_pos=pos, block=BlockType.BRICK),
    )
    sim.run_until(sim.now + 100.0)
    assert server.world.get_block(pos) == BlockType.BRICK
    server.submit_action(session.client_id, PlayerActionPacket("dig", block_pos=pos))
    sim.run_until(sim.now + 100.0)
    assert server.world.get_block(pos) == BlockType.AIR


def test_block_change_not_echoed_to_actor(sim, server_factory):
    from repro.net.protocol import BlockChangePacket

    server = server_factory(policy=ZeroBoundsPolicy(), synchronous_delivery=True)
    alice, bob = Client(), Client()
    a = server.connect("alice", handler=alice, position=Vec3(8, 30, 8))
    server.connect("bob", handler=bob, position=Vec3(10, 30, 10))
    server.submit_action(
        a.client_id,
        PlayerActionPacket("place", block_pos=BlockPos(9, 40, 9), block=BlockType.BRICK),
    )
    sim.run_until(sim.now + 100.0)
    assert alice.of_kind(BlockChangePacket) == []
    assert len(bob.of_kind(BlockChangePacket)) == 1


def test_chat_reaches_everyone_else(sim, server_factory):
    from repro.net.protocol import ChatMessagePacket

    server = server_factory(policy=ZeroBoundsPolicy(), synchronous_delivery=True)
    alice, bob = Client(), Client()
    a = server.connect("alice", handler=alice)
    server.connect("bob", handler=bob, position=Vec3(12, 30, 12))
    server.submit_action(
        a.client_id, PlayerActionPacket("chat", extra={"text": "hello"})
    )
    sim.run_until(sim.now + 400.0)
    assert [p.text for p in bob.of_kind(ChatMessagePacket)] == ["hello"]
    assert alice.of_kind(ChatMessagePacket) == []


def test_disconnect_despawns_and_stops_traffic(sim, server_factory):
    server = server_factory(policy=ZeroBoundsPolicy(), synchronous_delivery=True)
    alice, bob = Client(), Client()
    a = server.connect("alice", handler=alice)
    server.connect("bob", handler=bob, position=Vec3(12, 30, 12))
    server.disconnect(a.client_id)
    assert server.player_count == 1
    assert server.world.get_entity(a.entity_id) is None
    from repro.net.protocol import DestroyEntitiesPacket

    destroys = bob.of_kind(DestroyEntitiesPacket)
    assert any(a.entity_id in p.entity_ids for p in destroys)


def test_disconnect_is_idempotent(sim, server_factory):
    server = server_factory(policy=ZeroBoundsPolicy())
    a = server.connect("alice", handler=Client())
    server.disconnect(a.client_id)
    server.disconnect(a.client_id)  # second call is a no-op
    assert server.player_count == 0


def test_keepalives_flow(sim, server_factory):
    server = server_factory(policy=ZeroBoundsPolicy(), synchronous_delivery=True)
    client = Client()
    server.connect("alice", handler=client)
    sim.run_until(sim.now + 11_000.0)
    assert len(client.of_kind(KeepAlivePacket)) >= 2


def test_tick_metrics_recorded(sim, server_factory):
    server = server_factory(policy=ZeroBoundsPolicy())
    sim.run_until(1_000.0)
    series = server.metrics.series("tick_duration_ms")
    assert len(series) >= 19
    assert all(duration > 0 for duration in series.values)


def test_overload_stretches_tick_interval(sim):
    """When the priced tick exceeds the budget, the effective tick rate
    drops below 20 Hz."""
    from repro.server.config import ServerConfig
    from repro.server.costmodel import CostCoefficients
    from repro.server.engine import GameServer
    from repro.world.world import World

    config = ServerConfig(
        seed=1, cost=CostCoefficients(base_ms=80.0), synchronous_delivery=True
    )
    server = GameServer(sim, world=World(seed=1), config=config, policy=ZeroBoundsPolicy())
    server.start()
    sim.run_until(2_000.0)
    assert server.tick_count <= 25  # 80 ms per tick -> at most 12.5 Hz


def test_mobs_spawn_and_wander(sim, server_factory):
    server = server_factory(policy=ZeroBoundsPolicy(), mob_count=5, synchronous_delivery=True)
    assert server.world.entity_count == 5
    positions_before = {
        e.entity_id: e.position for e in server.world.entities()
    }
    sim.run_until(2_000.0)
    moved = [
        entity_id
        for entity_id, before in positions_before.items()
        if server.world.get_entity(entity_id).position != before
    ]
    assert moved


def test_start_twice_rejected(sim, server_factory):
    server = server_factory(policy=ZeroBoundsPolicy())
    with pytest.raises(RuntimeError):
        server.start()


def test_load_signals_shape(sim, server_factory):
    server = server_factory(policy=ZeroBoundsPolicy())
    sim.run_until(500.0)
    signals = server.load_signals()
    assert signals.tick_budget_ms == 50.0
    assert signals.player_count == 0
    assert signals.smoothed_tick_duration_ms > 0.0
