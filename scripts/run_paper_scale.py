#!/usr/bin/env python3
"""Run one experiment group at paper scale and archive its tables.

Usage: python scripts/run_paper_scale.py <e1|e2|e3|e4|e6|e7|e8> [outdir]

Writes ``<outdir>/<group>.txt`` with the rendered tables (the numbers
EXPERIMENTS.md records). Groups are separate processes so they can run
in parallel. Expect roughly 5-15 minutes per group on a laptop-class
machine — e1/e7 run eight 100-bot experiments each.
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro.experiments import figures

PAPER = dict(bots=100, duration_ms=20_000.0, warmup_ms=8_000.0, seed=42)


def run_group(group: str) -> str:
    if group == "e1":
        return figures.bandwidth_by_policy(**PAPER)["table"]
    if group == "e2":
        out = figures.capacity_sweep(
            bot_counts=(50, 75, 100, 125, 150, 175),
            duration_ms=12_000.0,
            warmup_ms=6_000.0,
            seed=42,
        )
        lines = [out["table"], ""]
        for policy, curve in out["curves"].items():
            lines.append(f"{policy}: " + ", ".join(f"{b}->{p:.1f}ms" for b, p in curve))
        lines.append(f"capacity gain: {out['capacity_gain_percent']:.1f}%")
        return "\n".join(lines)
    if group == "e3":
        return figures.inconsistency_by_policy(**PAPER)["table"]
    if group == "e4":
        params = dict(PAPER)
        params["bots"] = 60
        params["duration_ms"] = 20_000.0
        params["warmup_ms"] = 6_000.0
        return figures.latency_by_policy(**params)["table"]
    if group == "e6":
        out = figures.dynamics_timeline(
            base_bots=60, burst_bots=120, duration_ms=60_000.0,
            burst_at_ms=20_000.0, burst_end_ms=40_000.0, seed=42,
        )
        return out["table"]
    if group == "e7":
        return figures.policy_summary_table(**PAPER)["table"]
    if group == "e8":
        parts = [
            figures.ablation_merging(**PAPER)["table"],
            figures.ablation_granularity(**PAPER)["table"],
            figures.ablation_policy_period(**PAPER)["table"],
        ]
        return "\n\n".join(parts)
    raise SystemExit(f"unknown group {group!r}")


def main() -> None:
    if len(sys.argv) < 2:
        raise SystemExit(__doc__)
    group = sys.argv[1]
    outdir = Path(sys.argv[2] if len(sys.argv) > 2 else "results")
    outdir.mkdir(exist_ok=True)
    table = run_group(group)
    (outdir / f"{group}.txt").write_text(table + "\n")
    print(table)


if __name__ == "__main__":
    main()
