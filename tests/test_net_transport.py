"""Unit tests for the transport."""

import pytest

from repro.net.link import LinkConfig
from repro.net.protocol import ChatMessagePacket, KeepAlivePacket
from repro.net.transport import Transport


@pytest.fixture
def transport(sim):
    return Transport(sim, LinkConfig(bandwidth_bps=1e9, latency_ms=20.0))


def test_connect_and_send_delivers_later(sim, transport):
    received = []
    transport.connect(1, received.append)
    transport.send(1, KeepAlivePacket())
    assert received == []  # not yet delivered
    sim.run()
    assert len(received) == 1
    assert received[0].latency_ms == pytest.approx(20.0, abs=1.0)


def test_duplicate_connect_rejected(transport):
    transport.connect(1, lambda d: None)
    with pytest.raises(ValueError):
        transport.connect(1, lambda d: None)


def test_send_to_unknown_client_is_dropped(sim, transport):
    transport.send(99, KeepAlivePacket())  # no error
    sim.run()
    assert transport.total_packets() == 0


def test_disconnect_suppresses_inflight_delivery(sim, transport):
    received = []
    transport.connect(1, received.append)
    transport.send(1, KeepAlivePacket())
    transport.disconnect(1)
    sim.run()
    assert received == []


def test_disconnect_preserves_accounting(sim, transport):
    transport.connect(1, lambda d: None)
    transport.send(1, KeepAlivePacket())
    size = KeepAlivePacket().wire_size()
    transport.disconnect(1)
    assert transport.total_bytes() == size
    assert transport.total_packets() == 1


def test_per_kind_accounting(sim, transport):
    transport.connect(1, lambda d: None)
    transport.send(1, KeepAlivePacket())
    transport.send(1, ChatMessagePacket(1, "hello"))
    by_kind = transport.packets_by_kind()
    assert by_kind == {"KeepAlivePacket": 1, "ChatMessagePacket": 1}
    assert set(transport.bytes_by_kind()) == set(by_kind)


def test_latency_recording(sim, transport):
    transport.connect(1, lambda d: None)
    for _ in range(3):
        transport.send(1, KeepAlivePacket())
    sim.run()
    assert len(transport.latencies_ms) == 3
    assert all(latency >= 20.0 for latency in transport.latencies_ms)


def test_latency_recording_can_be_disabled(sim, transport):
    transport.record_latencies = False
    transport.connect(1, lambda d: None)
    transport.send(1, KeepAlivePacket())
    sim.run()
    assert transport.latencies_ms == []


def test_synchronous_delivery_calls_handler_immediately(sim):
    transport = Transport(sim, LinkConfig(latency_ms=20.0), synchronous_delivery=True)
    received = []
    transport.connect(1, received.append)
    transport.send(1, KeepAlivePacket())
    assert len(received) == 1  # before any sim.run()
    assert received[0].latency_ms >= 20.0  # latency still modelled


def test_send_many(sim, transport):
    received = []
    transport.connect(1, received.append)
    transport.send_many(1, [KeepAlivePacket(), KeepAlivePacket()])
    sim.run()
    assert len(received) == 2


def test_fifo_delivery_order(sim, transport):
    received = []
    transport.connect(1, lambda d: received.append(d.packet))
    a = ChatMessagePacket(1, "first")
    b = ChatMessagePacket(1, "second")
    transport.send(1, a)
    transport.send(1, b)
    sim.run()
    assert received == [a, b]


def test_client_count(transport):
    assert transport.client_count == 0
    transport.connect(1, lambda d: None)
    transport.connect(2, lambda d: None)
    assert transport.client_count == 2
    transport.disconnect(1)
    assert transport.client_count == 1
    assert not transport.is_connected(1)
    assert transport.is_connected(2)
