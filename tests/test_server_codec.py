"""Unit tests for the update-to-packet codec."""

import pytest

from repro.net.protocol import (
    BlockChangePacket,
    ChatMessagePacket,
    DestroyEntitiesPacket,
    EntityPositionPacket,
    EntityTeleportPacket,
    MultiBlockChangePacket,
    SpawnEntityPacket,
)
from repro.server.codec import SessionCodec
from repro.server.session import PlayerSession
from repro.world.block import BlockType
from repro.world.entity import EntityKind
from repro.world.events import (
    BlockChangeEvent,
    ChatEvent,
    EntityDespawnEvent,
    EntityMoveEvent,
    EntitySpawnEvent,
)
from repro.world.geometry import BlockPos, ChunkPos, Vec3, chunks_in_radius


@pytest.fixture
def codec(world):
    return SessionCodec(world)


@pytest.fixture
def session():
    s = PlayerSession(client_id=1, entity_id=100, name="alice", view_distance=5)
    s.view_chunks = set(chunks_in_radius(ChunkPos(0, 0), 5))
    return s


def spawn_event(entity_id=7, pos=Vec3(4, 30, 4), kind=EntityKind.ZOMBIE):
    return EntitySpawnEvent(0.0, entity_id, kind, pos)


def move_event(entity_id=7, old=Vec3(4, 30, 4), new=Vec3(5, 30, 4)):
    return EntityMoveEvent(1.0, entity_id, old, new)


class TestEntityEncoding:
    def test_spawn_then_move_uses_relative(self, codec, session):
        packets = codec.encode(session, [spawn_event(), move_event()])
        assert isinstance(packets[0], SpawnEntityPacket)
        assert isinstance(packets[1], EntityPositionPacket)

    def test_move_of_unknown_entity_synthesizes_spawn(self, codec, session, world):
        entity = world.spawn_entity(EntityKind.COW, Vec3(4, 30, 4))
        packets = codec.encode(
            session, [move_event(entity.entity_id, new=Vec3(5, 30, 4))]
        )
        assert len(packets) == 1
        assert isinstance(packets[0], SpawnEntityPacket)
        assert packets[0].entity_kind == EntityKind.COW

    def test_move_of_despawned_unknown_entity_is_dropped(self, codec, session):
        packets = codec.encode(session, [move_event(entity_id=999)])
        assert packets == []

    def test_large_merged_move_becomes_teleport(self, codec, session):
        packets = codec.encode(
            session,
            [spawn_event(), move_event(new=Vec3(40.0, 30.0, 4.0))],
        )
        assert isinstance(packets[1], EntityTeleportPacket)

    def test_own_movement_never_echoed(self, codec, session):
        packets = codec.encode(session, [move_event(entity_id=session.entity_id)])
        assert packets == []

    def test_own_spawn_never_sent(self, codec, session):
        packets = codec.encode(session, [spawn_event(entity_id=session.entity_id)])
        assert packets == []

    def test_despawns_batch_into_one_packet(self, codec, session):
        updates = [spawn_event(1), spawn_event(2)]
        codec.encode(session, updates)
        packets = codec.encode(
            session,
            [
                EntityDespawnEvent(2.0, 1, Vec3(4, 30, 4)),
                EntityDespawnEvent(2.0, 2, Vec3(4, 30, 4)),
            ],
        )
        assert len(packets) == 1
        assert isinstance(packets[0], DestroyEntitiesPacket)
        assert set(packets[0].entity_ids) == {1, 2}
        assert session.known_entities == {}

    def test_despawn_of_unknown_entity_is_silent(self, codec, session):
        packets = codec.encode(session, [EntityDespawnEvent(0.0, 42, Vec3(0, 30, 0))])
        assert packets == []

    def test_move_out_of_view_destroys_replica(self, codec, session):
        codec.encode(session, [spawn_event()])
        assert 7 in session.known_entities
        far = Vec3(500.0, 30.0, 500.0)
        packets = codec.encode(session, [move_event(new=far)])
        assert len(packets) == 1
        assert isinstance(packets[0], DestroyEntitiesPacket)
        assert 7 not in session.known_entities

    def test_spawn_outside_view_skipped(self, codec, session):
        packets = codec.encode(session, [spawn_event(pos=Vec3(500, 30, 500))])
        assert packets == []

    def test_duplicate_spawn_not_resent(self, codec, session):
        codec.encode(session, [spawn_event()])
        packets = codec.encode(session, [spawn_event()])
        assert packets == []

    def test_relative_move_tracks_last_sent_position(self, codec, session):
        codec.encode(session, [spawn_event()])
        codec.encode(session, [move_event(new=Vec3(5, 30, 4))])
        packets = codec.encode(
            session, [move_event(old=Vec3(5, 30, 4), new=Vec3(6, 30, 4))]
        )
        delta = packets[0].delta
        assert (delta.x, delta.z) == (1.0, 0.0)


class TestBlockEncoding:
    def test_single_change_is_block_change(self, codec, session):
        event = BlockChangeEvent(0.0, BlockPos(1, 30, 1), BlockType.AIR, BlockType.STONE)
        packets = codec.encode(session, [event])
        assert isinstance(packets[0], BlockChangePacket)

    def test_multiple_changes_in_chunk_batch(self, codec, session):
        events = [
            BlockChangeEvent(0.0, BlockPos(x, 30, 1), BlockType.AIR, BlockType.PLANKS)
            for x in range(4)
        ]
        packets = codec.encode(session, events)
        assert len(packets) == 1
        assert isinstance(packets[0], MultiBlockChangePacket)
        assert len(packets[0].changes) == 4

    def test_changes_in_different_chunks_split(self, codec, session):
        events = [
            BlockChangeEvent(0.0, BlockPos(1, 30, 1), BlockType.AIR, BlockType.STONE),
            BlockChangeEvent(0.0, BlockPos(20, 30, 1), BlockType.AIR, BlockType.STONE),
        ]
        packets = codec.encode(session, events)
        assert len(packets) == 2

    def test_merged_block_state_wins(self, codec, session):
        """Later change to the same block supersedes in one batch."""
        events = [
            BlockChangeEvent(0.0, BlockPos(1, 30, 1), BlockType.AIR, BlockType.STONE),
            BlockChangeEvent(1.0, BlockPos(1, 30, 1), BlockType.STONE, BlockType.AIR),
        ]
        packets = codec.encode(session, events)
        assert len(packets) == 1
        assert packets[0].block == BlockType.AIR


class TestChatEncoding:
    def test_chat_packet(self, codec, session):
        packets = codec.encode(session, [ChatEvent(0.0, 9, "hello")])
        assert isinstance(packets[0], ChatMessagePacket)
        assert packets[0].text == "hello"


class TestSnapshots:
    def test_snapshot_spawns_live_entity(self, codec, session, world):
        entity = world.spawn_entity(EntityKind.SHEEP, Vec3(2, 30, 2))
        packet = codec.encode_entity_snapshot(session, entity.entity_id)
        assert isinstance(packet, SpawnEntityPacket)
        assert entity.entity_id in session.known_entities

    def test_snapshot_skips_known_and_self(self, codec, session, world):
        entity = world.spawn_entity(EntityKind.SHEEP, Vec3(2, 30, 2))
        codec.encode_entity_snapshot(session, entity.entity_id)
        assert codec.encode_entity_snapshot(session, entity.entity_id) is None
        assert codec.encode_entity_snapshot(session, session.entity_id) is None

    def test_snapshot_of_dead_entity_is_none(self, codec, session):
        assert codec.encode_entity_snapshot(session, 424242) is None
