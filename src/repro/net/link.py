"""Per-client link model.

Each connected client has a dedicated :class:`ClientLink` with a
configurable downstream bandwidth and base propagation delay. Packet
delivery time is::

    send_time + propagation + serialization + queueing

where serialization is ``bytes / bandwidth`` and queueing arises when the
link is already busy transmitting earlier packets (a simple FIFO
store-and-forward queue, like a kernel socket buffer draining into a
capped pipe).

The link also accumulates byte/packet counters that the transport exposes
to the metrics layer — this is where the paper's bandwidth numbers come
from.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.net.protocol import Packet


@dataclass(frozen=True, slots=True)
class LinkConfig:
    """Link parameters; defaults model a broadband home connection."""

    bandwidth_bps: float = 20_000_000.0  # 20 Mbit/s downstream
    latency_ms: float = 25.0  # one-way propagation delay
    jitter_ms: float = 0.0  # uniform extra delay in [0, jitter_ms]

    def __post_init__(self) -> None:
        if self.bandwidth_bps <= 0:
            raise ValueError(f"bandwidth must be positive, got {self.bandwidth_bps}")
        if self.latency_ms < 0 or self.jitter_ms < 0:
            raise ValueError("latency and jitter must be non-negative")


@dataclass
class LinkStats:
    """Cumulative accounting for one direction of a link."""

    packets: int = 0
    bytes: int = 0
    bytes_by_kind: dict[str, int] = field(default_factory=dict)
    packets_by_kind: dict[str, int] = field(default_factory=dict)

    def record(self, packet: Packet, size: int) -> None:
        self.packets += 1
        self.bytes += size
        kind = packet.kind
        self.bytes_by_kind[kind] = self.bytes_by_kind.get(kind, 0) + size
        self.packets_by_kind[kind] = self.packets_by_kind.get(kind, 0) + 1


class ClientLink:
    """Simulated downstream pipe from server to one client."""

    def __init__(self, client_id: int, config: LinkConfig, jitter=None) -> None:
        self.client_id = client_id
        self.config = config
        #: Simulated time at which the pipe finishes its current backlog.
        self._busy_until = 0.0
        #: Delivery time of the most recent packet; later packets are
        #: clamped to it so per-packet jitter can never reorder the link
        #: (the FIFO-per-link contract the transport documents).
        self._last_delivery_time = 0.0
        self.stats = LinkStats()
        #: Optional callable returning jitter in ms (seeded per client).
        self._jitter = jitter

    def transmit(self, packet: Packet, now: float) -> float | None:
        """Account for ``packet`` leaving now; return its delivery time.

        Returns ``None`` when the packet is lost on the wire (only
        :class:`~repro.faults.link.FaultyLink` does this). The bytes are
        still accounted — the server transmitted them; the drop happens
        downstream of its egress.
        """
        size = packet.wire_size()
        self.stats.record(packet, size)
        serialization_ms = size * 8.0 / self.bandwidth_at(now) * 1000.0
        start = max(now, self._busy_until)
        self._busy_until = start + serialization_ms
        if self.consume_drop(now):
            return None
        jitter_ms = self._jitter() if self._jitter is not None else 0.0
        delivery = (
            self._busy_until + self.config.latency_ms + jitter_ms
            + self.extra_delay_ms(now)
        )
        # Monotonic clamp: a smaller jitter draw on a later packet must
        # not let it leapfrog an earlier one. Equal times preserve send
        # order (the event queue breaks ties in scheduling order).
        if delivery < self._last_delivery_time:
            delivery = self._last_delivery_time
        self._last_delivery_time = delivery
        return delivery

    # -- fault-layer hooks (no-ops on a healthy link) -------------------

    def bandwidth_at(self, now: float) -> float:
        """Effective serialization bandwidth at ``now`` in bits/s."""
        return self.config.bandwidth_bps

    def consume_drop(self, now: float) -> bool:
        """Decide whether the packet just serialized is lost."""
        return False

    def extra_delay_ms(self, now: float) -> float:
        """Additional one-off delay (latency spikes) for this packet."""
        return 0.0

    def queueing_delay(self, now: float) -> float:
        """Backlog currently waiting ahead of a new packet, in ms."""
        return max(0.0, self._busy_until - now)
