"""Pluggable state/event backends (S19).

>>> from repro.backends import create_state_store
>>> store = create_state_store("sqlite")            # or "memory", a URL, ...
>>> system = DyconitSystem(policy, state_store=store)

See :mod:`repro.backends.base` for the protocols and
:mod:`repro.backends.registry` for spec strings and registration.
"""

from repro.backends.base import (
    BackendUnavailable,
    DyconitStateHandle,
    EventBus,
    StateStore,
    SubscriptionSnapshot,
    snapshot_subscription,
)
from repro.backends.memory import BufferedEventBus, DirectEventBus, InMemoryStateStore
from repro.backends.pipeline import SpoolConsumer, SpoolEventBus
from repro.backends.postgres_store import POSTGRES_URL_ENV, PostgresStateStore
from repro.backends.redis_store import REDIS_URL_ENV, RedisStateStore
from repro.backends.registry import (
    create_event_bus,
    create_state_store,
    event_bus_factories,
    register_event_bus,
    register_state_store,
    state_store_factories,
)
from repro.backends.sqlite_store import SQLiteStateStore

__all__ = [
    "BackendUnavailable",
    "BufferedEventBus",
    "DirectEventBus",
    "DyconitStateHandle",
    "EventBus",
    "InMemoryStateStore",
    "POSTGRES_URL_ENV",
    "PostgresStateStore",
    "REDIS_URL_ENV",
    "RedisStateStore",
    "SQLiteStateStore",
    "SpoolConsumer",
    "SpoolEventBus",
    "StateStore",
    "SubscriptionSnapshot",
    "create_event_bus",
    "create_state_store",
    "event_bus_factories",
    "register_event_bus",
    "register_state_store",
    "snapshot_subscription",
    "state_store_factories",
]
