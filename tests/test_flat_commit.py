"""S17 flat columnar commit path: differential + targeted unit tests.

The batched pipeline's contract is *exact* equivalence with the legacy
per-object path: same deliveries in the same order, same stats, and
bit-equal float accounting. The randomized differential here drives
identical op tapes (commits with exclusions, churny subscriptions, bound
changes, repartitioning, ticks) through both stores and compares
everything; the unit tests pin the individually tricky mechanisms (slot
recycling, exclusion exactness, log trim/reset, the commit_many run
cache) and the I9 auditor's ability to catch columnar corruption.
"""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bounds import Bounds
from repro.core.invariants import InvariantAuditor
from repro.core.manager import DyconitSystem
from repro.core.partition import ChunkPartitioner
from repro.core.policy import Policy
from repro.core.stats import DyconitStats
from repro.world.events import EntityMoveEvent
from repro.world.geometry import Vec3

from tests.conftest import RecordingSubscriber


class StaticPolicy(Policy):
    def __init__(self, bounds=Bounds(10.0, 1000.0)):
        self.bounds = bounds

    def initial_bounds(self, system, dyconit_id, subscriber):
        return self.bounds


def move(entity_id=1, time=0.0, dx=1.0):
    return EntityMoveEvent(time, entity_id, Vec3(0, 0, 0), Vec3(dx, 0, 0))


CHUNK_A = ("chunk", 0, 0)
CHUNK_B = ("chunk", 1, 0)
CHUNKS = [CHUNK_A, CHUNK_B, ("chunk", 4, 0), ("chunk", 5, 0)]
REGIONS = ((0, 0), (1, 0))

BOUNDS_CHOICES = [
    Bounds(5.0, 100.0),
    Bounds(50.0, 1000.0),
    Bounds(math.inf, 100.0),
    Bounds(math.inf, math.inf),
    Bounds(math.inf, math.inf, order=3),
    Bounds(2.0, math.inf),
    Bounds.ZERO,
]

#: Binary-inexact weights: bit-equality of the error columns only holds
#: if both paths perform the same float additions in the same order.
DX_CHOICES = [0.1, 0.3, 1.0, 2.5]


def make_op_tape(seed: int, length: int = 400) -> list[tuple]:
    """One reproducible op tape, valid against either store."""
    rng = random.Random(seed)
    subscribed: set[tuple] = set()
    ops: list[tuple] = []
    for _ in range(length):
        roll = rng.random()
        chunk = rng.choice(CHUNKS)
        sid = rng.randint(1, 3)
        if roll < 0.45:
            exclude = rng.choice([None, None, sid])
            ops.append(
                ("commit", chunk, rng.randint(1, 5), rng.choice(DX_CHOICES), exclude)
            )
        elif roll < 0.55:
            batch = [
                (
                    rng.choice(CHUNKS if rng.random() < 0.3 else [chunk]),
                    rng.randint(1, 5),
                    rng.choice(DX_CHOICES),
                    rng.choice([None, sid]),
                )
                for _ in range(rng.randint(2, 8))
            ]
            ops.append(("commit_many", batch))
        elif roll < 0.7:
            bounds = rng.choice([None] + BOUNDS_CHOICES)
            ops.append(("subscribe", chunk, sid, bounds))
            subscribed.add((chunk, sid))
        elif roll < 0.78:
            if subscribed:
                chunk, sid = rng.choice(sorted(subscribed, key=repr))
                ops.append(("unsubscribe", chunk, sid))
                subscribed.discard((chunk, sid))
        elif roll < 0.86:
            if subscribed:
                chunk, sid = rng.choice(sorted(subscribed, key=repr))
                ops.append(("set_bounds", chunk, sid, rng.choice(BOUNDS_CHOICES)))
        elif roll < 0.92:
            ops.append(("tick", rng.choice([30.0, 150.0, 700.0])))
        elif roll < 0.96:
            ops.append(("merge", rng.choice(REGIONS)))
        else:
            ops.append(("split", rng.choice(REGIONS)))
    return ops


def run_tape(ops: list[tuple], use_batched: bool):
    clock = {"now": 0.0}
    system = DyconitSystem(
        StaticPolicy(Bounds(50.0, 1000.0)),
        ChunkPartitioner(),
        time_source=lambda: clock["now"],
        use_batched_commit=use_batched,
    )
    recs = {sid: RecordingSubscriber(subscriber_id=sid) for sid in (1, 2, 3)}
    for op in ops:
        kind = op[0]
        if kind == "commit":
            __, chunk, entity, dx, exclude = op
            system.commit_to(chunk, move(entity, clock["now"], dx), exclude)
        elif kind == "commit_many":
            batch = [
                (chunk, move(entity, clock["now"], dx), exclude)
                for chunk, entity, dx, exclude in op[1]
            ]
            system.commit_many(batch)
        elif kind == "subscribe":
            __, chunk, sid, bounds = op
            system.subscribe(chunk, recs[sid].subscriber, bounds=bounds)
        elif kind == "unsubscribe":
            system.unsubscribe(op[1], op[2])
        elif kind == "set_bounds":
            try:
                system.set_bounds(op[1], op[2], op[3])
            except KeyError:
                pass  # merged away mid-tape identically on both sides
        elif kind == "tick":
            clock["now"] += op[1]
            system.tick()
        elif kind == "merge":
            region = op[1]
            members = [c for c in CHUNKS if (c[1] // 4, c[2] // 4) == region]
            system.merge_dyconits(members, ("region", 4, *region))
        elif kind == "split":
            system.split_dyconit(("region", 4, *op[1]))
    return system, recs


def final_states(system):
    out = {}
    for dyconit in sorted(system.dyconits(), key=lambda d: repr(d.dyconit_id)):
        for state in dyconit.subscription_states():
            out[(dyconit.dyconit_id, state.subscriber.subscriber_id)] = (
                state.bounds,
                list(state.pending.items()),
                state.accumulated_error,
                state.oldest_pending_time,
                state.enqueued_count,
                state.merged_count,
            )
        out[("hotness", dyconit.dyconit_id)] = (
            dyconit.commit_count,
            dyconit.total_committed_weight,
        )
    return out


@pytest.mark.parametrize("seed", range(8))
def test_differential_flat_vs_legacy(seed):
    ops = make_op_tape(seed)
    flat_system, flat_recs = run_tape(ops, use_batched=True)
    legacy_system, legacy_recs = run_tape(ops, use_batched=False)
    for sid in (1, 2, 3):
        assert flat_recs[sid].deliveries == legacy_recs[sid].deliveries
    assert flat_system.stats == legacy_system.stats
    assert final_states(flat_system) == final_states(legacy_system)
    auditor = InvariantAuditor()
    assert auditor.check(flat_system) == []
    assert auditor.check(legacy_system) == []


@pytest.mark.parametrize("seed", range(4))
def test_differential_with_merging_disabled(seed):
    """E8(a) ablation path: nothing ever superseded, unique queue keys."""
    ops = [op for op in make_op_tape(seed, length=200) if op[0] not in ("merge", "split")]

    def run(use_batched):
        clock = {"now": 0.0}
        system = DyconitSystem(
            StaticPolicy(Bounds(50.0, 1000.0)),
            ChunkPartitioner(),
            time_source=lambda: clock["now"],
            use_batched_commit=use_batched,
            merging_enabled=False,
        )
        recs = {sid: RecordingSubscriber(subscriber_id=sid) for sid in (1, 2, 3)}
        for op in ops:
            if op[0] == "commit":
                __, chunk, entity, dx, exclude = op
                system.commit_to(chunk, move(entity, clock["now"], dx), exclude)
            elif op[0] == "commit_many":
                system.commit_many(
                    [
                        (chunk, move(entity, clock["now"], dx), exclude)
                        for chunk, entity, dx, exclude in op[1]
                    ]
                )
            elif op[0] == "subscribe":
                system.subscribe(op[1], recs[op[2]].subscriber, bounds=op[3])
            elif op[0] == "unsubscribe":
                system.unsubscribe(op[1], op[2])
            elif op[0] == "set_bounds":
                try:
                    system.set_bounds(op[1], op[2], op[3])
                except KeyError:
                    pass
            elif op[0] == "tick":
                clock["now"] += op[1]
                system.tick()
        return system, recs

    flat_system, flat_recs = run(True)
    legacy_system, legacy_recs = run(False)
    for sid in (1, 2, 3):
        assert flat_recs[sid].deliveries == legacy_recs[sid].deliveries
    assert flat_system.stats == legacy_system.stats
    assert final_states(flat_system) == final_states(legacy_system)


# ----------------------------------------------------------------------
# Targeted mechanisms
# ----------------------------------------------------------------------


@pytest.fixture
def clock():
    return {"now": 0.0}


@pytest.fixture
def system(clock):
    return DyconitSystem(
        StaticPolicy(Bounds(50.0, 1000.0)),
        ChunkPartitioner(),
        time_source=lambda: clock["now"],
    )


def _flat(system, chunk):
    return system.get(system.resolve(chunk))._flat


def test_exclusion_keeps_error_bit_exact(system):
    """The excluded slot's accumulator is saved/restored, never
    add-then-subtract (which changes the value for inexact weights)."""
    rec1, rec2 = RecordingSubscriber(1), RecordingSubscriber(2)
    system.subscribe(CHUNK_A, rec1.subscriber, bounds=Bounds(math.inf, math.inf))
    system.subscribe(CHUNK_A, rec2.subscriber, bounds=Bounds(math.inf, math.inf))
    expected = 0.0
    for i in range(7):
        system.commit_to(CHUNK_A, move(1, 0.0, 0.1), exclude_subscriber=2)
        expected += move(1, 0.0, 0.1).weight
    system.commit_to(CHUNK_A, move(1, 0.0, 0.3), exclude_subscriber=1)
    state1 = system.get(CHUNK_A).get_state(1)
    state2 = system.get(CHUNK_A).get_state(2)
    assert state1.accumulated_error == expected  # bit-equal, not approx
    assert state2.accumulated_error == move(1, 0.0, 0.3).weight


def test_slot_recycling_preserves_iteration_order(system):
    """Unsubscribe compacts in place; a re-subscribe lands at the end —
    the same order a dict delete + re-add produces on the legacy path."""
    recs = [RecordingSubscriber(sid) for sid in (1, 2, 3)]
    for rec in recs:
        system.subscribe(CHUNK_A, rec.subscriber)
    system.unsubscribe(CHUNK_A, 2)
    system.subscribe(CHUNK_A, recs[1].subscriber)
    order = [
        s.subscriber.subscriber_id
        for s in system.get(CHUNK_A).subscription_states()
    ]
    assert order == [1, 3, 2]


def test_zero_bounds_flush_immediately(system):
    rec = RecordingSubscriber(1)
    system.subscribe(CHUNK_A, rec.subscriber, bounds=Bounds.ZERO)
    system.commit_to(CHUNK_A, move(1, 0.0, 2.0))
    assert len(rec.delivered_updates) == 1


def test_log_resets_when_all_queues_empty(system):
    rec = RecordingSubscriber(1)
    system.subscribe(CHUNK_A, rec.subscriber, bounds=Bounds(math.inf, math.inf))
    for i in range(5):
        system.commit_to(CHUNK_A, move(i + 1, 0.0, 1.0))
    flat = _flat(system, CHUNK_A)
    assert len(flat.log) == 5
    system.flush_all()
    assert flat.log == [] and flat.base == 5
    assert flat.last_key == {} and flat.excl_by_sub == {}
    # The store keeps working after a reset (cursors were rebased).
    system.commit_to(CHUNK_A, move(1, 0.0, 1.0))
    assert system.get(CHUNK_A).get_state(1).has_pending
    assert InvariantAuditor().check(system) == []


def test_log_trim_rebases_off_min_cursor(system, clock):
    """One subscriber drains often, one hoards: once over half the log is
    behind every cursor, it is sliced and `base` advances."""
    hoarder = RecordingSubscriber(1)
    drainer = RecordingSubscriber(2)
    system.subscribe(CHUNK_A, hoarder.subscriber, bounds=Bounds(math.inf, math.inf))
    system.subscribe(CHUNK_A, drainer.subscriber, bounds=Bounds(math.inf, math.inf))
    flat = _flat(system, CHUNK_A)
    for i in range(5000):
        system.commit_to(CHUNK_A, move(i % 7 + 1, float(i), 1.0))
        if i == 2500:
            # Both drain: every entry so far goes dead, so the next
            # compaction check slices the log down.
            system.flush_all()
    assert flat.base >= 2501
    assert len(flat.log) < 5000 - 2000
    assert InvariantAuditor().check(system) == []
    system.flush_all()
    assert hoarder.delivered_updates and drainer.delivered_updates
    assert flat.log == []


def test_commit_many_equals_commit_to_loop(clock):
    def run(batched_call):
        system = DyconitSystem(
            StaticPolicy(Bounds(5.0, 500.0)),
            ChunkPartitioner(),
            time_source=lambda: clock["now"],
        )
        recs = {sid: RecordingSubscriber(sid) for sid in (1, 2)}
        system.subscribe(CHUNK_A, recs[1].subscriber)
        system.subscribe(CHUNK_B, recs[2].subscriber)
        batch = [
            (CHUNK_A, move(1, 0.0, 2.0), None),
            (CHUNK_A, move(2, 0.0, 2.0), 1),
            (CHUNK_B, move(3, 0.0, 2.0), None),
            (CHUNK_A, move(1, 0.0, 2.0), None),
        ]
        if batched_call:
            system.commit_many(batch)
        else:
            for dyconit_id, update, exclude in batch:
                system.commit_to(dyconit_id, update, exclude)
        return system, recs

    batched_system, batched_recs = run(True)
    loop_system, loop_recs = run(False)
    for sid in (1, 2):
        assert batched_recs[sid].deliveries == loop_recs[sid].deliveries
    assert batched_system.stats == loop_system.stats


def test_commit_many_survives_mid_batch_repartition(clock):
    """A delivery handler that merges dyconits mid-batch invalidates the
    run's cached resolution; the epoch check forces a re-resolve."""
    system = DyconitSystem(
        StaticPolicy(Bounds.ZERO),  # every commit flushes immediately
        ChunkPartitioner(),
        time_source=lambda: clock["now"],
    )
    target = ("region", 4, 0, 0)
    merged = []

    def deliver(dyconit_id, updates):
        if not merged:
            merged.append(True)
            system.merge_dyconits([CHUNK_A, CHUNK_B], target)

    from repro.core.subscription import Subscriber

    system.subscribe(CHUNK_A, Subscriber(subscriber_id=1, deliver=deliver))
    batch = [(CHUNK_A, move(i + 1, 0.0, 1.0), None) for i in range(4)]
    system.commit_many(batch)
    # All four commits landed (three of them on the merge target via the
    # re-resolved run) and the store is still coherent.
    assert system.resolve(CHUNK_A) == target
    assert system.get(target).commit_count == 4
    assert InvariantAuditor().check(system) == []


# ----------------------------------------------------------------------
# I9 catches columnar corruption
# ----------------------------------------------------------------------


def _keys(violations):
    return {violation.invariant for violation in violations}


@pytest.fixture
def corrupt_ready(system):
    rec1, rec2 = RecordingSubscriber(1), RecordingSubscriber(2)
    system.subscribe(CHUNK_A, rec1.subscriber, bounds=Bounds(50.0, 1000.0))
    system.subscribe(CHUNK_A, rec2.subscriber, bounds=Bounds(50.0, 1000.0))
    system.commit_to(CHUNK_A, move(1, 0.0, 1.0))
    system.commit_to(CHUNK_A, move(2, 0.0, 1.0), exclude_subscriber=2)
    assert InvariantAuditor().check(system) == []
    return system, _flat(system, CHUNK_A)


def test_i9_detects_error_column_drift(corrupt_ready):
    system, flat = corrupt_ready
    flat.err[0] += 0.5
    assert "I9.replay" in _keys(InvariantAuditor().check(system))


def test_i9_detects_count_column_drift(corrupt_ready):
    system, flat = corrupt_ready
    flat.count[1] += 1
    assert "I9.replay" in _keys(InvariantAuditor().check(system))


def test_i9_detects_late_staleness_gate(corrupt_ready):
    system, flat = corrupt_ready
    flat.min_deadline += 10_000.0  # the gate would now fire late
    assert "I9.gates" in _keys(InvariantAuditor().check(system))


def test_i9_detects_empty_set_desync(corrupt_ready):
    system, flat = corrupt_ready
    flat.empty_subs.add(1)  # slot 0 has pending updates
    assert "I9.empty-set" in _keys(InvariantAuditor().check(system))


def test_i9_detects_exclusion_index_tamper(corrupt_ready):
    system, flat = corrupt_ready
    flat.excl_by_sub.pop(2)
    assert "I9.log-chain" in _keys(InvariantAuditor().check(system))


def test_i9_detects_slot_table_tamper(corrupt_ready):
    system, flat = corrupt_ready
    flat.slots[1], flat.slots[2] = flat.slots[2], flat.slots[1]
    assert "I9.slot-mirror" in _keys(InvariantAuditor().check(system))


def test_i9_commit_buffer_must_drain_at_barrier(sim, server_factory):
    from repro.policies.fixed import FixedBoundsPolicy

    server = server_factory(policy=FixedBoundsPolicy(Bounds(50.0, 1000.0)))
    server.connect("alice", handler=lambda delivered: None)
    sim.run_until(200.0)
    auditor = InvariantAuditor()
    assert auditor.check_server(server) == []
    server._commit_buffer = [(CHUNK_A, move(1, 0.0, 1.0), None)]
    assert "I9.commit-buffer" in _keys(auditor.check_server(server))
    server._commit_buffer = None


# ----------------------------------------------------------------------
# Hotness stats fix regression (manager level)
# ----------------------------------------------------------------------


@pytest.mark.parametrize("use_batched", [True, False])
def test_hotness_counts_only_received_commits(clock, use_batched):
    system = DyconitSystem(
        StaticPolicy(Bounds(math.inf, math.inf)),
        ChunkPartitioner(),
        time_source=lambda: clock["now"],
        use_batched_commit=use_batched,
    )
    system.commit_to(CHUNK_A, move(1, 0.0, 2.0))  # nobody subscribed
    assert system.get(CHUNK_A).commit_count == 0
    rec = RecordingSubscriber(7)
    system.subscribe(CHUNK_A, rec.subscriber)
    system.commit_to(CHUNK_A, move(1, 0.0, 2.0), exclude_subscriber=7)
    assert system.get(CHUNK_A).commit_count == 0  # only the originator
    system.commit_to(CHUNK_A, move(1, 0.0, 2.0))
    assert system.get(CHUNK_A).commit_count == 1
    assert system.get(CHUNK_A).total_committed_weight == move(1, 0.0, 2.0).weight
    # stats.commits still counts every attempt — it measures load, not heat.
    assert system.stats.commits == 3


def test_stats_dataclass_unchanged_fields():
    # commit_many must feed the same counters commit_to does; pin the
    # field list so a drive-by rename cannot silently decouple them.
    assert set(DyconitStats.__dataclass_fields__) >= {
        "commits", "updates_enqueued", "updates_merged", "bound_checks", "flushes",
    }


# ----------------------------------------------------------------------
# Log rebase vs stalled cursors (S18 satellite fix)
# ----------------------------------------------------------------------


class _patched_compact_period:
    """Temporarily shrink the compaction period so short tapes cross
    several trim cycles (restored even when the test body raises)."""

    def __init__(self, period: int) -> None:
        self.period = period

    def __enter__(self):
        import repro.core.flatstate as flatstate

        self._flatstate = flatstate
        self._saved = flatstate._COMPACT_CHECK
        flatstate._COMPACT_CHECK = self.period
        return self

    def __exit__(self, *exc):
        self._flatstate._COMPACT_CHECK = self._saved
        return False


def test_stalled_excluded_subscriber_does_not_pin_the_log(system, clock):
    """Regression: the log rebase keys off the minimum cursor, so a
    subscriber excluded from every commit (a peer subscriber on a
    dyconit only its own shard writes to) never drained and pinned the
    whole shared log — unbounded memory on long runs. Needs >= 3
    subscribers: with 2, the all-empty reset happens to collect the log
    whenever the one real queue drains."""
    from repro.core.flatstate import _COMPACT_CHECK

    recs = {sid: RecordingSubscriber(sid) for sid in (1, 2, 3)}
    for sid in (1, 2, 3):
        system.subscribe(
            CHUNK_A, recs[sid].subscriber, bounds=Bounds(math.inf, math.inf)
        )
    flat = _flat(system, CHUNK_A)
    commits = 3 * _COMPACT_CHECK
    for i in range(commits):
        system.commit_to(CHUNK_A, move(1, clock["now"], 0.1), exclude_subscriber=3)
        # Alternate drains so the all-empty log reset never fires: one
        # of subscribers 1/2 always holds a pending entry.
        system.flush(CHUNK_A, 1 if i % 2 == 0 else 2)
    assert len(flat.log) < _COMPACT_CHECK  # used to be == commits
    assert InvariantAuditor().check(system) == []


def test_excluded_only_window_prefix_is_skipped_at_trim(system, clock):
    """A slot with real pending entries may still open its window on a
    long run of entries that exclude it; the trim must advance its
    cursor past that dead prefix (replay-neutral) instead of letting it
    hold the rebase back."""
    from repro.core.flatstate import _COMPACT_CHECK

    recs = {sid: RecordingSubscriber(sid) for sid in (1, 2, 3)}
    for sid in (1, 2, 3):
        system.subscribe(
            CHUNK_A, recs[sid].subscriber, bounds=Bounds(math.inf, math.inf)
        )
    flat = _flat(system, CHUNK_A)
    prefix = _COMPACT_CHECK + _COMPACT_CHECK // 2
    for i in range(prefix):
        system.commit_to(CHUNK_A, move(1, clock["now"], 0.1), exclude_subscriber=3)
        system.flush(CHUNK_A, 1 if i % 2 == 0 else 2)
    # Now subscriber 3 gains one real pending entry...
    marker = move(2, clock["now"], 0.3)
    system.commit_to(CHUNK_A, marker)
    marker_index = flat.base + len(flat.log) - 1
    # ...followed by more excluded-for-3 traffic crossing a trim point.
    for i in range(_COMPACT_CHECK):
        system.commit_to(CHUNK_A, move(1, clock["now"], 0.1), exclude_subscriber=3)
        system.flush(CHUNK_A, 1 if i % 2 == 0 else 2)
    slot3 = flat.slots[3]
    assert int(flat.cursor[slot3]) >= marker_index >= flat.base
    pending3 = flat.view(3).pending
    assert list(pending3.values()) == [marker]
    assert InvariantAuditor().check(system) == []
    # The marker still delivers exactly once.
    system.flush(CHUNK_A, 3)
    assert recs[3].delivered_updates == [marker]


@settings(deadline=None, max_examples=30)
@given(
    tape=st.lists(
        st.one_of(
            st.tuples(
                st.just("commit"),
                st.integers(min_value=1, max_value=3),
                st.sampled_from(DX_CHOICES),
            ),
            st.tuples(st.just("flush"), st.integers(min_value=1, max_value=2)),
        ),
        min_size=1,
        max_size=120,
    )
)
def test_hypothesis_stalled_cursor_stays_bounded_and_exact(tape):
    """Property: under any interleaving of commits (all excluding the
    stalled subscriber 3) and drains of subscribers 1/2, the flat store
    stays bit-identical to the legacy store and passes the auditor —
    including I9.log-pinned, which bounds how far the stalled cursor may
    lag (pre-fix, any tape with more commits than the compaction period
    violates it)."""
    # Append a stalled run longer than the (shrunk) compaction period so
    # *every* example ends in the regression's shape — a full drain of
    # 1 and 2 mid-tape resets the log, so a purely random tape rarely
    # keeps a long-enough dead suffix; hypothesis still varies the
    # prefix the stall lands on (cursor positions, merge chains,
    # half-drained windows).
    tape = tape + [("commit", 1, 0.1)] * 24
    with _patched_compact_period(8):

        def run(use_batched):
            clock = {"now": 0.0}
            system = DyconitSystem(
                StaticPolicy(Bounds(math.inf, math.inf)),
                ChunkPartitioner(),
                time_source=lambda: clock["now"],
                use_batched_commit=use_batched,
            )
            recs = {sid: RecordingSubscriber(subscriber_id=sid) for sid in (1, 2, 3)}
            for sid in (1, 2, 3):
                system.subscribe(CHUNK_A, recs[sid].subscriber)
            for op in tape:
                if op[0] == "commit":
                    __, entity, dx = op
                    clock["now"] += 10.0
                    system.commit_to(
                        CHUNK_A, move(entity, clock["now"], dx), exclude_subscriber=3
                    )
                else:
                    system.flush(CHUNK_A, op[1])
            return system, recs

        flat_system, flat_recs = run(True)
        legacy_system, legacy_recs = run(False)
        for sid in (1, 2, 3):
            assert flat_recs[sid].deliveries == legacy_recs[sid].deliveries
        assert flat_system.stats == legacy_system.stats
        assert final_states(flat_system) == final_states(legacy_system)
        assert InvariantAuditor().check(flat_system) == []
