"""Unified observability (S11): spans, tick-phase profiling, metrics, exporters.

Quick tour::

    from repro.telemetry import Telemetry, export_jsonl, prometheus_text

    telemetry = Telemetry(enabled=True, time_source=lambda: sim.now)
    with telemetry.span("tick.flush"):
        system.tick()
    telemetry.counter("dyconit_commits_total").increment()
    export_jsonl(telemetry, "run.jsonl")
    print(prometheus_text(telemetry))

Every component defaults to the shared :data:`NULL_TELEMETRY` hub, whose
``span()`` returns a no-op singleton — instrumented hot paths cost one
attribute check when observability is off.
"""

from repro.telemetry.bridge import TelemetryTracer, install_tracer
from repro.telemetry.exporters import (
    export_jsonl,
    export_prometheus,
    prometheus_text,
    render_summary,
)
from repro.telemetry.hub import (
    NULL_SPAN,
    NULL_TELEMETRY,
    EventRecord,
    SpanRecord,
    Telemetry,
    get_telemetry,
    set_telemetry,
)
from repro.telemetry.phases import TICK_PHASES, TickPhaseProfiler

__all__ = [
    "Telemetry",
    "SpanRecord",
    "EventRecord",
    "NULL_SPAN",
    "NULL_TELEMETRY",
    "get_telemetry",
    "set_telemetry",
    "TickPhaseProfiler",
    "TICK_PHASES",
    "TelemetryTracer",
    "install_tracer",
    "export_jsonl",
    "export_prometheus",
    "prometheus_text",
    "render_summary",
]
