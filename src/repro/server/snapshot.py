"""Engine checkpoint/restore: the durable restart contract (S20).

A :class:`ServerSnapshot` captures everything a :class:`GameServer`
needs to resume **bit-compatibly** after a crash: the world (entities,
modified chunks, chunk-bucket insertion order), every session's
client-visible state, the engine scalars (tick counter, EWMA signals,
keepalive clock, mob RNG state, queued inbound actions) and the dyconit
middleware's :class:`~repro.core.manager.SystemSnapshot`. The snapshot
is plain picklable data; runtime objects — packet handlers, sockets,
delivery closures — are deliberately absent and re-supplied at restore.

The timing contract
-------------------

``capture_server`` is legal exactly at the **tick barrier**: inside the
control-plane apply step at the top of ``tick_once``, after
``tick_count`` was incremented to K but before any phase of tick K ran.
``restore_server`` rewinds ``tick_count`` to K-1 and schedules the
first tick at delay 0, so tick K re-runs in full on the restored
server — phase for phase, packet for packet — as if the kill never
happened. The checkpoint operation itself is observably read-only
(it writes only to the store's checkpoint table), so the killed run's
prefix is identical to an unkilled run's.

The store contract
------------------

A checkpoint is one pickled blob in the state store's checkpoint table
(:meth:`~repro.backends.base.StateStore.save_checkpoint`). Restore
wipes the store's *row* tables (:meth:`StateStore.reset`) before
rewriting them from the blob — rows the killed run mutated after the
checkpoint (post-K garbage) can never leak into the resumed run —
while the checkpoint table itself survives the wipe.

``capture_cluster``/``restore_cluster`` extend the same contract to a
:class:`~repro.cluster.facade.ShardedCluster`, captured at the **pump
barrier** (inside the control-plane apply step of pump P, before the
bus drains): in-flight bus messages are part of the snapshot, and each
shard resumes with its own state store.
"""

from __future__ import annotations

import dataclasses
import pickle
from dataclasses import dataclass
from typing import Any

from repro.core.manager import SystemSnapshot
from repro.core.subscription import Subscriber
from repro.server.config import ServerConfig
from repro.server.engine import GameServer
from repro.server.session import PlayerSession
from repro.sim.simulator import Simulation
from repro.world.chunk import Chunk
from repro.world.geometry import ChunkPos, Vec3
from repro.world.world import World


# ----------------------------------------------------------------------
# Snapshot dataclasses (plain picklable data)
# ----------------------------------------------------------------------


@dataclass
class SessionSnapshot:
    """One player session, minus its runtime packet handler."""

    client_id: int
    entity_id: int
    name: str
    view_distance: int
    view_chunks: list[ChunkPos]
    #: (entity id, last sent position) in dict insertion order — the
    #: order rebuilds the viewer index's knower buckets exactly.
    known_entities: list[tuple[int, Vec3]]
    entity_update_times: dict[int, float]
    anchor_chunk: ChunkPos | None
    connected_at: float
    actions_received: int
    packets_sent: int
    #: The client link's config (None = transport default) and fault
    #: plan. Link *RNG state* is not captured: a restored connection is
    #: a reconnect, and jitter/fault draws restart like one.
    link: Any = None
    faults: Any = None


@dataclass
class WorldSnapshot:
    """World state that cannot be regenerated from the seed."""

    seed: int
    next_entity_id: int
    entity_id_step: int
    #: (id, kind value, position, yaw, pitch, name) in spawn-table order.
    entities: list[tuple[int, str, Vec3, float, float, str]]
    #: Chunk buckets with their exact insertion order — bucket iteration
    #: order feeds entity-snapshot packet order.
    buckets: list[tuple[ChunkPos, list[int]]]
    #: Player-modified chunks: (pos, dense block array, modified_count).
    #: Untouched chunks regenerate deterministically from the seed.
    chunks: list[tuple[ChunkPos, Any, int]]


@dataclass
class ServerSnapshot:
    """A full :class:`GameServer` at a tick barrier."""

    sim_now: float
    #: ``tick_count`` as captured at the barrier (tick K incremented,
    #: no phase run). Restore rewinds to K-1 so tick K re-runs.
    tick_count: int
    config: ServerConfig
    partitioner: Any
    world: WorldSnapshot
    sessions: list[SessionSnapshot]
    system: SystemSnapshot
    messages_sent: int
    smoothed_tick_ms: float
    smoothed_bytes_per_s: float
    last_keepalive: float
    next_client_id: int
    mob_ids: list[int]
    mob_rng_state: Any
    #: Actions already queued for the barrier tick. A resume harness
    #: must only re-drive action traffic *strictly after* the barrier
    #: time; traffic at or before it is already in here.
    inbound: list[tuple[int, Any]]


@dataclass
class ShardSnapshot:
    """One cluster shard: its server plus the federation extras."""

    server: ServerSnapshot
    shard_id: int
    ghost_ids: list[int]
    remote_interest: dict[int, list[ChunkPos]]
    peer_registry: dict[int, list[ChunkPos]]
    #: Peers with live Subscriber objects, in registration order.
    peer_ids: list[int]
    handoffs_out: int
    handoffs_in: int
    transfers_out: int
    transfers_in: int
    #: Absolute time of the shard's next scheduled tick (its barrier
    #: tick already ran when the pump captures), or None if stopped.
    next_tick_at: float | None = None


@dataclass
class BusSnapshot:
    """The inter-shard bus, in-flight messages included."""

    queues: dict[tuple[int, int], list[tuple[int, Any]]]
    next_seq: dict[tuple[int, int], int]
    delivered_seq: dict[tuple[int, int], int]
    total_bytes: int
    total_messages: int
    bytes_by_edge: dict[tuple[int, int], int]
    messages_by_kind: dict[str, int]


@dataclass
class ClusterSnapshot:
    """A full :class:`ShardedCluster` at a pump barrier."""

    sim_now: float
    pump_count: int
    shard_count: int
    strip_width: int
    config: ServerConfig
    peer_bounds: Any
    shards: list[ShardSnapshot]
    bus: BusSnapshot
    next_client_id: int
    shard_by_client: dict[int, int]
    #: client id -> (name, view_distance, link, faults); the handler is
    #: runtime and re-supplied at restore.
    profiles: dict[int, tuple[str, int | None, Any, Any]]
    in_transit: dict[int, tuple[int, int]]
    handoffs: int
    handoffs_cancelled: int


# ----------------------------------------------------------------------
# Capture
# ----------------------------------------------------------------------


def _portable_config(config: ServerConfig) -> ServerConfig:
    """Strip a live store instance out of the config before pickling."""
    spec = config.state_store
    if not isinstance(spec, str):
        spec = "memory"
    return dataclasses.replace(config, state_store=spec)


def _capture_world(world: World) -> WorldSnapshot:
    return WorldSnapshot(
        seed=world.seed,
        next_entity_id=world._next_entity_id,
        entity_id_step=world._entity_id_step,
        entities=[
            (e.entity_id, e.kind.value, e.position, e.yaw, e.pitch, e.name)
            for e in world._entities.values()
        ],
        buckets=[
            (pos, list(bucket))
            for pos, bucket in world._entities_by_chunk.items()
        ],
        chunks=[
            (pos, chunk.blocks.copy(), chunk.modified_count)
            for pos, chunk in world._chunks.items()
            if chunk.modified_count > 0
        ],
    )


def _capture_session(server: GameServer, session: PlayerSession) -> SessionSnapshot:
    link = server.transport.link(session.client_id)
    return SessionSnapshot(
        client_id=session.client_id,
        entity_id=session.entity_id,
        name=session.name,
        view_distance=session.view_distance,
        view_chunks=list(session.view_chunks),
        known_entities=list(session.known_entities.items()),
        entity_update_times=dict(session.entity_update_times),
        anchor_chunk=session.anchor_chunk,
        connected_at=session.connected_at,
        actions_received=session.actions_received,
        packets_sent=session.packets_sent,
        link=link.config if link is not None else None,
        faults=getattr(link, "plan", None),
    )


def capture_server(server: GameServer) -> ServerSnapshot:
    """Capture *server* at the tick barrier (see module docstring)."""
    if server.dyconits is None:
        raise ValueError(
            "checkpointing needs the dyconit middleware: a direct-mode "
            "server has no durable state store to restart from"
        )
    if server._commit_buffer:
        raise RuntimeError("capture_server called inside a commit burst")
    return ServerSnapshot(
        sim_now=server.sim.now,
        tick_count=server.tick_count,
        config=_portable_config(server.config),
        partitioner=server.dyconits.partitioner,
        world=_capture_world(server.world),
        sessions=[
            _capture_session(server, session)
            for session in server.sessions.values()
        ],
        system=server.dyconits.snapshot(),
        messages_sent=server.messages_sent,
        smoothed_tick_ms=server.smoothed_tick_ms,
        smoothed_bytes_per_s=server._smoothed_bytes_per_s,
        last_keepalive=server._last_keepalive,
        next_client_id=server._next_client_id,
        mob_ids=list(server._mob_ids),
        mob_rng_state=server._mob_rng.getstate(),
        inbound=list(server._inbound),
    )


def capture_cluster(cluster) -> ClusterSnapshot:
    """Capture *cluster* at the pump barrier (see module docstring)."""
    bus = cluster.bus
    shards = []
    for shard in cluster.shards:
        shards.append(
            ShardSnapshot(
                server=capture_server(shard),
                shard_id=shard.shard_id,
                ghost_ids=sorted(shard.ghost_ids),
                remote_interest={
                    owner: list(chunks)
                    for owner, chunks in shard.remote_interest.items()
                },
                peer_registry={
                    peer: list(chunks)
                    for peer, chunks in shard.peer_registry.items()
                },
                peer_ids=list(shard._peer_subscribers),
                handoffs_out=shard.handoffs_out,
                handoffs_in=shard.handoffs_in,
                transfers_out=shard.transfers_out,
                transfers_in=shard.transfers_in,
                next_tick_at=(
                    shard._tick_event.time if shard._tick_event is not None else None
                ),
            )
        )
    return ClusterSnapshot(
        sim_now=cluster.sim.now,
        pump_count=cluster.pump_count,
        shard_count=len(cluster.shards),
        strip_width=cluster.router.strip_width,
        config=_portable_config(cluster.config),
        peer_bounds=cluster.peer_bounds,
        shards=shards,
        bus=BusSnapshot(
            queues={edge: list(queue) for edge, queue in bus._queues.items()},
            next_seq=dict(bus._next_seq),
            delivered_seq=dict(bus._delivered_seq),
            total_bytes=bus.total_bytes,
            total_messages=bus.total_messages,
            bytes_by_edge=dict(bus.bytes_by_edge),
            messages_by_kind=dict(bus.messages_by_kind),
        ),
        next_client_id=cluster._next_client_id,
        shard_by_client=dict(cluster._shard_by_client),
        profiles={
            cid: (p.name, p.view_distance, p.link, p.faults)
            for cid, p in cluster._profiles.items()
        },
        in_transit=dict(cluster._in_transit),
        handoffs=cluster.handoffs,
        handoffs_cancelled=cluster.handoffs_cancelled,
    )


# ----------------------------------------------------------------------
# Restore
# ----------------------------------------------------------------------


def _fill_world(world: World, snap: WorldSnapshot) -> None:
    """Rebuild captured world contents into a fresh (or empty) world.

    Must run with no listeners attached — replayed spawns are history,
    not new events, and must never re-enter the broadcast path.
    """
    if world._listeners:
        raise RuntimeError("world must have no listeners during restore")
    for pos, blocks, modified in snap.chunks:
        chunk = Chunk(pos, blocks.copy())
        chunk.modified_count = modified
        world._chunks[pos] = chunk
    from repro.world.entity import EntityKind

    for entity_id, kind_value, position, yaw, pitch, name in snap.entities:
        entity = world.spawn_entity(
            EntityKind(kind_value), position, name=name, entity_id=entity_id
        )
        entity.yaw = yaw
        entity.pitch = pitch
    # Overwrite the buckets spawn order just built: the captured order
    # is the accumulated insert/cross history, which is what feeds
    # entity-snapshot packet order.
    world._entities_by_chunk = {
        pos: dict.fromkeys(ids) for pos, ids in snap.buckets
    }
    world._next_entity_id = snap.next_entity_id


def _restore_engine_state(
    server: GameServer,
    snap: ServerSnapshot,
    handlers: dict[int, Any],
    extra_subscribers: dict[int, Subscriber] | None = None,
    rerun_barrier_tick: bool = True,
) -> None:
    """Rebuild sessions, transport links, subscribers and the dyconit
    system on a freshly constructed *server* whose world is already
    filled. Shared between the single-server and per-shard paths.

    ``rerun_barrier_tick`` rewinds ``tick_count`` by one so the
    barrier tick that the checkpoint interrupted re-runs (the
    single-server resume path, which reschedules ``_tick`` at delay
    0). A cluster shard's barrier tick already ran before the pump
    captured, so the per-shard path keeps ``tick_count`` verbatim —
    rewinding it there shifts every ``tick_count``-gated phase (mob
    steps, audits, keepalive nonces) one tick late forever.
    """
    missing = [s.client_id for s in snap.sessions if s.client_id not in handlers]
    if missing:
        raise ValueError(f"no packet handler supplied for client ids {missing}")

    server.messages_sent = snap.messages_sent
    server.tick_count = snap.tick_count - 1 if rerun_barrier_tick else snap.tick_count
    server.smoothed_tick_ms = snap.smoothed_tick_ms
    server._smoothed_bytes_per_s = snap.smoothed_bytes_per_s
    server._last_keepalive = snap.last_keepalive
    server._next_client_id = snap.next_client_id
    server._mob_ids = list(snap.mob_ids)
    server._mob_rng.setstate(snap.mob_rng_state)
    server._inbound = list(snap.inbound)

    subscribers: dict[int, Subscriber] = dict(extra_subscribers or {})
    for s in snap.sessions:
        session = PlayerSession(
            client_id=s.client_id,
            entity_id=s.entity_id,
            name=s.name,
            view_distance=s.view_distance,
            anchor_chunk=s.anchor_chunk,
            connected_at=s.connected_at,
            actions_received=s.actions_received,
            packets_sent=s.packets_sent,
        )
        session.view_chunks = set(s.view_chunks)
        session.entity_update_times = dict(s.entity_update_times)
        server.sessions[s.client_id] = session
        server._client_by_entity[s.entity_id] = s.client_id
        # Bind before filling: each insert mirrors into the knower
        # buckets, rebuilding their per-entity order exactly.
        session.known_entities.bind(session, server.viewers)
        for entity_id, position in s.known_entities:
            session.known_entities[entity_id] = position
        server.viewers.add_view(session, s.view_chunks)
        server.transport.connect(
            s.client_id, handlers[s.client_id], link=s.link, faults=s.faults
        )
        subscribers[s.client_id] = Subscriber(
            subscriber_id=s.client_id,
            deliver=server._make_delivery_handler(session),
            position_provider=server._make_position_provider(s.entity_id),
        )
    server.dyconits.restore(snap.system, subscribers)


def restore_server(
    snap: ServerSnapshot,
    *,
    state_store,
    handlers: dict[int, Any],
    telemetry=None,
    start: bool = True,
) -> GameServer:
    """Attach a fresh server to *state_store* and resume from *snap*.

    ``handlers`` re-supplies each client's packet handler (keyed by
    client id). With ``start=True`` the barrier tick is scheduled at
    delay 0, so ``sim.run_until(...)`` resumes exactly at the killed
    run's next phase.
    """
    sim = Simulation(start=snap.sim_now)
    world = World(
        seed=snap.world.seed,
        entity_id_step=snap.world.entity_id_step,
    )
    _fill_world(world, snap.world)
    config = dataclasses.replace(snap.config, state_store=state_store)
    server = GameServer(
        sim,
        world=world,
        config=config,
        policy=snap.system.policy,
        partitioner=snap.partitioner,
        telemetry=telemetry,
    )
    _restore_engine_state(server, snap, handlers)
    if start:
        server.start(schedule_ticks=False)
        server._tick_event = sim.schedule(0, server._tick)
    return server


def restore_cluster(
    snap: ClusterSnapshot,
    *,
    state_stores,
    handlers: dict[int, Any],
    telemetry=None,
    start: bool = True,
):
    """Attach a fresh cluster to per-shard *state_stores* and resume.

    ``state_stores`` is one store (spec or instance) per shard, in shard
    order. Peer delivery closures, profile handlers and the pump
    schedule are rebuilt; the barrier pump re-runs at delay 0 and drains
    the snapshot's in-flight bus messages exactly as the killed run
    would have.
    """
    from repro.cluster.facade import ClientProfile, ShardedCluster
    from repro.cluster.shard import peer_subscriber_id

    if len(state_stores) != snap.shard_count:
        raise ValueError(
            f"cluster has {snap.shard_count} shards but "
            f"{len(state_stores)} state stores were supplied"
        )
    sim = Simulation(start=snap.sim_now)
    policies = iter([s.server.system.policy for s in snap.shards])
    partitioners = iter([s.server.partitioner for s in snap.shards])
    cluster = ShardedCluster(
        sim,
        shards=snap.shard_count,
        strip_width=snap.strip_width,
        config=snap.config,
        policy_factory=lambda: next(policies),
        partitioner_factory=lambda: next(partitioners),
        peer_bounds=snap.peer_bounds,
        telemetry=telemetry,
        state_stores=list(state_stores),
    )
    for shard, shard_snap in zip(cluster.shards, snap.shards):
        # Federation bookkeeping first: pre-populated remote interest is
        # what keeps the viewer-index rebuild below from re-posting
        # PeerSubscribe messages for chunks we never stopped watching.
        shard.ghost_ids = set(shard_snap.ghost_ids)
        shard.remote_interest = {
            owner: dict.fromkeys(chunks)
            for owner, chunks in shard_snap.remote_interest.items()
        }
        shard.peer_registry = {
            peer: dict.fromkeys(chunks)
            for peer, chunks in shard_snap.peer_registry.items()
        }
        shard.handoffs_out = shard_snap.handoffs_out
        shard.handoffs_in = shard_snap.handoffs_in
        shard.transfers_out = shard_snap.transfers_out
        shard.transfers_in = shard_snap.transfers_in
        peers: dict[int, Subscriber] = {}
        for peer_shard in shard_snap.peer_ids:
            subscriber = Subscriber(
                subscriber_id=peer_subscriber_id(peer_shard),
                deliver=shard._make_peer_delivery(peer_shard),
                position_provider=None,
                kind="peer",
            )
            shard._peer_subscribers[peer_shard] = subscriber
            peers[subscriber.subscriber_id] = subscriber
        world_listeners, shard.world._listeners = shard.world._listeners, []
        try:
            _fill_world(shard.world, shard_snap.server.world)
        finally:
            shard.world._listeners = world_listeners
        _restore_engine_state(
            shard,
            shard_snap.server,
            handlers,
            extra_subscribers=peers,
            rerun_barrier_tick=False,
        )

    bus = cluster.bus
    bus._queues = {edge: list(queue) for edge, queue in snap.bus.queues.items()}
    bus._next_seq = dict(snap.bus.next_seq)
    bus._delivered_seq = dict(snap.bus.delivered_seq)
    bus.total_bytes = snap.bus.total_bytes
    bus.total_messages = snap.bus.total_messages
    bus.bytes_by_edge = dict(snap.bus.bytes_by_edge)
    bus.messages_by_kind = dict(snap.bus.messages_by_kind)

    cluster._next_client_id = snap.next_client_id
    cluster._shard_by_client = dict(snap.shard_by_client)
    cluster._profiles = {
        cid: ClientProfile(
            name=name,
            handler=handlers.get(cid),
            link=link,
            view_distance=view_distance,
            faults=faults,
        )
        for cid, (name, view_distance, link, faults) in snap.profiles.items()
    }
    cluster._in_transit = dict(snap.in_transit)
    cluster.handoffs = snap.handoffs
    cluster.handoffs_cancelled = snap.handoffs_cancelled
    cluster.pump_count = snap.pump_count - 1

    if start:
        # The barrier pump's shard ticks already ran when the snapshot
        # was captured; resume each shard at its recorded next tick time
        # and re-run the pump itself at delay 0.
        cluster._running = True
        for shard, shard_snap in zip(cluster.shards, snap.shards):
            shard.start(schedule_ticks=False)
            if shard_snap.next_tick_at is not None:
                shard._tick_event = sim.schedule_at(
                    shard_snap.next_tick_at, shard._tick
                )
        cluster._pump_event = sim.schedule(0, cluster._pump)
    return cluster


# ----------------------------------------------------------------------
# Store-backed convenience wrappers (the control-plane path)
# ----------------------------------------------------------------------


def checkpoint_target(target, key: str) -> bytes:
    """Capture *target* (server or cluster) into its state store.

    The blob lands in the dyconit store's checkpoint table — shard 0's
    store for a cluster — and survives :meth:`StateStore.reset`.
    Returns the pickled blob (tests assert on its size).
    """
    if hasattr(target, "shards"):
        snap = capture_cluster(target)
        store = target.shards[0].dyconits.state_store
    else:
        snap = capture_server(target)
        store = target.dyconits.state_store
    blob = pickle.dumps(snap, protocol=4)
    store.save_checkpoint(key, blob)
    return blob


def load_snapshot(store, key: str):
    """Load a :class:`ServerSnapshot`/:class:`ClusterSnapshot` blob."""
    blob = store.load_checkpoint(key)
    if blob is None:
        raise KeyError(f"no checkpoint {key!r} in store {store.name!r}")
    return pickle.loads(blob)


def restore_server_from_store(
    store, key: str, *, handlers: dict[int, Any], telemetry=None, start: bool = True
) -> GameServer:
    """One-call crash recovery: load *key* from *store* and reattach."""
    snap = load_snapshot(store, key)
    if not isinstance(snap, ServerSnapshot):
        raise TypeError(
            f"checkpoint {key!r} holds a {type(snap).__name__}, not a "
            "ServerSnapshot; use restore_cluster for cluster checkpoints"
        )
    return restore_server(
        snap, state_store=store, handlers=handlers, telemetry=telemetry, start=start
    )
