"""In-memory backends: the pre-seam behaviour, verbatim.

``InMemoryStateStore`` hands the manager exactly the
:class:`~repro.core.dyconit.Dyconit` objects it used to construct
itself, and ``DirectEventBus`` reproduces the legacy inline
``subscriber.deliver(...)`` call — so a system built on the default
backends is *byte-identical* to the pre-refactor tree (the existing
2k-tick single-server and 2-shard differential harnesses run unmodified
against it).

``BufferedEventBus`` is the first non-trivial bus: it queues published
batches and delivers them, in publish order, when :meth:`drain` is
called. It exists for consumers that want a barrier between flush
decision and delivery (gateway taps, future networked fan-out) and as
the second implementation that keeps the EventBus contract honest.
"""

from __future__ import annotations

from typing import Hashable, Sequence

from repro.backends.base import EventBus, StateStore
from repro.core.dyconit import Dyconit
from repro.core.subscription import Subscriber
from repro.core.update import Update


class InMemoryStateStore(StateStore):
    """Dyconit state as plain Python objects (the classic path)."""

    name = "memory"

    def create_dyconit_state(
        self, dyconit_id: Hashable, *, merging: bool, flat: bool
    ) -> Dyconit:
        return Dyconit(dyconit_id, merging=merging, flat=flat)


class DirectEventBus(EventBus):
    """Deliver each flushed batch inline, on the publishing call stack."""

    name = "direct"

    def publish(
        self, dyconit_id: Hashable, subscriber: Subscriber, updates: Sequence[Update]
    ) -> None:
        subscriber.deliver(dyconit_id, updates)


class BufferedEventBus(EventBus):
    """Queue published batches; deliver them in publish order on drain."""

    name = "buffered"

    def __init__(self) -> None:
        self._queue: list[tuple[Hashable, Subscriber, Sequence[Update]]] = []
        self.published = 0
        self.delivered = 0

    def publish(
        self, dyconit_id: Hashable, subscriber: Subscriber, updates: Sequence[Update]
    ) -> None:
        self._queue.append((dyconit_id, subscriber, updates))
        self.published += 1

    @property
    def pending(self) -> int:
        return len(self._queue)

    def drain(self) -> int:
        delivered = 0
        # Deliveries may publish follow-on batches (a handler committing
        # back into the system); keep draining until quiescent so drain()
        # is a true barrier.
        while self._queue:
            batch, self._queue = self._queue, []
            for index, (dyconit_id, subscriber, updates) in enumerate(batch):
                try:
                    subscriber.deliver(dyconit_id, updates)
                except BaseException:
                    # A failed delivery must not lose the detached tail:
                    # re-queue everything not yet delivered (including
                    # the failed batch, so the caller can retry it)
                    # ahead of anything published *during* this drain,
                    # preserving publish order, and keep the counter
                    # honest about the successes before re-raising.
                    self._queue[:0] = batch[index:]
                    self.delivered += delivered
                    raise
                delivered += 1
        self.delivered += delivered
        return delivered
