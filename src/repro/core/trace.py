"""Middleware decision tracing.

An opt-in, bounded-memory recorder of what the middleware decided and
why: flushes (with the bound dimension that tripped), bound changes, and
repartitioning operations. Attach with ``system.tracer = DyconitTracer()``
— when no tracer is attached the hot paths pay a single ``is None`` check.

Intended for policy debugging ("why did this subscriber's queue flush
every tick?") and for the worked examples; experiments leave it off.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Hashable, Iterator


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """One middleware decision."""

    time: float
    kind: str  # "flush" | "bounds" | "merge" | "split" | "subscribe" | "unsubscribe"
    dyconit_id: Hashable
    subscriber_id: int | None = None
    detail: str = ""

    def __str__(self) -> str:
        subscriber = f" sub={self.subscriber_id}" if self.subscriber_id is not None else ""
        return f"[{self.time:10.1f}ms] {self.kind:<11} {self.dyconit_id!r}{subscriber} {self.detail}"


class DyconitTracer:
    """Ring buffer of :class:`TraceEvent` with per-kind counters."""

    def __init__(self, capacity: int = 10_000) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._events: deque[TraceEvent] = deque(maxlen=capacity)
        self.counts: dict[str, int] = {}

    def record(
        self,
        time: float,
        kind: str,
        dyconit_id: Hashable,
        subscriber_id: int | None = None,
        detail: str = "",
    ) -> None:
        self._events.append(
            TraceEvent(
                time=time,
                kind=kind,
                dyconit_id=dyconit_id,
                subscriber_id=subscriber_id,
                detail=detail,
            )
        )
        self.counts[kind] = self.counts.get(kind, 0) + 1

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    def events(self, kind: str | None = None, dyconit_id: Hashable | None = None) -> list[TraceEvent]:
        """Filtered view of the retained events."""
        return [
            event
            for event in self._events
            if (kind is None or event.kind == kind)
            and (dyconit_id is None or event.dyconit_id == dyconit_id)
        ]

    def format_tail(self, count: int = 20) -> str:
        """The last ``count`` events, one per line."""
        tail = list(self._events)[-count:]
        return "\n".join(str(event) for event in tail)
