"""Flat columnar subscription state: the batched commit engine (S17).

The legacy commit path walks one Python :class:`SubscriptionState` object
per subscriber per commit — dict insert, float add, bound check, ~124 µs
per commit at 50 subscribers. This module replaces the per-object walk
with a *columnar* store per dyconit:

* one shared, append-only **commit log** of updates (each entry records
  the excluded subscriber, if any, and a back-pointer to the previous
  entry with the same merge key), and
* dense numpy **columns** indexed by slot — numerical-error accumulator,
  oldest-pending time, the three bound dimensions, a log cursor (the
  subscriber's drain point), and pending/enqueued/merged counters.

A commit is then one vectorized float add plus O(1) scalar bookkeeping;
bound checking is a vectorized threshold scan that is *skipped entirely*
when conservative scalar gates (min staleness deadline, order-count
upper bound, "any finite numerical bound") prove nothing can trip.
Pending queues are never materialized on commit: a drain replays the
subscriber's window of the shared log, applying exactly the legacy
delete-then-reinsert merge semantics, and a cohort cache shares that
replay between subscribers with identical windows.

Exactness contract (the differential tests and the fuzz reference model
assert bit-equality, not approximate equality):

* the error column is updated with one elementwise ``+= weight`` per
  commit — the same correctly-rounded float op sequence per slot as the
  legacy per-object ``accumulated_error += weight`` — never a prefix sum
  across updates (float addition is not associative);
* an excluded subscriber's slot is saved and restored around the
  vectorized add (never add-then-subtract, which can change the value);
* counters use an offset trick (column value + shared scalar) so the
  broadcast cases stay O(1) while per-slot values remain exact ints;
* the scalar gates are *conservative only*: they may fire early (an
  exact vectorized re-check decides), never late.

Slot ids are dense: ``unsubscribe`` compacts the columns immediately so
iteration order over slots equals legacy dict insertion order (a
re-subscribe allocates a fresh slot at the end, exactly like a dict
delete + re-add). The log is garbage-collected by a full reset when all
queues are empty and by rebasing off the minimum cursor when more than
half the log is dead.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from typing import Hashable

import numpy as np

from repro.core.bounds import Bounds
from repro.core.dyconit import SubscriptionState
from repro.core.subscription import Subscriber
from repro.core.update import Update

#: Absolute slack (ms) subtracted from the staleness gate so a deadline
#: that rounds at most 1 ulp differently from the legacy per-slot
#: ``now - oldest >= bound`` check can never fire *late* (firing early is
#: harmless: an exact vectorized check makes the actual decision).
_GATE_MARGIN_MS = 1e-6

#: The log-rebase check runs whenever the physical log length crosses a
#: multiple of this; the log is sliced when over half of it is behind
#: every cursor.
_COMPACT_CHECK = 2048


class FlatSubscriptionView:
    """A :class:`SubscriptionState`-compatible window onto one slot.

    Views are identity-stable (one per subscriber for the lifetime of the
    subscription) while slots may shift under compaction, so every access
    re-resolves the slot from the subscriber id. A view whose subscriber
    has been unsubscribed degrades to an empty queue.
    """

    __slots__ = ("_flat", "subscriber")

    def __init__(self, flat: FlatDyconitState, subscriber: Subscriber) -> None:
        self._flat = flat
        self.subscriber = subscriber

    def _slot(self) -> int | None:
        return self._flat.slots.get(self.subscriber.subscriber_id)

    # -- bounds -------------------------------------------------------
    @property
    def bounds(self) -> Bounds:
        slot = self._slot()
        if slot is None:
            return Bounds.INFINITE
        flat = self._flat
        return Bounds(
            float(flat.b_num[slot]), float(flat.b_stale[slot]), float(flat.b_order[slot])
        )

    @bounds.setter
    def bounds(self, bounds: Bounds) -> None:
        slot = self._slot()
        if slot is not None:
            self._flat.set_bounds_slot(slot, bounds)

    @property
    def merging(self) -> bool:
        return self._flat.merging

    # -- queue accounting ---------------------------------------------
    @property
    def pending(self) -> dict[tuple, Update]:
        slot = self._slot()
        if slot is None:
            return {}
        return dict(self._flat.materialize_pairs(slot))

    @property
    def accumulated_error(self) -> float:
        slot = self._slot()
        return 0.0 if slot is None else float(self._flat.err[slot])

    @property
    def oldest_pending_time(self) -> float | None:
        slot = self._slot()
        if slot is None:
            return None
        flat = self._flat
        if int(flat.count[slot]) + flat.count_shared == 0:
            return None
        return float(flat.oldest[slot])

    @property
    def enqueued_count(self) -> int:
        slot = self._slot()
        return 0 if slot is None else int(self._flat.enq[slot]) + self._flat.enq_shared

    @property
    def merged_count(self) -> int:
        slot = self._slot()
        return 0 if slot is None else int(self._flat.mrg[slot]) + self._flat.mrg_shared

    @property
    def has_pending(self) -> bool:
        slot = self._slot()
        if slot is None:
            return False
        return int(self._flat.count[slot]) + self._flat.count_shared > 0

    def oldest_age_ms(self, now: float) -> float:
        oldest = self.oldest_pending_time
        if oldest is None:
            return 0.0
        return now - oldest

    def tripped_dimension(self, now: float) -> str | None:
        slot = self._slot()
        if slot is None:
            return None
        return self._flat.tripped_dimension_slot(slot, now)

    def exceeds_bounds(self, now: float) -> bool:
        return self.tripped_dimension(now) is not None

    def drain(self) -> list[Update]:
        slot = self._slot()
        if slot is None:
            return []
        return self._flat.drain_slot(slot)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FlatSubscriptionView(subscriber={self.subscriber.subscriber_id}, "
            f"slot={self._slot()})"
        )


class FlatDyconitState:
    """Columnar per-subscription state for one dyconit."""

    def __init__(self, merging: bool = True) -> None:
        self.merging = merging
        self.n = 0
        self._cap = 8
        # float columns
        self.err = np.zeros(self._cap)
        self.oldest = np.full(self._cap, math.inf)
        self.b_num = np.zeros(self._cap)
        self.b_stale = np.zeros(self._cap)
        self.b_order = np.zeros(self._cap)
        # int columns (offset trick: absolute value = column + shared scalar)
        self.cursor = np.zeros(self._cap, dtype=np.int64)
        self.count = np.zeros(self._cap, dtype=np.int64)
        self.enq = np.zeros(self._cap, dtype=np.int64)
        self.mrg = np.zeros(self._cap, dtype=np.int64)
        self.count_shared = 0
        self.enq_shared = 0
        self.mrg_shared = 0
        self._tripbuf = np.zeros(self._cap, dtype=bool)
        # slot membership
        self.slots: dict[int, int] = {}
        self.subscriber_by_slot: list[Subscriber] = []
        self._views: dict[int, FlatSubscriptionView] = {}
        #: subscriber ids whose queue is currently empty (pending count 0)
        self.empty_subs: set[int] = set()
        # shared commit log; ``base`` is the absolute index of log[0]
        self.log: list[Update] = []
        self.log_excl: list[int | None] = []
        self.log_prev: list[int] = []
        self.base = 0
        self.last_key: dict[Hashable, int] = {}
        #: per-subscriber sorted absolute indices of entries excluding them
        self.excl_by_sub: dict[int, list[int]] = {}
        self._drain_cache: tuple[int, int, list[tuple[tuple, Update]]] | None = None
        # conservative scalar gates / aggregates
        self.max_cursor = 0
        self.min_cursor_lb = 0
        self.n_finite_bnum = 0
        self.any_finite_stale = False
        self.min_bstale = math.inf
        self.min_deadline = math.inf
        self.min_border = math.inf
        self.count_ub = 0
        self._refresh_column_views()

    # ------------------------------------------------------------------
    # Internal array management
    # ------------------------------------------------------------------

    def _refresh_column_views(self) -> None:
        n = self.n
        self._err_v = self.err[:n]
        self._oldest_v = self.oldest[:n]
        self._bnum_v = self.b_num[:n]
        self._bstale_v = self.b_stale[:n]
        self._border_v = self.b_order[:n]
        self._cursor_v = self.cursor[:n]
        self._count_v = self.count[:n]
        self._trip_v = self._tripbuf[:n]

    def _grow(self) -> None:
        self._cap *= 2
        for name in ("err", "oldest", "b_num", "b_stale", "b_order"):
            old = getattr(self, name)
            fresh = np.zeros(self._cap)
            fresh[: old.size] = old
            setattr(self, name, fresh)
        for name in ("cursor", "count", "enq", "mrg"):
            old = getattr(self, name)
            fresh = np.zeros(self._cap, dtype=np.int64)
            fresh[: old.size] = old
            setattr(self, name, fresh)
        self._tripbuf = np.zeros(self._cap, dtype=bool)

    def _recompute_aggregates(self) -> None:
        n = self.n
        if n == 0:
            end = self.base + len(self.log)
            self.max_cursor = end
            self.min_cursor_lb = end
            self.n_finite_bnum = 0
            self.any_finite_stale = False
            self.min_bstale = math.inf
            self.min_deadline = math.inf
            self.min_border = math.inf
            self.count_ub = 0
            return
        self.n_finite_bnum = int(np.isfinite(self._bnum_v).sum())
        finite_stale = np.isfinite(self._bstale_v)
        self.any_finite_stale = bool(finite_stale.any())
        self.min_bstale = float(self._bstale_v.min())
        self.min_deadline = float((self._oldest_v + self._bstale_v).min())
        self.min_border = float(self._border_v.min())
        counts = self._count_v + self.count_shared
        self.count_ub = int(counts.max())
        self.max_cursor = int(self._cursor_v.max())
        self.min_cursor_lb = int(self._cursor_v.min())

    # ------------------------------------------------------------------
    # Subscription management
    # ------------------------------------------------------------------

    def subscribe(self, subscriber: Subscriber, bounds: Bounds) -> FlatSubscriptionView:
        sub = subscriber.subscriber_id
        slot = self.slots.get(sub)
        if slot is not None:
            return self._views[sub]
        if self.n == self._cap:
            self._grow()
        slot = self.n
        end = self.base + len(self.log)
        self.err[slot] = 0.0
        self.oldest[slot] = math.inf
        self.b_num[slot] = bounds.numerical
        self.b_stale[slot] = bounds.staleness_ms
        self.b_order[slot] = bounds.order
        self.cursor[slot] = end
        self.count[slot] = -self.count_shared
        self.enq[slot] = -self.enq_shared
        self.mrg[slot] = -self.mrg_shared
        self.n += 1
        self._refresh_column_views()
        self.slots[sub] = slot
        self.subscriber_by_slot.append(subscriber)
        self.empty_subs.add(sub)
        view = FlatSubscriptionView(self, subscriber)
        self._views[sub] = view
        self._recompute_aggregates()
        return view

    def unsubscribe(self, subscriber_id: int) -> SubscriptionState | None:
        slot = self.slots.pop(subscriber_id, None)
        if slot is None:
            return None
        state = self.materialize_state(slot)
        n = self.n
        for arr in (
            self.err, self.oldest, self.b_num, self.b_stale, self.b_order,
            self.cursor, self.count, self.enq, self.mrg,
        ):
            arr[slot : n - 1] = arr[slot + 1 : n]
        self.n = n - 1
        self.subscriber_by_slot.pop(slot)
        for i in range(slot, self.n):
            self.slots[self.subscriber_by_slot[i].subscriber_id] = i
        self.empty_subs.discard(subscriber_id)
        self._views.pop(subscriber_id, None)
        # excl_by_sub indexes the *log*, not the subscription: retained
        # entries still name this subscriber, and a re-subscribe appends
        # to the same (still-sorted) list. Trim/reset collect it.
        self._refresh_column_views()
        self._recompute_aggregates()
        return state

    def view(self, subscriber_id: int) -> FlatSubscriptionView | None:
        return self._views.get(subscriber_id)

    def views(self) -> list[FlatSubscriptionView]:
        return [
            self._views[sub.subscriber_id] for sub in self.subscriber_by_slot
        ]

    def set_bounds_slot(self, slot: int, bounds: Bounds) -> None:
        self.b_num[slot] = bounds.numerical
        self.b_stale[slot] = bounds.staleness_ms
        self.b_order[slot] = bounds.order
        # A tightened staleness bound can move the earliest deadline
        # before the current gate value; recompute all gates exactly.
        self._recompute_aggregates()

    # ------------------------------------------------------------------
    # Materialization (drains, audits, private-mode conversion)
    # ------------------------------------------------------------------

    def materialize_pairs(self, slot: int) -> list[tuple[tuple, Update]]:
        """Replay this slot's log window into ``(key, update)`` pairs in
        pending-dict order — exactly the legacy enqueue semantics."""
        cur = int(self.cursor[slot])
        start = max(cur, self.base)
        end = self.base + len(self.log)
        if start >= end:
            return []
        sub = self.subscriber_by_slot[slot].subscriber_id
        excl = self.excl_by_sub.get(sub)
        has_excl = bool(excl) and bisect_left(excl, start) < len(excl)
        if not has_excl and self.merging:
            cache = self._drain_cache
            if cache is not None and cache[0] == start and cache[1] == end:
                return cache[2]
        log, log_excl, off = self.log, self.log_excl, self.base
        if self.merging:
            d: dict[tuple, Update] = {}
            for i in range(start - off, len(log)):
                if log_excl[i] == sub:
                    continue
                u = log[i]
                k = u.merge_key
                if k in d:
                    del d[k]
                d[k] = u
            pairs = list(d.items())
            if not has_excl:
                self._drain_cache = (start, end, pairs)
            return pairs
        items = [
            log[i] for i in range(start - off, len(log)) if log_excl[i] != sub
        ]
        start_enq = int(self.enq[slot]) + self.enq_shared - len(items)
        return [((start_enq + i, u.merge_key), u) for i, u in enumerate(items)]

    def materialize_state(self, slot: int) -> SubscriptionState:
        """Build a real :class:`SubscriptionState` mirroring this slot
        (without mutating it)."""
        count = int(self.count[slot]) + self.count_shared
        state = SubscriptionState(
            subscriber=self.subscriber_by_slot[slot],
            bounds=Bounds(
                float(self.b_num[slot]),
                float(self.b_stale[slot]),
                float(self.b_order[slot]),
            ),
            merging=self.merging,
        )
        state.pending = dict(self.materialize_pairs(slot))
        state.accumulated_error = float(self.err[slot])
        state.oldest_pending_time = float(self.oldest[slot]) if count else None
        state.enqueued_count = int(self.enq[slot]) + self.enq_shared
        state.merged_count = int(self.mrg[slot]) + self.mrg_shared
        return state

    def drain_slot(self, slot: int) -> list[Update]:
        pairs = self.materialize_pairs(slot)
        end = self.base + len(self.log)
        self.cursor[slot] = end
        if end > self.max_cursor:
            self.max_cursor = end
        self.err[slot] = 0.0
        self.count[slot] = -self.count_shared
        self.oldest[slot] = math.inf
        self.empty_subs.add(self.subscriber_by_slot[slot].subscriber_id)
        if self.log and len(self.empty_subs) == self.n:
            self._reset_log()
        return [u for __, u in pairs]

    def tripped_dimension_slot(self, slot: int, now: float) -> str | None:
        """Scalar bound check for one slot — byte-identical precedence to
        ``Bounds.tripped_dimension`` via the same code path."""
        count = int(self.count[slot]) + self.count_shared
        if count == 0:
            return None
        bounds = Bounds(
            float(self.b_num[slot]), float(self.b_stale[slot]), float(self.b_order[slot])
        )
        age = now - float(self.oldest[slot])
        return bounds.tripped_dimension(float(self.err[slot]), age, count)

    # ------------------------------------------------------------------
    # Log maintenance
    # ------------------------------------------------------------------

    def _reset_log(self) -> None:
        """All queues are empty: every entry is dead, drop the whole log."""
        self.base += len(self.log)
        self.log.clear()
        self.log_excl.clear()
        self.log_prev.clear()
        self.last_key.clear()
        self.excl_by_sub.clear()
        self._drain_cache = None

    def _advance_excluded_cursors(self) -> None:
        """Advance cursors past window prefixes that replay to nothing.

        The rebase keys off the minimum cursor, so one slot that never
        drains — e.g. a subscriber excluded from every commit, like a
        peer subscriber on a dyconit only its own shard writes to —
        used to pin the whole shared log forever (unbounded memory on
        long runs). Entries a slot can never deliver are dead to it: a
        slot with nothing pending may skip its entire window (pending
        count 0 means every window entry excludes it; a merging
        supersede never empties a window that saw a non-excluded
        entry), and any slot may skip the prefix of window entries
        excluding it. Both moves are replay-neutral —
        :meth:`materialize_pairs` drops excluded entries anyway, and
        the mixed-path merge mask resolves skipped ``prev`` entries to
        the same fresh-enqueue decision via ``_superseded_via_chain`` —
        and they restore the rebase's progress guarantee (auditor check
        I9.log-pinned bounds the dead prefix by the compaction period).
        """
        end = self.base + len(self.log)
        changed = False
        for slot in range(self.n):
            cur = int(self.cursor[slot])
            if cur >= end:
                continue
            if int(self.count[slot]) + self.count_shared == 0:
                self.cursor[slot] = end
                changed = True
                continue
            sub = self.subscriber_by_slot[slot].subscriber_id
            if not self.excl_by_sub.get(sub):
                continue
            log_excl = self.log_excl
            i = max(cur, self.base)
            while i < end and log_excl[i - self.base] == sub:
                i += 1
            if i > cur:
                self.cursor[slot] = i
                changed = True
        if changed:
            # The broadcast-supersede gate needs max_cursor >= every
            # cursor; advancing cursors can raise the true maximum.
            self.max_cursor = int(self._cursor_v.max())

    def _maybe_trim(self) -> None:
        """Rebase the log off the minimum cursor when >half of it is dead."""
        if self.n == 0:
            return
        self._advance_excluded_cursors()
        mc = int(self._cursor_v.min())
        self.min_cursor_lb = mc
        keep_from = mc - self.base
        if keep_from <= len(self.log) // 2:
            return
        del self.log[:keep_from]
        del self.log_excl[:keep_from]
        del self.log_prev[:keep_from]
        self.base = mc
        self.last_key = {k: v for k, v in self.last_key.items() if v >= mc}
        for sub in list(self.excl_by_sub):
            lst = self.excl_by_sub[sub]
            i = bisect_left(lst, mc)
            if i:
                if i >= len(lst):
                    del self.excl_by_sub[sub]
                else:
                    self.excl_by_sub[sub] = lst[i:]
        self._drain_cache = None

    def _superseded_via_chain(self, slot: int, prev: int) -> bool:
        """Does ``slot`` (excluded at log entry ``prev``) still have this
        merge key pending from an earlier occurrence in its window?"""
        cur = int(self.cursor[slot])
        sub = self.subscriber_by_slot[slot].subscriber_id
        j = self.log_prev[prev - self.base]
        while j >= cur and j >= self.base:
            if self.log_excl[j - self.base] != sub:
                return True
            j = self.log_prev[j - self.base]
        return False

    def _mark_pending(self, time: float, exclude_id: int | None) -> list[int]:
        """Transition every empty, non-excluded queue to pending at ``time``."""
        if exclude_id is not None and exclude_id in self.empty_subs:
            became_subs = [s for s in self.empty_subs if s != exclude_id]
            self.empty_subs = {exclude_id}
        else:
            became_subs = list(self.empty_subs)
            self.empty_subs.clear()
        became = []
        for sub in became_subs:
            slot = self.slots[sub]
            self.oldest[slot] = time
            became.append(slot)
        if became and not math.isinf(self.min_bstale):
            cand = time + self.min_bstale
            if cand < self.min_deadline:
                self.min_deadline = cand
        return became

    # ------------------------------------------------------------------
    # Commit
    # ------------------------------------------------------------------

    def commit(
        self, update: Update, exclude_subscriber: int | None, now: float
    ) -> tuple[int, int, list[tuple[FlatSubscriptionView, str | None]] | None]:
        """Enqueue ``update`` for every subscriber except the excluded one.

        Returns ``(n_enqueued, n_merged, events)`` where ``events`` is
        ``None`` in the common nothing-tripped case, else ``(view,
        reason)`` pairs in slot order: a non-None reason means the queue
        must flush now, ``None`` means it just became pending (arm the
        staleness deadline).
        """
        n = self.n
        e = -1
        if exclude_subscriber is not None:
            e = self.slots.get(exclude_subscriber, -1)
        n_eff = n - 1 if e >= 0 else n
        if n_eff <= 0:
            return 0, 0, None

        end = self.base + len(self.log)
        merging = self.merging
        prev = -1
        if merging:
            key = update.merge_key
            prev = self.last_key.get(key, -1)
            self.last_key[key] = end
        excl_sub = exclude_subscriber if e >= 0 else None
        self.log.append(update)
        self.log_excl.append(excl_sub)
        self.log_prev.append(prev)
        if excl_sub is not None:
            self.excl_by_sub.setdefault(excl_sub, []).append(end)

        w = update.weight
        err = self.err
        merged_n = 0
        became: list[int] = []
        if prev >= self.max_cursor and prev >= 0 and self.log_excl[prev - self.base] is None:
            # Broadcast-supersede: the previous same-key entry is inside
            # every window and excluded nobody, so every active queue
            # merges. O(1) scalar path — the steady-state hot case.
            merged_n = n_eff
            self.mrg_shared += 1
            self.enq_shared += 1
            if e >= 0:
                self.mrg[e] -= 1
                self.enq[e] -= 1
                old = err[e]
                self._err_v += w
                err[e] = old
            else:
                self._err_v += w
        elif prev < self.min_cursor_lb or not merging:
            # Broadcast-fresh: no queue can hold the key (or merging is
            # off), so every active queue enqueues a new entry. O(1).
            self.count_shared += 1
            self.enq_shared += 1
            if e >= 0:
                self.count[e] -= 1
                self.enq[e] -= 1
                old = err[e]
                self._err_v += w
                err[e] = old
            else:
                self._err_v += w
            if self.empty_subs:
                became = self._mark_pending(update.time, exclude_subscriber)
        else:
            # Mixed: queues whose cursor is past the previous occurrence
            # enqueue fresh, the rest merge. Vectorized per-slot masks.
            mask = self._cursor_v <= prev
            prev_excl = self.log_excl[prev - self.base]
            if prev_excl is not None:
                p = self.slots.get(prev_excl, -1)
                if p >= 0 and mask[p]:
                    mask[p] = self._superseded_via_chain(p, prev)
            mrg_v = self.mrg[:n]
            cnt_v = self._count_v
            np.add(mrg_v, mask, out=mrg_v)
            cnt_v += 1
            np.subtract(cnt_v, mask, out=cnt_v)
            self.enq_shared += 1
            merged_n = int(mask.sum())
            if e >= 0:
                self.enq[e] -= 1
                if mask[e]:
                    self.mrg[e] -= 1
                    merged_n -= 1
                else:
                    self.count[e] -= 1
                old = err[e]
                self._err_v += w
                err[e] = old
            else:
                self._err_v += w
            if self.empty_subs:
                became = self._mark_pending(update.time, exclude_subscriber)

        # Compaction must wait for the accounting above: the stalled-
        # cursor advance treats a zero-count slot's window as all-dead,
        # which is only true once this entry's pending counts are in.
        # (Trimming mid-append once advanced a freshly-flushed slot's
        # cursor past the very entry being committed to it, silently
        # turning the next same-key commit's merge into a fresh enqueue.)
        if len(self.log) % _COMPACT_CHECK == 0:
            self._maybe_trim()

        # ---- bound checks: conservative gates, exact vectorized scans
        self.count_ub += 1
        trip = None
        tripped_any = False
        if self.n_finite_bnum:
            trip = np.greater(self._err_v, self._bnum_v, out=self._trip_v)
            if e >= 0:
                trip[e] = False
            tripped_any = bool(trip.any())
        if self.any_finite_stale and now >= self.min_deadline - _GATE_MARGIN_MS:
            stale = (now - self._oldest_v) >= self._bstale_v
            # Conservative refresh (uses pre-drain oldest values; a drain
            # below only moves the true minimum later, so stale-low is
            # safe and self-corrects at the next gate fire).
            self.min_deadline = float((self._oldest_v + self._bstale_v).min())
            if e >= 0:
                stale[e] = False
            if stale.any():
                if trip is None:
                    trip = stale
                else:
                    np.logical_or(trip, stale, out=trip)
                tripped_any = True
        if self.count_ub > self.min_border:
            counts = self._count_v + self.count_shared
            self.count_ub = int(counts.max())
            order_trip = counts > self._border_v
            if e >= 0:
                order_trip[e] = False
            if order_trip.any():
                if trip is None:
                    trip = order_trip
                else:
                    np.logical_or(trip, order_trip, out=trip)
                tripped_any = True

        if not tripped_any and not became:
            return n_eff, merged_n, None
        events: list[tuple[int, str | None]] = []
        if tripped_any:
            for slot in np.nonzero(trip)[0]:
                events.append((int(slot), self.tripped_dimension_slot(int(slot), now)))
        if became:
            for slot in became:
                if not (tripped_any and trip[slot]):
                    events.append((slot, None))
            events.sort(key=lambda item: item[0])
        out = [
            (self._views[self.subscriber_by_slot[slot].subscriber_id], reason)
            for slot, reason in events
        ]
        return n_eff, merged_n, out
