"""Middleware instrumentation.

Counts every decision the middleware makes, so the evaluation can report
how much traffic was merged away versus delivered, and how much
bookkeeping the server paid for (the tick cost model charges for
``bound_checks`` and ``flushes``).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class DyconitStats:
    """Cumulative middleware counters for one run."""

    commits: int = 0
    #: (dyconit, subscriber) enqueues; one commit fans out to many.
    updates_enqueued: int = 0
    #: Updates actually handed to subscribers at flush time.
    updates_delivered: int = 0
    #: Updates superseded in-queue by a newer update with the same merge
    #: key; each one is a message vanilla would have sent and we did not.
    updates_merged: int = 0
    flushes: int = 0
    #: Flushes triggered by the numerical-error bound vs the staleness
    #: bound vs the order (queue-length) bound vs an explicit request
    #: (unsubscribe, shutdown, policy).
    flushes_numerical: int = 0
    flushes_staleness: int = 0
    flushes_order: int = 0
    flushes_forced: int = 0
    bound_checks: int = 0
    subscriptions: int = 0
    unsubscriptions: int = 0
    dyconits_created: int = 0
    dyconits_removed: int = 0
    policy_evaluations: int = 0
    #: Sum of queue residence time (ms) over delivered updates — measures
    #: how much extra latency bounding introduced.
    queue_delay_total_ms: float = 0.0
    queue_delay_samples: int = 0
    per_flush_batch_sizes: list[int] = field(default_factory=list)

    @property
    def merge_ratio(self) -> float:
        """Fraction of enqueued updates merged away before delivery."""
        if self.updates_enqueued == 0:
            return 0.0
        return self.updates_merged / self.updates_enqueued

    @property
    def mean_queue_delay_ms(self) -> float:
        if self.queue_delay_samples == 0:
            return 0.0
        return self.queue_delay_total_ms / self.queue_delay_samples

    def as_dict(self) -> dict[str, float]:
        return {
            "commits": self.commits,
            "updates_enqueued": self.updates_enqueued,
            "updates_delivered": self.updates_delivered,
            "updates_merged": self.updates_merged,
            "merge_ratio": self.merge_ratio,
            "flushes": self.flushes,
            "flushes_numerical": self.flushes_numerical,
            "flushes_staleness": self.flushes_staleness,
            "flushes_order": self.flushes_order,
            "flushes_forced": self.flushes_forced,
            "bound_checks": self.bound_checks,
            "subscriptions": self.subscriptions,
            "unsubscriptions": self.unsubscriptions,
            "dyconits_created": self.dyconits_created,
            "dyconits_removed": self.dyconits_removed,
            "policy_evaluations": self.policy_evaluations,
            "mean_queue_delay_ms": self.mean_queue_delay_ms,
        }
