"""Persisting experiment results.

EXPERIMENTS.md is regenerated from saved runs; this module serializes
:class:`~repro.experiments.runner.ExperimentResult` to JSON and back so a
long paper-scale run can be archived and re-rendered without re-running.

All writes are **atomic**: the payload lands in a same-directory temp
file which is then ``os.replace``d over the destination, so a crash or
kill mid-write leaves either the previous store or the new one — never a
truncated JSON file. The parallel sweep executor
(:mod:`repro.experiments.parallel`) leans on this for crash-resume.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import asdict
from pathlib import Path

from repro.experiments.configs import config_from_dict
from repro.experiments.runner import ExperimentResult
from repro.metrics.summary import Summary


def atomic_write_text(path: str | Path, text: str) -> Path:
    """Write ``text`` to ``path`` atomically (tmp file + rename).

    The temp file lives in the destination directory so the final
    ``os.replace`` stays on one filesystem (rename atomicity); on any
    error the temp file is removed rather than left to shadow the store.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    handle, tmp_name = tempfile.mkstemp(
        prefix=path.name + ".", suffix=".tmp", dir=path.parent
    )
    try:
        with os.fdopen(handle, "w") as tmp_file:
            tmp_file.write(text)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return path


def result_to_dict(result: ExperimentResult) -> dict:
    """JSON-safe dictionary of one experiment result."""
    config = asdict(result.config)
    # BehaviorMix / CostCoefficients / Bounds become plain dicts via
    # asdict; tag the config with its class for forward compatibility.
    payload = {
        "config": config,
        "bytes_total": result.bytes_total,
        "packets_total": result.packets_total,
        "steady_bytes_per_second": result.steady_bytes_per_second,
        "steady_packets_per_second": result.steady_packets_per_second,
        "steady_bytes_per_player_per_second": result.steady_bytes_per_player_per_second,
        "bytes_by_kind": result.bytes_by_kind,
        "packets_by_kind": result.packets_by_kind,
        "tick_duration": result.tick_duration.as_dict(),
        "effective_tick_rate_hz": result.effective_tick_rate_hz,
        "dyconit_stats": result.dyconit_stats,
        "update_queue_delay_p50_ms": result.update_queue_delay_p50_ms,
        "update_queue_delay_p99_ms": result.update_queue_delay_p99_ms,
        "positional_error_mean": result.positional_error_mean,
        "positional_error_p95": result.positional_error_p95,
        "positional_error_p99": result.positional_error_p99,
        "positional_error_max": result.positional_error_max,
        "staleness_p50_ms": result.staleness_p50_ms,
        "staleness_p99_ms": result.staleness_p99_ms,
        "packet_latency": result.packet_latency.as_dict(),
        "packets_dropped": result.packets_dropped,
        "reconnects": result.reconnects,
        "churn_crashes": result.churn_crashes,
        "churn_rejoins": result.churn_rejoins,
        "shards": result.shards,
        "handoffs": result.handoffs,
        "handoffs_cancelled": result.handoffs_cancelled,
        "entity_transfers": result.entity_transfers,
        "intershard_bytes": result.intershard_bytes,
        "intershard_messages": result.intershard_messages,
        "intershard_bytes_per_second": result.intershard_bytes_per_second,
        "intershard_messages_by_kind": result.intershard_messages_by_kind,
        "shard_tick_p95_ms": result.shard_tick_p95_ms,
        "shard_players": result.shard_players,
        "bandwidth_timeline": result.bandwidth_timeline,
        "player_timeline": result.player_timeline,
        "tick_timeline": result.tick_timeline,
        "factor_timeline": result.factor_timeline,
    }
    return payload


def _summary_from_dict(data: dict) -> Summary:
    return Summary(
        count=int(data["count"]),
        mean=data["mean"],
        minimum=data["min"],
        p50=data["p50"],
        p95=data["p95"],
        p99=data["p99"],
        maximum=data["max"],
    )


def result_from_dict(data: dict) -> ExperimentResult:
    """Rebuild a result (config is restored field-by-field)."""
    config = config_from_dict(data["config"])
    result = ExperimentResult(config=config)
    result.bytes_total = data["bytes_total"]
    result.packets_total = data["packets_total"]
    result.steady_bytes_per_second = data["steady_bytes_per_second"]
    result.steady_packets_per_second = data["steady_packets_per_second"]
    result.steady_bytes_per_player_per_second = data["steady_bytes_per_player_per_second"]
    result.bytes_by_kind = data["bytes_by_kind"]
    result.packets_by_kind = data["packets_by_kind"]
    result.tick_duration = _summary_from_dict(data["tick_duration"])
    result.effective_tick_rate_hz = data["effective_tick_rate_hz"]
    result.dyconit_stats = data["dyconit_stats"]
    result.update_queue_delay_p50_ms = data["update_queue_delay_p50_ms"]
    result.update_queue_delay_p99_ms = data["update_queue_delay_p99_ms"]
    result.positional_error_mean = data["positional_error_mean"]
    result.positional_error_p95 = data["positional_error_p95"]
    result.positional_error_p99 = data["positional_error_p99"]
    result.positional_error_max = data["positional_error_max"]
    result.staleness_p50_ms = data["staleness_p50_ms"]
    result.staleness_p99_ms = data["staleness_p99_ms"]
    result.packet_latency = _summary_from_dict(data["packet_latency"])
    # Fault/churn counters and the tick timeline postdate early stores;
    # default them so archived pre-S13 runs still load.
    result.packets_dropped = data.get("packets_dropped", 0)
    result.reconnects = data.get("reconnects", 0)
    result.churn_crashes = data.get("churn_crashes", 0)
    result.churn_rejoins = data.get("churn_rejoins", 0)
    # Cluster counters postdate S16; pre-sharding stores default to a
    # single-server shape.
    result.shards = data.get("shards", 1)
    result.handoffs = data.get("handoffs", 0)
    result.handoffs_cancelled = data.get("handoffs_cancelled", 0)
    result.entity_transfers = data.get("entity_transfers", 0)
    result.intershard_bytes = data.get("intershard_bytes", 0)
    result.intershard_messages = data.get("intershard_messages", 0)
    result.intershard_bytes_per_second = data.get("intershard_bytes_per_second", 0.0)
    result.intershard_messages_by_kind = data.get("intershard_messages_by_kind", {})
    result.shard_tick_p95_ms = list(data.get("shard_tick_p95_ms", []))
    result.shard_players = list(data.get("shard_players", []))
    result.bandwidth_timeline = [tuple(point) for point in data["bandwidth_timeline"]]
    result.player_timeline = [tuple(point) for point in data["player_timeline"]]
    result.tick_timeline = [tuple(point) for point in data.get("tick_timeline", [])]
    result.factor_timeline = [tuple(point) for point in data["factor_timeline"]]
    return result


def save_results(path: str | Path, results: dict[str, ExperimentResult]) -> None:
    """Atomically write a named collection of results as JSON."""
    payload = {name: result_to_dict(result) for name, result in results.items()}
    atomic_write_text(path, json.dumps(payload, indent=2, default=_jsonify))


def save_telemetry(path: str | Path, telemetry) -> tuple[Path, Path]:
    """Archive a run's telemetry next to its JSON results.

    Writes the JSONL span/metric stream to ``path`` and a Prometheus
    text snapshot to ``path`` with a ``.prom`` suffix appended; returns
    both paths.
    """
    from repro.telemetry.exporters import export_jsonl, export_prometheus

    jsonl_path = Path(path)
    prom_path = jsonl_path.with_suffix(jsonl_path.suffix + ".prom")
    # A missing parent must not discard the run's telemetry after the
    # (possibly long) run already completed.
    jsonl_path.parent.mkdir(parents=True, exist_ok=True)
    export_jsonl(telemetry, jsonl_path)
    export_prometheus(telemetry, prom_path)
    return jsonl_path, prom_path


def load_results(path: str | Path) -> dict[str, ExperimentResult]:
    payload = json.loads(Path(path).read_text())
    return {name: result_from_dict(data) for name, data in payload.items()}


def _jsonify(value):
    if isinstance(value, float):
        return value
    if hasattr(value, "as_dict"):
        return value.as_dict()
    raise TypeError(f"cannot serialize {type(value).__name__}")
