"""Determinism matrix: digests must not depend on PYTHONHASHSEED.

Runs ``scripts/determinism_check.py`` (config digests + merged-store
sha256 for a tiny sweep) in two subprocesses with different hash seeds
and asserts the transcripts match. Any dependence on dict/set iteration
order or ``hash()`` anywhere in config normalization, the simulation,
or store serialization shows up here as a diff. CI runs the same script
as a matrix step; this test keeps the property enforced locally too.
"""

import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
SCRIPT = REPO_ROOT / "scripts" / "determinism_check.py"


def run_check(hash_seed: str, jobs: int) -> str:
    env = {
        "PYTHONHASHSEED": hash_seed,
        "PYTHONPATH": str(REPO_ROOT / "src"),
        "PATH": "/usr/bin:/bin",
    }
    proc = subprocess.run(
        [sys.executable, str(SCRIPT), "--jobs", str(jobs)],
        capture_output=True,
        text=True,
        env=env,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr
    return proc.stdout


@pytest.mark.slow
def test_digests_identical_across_hash_seeds():
    transcript_a = run_check("0", jobs=1)
    transcript_b = run_check("12345", jobs=1)
    assert transcript_a == transcript_b
    # Sanity: the transcript actually contains digests, and the S18
    # serial-vs-parallel cluster differential ran and passed.
    lines = transcript_a.strip().splitlines()
    assert lines[-1].startswith("store ")
    assert lines[-2] == "serial/parallel cluster cells identical"
    assert all(line.startswith("cell ") for line in lines[:-2])
    assert any("-par " in line for line in lines[:-2])


@pytest.mark.slow
def test_digests_identical_across_jobs():
    """The transcript is also independent of the worker count."""
    assert run_check("7", jobs=1) == run_check("7", jobs=2)
