"""Tests for the binary wire codec, including the size-model validation."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.net import wire
from repro.net.protocol import (
    BlockChangePacket,
    ChatMessagePacket,
    ChunkDataPacket,
    ChunkUnloadPacket,
    DestroyEntitiesPacket,
    EntityPositionPacket,
    EntityTeleportPacket,
    JoinGamePacket,
    KeepAlivePacket,
    MultiBlockChangePacket,
    SpawnEntityPacket,
)
from repro.world.block import BlockType
from repro.world.entity import EntityKind
from repro.world.geometry import BlockPos, ChunkPos, Vec3


class TestVarint:
    @given(st.integers(min_value=0, max_value=2**63 - 1))
    def test_roundtrip(self, value):
        encoded = wire.write_varint(value)
        decoded, offset = wire.read_varint(encoded, 0)
        assert decoded == value
        assert offset == len(encoded)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            wire.write_varint(-1)

    def test_truncated(self):
        with pytest.raises(wire.WireError):
            wire.read_varint(b"\x80", 0)


class TestPackedPosition:
    @given(
        st.integers(min_value=-(2**25), max_value=2**25 - 1),
        st.integers(min_value=-2048, max_value=2047),
        st.integers(min_value=-(2**25), max_value=2**25 - 1),
    )
    def test_roundtrip(self, x, y, z):
        pos = BlockPos(x, y, z)
        decoded, offset = wire.unpack_position(wire.pack_position(pos), 0)
        assert decoded == pos
        assert offset == 8


SAMPLE_PACKETS = [
    BlockChangePacket(BlockPos(10, 30, -5), BlockType.BRICK),
    MultiBlockChangePacket(
        ChunkPos(2, -1),
        (
            (BlockPos(33, 10, -16), BlockType.STONE),
            (BlockPos(40, 12, -9), BlockType.PLANKS),
        ),
    ),
    ChunkUnloadPacket(ChunkPos(-3, 7)),
    DestroyEntitiesPacket((1, 200, 30000)),
    EntityPositionPacket(42, Vec3(0.5, -0.25, 1.0), yaw=90.0, pitch=45.0),
    EntityTeleportPacket(42, Vec3(100.5, 64.0, -200.25), yaw=180.0),
    SpawnEntityPacket(7, EntityKind.ZOMBIE, Vec3(1.0, 30.0, 2.0), name="bob"),
    KeepAlivePacket(nonce=123456789),
    ChatMessagePacket(3, "hello world"),
    ChunkDataPacket(ChunkPos(0, 0), total_blocks=16384, non_air_blocks=7000),
    JoinGamePacket(entity_id=99),
]


@pytest.mark.parametrize("packet", SAMPLE_PACKETS, ids=lambda p: p.kind)
def test_encoded_length_matches_size_model(packet):
    """The central invariant: real bytes == the accounting model."""
    assert len(wire.encode(packet)) == packet.wire_size()


@pytest.mark.parametrize("packet", SAMPLE_PACKETS, ids=lambda p: p.kind)
def test_decode_identifies_type_and_consumes_frame(packet):
    data = wire.encode(packet)
    decoded, consumed = wire.decode(data)
    assert type(decoded) is type(packet)
    assert consumed == len(data)


FULL_FIDELITY = [
    p
    for p in SAMPLE_PACKETS
    if isinstance(
        p,
        (
            BlockChangePacket,
            MultiBlockChangePacket,
            ChunkUnloadPacket,
            DestroyEntitiesPacket,
            EntityTeleportPacket,
            KeepAlivePacket,
        ),
    )
]


@pytest.mark.parametrize("packet", FULL_FIDELITY, ids=lambda p: p.kind)
def test_fixed_layout_packets_roundtrip_exactly(packet):
    decoded, __ = wire.decode(wire.encode(packet))
    assert decoded == packet


def test_relative_move_roundtrips_to_fixed_point_precision():
    packet = EntityPositionPacket(9, Vec3(1.2345, -0.5, 3.75))
    decoded, __ = wire.decode(wire.encode(packet))
    assert decoded.entity_id == 9
    assert decoded.delta.x == pytest.approx(1.2345, abs=1 / 4096)
    assert decoded.delta.z == pytest.approx(3.75, abs=1 / 4096)


def test_spawn_roundtrips_identity_and_name():
    packet = SpawnEntityPacket(7, EntityKind.COW, Vec3(5.0, 30.0, 6.0), name="daisy")
    decoded, __ = wire.decode(wire.encode(packet))
    assert decoded.entity_id == 7
    assert decoded.entity_kind == EntityKind.COW
    assert decoded.position == Vec3(5.0, 30.0, 6.0)
    assert decoded.name == "daisy"


def test_chat_roundtrips_text():
    decoded, __ = wire.decode(wire.encode(ChatMessagePacket(3, "hi there")))
    assert decoded.text == "hi there"


def test_stream_of_packets_decodes_sequentially():
    stream = b"".join(wire.encode(p) for p in SAMPLE_PACKETS)
    offset = 0
    decoded = []
    while offset < len(stream):
        packet, consumed = wire.decode(stream[offset:])
        decoded.append(packet)
        offset += consumed
    assert [type(p) for p in decoded] == [type(p) for p in SAMPLE_PACKETS]


def test_unknown_packet_id_rejected():
    bad = wire.write_varint(1) + b"\x00" + bytes([0xEE])
    # Construct a minimal frame with an unregistered id.
    frame = bytes([0x01, 0x00, 0xEE])
    with pytest.raises(wire.WireError):
        wire.decode(frame)
    del bad


def test_truncated_frame_rejected():
    data = wire.encode(KeepAlivePacket(1))
    with pytest.raises(wire.WireError):
        wire.decode(data[:-2])


@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=15),
            st.integers(min_value=0, max_value=63),
            st.integers(min_value=0, max_value=15),
            st.sampled_from(list(BlockType)),
        ),
        min_size=1,
        max_size=30,
        unique_by=lambda r: (r[0], r[1], r[2]),
    )
)
def test_multi_block_change_roundtrip_property(records):
    chunk = ChunkPos(1, 1)
    origin = chunk.block_origin()
    changes = tuple(
        (BlockPos(origin.x + lx, y, origin.z + lz), block)
        for lx, y, lz, block in records
    )
    packet = MultiBlockChangePacket(chunk, changes)
    encoded = wire.encode(packet)
    assert len(encoded) == packet.wire_size()
    decoded, __ = wire.decode(encoded)
    assert decoded == packet


@given(
    st.integers(min_value=1, max_value=2**20),
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
)
def test_teleport_roundtrip_property(entity_id, x, y, z):
    """Exercises the precompiled >ddd layout across the float range —
    doubles must survive encode/decode bit-for-bit."""
    packet = EntityTeleportPacket(
        entity_id=entity_id, position=Vec3(x, y, z), yaw=0.0, pitch=0.0
    )
    decoded, consumed = wire.decode(wire.encode(packet))
    assert consumed == len(wire.encode(packet))
    assert decoded.entity_id == entity_id
    assert (decoded.position.x, decoded.position.y, decoded.position.z) == (x, y, z)


@given(st.integers(min_value=-(2**63), max_value=2**63 - 1))
def test_keepalive_roundtrip_property(nonce):
    """Exercises the precompiled >q layout over the full int64 range."""
    decoded, __ = wire.decode(wire.encode(KeepAlivePacket(nonce=nonce)))
    assert decoded.nonce == nonce
