"""Unit tests for the transport."""

import pytest

from repro.faults.plan import FaultPlan
from repro.net.link import LinkConfig
from repro.net.protocol import ChatMessagePacket, KeepAlivePacket
from repro.net.transport import LatencyReservoir, Transport
from repro.sim.rng import derive_rng


@pytest.fixture
def transport(sim):
    return Transport(sim, LinkConfig(bandwidth_bps=1e9, latency_ms=20.0))


def test_connect_and_send_delivers_later(sim, transport):
    received = []
    transport.connect(1, received.append)
    transport.send(1, KeepAlivePacket())
    assert received == []  # not yet delivered
    sim.run()
    assert len(received) == 1
    assert received[0].latency_ms == pytest.approx(20.0, abs=1.0)


def test_duplicate_connect_rejected(transport):
    transport.connect(1, lambda d: None)
    with pytest.raises(ValueError):
        transport.connect(1, lambda d: None)


def test_send_to_unknown_client_is_dropped(sim, transport):
    transport.send(99, KeepAlivePacket())  # no error
    sim.run()
    assert transport.total_packets() == 0


def test_disconnect_suppresses_inflight_delivery(sim, transport):
    received = []
    transport.connect(1, received.append)
    transport.send(1, KeepAlivePacket())
    transport.disconnect(1)
    sim.run()
    assert received == []


def test_disconnect_preserves_accounting(sim, transport):
    transport.connect(1, lambda d: None)
    transport.send(1, KeepAlivePacket())
    size = KeepAlivePacket().wire_size()
    transport.disconnect(1)
    assert transport.total_bytes() == size
    assert transport.total_packets() == 1


def test_per_kind_accounting(sim, transport):
    transport.connect(1, lambda d: None)
    transport.send(1, KeepAlivePacket())
    transport.send(1, ChatMessagePacket(1, "hello"))
    by_kind = transport.packets_by_kind()
    assert by_kind == {"KeepAlivePacket": 1, "ChatMessagePacket": 1}
    assert set(transport.bytes_by_kind()) == set(by_kind)


def test_latency_recording(sim, transport):
    transport.connect(1, lambda d: None)
    for _ in range(3):
        transport.send(1, KeepAlivePacket())
    sim.run()
    assert len(transport.latencies_ms) == 3
    assert all(latency >= 20.0 for latency in transport.latencies_ms)


def test_latency_reservoir_mode_is_bounded(sim):
    # Default mode samples into a bounded reservoir instead of growing a
    # list forever (the E4 exact mode opts in via record_latencies).
    transport = Transport(
        sim, LinkConfig(bandwidth_bps=1e9, latency_ms=20.0), latency_sample_cap=16
    )
    transport.connect(1, lambda d: None)
    for _ in range(200):
        transport.send(1, KeepAlivePacket())
    sim.run()
    assert len(transport.latencies_ms) == 16
    assert transport.latency_sample_count == 200


def test_exact_mode_keeps_every_latency(sim):
    transport = Transport(
        sim, LinkConfig(bandwidth_bps=1e9, latency_ms=20.0), latency_sample_cap=16
    )
    transport.record_latencies = True
    transport.connect(1, lambda d: None)
    for _ in range(50):
        transport.send(1, KeepAlivePacket())
    sim.run()
    assert len(transport.latencies_ms) == 50


def test_latency_reservoir_is_seeded_and_deterministic():
    def sample(seed: int) -> list[float]:
        reservoir = LatencyReservoir(32, derive_rng(seed, "latency-reservoir"))
        for value in range(1000):
            reservoir.record(float(value))
        return list(reservoir.samples)

    assert sample(7) == sample(7)
    assert sample(7) != sample(8)


def test_latency_reservoir_percentiles_match_exact_within_tolerance():
    # The E4 guarantee: reservoir quantiles track exact quantiles.
    values = [float((13 * i) % 997) for i in range(20_000)]
    reservoir = LatencyReservoir(4096, derive_rng(0, "latency-reservoir"))
    for value in values:
        reservoir.record(value)
    exact = sorted(values)
    approx = sorted(reservoir.samples)
    for q in (0.50, 0.95, 0.99):
        exact_q = exact[int(q * (len(exact) - 1))]
        approx_q = approx[int(q * (len(approx) - 1))]
        assert approx_q == pytest.approx(exact_q, rel=0.05)


def test_synchronous_delivery_calls_handler_immediately(sim):
    transport = Transport(sim, LinkConfig(latency_ms=20.0), synchronous_delivery=True)
    received = []
    transport.connect(1, received.append)
    transport.send(1, KeepAlivePacket())
    assert len(received) == 1  # before any sim.run()
    assert received[0].latency_ms >= 20.0  # latency still modelled


def test_send_many(sim, transport):
    received = []
    transport.connect(1, received.append)
    transport.send_many(1, [KeepAlivePacket(), KeepAlivePacket()])
    sim.run()
    assert len(received) == 2


def test_fifo_delivery_order(sim, transport):
    received = []
    transport.connect(1, lambda d: received.append(d.packet))
    a = ChatMessagePacket(1, "first")
    b = ChatMessagePacket(1, "second")
    transport.send(1, a)
    transport.send(1, b)
    sim.run()
    assert received == [a, b]


def test_fifo_order_preserved_under_max_jitter(sim):
    # Property test for the per-link FIFO contract: jitter draws are
    # uniform in [0, jitter_ms); without the monotonic clamp a later
    # packet with a small draw would beat an earlier one with a large
    # draw. Delivery order must equal send order regardless.
    transport = Transport(
        sim, LinkConfig(bandwidth_bps=1e6, latency_ms=10.0, jitter_ms=500.0), seed=3
    )
    received = []
    transport.connect(1, lambda d: received.append(d.packet))
    sent = [ChatMessagePacket(1, f"m{i}" * (1 + i % 7)) for i in range(200)]
    for packet in sent:
        transport.send(1, packet)
    sim.run()
    assert received == sent


def test_fifo_holds_across_interleaved_sends(sim):
    transport = Transport(
        sim, LinkConfig(bandwidth_bps=1e9, latency_ms=5.0, jitter_ms=200.0), seed=9
    )
    received = []
    transport.connect(1, lambda d: received.append(d.packet))
    sent = []
    def send_batch(n):
        def fire():
            for i in range(n):
                packet = KeepAlivePacket(nonce=len(sent))
                sent.append(packet)
                transport.send(1, packet)
        return fire
    for at in (0.0, 50.0, 100.0, 150.0):
        sim.schedule_at(at, send_batch(5))
    sim.run()
    assert received == sent


def test_reconnect_does_not_deliver_stale_inflight_packets(sim, transport):
    # Regression: an in-flight packet from a closed connection must not
    # reach a later connection that reused the same client id.
    old_received, new_received = [], []
    transport.connect(1, old_received.append)
    transport.send(1, KeepAlivePacket())
    transport.disconnect(1)
    transport.connect(1, new_received.append)  # same id, new generation
    sim.run()
    assert old_received == []
    assert new_received == []
    assert transport.reconnect_count == 1


def test_new_generation_traffic_still_flows_after_reconnect(sim, transport):
    received = []
    transport.connect(1, lambda d: received.append(("old", d.packet)))
    transport.send(1, KeepAlivePacket())
    transport.disconnect(1)
    transport.connect(1, lambda d: received.append(("new", d.packet)))
    fresh = ChatMessagePacket(1, "hello again")
    transport.send(1, fresh)
    sim.run()
    assert received == [("new", fresh)]


def test_fault_plan_drops_are_counted_and_not_delivered(sim):
    transport = Transport(
        sim,
        LinkConfig(bandwidth_bps=1e9, latency_ms=5.0),
        seed=11,
        faults=FaultPlan(loss_rate=0.5),
    )
    received = []
    transport.connect(1, received.append)
    for _ in range(400):
        transport.send(1, KeepAlivePacket())
    sim.run()
    assert transport.packets_dropped > 0
    assert len(received) + transport.packets_dropped == 400
    # Bytes are still accounted for dropped packets (server egress).
    assert transport.total_packets() == 400


def test_per_client_fault_plan_overrides_fleet_default(sim):
    transport = Transport(
        sim, LinkConfig(bandwidth_bps=1e9, latency_ms=5.0), seed=11,
        faults=FaultPlan(loss_rate=1.0),
    )
    healthy, doomed = [], []
    transport.connect(1, healthy.append, faults=FaultPlan())  # null plan
    transport.connect(2, doomed.append)  # inherits fleet-wide total loss
    for _ in range(10):
        transport.send(1, KeepAlivePacket())
        transport.send(2, KeepAlivePacket())
    sim.run()
    assert len(healthy) == 10
    assert doomed == []
    assert transport.packets_dropped == 10


def test_client_count(transport):
    assert transport.client_count == 0
    transport.connect(1, lambda d: None)
    transport.connect(2, lambda d: None)
    assert transport.client_count == 2
    transport.disconnect(1)
    assert transport.client_count == 1
    assert not transport.is_connected(1)
    assert transport.is_connected(2)
