"""Gateway retune safety (S19).

Three layers of proof that the live control plane cannot corrupt a run:

1. **Property (hypothesis):** random bounds/policy retunes interleaved
   with ticks on a live server running checked mode at every tick
   (``audit_every_n_ticks=1``) never violate auditor invariants — a
   violation raises :class:`InvariantViolationError` out of the tick
   and fails the test. Every valid op must be applied with status
   ``ok`` at a tick *after* its submission (the tick-barrier contract).
2. **Differential:** attaching an idle gateway (telemetry reads only)
   leaves the packet streams byte-identical to an unobserved run.
3. **Validation:** malformed ops are rejected at the HTTP boundary
   (400, nothing queued), and an op that fails at apply time is
   recorded as an error instead of taking the tick loop down.
"""

import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.bots.workload import BehaviorMix, Workload, WorkloadSpec
from repro.core.invariants import InvariantAuditor
from repro.experiments.configs import make_policy
from repro.gateway import ControlPlane, GatewayCore
from repro.server.config import ServerConfig
from repro.server.engine import GameServer
from repro.sim.simulator import Simulation
from repro.world.world import World

TICK_MS = 50.0

#: Policies safe to hot-swap onto a running server (every non-vanilla
#: experiment policy with a no-argument constructor).
SWAPPABLE_POLICIES = ("zero", "infinite", "fixed", "aoi", "distance", "adaptive")


def boot_server(seed=23, bots=3, audit_every_n_ticks=1, policy="fixed"):
    sim = Simulation()
    server = GameServer(
        sim,
        world=World(seed=seed),
        config=ServerConfig(
            seed=seed,
            synchronous_delivery=True,
            mob_count=2,
            audit_every_n_ticks=audit_every_n_ticks,
        ),
        policy=make_policy(policy),
    )
    server.start()
    Workload(
        sim,
        server,
        WorkloadSpec(
            bots=bots,
            seed=seed,
            movement="hotspot",
            behavior=BehaviorMix(build=0.1, dig=0.05, chat=0.01),
            arrival_stagger_ms=30.0,
        ),
    ).start()
    return sim, server


bounds_payloads = st.fixed_dictionaries(
    {
        "numerical": st.floats(min_value=0.0, max_value=50.0),
        "staleness_ms": st.floats(min_value=0.0, max_value=1_000.0),
    },
    optional={"order": st.floats(min_value=1.0, max_value=10.0)},
)

retune_ops = st.one_of(
    bounds_payloads.map(lambda b: {"bounds": b}),
    st.sampled_from(SWAPPABLE_POLICIES).map(lambda name: {"policy": name}),
)

#: (op payload, ticks to run before the next op) sequences.
retune_scripts = st.lists(
    st.tuples(retune_ops, st.integers(min_value=0, max_value=4)),
    min_size=1,
    max_size=8,
)


@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(script=retune_scripts)
def test_random_retunes_never_violate_invariants(script):
    """I1–I9 hold through arbitrary retune/tick interleavings.

    The server audits at every single tick, so any control-plane
    corruption of the bounds/deadline/queue structures raises out of
    ``sim.run_until`` immediately.
    """
    sim, server = boot_server()
    core = GatewayCore(server)
    sim.run_until(500.0)

    submitted = []
    for payload, ticks in script:
        status, __, body = core.handle("PUT", "/policy", json.dumps(payload))
        assert status == 202, body
        submitted.append((json.loads(body)["accepted"], server.tick_count))
        sim.run_until(sim.now + ticks * TICK_MS)
    # Let every queued op land, plus slack for staleness flushes.
    sim.run_until(sim.now + 10 * TICK_MS)

    assert InvariantAuditor().check_server(server) == []
    applied = {op["id"]: op for op in core.control.log}
    for op_ids, tick_at_submit in submitted:
        for op_id in op_ids:
            op = applied[op_id]
            assert op["status"] == "ok", op
            assert op["applied_tick"] > tick_at_submit
    assert core.control.pending_count() == 0


@settings(max_examples=6, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    policy=st.sampled_from(SWAPPABLE_POLICIES),
    script=retune_scripts,
)
def test_random_retunes_hold_under_any_starting_policy(policy, script):
    sim, server = boot_server(policy=policy, seed=29)
    core = GatewayCore(server)
    sim.run_until(300.0)
    for payload, ticks in script:
        core.handle("PUT", "/policy", json.dumps(payload))
        sim.run_until(sim.now + ticks * TICK_MS)
    sim.run_until(sim.now + 10 * TICK_MS)
    assert InvariantAuditor().check_server(server) == []
    assert all(op["status"] == "ok" for op in core.control.log)


# ---------------------------------------------------------------------------
# No-op gateway differential
# ---------------------------------------------------------------------------


def run_capture(attach_gateway: bool, read_routes: bool):
    sim, server = boot_server(seed=31, bots=5, audit_every_n_ticks=0)
    captures: dict[str, list] = {}
    original_connect = server.connect

    def tapping_connect(name, handler, **kwargs):
        log = captures.setdefault(name, [])

        def tapped(delivered):
            log.append(delivered.packet)
            handler(delivered)

        return original_connect(name, tapped, **kwargs)

    server.connect = tapping_connect
    core = GatewayCore(server) if attach_gateway else None
    sim.run_until(3_000.0)
    if core is not None and read_routes:
        for route in ("/healthz", "/metrics", "/policy", "/stats", "/ops"):
            status, __, ___ = core.handle("GET", route)
            assert status == 200
    sim.run_until(6_000.0)
    return captures, server


def test_idle_gateway_is_packet_invisible():
    """Attaching the gateway and scraping every read route mid-run
    leaves the simulation packet-for-packet untouched."""
    bare, bare_server = run_capture(attach_gateway=False, read_routes=False)
    observed, observed_server = run_capture(attach_gateway=True, read_routes=True)
    assert set(bare) == set(observed)
    for client in bare:
        assert bare[client] == observed[client], f"stream diverged for {client}"
    assert (
        bare_server.transport.total_bytes() == observed_server.transport.total_bytes()
    )


# ---------------------------------------------------------------------------
# Validation and apply-time failure isolation
# ---------------------------------------------------------------------------


def test_subnormal_staleness_bound_cannot_livelock_the_tick():
    """Regression: a staleness bound so small that ``oldest + staleness``
    rounds to ``oldest`` used to make ``_flush_due_deadlines`` re-push an
    always-due deadline forever (the backlog's age stayed *below* the
    bound while its deadline stayed *at or before* now). Found by the
    random-retune property test; the flush loop must deliver instead."""
    from repro.core.manager import DyconitSystem
    from repro.core.partition import ChunkPartitioner
    from repro.core.policy import Policy
    from repro.core.bounds import Bounds
    from repro.world.events import EntityMoveEvent
    from repro.world.geometry import Vec3
    from tests.conftest import RecordingSubscriber

    class Static(Policy):
        def initial_bounds(self, system, dyconit_id, subscriber):
            return Bounds(1e9, 5e-324)

    clock = {"now": 1_000.0}
    system = DyconitSystem(
        Static(), ChunkPartitioner(), time_source=lambda: clock["now"]
    )
    recorder = RecordingSubscriber(1)
    system.subscribe(("chunk", 0, 0), recorder.subscriber)
    system.commit_to(
        ("chunk", 0, 0),
        EntityMoveEvent(1_000.0, 1, Vec3(0, 0, 0), Vec3(1, 0, 0)),
        exclude_subscriber=None,
    )
    flushed = system.tick()  # used to spin forever here
    assert flushed == 1
    assert recorder.delivered_updates


class TestValidation:
    def test_malformed_requests_rejected_and_not_queued(self):
        __, server = boot_server(seed=5, bots=0)
        core = GatewayCore(server)
        for body in (
            None,
            "not json",
            json.dumps(["not", "an", "object"]),
            json.dumps({}),
            json.dumps({"policy": "vanilla"}),
            json.dumps({"policy": "nonsense"}),
            json.dumps({"bounds": {"numerical": -1.0, "staleness_ms": 0.0}}),
            json.dumps({"bounds": {"numerical": 1.0}}),
        ):
            status, __, ___ = core.handle("PUT", "/policy", body)
            assert status == 400
        assert core.control.pending_count() == 0
        assert core.control.log == []

    def test_unknown_route_404s(self):
        __, server = boot_server(seed=5, bots=0)
        core = GatewayCore(server)
        assert core.handle("GET", "/nope")[0] == 404
        assert core.handle("PUT", "/healthz")[0] == 404

    def test_apply_time_failure_is_recorded_not_raised(self):
        control = ControlPlane()
        op_id = control.submit(
            {"kind": "set_bounds", "numerical": 1.0, "staleness_ms": 1.0}
        )

        class DirectModeServer:
            dyconits = None

        assert control.apply(DirectModeServer(), tick=7) == 1
        (record,) = control.log
        assert record["id"] == op_id
        assert record["applied_tick"] == 7
        assert record["status"].startswith("error:")

    def test_scoped_retune_hits_only_the_target(self):
        sim, server = boot_server(seed=37, bots=3)
        core = GatewayCore(server)
        sim.run_until(1_000.0)
        system = server.dyconits
        dyconits = list(system.dyconits())
        target = next(d for d in dyconits if d.subscriber_count > 0)
        payload = {
            "bounds": {"numerical": 0.0, "staleness_ms": 0.0},
            "dyconit": list(target.dyconit_id),
        }
        status, __, ___ = core.handle("PUT", "/policy", json.dumps(payload))
        assert status == 202
        sim.run_until(sim.now + 2 * TICK_MS)
        assert all(op["status"] == "ok" for op in core.control.log)
        from repro.core.bounds import Bounds

        zero = Bounds(0.0, 0.0)
        for state in target.subscription_states():
            assert state.bounds == zero
        untouched = [
            state
            for dyconit in system.dyconits()
            if dyconit.dyconit_id != target.dyconit_id
            for state in dyconit.subscription_states()
        ]
        assert untouched and all(state.bounds != zero for state in untouched)


# ---------------------------------------------------------------------------
# S20: the checkpoint op and the store view
# ---------------------------------------------------------------------------


class TestCheckpointEndpoint:
    def boot_with_store(self, tmp_path):
        from repro.backends import SQLiteStateStore

        store = SQLiteStateStore(str(tmp_path / "gateway.db"))
        sim = Simulation()
        server = GameServer(
            sim,
            world=World(seed=23),
            config=ServerConfig(
                seed=23,
                synchronous_delivery=True,
                mob_count=2,
                state_store=store,
            ),
            policy=make_policy("fixed"),
        )
        server.start()
        return sim, server, store

    def test_post_checkpoint_applies_at_the_barrier(self, tmp_path):
        sim, server, store = self.boot_with_store(tmp_path)
        core = GatewayCore(server)
        sim.run_until(500.0)
        tick_at_submit = server.tick_count

        status, __, body = core.handle(
            "POST", "/checkpoint", json.dumps({"key": "nightly"})
        )
        assert status == 202
        op_id = json.loads(body)["accepted"][0]
        assert store.checkpoint_keys() == []  # queued, not yet captured

        sim.run_until(sim.now + 2 * TICK_MS)
        applied = {op["id"]: op for op in core.control.log}
        assert applied[op_id]["status"] == "ok"
        assert applied[op_id]["applied_tick"] > tick_at_submit
        assert store.checkpoint_keys() == ["nightly"]

    def test_get_store_lists_backend_and_keys(self, tmp_path):
        sim, server, store = self.boot_with_store(tmp_path)
        core = GatewayCore(server)
        sim.run_until(300.0)
        core.handle("POST", "/checkpoint", json.dumps({"key": "a"}))
        core.handle("POST", "/checkpoint", json.dumps({"key": "b"}))
        sim.run_until(sim.now + 2 * TICK_MS)

        status, __, body = core.handle("GET", "/store")
        assert status == 200
        view = json.loads(body)
        assert view["stores"] == [{"backend": "sqlite", "checkpoints": ["a", "b"]}]
        assert view["tick"] == server.tick_count

    def test_checkpointed_server_restores_from_the_store_file(self, tmp_path):
        """The operator loop end to end: POST /checkpoint, lose the
        process, reattach a fresh store handle, resume."""
        from repro.backends import SQLiteStateStore
        from repro.server.snapshot import restore_server_from_store

        sim, server, store = self.boot_with_store(tmp_path)
        core = GatewayCore(server)
        sim.run_until(500.0)
        core.handle("POST", "/checkpoint", json.dumps({"key": "dr"}))
        sim.run_until(sim.now + 2 * TICK_MS)
        del server, sim  # SIGKILL semantics: never stopped, never closed

        reattached = SQLiteStateStore(str(tmp_path / "gateway.db"))
        restored = restore_server_from_store(reattached, "dr", handlers={})
        restored.sim.run_until(restored.sim.now + 5 * TICK_MS)
        assert InvariantAuditor().check_server(restored) == []
        restored.close()

    def test_malformed_checkpoint_bodies_rejected(self, tmp_path):
        sim, server, __ = self.boot_with_store(tmp_path)
        core = GatewayCore(server)
        for body in (None, "", "not json", json.dumps({}), json.dumps({"key": ""})):
            status, __, payload = core.handle("POST", "/checkpoint", body)
            assert status == 400, (body, payload)
        assert core.control.pending_count() == 0

    def test_checkpoint_over_real_http(self, tmp_path):
        import urllib.request

        from repro.gateway.app import serve_gateway

        sim, server, store = self.boot_with_store(tmp_path)
        sim.run_until(300.0)
        http = serve_gateway(server)
        try:
            request = urllib.request.Request(
                f"http://127.0.0.1:{http.port}/checkpoint",
                data=json.dumps({"key": "via-http"}).encode(),
                method="POST",
            )
            with urllib.request.urlopen(request) as response:
                assert response.status == 202
            sim.run_until(sim.now + 2 * TICK_MS)
            with urllib.request.urlopen(
                f"http://127.0.0.1:{http.port}/store"
            ) as response:
                view = json.loads(response.read())
        finally:
            http.stop()
        assert view["stores"][0]["checkpoints"] == ["via-http"]
