"""Differential tests for the sharded cluster.

Two anchors:

* the **1-shard cluster is the legacy server**: every routing decision
  degenerates to shard 0 and no bus message ever exists, so the facade
  must produce byte-identical per-client packet streams to a plain
  ``GameServer`` run of the same seeded workload;
* **N-shard runs are bit-reproducible**: the same seeded workload on the
  same shard count produces identical packet streams and identical bus
  traffic run-over-run — the determinism contract E11 rests on.
"""

import hashlib

from repro.bots.workload import BehaviorMix, Workload, WorkloadSpec
from repro.cluster import ShardedCluster
from repro.policies.zero import ZeroBoundsPolicy
from repro.server.config import ServerConfig
from repro.server.engine import GameServer
from repro.sim.simulator import Simulation
from repro.world.world import World

SEED = 77
DURATION_MS = 8_000.0


def make_spec(movement="hotspot"):
    return WorkloadSpec(
        bots=8,
        seed=SEED,
        movement=movement,
        behavior=BehaviorMix(build=0.1, dig=0.05, chat=0.01),
        arrival_stagger_ms=40.0,
    )


def tap(server):
    """Wrap connect so every client's delivered packets are captured."""
    captures: dict[str, list] = {}
    original_connect = server.connect

    def tapping_connect(name, handler, **kwargs):
        log = captures.setdefault(name, [])

        def tapped(delivered):
            log.append(delivered.packet)
            handler(delivered)

        return original_connect(name, tapped, **kwargs)

    server.connect = tapping_connect
    return captures


def run_legacy():
    sim = Simulation()
    server = GameServer(
        sim,
        world=World(seed=SEED),
        config=ServerConfig(seed=SEED, synchronous_delivery=True, mob_count=3),
        policy=ZeroBoundsPolicy(),
    )
    server.start()
    workload = Workload(sim, server, make_spec())
    captures = tap(server)
    workload.start()
    sim.run_until(DURATION_MS)
    return captures, server


def run_cluster(shards, movement="hotspot", duration_ms=DURATION_MS):
    sim = Simulation()
    cluster = ShardedCluster(
        sim,
        shards=shards,
        strip_width=4,
        config=ServerConfig(seed=SEED, synchronous_delivery=True, mob_count=3),
        policy_factory=ZeroBoundsPolicy,
    )
    cluster.start()
    workload = Workload(sim, cluster, make_spec(movement))
    captures = tap(cluster)
    workload.start()
    sim.run_until(duration_ms)
    return captures, cluster


def digest(captures) -> str:
    h = hashlib.sha256()
    for name in sorted(captures):
        h.update(name.encode())
        for packet in captures[name]:
            h.update(repr(packet).encode())
    return h.hexdigest()


def test_one_shard_cluster_is_packet_identical_to_legacy_server():
    legacy, legacy_server = run_legacy()
    facade, cluster = run_cluster(shards=1)

    assert set(legacy) == set(facade)
    for name in legacy:
        assert legacy[name] == facade[name], f"packet stream diverged for {name}"
    assert legacy_server.transport.total_bytes() == cluster.total_bytes()
    assert legacy_server.transport.total_packets() == cluster.total_packets()


def test_one_shard_cluster_never_touches_the_bus():
    __, cluster = run_cluster(shards=1)
    assert cluster.bus.total_messages == 0
    assert cluster.handoffs == 0
    assert cluster.shards[0].ghost_ids == set()


def test_two_shard_run_is_bit_reproducible():
    first, first_cluster = run_cluster(shards=2, movement="gathering")
    second, second_cluster = run_cluster(shards=2, movement="gathering")
    assert digest(first) == digest(second)
    assert first_cluster.bus.total_bytes == second_cluster.bus.total_bytes
    assert (
        first_cluster.bus.messages_by_kind == second_cluster.bus.messages_by_kind
    )
    assert first_cluster.handoffs == second_cluster.handoffs


def test_four_shard_run_is_bit_reproducible():
    first, first_cluster = run_cluster(shards=4, movement="gathering")
    second, second_cluster = run_cluster(shards=4, movement="gathering")
    assert digest(first) == digest(second)
    assert first_cluster.bus.total_bytes == second_cluster.bus.total_bytes
    assert first_cluster.handoffs == second_cluster.handoffs


def test_multi_shard_run_actually_federates():
    """The reproducibility claims above are vacuous if nothing crosses
    shards — pin that the gathering workload exercises the machinery."""
    __, cluster = run_cluster(shards=2, movement="gathering", duration_ms=12_000.0)
    assert cluster.bus.total_messages > 0
    assert cluster.bus.messages_by_kind.get("PeerSnapshot", 0) > 0
    assert cluster.bus.messages_by_kind.get("PeerUpdates", 0) > 0
    assert cluster.handoffs > 0
    assert any(shard.ghost_ids for shard in cluster.shards)
    # Every client is accounted for exactly once across the cluster.
    assert cluster.player_count == 8
    assert sum(len(shard.sessions) for shard in cluster.shards) == 8
