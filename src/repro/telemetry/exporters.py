"""Exporters: JSONL event stream, Prometheus text format, terminal summary.

Three consumers, three formats:

* ``export_jsonl`` — the full timeline (spans, events, final metric
  snapshot) as one JSON object per line, for offline analysis next to an
  experiment's JSON results;
* ``prometheus_text`` — counters/gauges/histograms (and span-duration
  summaries) in the Prometheus exposition format, so a paper-scale run
  can be scraped or diffed with standard tooling;
* ``render_summary`` — a human-readable terminal table reusing
  :func:`repro.metrics.report.render_table`.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import IO

from repro.metrics.collector import Histogram
from repro.metrics.report import render_table
from repro.telemetry.hub import LabelSet, Telemetry
from repro.telemetry.phases import TickPhaseProfiler

#: Quantiles reported for every histogram/span summary export.
EXPORT_QUANTILES = (0.5, 0.95, 0.99)


# ----------------------------------------------------------------------
# JSONL
# ----------------------------------------------------------------------


def export_jsonl(telemetry: Telemetry, target: str | Path | IO[str]) -> int:
    """Write the hub's timeline to ``target``; returns lines written.

    Line types: ``meta`` (once, first), ``span``, ``event``, and a final
    ``metrics`` snapshot. Spans and events are each written in recording
    order; both carry sim and wall timestamps for correlation.
    """
    if hasattr(target, "write"):
        return _write_jsonl(telemetry, target)
    with open(target, "w", encoding="utf-8") as handle:
        return _write_jsonl(telemetry, handle)


def _write_jsonl(telemetry: Telemetry, handle: IO[str]) -> int:
    lines = 0

    def emit(payload: dict) -> None:
        nonlocal lines
        handle.write(json.dumps(payload, separators=(",", ":")) + "\n")
        lines += 1

    emit(
        {
            "type": "meta",
            "spans": len(telemetry.spans),
            "events": len(telemetry.events),
            "dropped_spans": telemetry.dropped_spans,
            "dropped_events": telemetry.dropped_events,
        }
    )
    for span in telemetry.spans:
        emit(
            {
                "type": "span",
                "name": span.name,
                "id": span.span_id,
                "parent": span.parent_id,
                "sim_ms": span.sim_time,
                "wall_s": span.wall_start,
                "duration_ms": span.duration_ms,
                "labels": dict(span.labels),
            }
        )
    for event in telemetry.events:
        emit(
            {
                "type": "event",
                "kind": event.kind,
                "sim_ms": event.sim_time,
                "wall_s": event.wall_time,
                "fields": dict(event.fields),
            }
        )
    emit({"type": "metrics", "values": telemetry.snapshot()})
    return lines


# ----------------------------------------------------------------------
# Prometheus text format
# ----------------------------------------------------------------------


def _sanitize(name: str) -> str:
    """Prometheus metric names: [a-zA-Z_:][a-zA-Z0-9_:]*."""
    cleaned = "".join(
        char if char.isalnum() or char in "_:" else "_" for char in name
    )
    if not cleaned or not (cleaned[0].isalpha() or cleaned[0] in "_:"):
        cleaned = "_" + cleaned
    return cleaned


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _render_labels(labels: LabelSet, extra: tuple[tuple[str, str], ...] = ()) -> str:
    pairs = tuple(labels) + extra
    if not pairs:
        return ""
    body = ",".join(
        f'{_sanitize(key)}="{_escape_label_value(value)}"' for key, value in pairs
    )
    return "{" + body + "}"


def _histogram_lines(name: str, labels: LabelSet, histogram: Histogram) -> list[str]:
    lines = []
    for quantile in EXPORT_QUANTILES:
        rendered = _render_labels(labels, (("quantile", f"{quantile:g}"),))
        lines.append(f"{name}{rendered} {histogram.quantile(quantile):g}")
    base = _render_labels(labels)
    lines.append(f"{name}_sum{base} {histogram.total:g}")
    lines.append(f"{name}_count{base} {histogram.count}")
    return lines


def prometheus_text(telemetry: Telemetry, prefix: str = "repro_") -> str:
    """The hub's metrics in Prometheus exposition format.

    Histograms (and per-span-name wall-clock durations, exported as
    ``<prefix>span_duration_ms{span="..."}``) are rendered as summaries:
    quantile samples plus ``_sum``/``_count``.
    """
    out: list[str] = []
    typed: set[str] = set()

    def declare(metric: str, kind: str) -> None:
        # One TYPE line per metric family, even across label sets.
        if metric not in typed:
            typed.add(metric)
            out.append(f"# TYPE {metric} {kind}")

    for (name, labels), counter in sorted(telemetry.counters().items()):
        metric = _sanitize(prefix + name)
        declare(metric, "counter")
        out.append(f"{metric}{_render_labels(labels)} {counter.value:g}")
    for (name, labels), gauge in sorted(telemetry.gauges().items()):
        metric = _sanitize(prefix + name)
        declare(metric, "gauge")
        out.append(f"{metric}{_render_labels(labels)} {gauge.value:g}")
    for (name, labels), histogram in sorted(telemetry.histograms().items()):
        metric = _sanitize(prefix + name)
        declare(metric, "summary")
        out.extend(_histogram_lines(metric, labels, histogram))

    span_metric = _sanitize(prefix + "span_duration_ms")
    for name in telemetry.span_names():
        histogram = telemetry.span_stats(name)
        if histogram is None:
            continue
        declare(span_metric, "summary")
        out.extend(_histogram_lines(span_metric, (("span", name),), histogram))

    return "\n".join(out) + ("\n" if out else "")


def export_prometheus(telemetry: Telemetry, path: str | Path, prefix: str = "repro_") -> None:
    """Write :func:`prometheus_text` to ``path``."""
    Path(path).write_text(prometheus_text(telemetry, prefix=prefix), encoding="utf-8")


# ----------------------------------------------------------------------
# Terminal summary
# ----------------------------------------------------------------------


def render_summary(telemetry: Telemetry) -> str:
    """Scalar metrics + span percentiles + tick-phase table, for terminals."""
    sections: list[str] = []

    snapshot = telemetry.snapshot()
    if snapshot:
        rows = [(name, value) for name, value in sorted(snapshot.items())]
        sections.append(render_table(("metric", "value"), rows, title="Telemetry metrics"))

    span_rows = telemetry.span_summary()
    if span_rows:
        body = [
            (
                row["span"],
                row["count"],
                row["total_ms"],
                row["p50_ms"],
                row["p95_ms"],
                row["p99_ms"],
            )
            for row in span_rows
        ]
        sections.append(
            render_table(
                ("span", "count", "total ms", "p50 ms", "p95 ms", "p99 ms"),
                body,
                title="Span durations (wall clock)",
            )
        )

    profiler = TickPhaseProfiler(telemetry)
    if profiler.phase_names():
        sections.append(profiler.render())

    if not sections:
        return "telemetry: no data recorded"
    return "\n\n".join(sections)
