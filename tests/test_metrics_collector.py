"""Unit tests for metric primitives."""

import pytest

from repro.metrics.collector import Counter, Gauge, Histogram, MetricsRegistry, TimeSeries


class TestCounter:
    def test_increment(self):
        counter = Counter("c")
        counter.increment()
        counter.increment(2.5)
        assert counter.value == 3.5

    def test_rejects_decrease(self):
        with pytest.raises(ValueError):
            Counter("c").increment(-1)

    def test_add_is_increment_alias(self):
        counter = Counter("c")
        counter.add(4.0)
        counter.add()
        assert counter.value == 5.0
        with pytest.raises(ValueError):
            counter.add(-1)

    def test_reset(self):
        counter = Counter("c")
        counter.increment(9)
        counter.reset()
        assert counter.value == 0.0


class TestGauge:
    def test_set_and_add(self):
        gauge = Gauge("g")
        gauge.set(10.0)
        gauge.add(-3.0)
        assert gauge.value == 7.0

    def test_reset(self):
        gauge = Gauge("g")
        gauge.set(-4.0)
        gauge.reset()
        assert gauge.value == 0.0


class TestTimeSeries:
    def test_append_and_len(self):
        series = TimeSeries("s")
        series.record(0.0, 1.0)
        series.record(10.0, 2.0)
        assert len(series) == 2

    def test_rejects_out_of_order(self):
        series = TimeSeries("s")
        series.record(10.0, 1.0)
        with pytest.raises(ValueError):
            series.record(5.0, 2.0)

    def test_window(self):
        series = TimeSeries("s")
        for t in range(5):
            series.record(float(t), float(t * 10))
        assert series.window(1.0, 4.0) == [10.0, 20.0, 30.0]

    def test_rate_per_second(self):
        series = TimeSeries("s")
        series.record(0.0, 0.0)
        series.record(2000.0, 100.0)  # 100 units over 2 s
        assert series.rate_per_second() == pytest.approx(50.0)

    def test_rate_with_insufficient_data(self):
        series = TimeSeries("s")
        assert series.rate_per_second() == 0.0
        series.record(0.0, 5.0)
        assert series.rate_per_second() == 0.0

    def test_reset_allows_earlier_times_again(self):
        series = TimeSeries("s")
        series.record(100.0, 1.0)
        series.reset()
        assert len(series) == 0
        series.record(0.0, 2.0)  # would raise without the reset
        assert series.values == [2.0]


class TestHistogram:
    def test_mean_and_count(self):
        hist = Histogram("h")
        for value in (1.0, 2.0, 3.0):
            hist.record(value)
        assert hist.count == 3
        assert hist.mean == pytest.approx(2.0)

    def test_quantiles_have_bounded_relative_error(self):
        hist = Histogram("h", precision=0.02)
        values = [float(v) for v in range(1, 1001)]
        for value in values:
            hist.record(value)
        for q, expected in ((0.5, 500.0), (0.95, 950.0), (0.99, 990.0)):
            assert hist.quantile(q) == pytest.approx(expected, rel=0.05)

    def test_zero_bucket(self):
        hist = Histogram("h", min_value=1.0)
        for _ in range(99):
            hist.record(0.0)
        hist.record(100.0)
        assert hist.quantile(0.5) == 0.0
        assert hist.quantile(1.0) >= 95.0

    def test_empty_quantile_is_zero(self):
        assert Histogram("h").quantile(0.99) == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Histogram("h").record(-0.1)

    def test_rejects_bad_quantile(self):
        with pytest.raises(ValueError):
            Histogram("h").quantile(1.5)

    def test_rejects_bad_construction(self):
        with pytest.raises(ValueError):
            Histogram("h", min_value=0.0)
        with pytest.raises(ValueError):
            Histogram("h", precision=1.5)

    def test_merge(self):
        a = Histogram("a")
        b = Histogram("b")
        for value in (1.0, 2.0):
            a.record(value)
        for value in (3.0, 4.0):
            b.record(value)
        a.merge(b)
        assert a.count == 4
        assert a.mean == pytest.approx(2.5)
        assert a.max_value == 4.0

    def test_merge_rejects_mismatched_buckets(self):
        a = Histogram("a", min_value=0.01)
        b = Histogram("b", min_value=1.0)
        with pytest.raises(ValueError):
            a.merge(b)

    def test_reset_restores_empty_state(self):
        hist = Histogram("h", min_value=1.0)
        hist.record(0.0)
        hist.record(50.0)
        hist.reset()
        assert hist.count == 0
        assert hist.total == 0.0
        assert hist.quantile(0.99) == 0.0
        # Recording after reset behaves like a fresh histogram.
        hist.record(7.0)
        assert hist.count == 1
        assert hist.max_value == 7.0


class TestRegistry:
    def test_same_name_same_instance(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")
        assert registry.series("y") is registry.series("y")
        assert registry.histogram("z") is registry.histogram("z")
        assert registry.gauge("g") is registry.gauge("g")

    def test_snapshot_contains_scalars(self):
        registry = MetricsRegistry()
        registry.counter("sent").increment(5)
        registry.gauge("load").set(0.7)
        snapshot = registry.snapshot()
        assert snapshot == {"sent": 5.0, "load": 0.7}

    def test_reset_clears_all_metrics_but_keeps_instances(self):
        registry = MetricsRegistry()
        counter = registry.counter("sent")
        counter.increment(5)
        gauge = registry.gauge("load")
        gauge.set(0.7)
        series = registry.series("ticks")
        series.record(0.0, 1.0)
        hist = registry.histogram("latency")
        hist.record(3.0)
        registry.reset()
        assert registry.snapshot() == {"sent": 0.0, "load": 0.0}
        assert len(series) == 0
        assert hist.count == 0
        # Same instances survive: handles cached by callers stay valid.
        assert registry.counter("sent") is counter
        assert registry.gauge("load") is gauge
