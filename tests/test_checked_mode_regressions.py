"""Regression tests for the repartitioning bugs checked mode caught.

Four distinct bugs, each with the failure mode the invariant auditor (or
its fuzz harness) first exposed:

1. **Stale deadline on merge** — merging tightened an existing target
   subscription's bounds but only re-armed the deadline heap when the
   *source* had backlog, so the target's queue kept its old (later)
   deadline and flushed late.
2. **Elastic rate-accounting thrash** — the elastic policy diffed raw
   ``commit_count`` against baselines that were not carried through
   merge/split, so a freshly merged region's whole commit history read
   as one window of traffic and the region split right back (thrash).
3. **Flush-reason misattribution** — the commit/set_bounds flush paths
   classified every non-numerical flush as "staleness", so order-bound
   trips were invisible in the stats.
4. **Re-subscribe bypasses the bound re-check** — re-subscribing (the
   interest-refresh path) overwrote the bounds without the immediate
   re-check/deadline re-push that ``set_bounds`` performs.
"""

import math

import pytest

from repro.core.bounds import Bounds
from repro.core.invariants import InvariantAuditor
from repro.core.manager import DyconitSystem
from repro.core.partition import ChunkPartitioner
from repro.core.policy import LoadSignals, Policy
from repro.policies.elastic import ElasticPartitioningPolicy
from repro.policies.fixed import FixedBoundsPolicy
from repro.world.events import EntityMoveEvent
from repro.world.geometry import Vec3

from tests.conftest import RecordingSubscriber


class StaticPolicy(Policy):
    def __init__(self, bounds=Bounds(math.inf, math.inf)):
        self.bounds = bounds

    def initial_bounds(self, system, dyconit_id, subscriber):
        return self.bounds


def move(entity_id=1, time=0.0, x=0.0):
    return EntityMoveEvent(time, entity_id, Vec3(x, 0, 0), Vec3(x + 1, 0, 0))


CHUNK_A = ("chunk", 0, 0)
CHUNK_B = ("chunk", 1, 0)
MERGED = ("region", 4, 0, 0)


@pytest.fixture
def clock():
    return {"now": 0.0}


@pytest.fixture
def system(clock):
    return DyconitSystem(
        StaticPolicy(), ChunkPartitioner(), time_source=lambda: clock["now"]
    )


# ----------------------------------------------------------------------
# Bug 1 — merge tightens target bounds without re-arming the deadline
# ----------------------------------------------------------------------


def test_merge_tightened_bounds_rearm_deadline(system, clock):
    rec = RecordingSubscriber()
    # Target: loose staleness, with a queued backlog (deadline at 10 s).
    system.subscribe(CHUNK_B, rec.subscriber, bounds=Bounds(math.inf, 10_000.0))
    system.commit_to(CHUNK_B, move(1, time=0.0))
    # Source: tight staleness, *nothing pending* — the buggy path only
    # re-pushed a deadline when the source brought backlog along.
    system.subscribe(CHUNK_A, rec.subscriber, bounds=Bounds(math.inf, 100.0))
    system.merge_dyconits([CHUNK_A], CHUNK_B)

    state = system.get(CHUNK_B).get_state(rec.subscriber.subscriber_id)
    assert state.bounds.staleness_ms == 100.0  # tightest-wins held even before

    # The heap must now cover the 100 ms deadline (I3), not just 10 s.
    assert InvariantAuditor().check(system) == []

    # Behavioural proof: the backlog flushes once 100 ms have passed,
    # not at the stale 10 s deadline.
    clock["now"] = 200.0
    flushed = system.tick()
    assert flushed == 1
    assert rec.delivered_updates


def test_merge_moved_older_backlog_ages_from_true_oldest(system, clock):
    rec = RecordingSubscriber()
    # Target queue pends since t=400; source queue pends since t=0.
    system.subscribe(CHUNK_B, rec.subscriber, bounds=Bounds(math.inf, 1000.0))
    system.subscribe(CHUNK_A, rec.subscriber, bounds=Bounds(math.inf, 1000.0))
    clock["now"] = 400.0
    system.commit_to(CHUNK_B, move(1, time=400.0))
    system.commit_to(CHUNK_A, move(2, time=0.0, x=16.0))
    system.merge_dyconits([CHUNK_A], CHUNK_B)
    state = system.get(CHUNK_B).get_state(rec.subscriber.subscriber_id)
    # Staleness must age from the moved backlog's t=0 head, not t=400.
    assert state.oldest_pending_time == 0.0
    assert InvariantAuditor().check(system) == []
    clock["now"] = 1000.0
    assert system.tick() == 1  # due at 0 + 1000, not 400 + 1000


# ----------------------------------------------------------------------
# Bug 2 — elastic baseline accounting across merge/split
# ----------------------------------------------------------------------


def signals(now: float):
    return LoadSignals(
        now=now, player_count=5, last_tick_duration_ms=10.0,
        smoothed_tick_duration_ms=10.0, tick_budget_ms=50.0,
        outgoing_bytes_per_second=0.0,
    )


def test_quiet_merged_region_stays_merged(clock):
    policy = ElasticPartitioningPolicy(
        inner=FixedBoundsPolicy(Bounds(1000.0, 60_000.0)),
        region_size=4,
        cold_commits_per_second=1.0,
        hot_commits_per_second=8.0,
    )
    system = DyconitSystem(policy, ChunkPartitioner(), time_source=lambda: clock["now"])
    rec = RecordingSubscriber()
    for cx in range(2):
        system.subscribe(("chunk", cx, 0), rec.subscriber)

    # Window 1: busy — both chunks accumulate a large commit history.
    policy.evaluate(system, signals(0.0))  # baseline snapshot
    for step in range(30):
        t = step * 30.0
        clock["now"] = t
        system.commit_to(CHUNK_A, move(1, time=t))
        system.commit_to(CHUNK_B, move(2, time=t, x=16.0))
    clock["now"] = 1000.0
    policy.evaluate(system, signals(1000.0))  # 60/s — far too hot to merge
    assert policy.merges == 0

    # Window 2: silence — the region merges.
    clock["now"] = 2000.0
    policy.evaluate(system, signals(2000.0))
    assert policy.merges == 1
    assert system.is_merged(CHUNK_A)

    # Windows 3 and 4: still silent. The merged dyconit's commit counter
    # carries the whole pre-merge history (60 commits); without baseline
    # carry the policy reads that as 60 commits/s of fresh traffic and
    # splits the region right back — merge/split thrash on a dead region.
    for window_end in (3000.0, 4000.0):
        clock["now"] = window_end
        policy.evaluate(system, signals(window_end))
        assert policy.splits == 0
        assert system.is_merged(CHUNK_A)
        assert system.get(MERGED) is not None


def test_split_region_rates_restart_from_zero(clock):
    policy = ElasticPartitioningPolicy(
        inner=FixedBoundsPolicy(Bounds(1000.0, 60_000.0)),
        region_size=4,
        cold_commits_per_second=1.0,
        hot_commits_per_second=8.0,
    )
    system = DyconitSystem(policy, ChunkPartitioner(), time_source=lambda: clock["now"])
    rec = RecordingSubscriber()
    for cx in range(2):
        system.subscribe(("chunk", cx, 0), rec.subscriber)
    system.merge_dyconits([CHUNK_A, CHUNK_B], MERGED)

    policy.evaluate(system, signals(0.0))  # baseline snapshot
    # Window 1: hot — the region splits.
    for step in range(20):
        t = step * 50.0
        clock["now"] = t
        system.commit_to(CHUNK_A, move(1, time=t))
    clock["now"] = 1000.0
    policy.evaluate(system, signals(1000.0))
    assert policy.splits == 1
    assert not system.is_merged(CHUNK_A)

    # Window 2: a modest trickle on the released chunks. Their counters
    # restarted at zero; a stale baseline (or a leftover region baseline
    # gone negative) would misprice these rates and re-thrash.
    for step in range(3):
        t = 1000.0 + step * 200.0
        clock["now"] = t
        system.commit_to(CHUNK_A, move(1, time=t))
    clock["now"] = 2000.0
    policy.evaluate(system, signals(2000.0))
    assert policy.last_window_rates[CHUNK_A] == pytest.approx(3.0)
    assert all(rate >= 0.0 for rate in policy.last_window_rates.values())


# ----------------------------------------------------------------------
# Bug 3 — flush reason must name the dimension that tripped
# ----------------------------------------------------------------------


def test_order_bound_flush_reported_as_order(system):
    rec = RecordingSubscriber()
    system.subscribe(
        CHUNK_A, rec.subscriber, bounds=Bounds(math.inf, math.inf, order=2)
    )
    system.commit_to(CHUNK_A, move(1, time=0.0))
    system.commit_to(CHUNK_A, move(2, time=0.0, x=2.0))
    assert system.stats.flushes == 0
    system.commit_to(CHUNK_A, move(3, time=0.0, x=4.0))  # 3 pending > order 2
    assert system.stats.flushes == 1
    assert system.stats.flushes_order == 1
    # The old code filed this under "staleness" — with an *infinite*
    # staleness bound, poisoning the per-reason breakdown E-tables use.
    assert system.stats.flushes_staleness == 0
    assert system.stats.as_dict()["flushes_order"] == 1


def test_set_bounds_order_trip_reported_as_order(system):
    rec = RecordingSubscriber()
    system.subscribe(CHUNK_A, rec.subscriber, bounds=Bounds(math.inf, math.inf))
    system.commit_to(CHUNK_A, move(1, time=0.0))
    system.commit_to(CHUNK_A, move(2, time=0.0, x=2.0))
    system.set_bounds(
        CHUNK_A, rec.subscriber.subscriber_id, Bounds(math.inf, math.inf, order=1)
    )
    assert system.stats.flushes_order == 1
    assert system.stats.flushes_staleness == 0


def test_numerical_keeps_precedence_over_staleness(system, clock):
    # Zero bounds: both dimensions exceeded at once; numerical must win
    # (test_zero_bounds_middleware_never_merges depends on this).
    rec = RecordingSubscriber()
    system.subscribe(CHUNK_A, rec.subscriber, bounds=Bounds.ZERO)
    system.commit_to(CHUNK_A, move(1, time=0.0))
    assert system.stats.flushes_numerical == 1
    assert system.stats.flushes_staleness == 0


# ----------------------------------------------------------------------
# Bug 4 — re-subscribe must re-check bounds like set_bounds does
# ----------------------------------------------------------------------


def test_resubscribe_tighter_staleness_rearms_deadline(system, clock):
    rec = RecordingSubscriber()
    system.subscribe(CHUNK_A, rec.subscriber, bounds=Bounds(math.inf, 10_000.0))
    system.commit_to(CHUNK_A, move(1, time=0.0))
    # Interest refresh re-subscribes with tighter bounds (e.g. the player
    # moved closer). The old path overwrote state.bounds and returned.
    system.subscribe(CHUNK_A, rec.subscriber, bounds=Bounds(math.inf, 100.0))
    assert InvariantAuditor().check(system) == []
    clock["now"] = 200.0
    assert system.tick() == 1
    assert rec.delivered_updates


def test_resubscribe_already_exceeded_flushes_immediately(system, clock):
    rec = RecordingSubscriber()
    system.subscribe(CHUNK_A, rec.subscriber, bounds=Bounds(math.inf, 10_000.0))
    system.commit_to(CHUNK_A, move(1, time=0.0))
    clock["now"] = 500.0
    # The backlog is already 500 ms old; a 100 ms promise cannot wait for
    # the next tick.
    system.subscribe(CHUNK_A, rec.subscriber, bounds=Bounds(math.inf, 100.0))
    assert rec.delivered_updates
    assert system.stats.flushes_staleness == 1


def test_resubscribe_same_bounds_is_noop(system):
    rec = RecordingSubscriber()
    system.subscribe(CHUNK_A, rec.subscriber, bounds=Bounds(5.0, 1000.0))
    system.commit_to(CHUNK_A, move(1, time=0.0))
    checks_before = system.stats.bound_checks
    heap_before = len(system._deadline_heap)
    state = system.subscribe(CHUNK_A, rec.subscriber, bounds=Bounds(5.0, 1000.0))
    assert state.has_pending  # queue untouched
    assert system.stats.bound_checks == checks_before  # no redundant re-check
    assert len(system._deadline_heap) == heap_before
