"""Unit tests for the static policies (zero, infinite, fixed)."""

from repro.core.bounds import Bounds
from repro.core.manager import DyconitSystem
from repro.policies.fixed import DEFAULT_FIXED_BOUNDS, FixedBoundsPolicy
from repro.policies.infinite import InfiniteBoundsPolicy
from repro.policies.zero import ZeroBoundsPolicy
from repro.world.events import EntityMoveEvent
from repro.world.geometry import Vec3

from tests.conftest import RecordingSubscriber


def move(entity_id=1, time=0.0):
    return EntityMoveEvent(time, entity_id, Vec3(0, 0, 0), Vec3(1, 0, 0))


def build_system(policy):
    return DyconitSystem(policy, time_source=lambda: 0.0)


class TestZeroBounds:
    def test_initial_bounds_are_zero(self):
        system = build_system(ZeroBoundsPolicy())
        rec = RecordingSubscriber()
        state = system.subscribe("unit", rec.subscriber)
        assert state.bounds.is_zero

    def test_every_commit_delivers_immediately(self):
        system = build_system(ZeroBoundsPolicy())
        rec = RecordingSubscriber()
        system.subscribe(("chunk", 0, 0), rec.subscriber)
        for index in range(5):
            system.commit(move(entity_id=index + 1))
        assert len(rec.delivered_updates) == 5
        assert system.stats.updates_merged == 0


class TestInfiniteBounds:
    def test_initial_bounds_are_infinite(self):
        system = build_system(InfiniteBoundsPolicy())
        rec = RecordingSubscriber()
        state = system.subscribe("unit", rec.subscriber)
        assert state.bounds.is_infinite

    def test_nothing_is_ever_delivered(self):
        system = build_system(InfiniteBoundsPolicy())
        rec = RecordingSubscriber()
        system.subscribe(("chunk", 0, 0), rec.subscriber)
        for index in range(100):
            system.commit(move(entity_id=index % 3 + 1, time=float(index)))
        system.tick()
        assert rec.delivered_updates == []

    def test_merging_still_caps_queue_size(self):
        system = build_system(InfiniteBoundsPolicy())
        rec = RecordingSubscriber()
        system.subscribe(("chunk", 0, 0), rec.subscriber)
        for index in range(100):
            system.commit(move(entity_id=1, time=float(index)))
        state = system.get(("chunk", 0, 0)).get_state(rec.subscriber.subscriber_id)
        assert len(state.pending) == 1
        assert system.stats.updates_merged == 99

    def test_forced_flush_still_works(self):
        system = build_system(InfiniteBoundsPolicy())
        rec = RecordingSubscriber()
        system.subscribe(("chunk", 0, 0), rec.subscriber)
        system.commit(move())
        system.flush_subscriber(rec.subscriber.subscriber_id)
        assert len(rec.delivered_updates) == 1


class TestFixedBounds:
    def test_default_bounds(self):
        policy = FixedBoundsPolicy()
        system = build_system(policy)
        rec = RecordingSubscriber()
        state = system.subscribe("unit", rec.subscriber)
        assert state.bounds == DEFAULT_FIXED_BOUNDS

    def test_custom_bounds_apply_uniformly(self):
        bounds = Bounds(3.0, 333.0)
        system = build_system(FixedBoundsPolicy(bounds))
        rec = RecordingSubscriber()
        for dyconit_id in ("a", "b", ("chunk", 5, 5)):
            state = system.subscribe(dyconit_id, rec.subscriber)
            assert state.bounds == bounds

    def test_repr_shows_bounds(self):
        assert "3.0" in repr(FixedBoundsPolicy(Bounds(3.0, 1.0)))
