"""Entities: players, mobs, dropped items.

Entities are the *dynamic* half of the MVE: unlike blocks they move every
tick, so they dominate the server's outgoing update traffic and are the
main target of dyconit bounds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.world.geometry import ChunkPos, Vec3


class EntityKind(Enum):
    PLAYER = "player"
    ZOMBIE = "zombie"
    SKELETON = "skeleton"
    COW = "cow"
    SHEEP = "sheep"
    ITEM = "item"

    @property
    def is_mob(self) -> bool:
        return self in (EntityKind.ZOMBIE, EntityKind.SKELETON, EntityKind.COW, EntityKind.SHEEP)


@dataclass(slots=True)
class Entity:
    """A dynamic object in the world.

    ``entity_id`` is unique for the lifetime of a world; ids are never
    reused, matching Minecraft semantics where clients key replicas by id.
    """

    entity_id: int
    kind: EntityKind
    position: Vec3
    velocity: Vec3 = field(default_factory=Vec3.zero)
    yaw: float = 0.0
    pitch: float = 0.0
    name: str = ""

    @property
    def chunk_pos(self) -> ChunkPos:
        return self.position.to_chunk_pos()

    @property
    def is_player(self) -> bool:
        return self.kind == EntityKind.PLAYER

    def __repr__(self) -> str:
        return (
            f"Entity(id={self.entity_id}, kind={self.kind.value}, "
            f"pos=({self.position.x:.1f}, {self.position.y:.1f}, {self.position.z:.1f}))"
        )
