#!/usr/bin/env python3
"""Run one experiment group at paper scale and archive its tables.

Usage: python scripts/run_paper_scale.py <e1|e2|e3|e4|e6|e7|e8> [outdir]
           [--jobs N] [--cache-dir DIR]

Writes ``<outdir>/<group>.txt`` with the rendered tables (the numbers
EXPERIMENTS.md records). Groups are separate processes so they can run
in parallel, and ``--jobs N`` additionally shards the cells *within* a
group across N worker processes (results are byte-identical to a serial
run; see README "Running sweeps in parallel"). With ``--cache-dir`` an
interrupted group resumes from its completed cells instead of
restarting. Expect roughly 5-15 minutes per group serially on a
laptop-class machine — e1/e7 run eight 100-bot experiments each.
"""

from __future__ import annotations

import argparse
from pathlib import Path

from repro.experiments import figures

PAPER = dict(bots=100, duration_ms=20_000.0, warmup_ms=8_000.0, seed=42)


def run_group(group: str, jobs: int = 1, cache_dir: str | None = None) -> str:
    sweep = dict(jobs=jobs, cache_dir=cache_dir)
    if group == "e1":
        return figures.bandwidth_by_policy(**PAPER, **sweep)["table"]
    if group == "e2":
        out = figures.capacity_sweep(
            bot_counts=(50, 75, 100, 125, 150, 175),
            duration_ms=12_000.0,
            warmup_ms=6_000.0,
            seed=42,
            **sweep,
        )
        lines = [out["table"], ""]
        for policy, curve in out["curves"].items():
            lines.append(f"{policy}: " + ", ".join(f"{b}->{p:.1f}ms" for b, p in curve))
        lines.append(f"capacity gain: {out['capacity_gain_percent']:.1f}%")
        return "\n".join(lines)
    if group == "e3":
        return figures.inconsistency_by_policy(**PAPER, **sweep)["table"]
    if group == "e4":
        params = dict(PAPER)
        params["bots"] = 60
        params["duration_ms"] = 20_000.0
        params["warmup_ms"] = 6_000.0
        return figures.latency_by_policy(**params, **sweep)["table"]
    if group == "e6":
        # Dynamics is a single long run with in-sim hooks; it has no
        # cells to shard and always runs serially.
        out = figures.dynamics_timeline(
            base_bots=60, burst_bots=120, duration_ms=60_000.0,
            burst_at_ms=20_000.0, burst_end_ms=40_000.0, seed=42,
        )
        return out["table"]
    if group == "e7":
        return figures.policy_summary_table(**PAPER, **sweep)["table"]
    if group == "e8":
        parts = [
            figures.ablation_merging(**PAPER, **sweep)["table"],
            figures.ablation_granularity(**PAPER, **sweep)["table"],
            figures.ablation_policy_period(**PAPER, **sweep)["table"],
        ]
        return "\n\n".join(parts)
    raise SystemExit(f"unknown group {group!r}")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("group", choices=("e1", "e2", "e3", "e4", "e6", "e7", "e8"))
    parser.add_argument("outdir", nargs="?", default="results", type=Path)
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes per group (1 = serial; same output bytes)",
    )
    parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="resume/skip completed cells via a content-addressed cell cache",
    )
    args = parser.parse_args()
    args.outdir.mkdir(exist_ok=True)
    table = run_group(args.group, jobs=args.jobs, cache_dir=args.cache_dir)
    (args.outdir / f"{args.group}.txt").write_text(table + "\n")
    print(table)


if __name__ == "__main__":
    main()
