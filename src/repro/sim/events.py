"""Deterministic event queue for the simulation kernel.

Events are ordered by ``(time, sequence)``. The monotonically increasing
sequence number makes dispatch order deterministic for events scheduled at
the same instant: ties break in scheduling order, never by callback
identity (which would vary between interpreter runs).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable


@dataclass(order=True)
class ScheduledEvent:
    """A callback scheduled at a point in simulated time."""

    time: float
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event so the queue skips it at dispatch time."""
        self.cancelled = True


class EventQueue:
    """Min-heap of :class:`ScheduledEvent`, with O(1) cancellation."""

    def __init__(self) -> None:
        self._heap: list[ScheduledEvent] = []
        self._seq = 0

    def __len__(self) -> int:
        return sum(1 for event in self._heap if not event.cancelled)

    def push(self, time: float, callback: Callable[[], None]) -> ScheduledEvent:
        """Schedule ``callback`` at simulated ``time`` and return a handle."""
        event = ScheduledEvent(time=time, seq=self._seq, callback=callback)
        self._seq += 1
        heapq.heappush(self._heap, event)
        return event

    def peek_time(self) -> float | None:
        """Time of the next live event, or ``None`` if the queue is empty."""
        self._drop_cancelled()
        if not self._heap:
            return None
        return self._heap[0].time

    def pop(self) -> ScheduledEvent | None:
        """Remove and return the next live event, or ``None`` when empty."""
        self._drop_cancelled()
        if not self._heap:
            return None
        return heapq.heappop(self._heap)

    def _drop_cancelled(self) -> None:
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
