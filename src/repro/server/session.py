"""Per-player session state."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.world.geometry import ChunkPos, Vec3

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.server.viewindex import ViewerIndex


class KnownEntityMap(dict):
    """``entity id -> last sent position`` with membership mirrored into a
    :class:`~repro.server.viewindex.ViewerIndex`.

    The codec and the interest manager add and drop replica entries on
    half a dozen paths; hooking the map's own mutators is what keeps the
    reverse ``entity -> knowers`` index *exactly* in lockstep (the
    indexed chunk-crossing fan-out relies on that for packet-for-packet
    equivalence with the brute-force scan). Unbound (``index is None``,
    the default) the map behaves as a plain dict.

    Only the mutators the session/codec actually use are hooked:
    ``[...] = ...``, ``pop`` and ``clear``. Value-only overwrites of an
    existing key (the per-move hot path) do not touch the index.
    """

    __slots__ = ("session", "index")

    def __init__(self) -> None:
        super().__init__()
        self.session: PlayerSession | None = None
        self.index: ViewerIndex | None = None

    def bind(self, session: "PlayerSession", index: "ViewerIndex") -> None:
        """Attach the reverse index (and back-fill any existing entries)."""
        self.session = session
        self.index = index
        for entity_id in self:
            index.on_entity_known(entity_id, session)

    def __setitem__(self, entity_id: int, position: Vec3) -> None:
        index = self.index
        if index is not None and entity_id not in self:
            index.on_entity_known(entity_id, self.session)
        super().__setitem__(entity_id, position)

    def pop(self, entity_id: int, *default):
        index = self.index
        if index is not None and entity_id in self:
            index.on_entity_forgotten(entity_id, self.session)
        return super().pop(entity_id, *default)

    def __delitem__(self, entity_id: int) -> None:
        index = self.index
        if index is not None and entity_id in self:
            index.on_entity_forgotten(entity_id, self.session)
        super().__delitem__(entity_id)

    def clear(self) -> None:
        index = self.index
        if index is not None:
            for entity_id in self:
                index.on_entity_forgotten(entity_id, self.session)
        super().clear()


@dataclass
class PlayerSession:
    """Server-side state for one connected player.

    ``known_entities`` mirrors what the *client* currently knows: the last
    position sent for every entity in view. The codec uses it to choose
    relative-move vs teleport packets and to decide when a spawn packet
    must precede a movement update.
    """

    client_id: int
    entity_id: int
    name: str
    view_distance: int
    #: Chunks currently streamed to this client.
    view_chunks: set[ChunkPos] = field(default_factory=set)
    #: entity id -> last position sent to this client.
    known_entities: KnownEntityMap = field(default_factory=KnownEntityMap)
    #: entity id -> event time of the newest update applied for it. Used
    #: to drop stale updates when flushes from different dyconits arrive
    #: out of cross-dyconit order (per-entity last-writer-wins).
    entity_update_times: dict[int, float] = field(default_factory=dict)
    #: Chunk the player's avatar occupied at the last interest refresh.
    anchor_chunk: ChunkPos | None = None
    connected_at: float = 0.0
    actions_received: int = 0
    packets_sent: int = 0

    def sees_chunk(self, chunk: ChunkPos) -> bool:
        return chunk in self.view_chunks

    def forget_entity(self, entity_id: int) -> bool:
        """Drop an entity from the client's known set; True if it was known."""
        self.entity_update_times.pop(entity_id, None)
        return self.known_entities.pop(entity_id, None) is not None
