"""Differential integration test: zero-bounds dyconits ≡ vanilla.

The paper's correctness anchor: with every bound at zero, the middleware
must be *behaviourally invisible* — every client receives exactly the
same packets, in the same order, as with the direct vanilla broadcast
path. This is what justifies calling the middleware "thin" and makes all
relative measurements meaningful.
"""

from repro.bots.workload import BehaviorMix, Workload, WorkloadSpec
from repro.policies.zero import ZeroBoundsPolicy
from repro.server.config import ServerConfig
from repro.server.engine import GameServer
from repro.sim.simulator import Simulation
from repro.world.world import World


def run_capture(direct_mode: bool, duration_ms: float = 8_000.0):
    """Run a small busy workload; capture per-client packet streams."""
    sim = Simulation()
    server = GameServer(
        sim,
        world=World(seed=77),
        config=ServerConfig(seed=77, synchronous_delivery=True, mob_count=3),
        policy=None if direct_mode else ZeroBoundsPolicy(),
        direct_mode=direct_mode,
    )
    server.start()
    spec = WorkloadSpec(
        bots=8,
        seed=77,
        movement="hotspot",
        behavior=BehaviorMix(build=0.1, dig=0.05, chat=0.01),
        arrival_stagger_ms=40.0,
    )
    workload = Workload(sim, server, spec)

    captures: dict[str, list] = {}
    original_connect = server.connect

    def tapping_connect(name, handler, **kwargs):
        log = captures.setdefault(name, [])

        def tapped(delivered):
            log.append(delivered.packet)
            handler(delivered)

        return original_connect(name, tapped, **kwargs)

    server.connect = tapping_connect
    workload.start()
    sim.run_until(duration_ms)
    return captures, server


def test_zero_bounds_is_packet_identical_to_vanilla():
    vanilla, vanilla_server = run_capture(direct_mode=True)
    zero, zero_server = run_capture(direct_mode=False)

    assert set(vanilla) == set(zero)
    for name in vanilla:
        assert vanilla[name] == zero[name], f"packet stream diverged for {name}"

    assert vanilla_server.transport.total_bytes() == zero_server.transport.total_bytes()
    assert (
        vanilla_server.transport.packets_by_kind()
        == zero_server.transport.packets_by_kind()
    )


def test_zero_bounds_middleware_never_merges():
    __, server = run_capture(direct_mode=False, duration_ms=4_000.0)
    assert server.dyconits.stats.updates_merged == 0
    assert server.dyconits.stats.flushes == server.dyconits.stats.flushes_numerical
