"""E9 — resilience under packet loss and session churn.

Regenerates the fault/churn sweep: each policy runs the same seeded
workload through the fault-injection layer (independent + bursty loss,
latency spikes) while a churn schedule crashes and rejoins bots. The
rows report egress bandwidth, fault-layer drops, reconnects, staleness
and tick-rate degradation; the assertions pin the qualitative shape
(zero-loss plans drop nothing, loss drops packets monotonically, churn
produces reconnects, the server keeps ticking).
"""

import pytest

from repro.experiments.figures import fault_churn_sweep


@pytest.mark.benchmark(group="e9-faults", min_rounds=1, max_time=1.0, warmup=False)
def test_e9_fault_churn_sweep(benchmark, scale, jobs):
    loss_rates = (0.0, 0.01, 0.05)
    result = benchmark.pedantic(
        fault_churn_sweep,
        kwargs=dict(
            bots=scale["bots"],
            duration_ms=scale["duration_ms"],
            warmup_ms=scale["warmup_ms"],
            loss_rates=loss_rates,
            policies=("vanilla", "adaptive"),
            churn=True,
            jobs=jobs,
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(result["table"])

    by_point = result["results"]
    for policy in ("vanilla", "adaptive"):
        # A zero-rate plan injects nothing...
        assert by_point[(policy, 0.0)].packets_dropped == 0
        # ...and higher configured loss drops strictly more packets.
        drops = [by_point[(policy, loss)].packets_dropped for loss in loss_rates]
        assert drops == sorted(drops)
        assert drops[-1] > drops[1] > 0
        # Churn produced full crash->rejoin cycles and the transport saw
        # the rejoins as reconnects.
        for loss in loss_rates:
            point = by_point[(policy, loss)]
            assert point.churn_crashes > 0
            assert point.reconnects > 0
            # The server kept ticking through faults and churn.
            assert point.effective_tick_rate_hz > 10.0

    # The dyconit mode keeps its bandwidth advantage under faults.
    for loss in loss_rates:
        vanilla = by_point[("vanilla", loss)]
        adaptive = by_point[("adaptive", loss)]
        assert (
            adaptive.steady_bytes_per_second < vanilla.steady_bytes_per_second
        )
