"""Chunk→shard ownership map.

The router is the cluster's *static* partitioning function: every chunk
column is owned by exactly one shard, every shard owns a contiguous
(periodic) set of vertical chunk strips, and everyone — shards, the
facade, the invariant auditor — derives ownership from the same pure
function, so there is no ownership state to keep consistent.

Strips run along the z axis: chunk ``(cx, cz)`` belongs to strip
``cx // strip_width`` and the strip belongs to shard ``strip % shards``.
Floor division keeps negative coordinates contiguous, and the modulo
wraps the strip sequence so every shard owns the same share of any large
region. The world origin ``cx == 0`` is always a strip boundary — shard
0 east of it, shard N-1 west — which makes the origin-centred workloads
(village, gathering) natural cross-shard stress tests.
"""

from __future__ import annotations

from repro.world.geometry import ChunkPos, Vec3


class ShardRouter:
    """Pure chunk→shard ownership function for an N-shard cluster."""

    def __init__(self, shards: int, strip_width: int = 4) -> None:
        if shards < 1:
            raise ValueError(f"shard count must be >= 1, got {shards}")
        if strip_width < 1:
            raise ValueError(f"strip width must be >= 1 chunks, got {strip_width}")
        self.shards = shards
        self.strip_width = strip_width

    def shard_for_chunk(self, chunk: ChunkPos) -> int:
        return (chunk.cx // self.strip_width) % self.shards

    def shard_for_position(self, position: Vec3) -> int:
        return self.shard_for_chunk(position.to_chunk_pos())

    def owns(self, shard_id: int, chunk: ChunkPos) -> bool:
        return self.shard_for_chunk(chunk) == shard_id

    def is_border_chunk(self, chunk: ChunkPos) -> bool:
        """True if any of the chunk's 8 neighbours has a different owner."""
        owner = self.shard_for_chunk(chunk)
        for dcx in (-1, 0, 1):
            for dcz in (-1, 0, 1):
                if dcx == 0 and dcz == 0:
                    continue
                neighbour = ChunkPos(chunk.cx + dcx, chunk.cz + dcz)
                if self.shard_for_chunk(neighbour) != owner:
                    return True
        return False
