"""Sharded multi-server world with cross-shard dyconit federation (S16).

``repro.cluster`` partitions the world across N logical server shards.
Each shard is a full :class:`~repro.server.engine.GameServer` — its own
tick loop, interest manager, transport, and dyconit system — owning a
contiguous strip of chunk columns assigned by :class:`ShardRouter`.
Cross-shard visibility reuses the dyconit protocol unchanged: a shard
subscribes to a neighbour's border-chunk dyconits as a *peer* subscriber
under its own :class:`~repro.core.bounds.Bounds`, so bounded staleness
applies identically between servers and between a server and a client.

Determinism is the load-bearing design constraint: all shards run inside
one discrete-event simulation, shards tick in fixed creation order, and
every cross-shard message travels over :class:`InterShardBus` — per-edge
FIFO queues with sequence numbers, drained at a barrier in sorted edge
order — so an N-shard run is a pure function of the seed. The
single-server path is retained untouched as ground truth; the 1-shard
cluster is packet-for-packet identical to it.
"""

from repro.cluster.bus import InterShardBus
from repro.cluster.facade import ClusterWorldView, ShardedCluster
from repro.cluster.router import ShardRouter
from repro.cluster.runner import ParallelShardRunner
from repro.cluster.shard import ShardServer

__all__ = [
    "InterShardBus",
    "ClusterWorldView",
    "ParallelShardRunner",
    "ShardedCluster",
    "ShardRouter",
    "ShardServer",
]
