"""Unit tests for world events (merge keys, weights, spatial routing)."""

from repro.world.block import BlockType
from repro.world.entity import EntityKind
from repro.world.events import (
    BlockChangeEvent,
    ChatEvent,
    EntityDespawnEvent,
    EntityMoveEvent,
    EntitySpawnEvent,
)
from repro.world.geometry import BlockPos, ChunkPos, Vec3


def make_move(entity_id=1, old=(0, 30, 0), new=(1, 30, 0), time=0.0):
    return EntityMoveEvent(
        time=time,
        entity_id=entity_id,
        old_position=Vec3(*old),
        new_position=Vec3(*new),
    )


class TestBlockChangeEvent:
    def test_merge_key_is_per_block(self):
        a = BlockChangeEvent(0.0, BlockPos(1, 2, 3), BlockType.AIR, BlockType.STONE)
        b = BlockChangeEvent(5.0, BlockPos(1, 2, 3), BlockType.STONE, BlockType.DIRT)
        c = BlockChangeEvent(5.0, BlockPos(1, 2, 4), BlockType.AIR, BlockType.STONE)
        assert a.merge_key == b.merge_key
        assert a.merge_key != c.merge_key

    def test_weight_is_one_per_block(self):
        event = BlockChangeEvent(0.0, BlockPos(0, 0, 0), BlockType.AIR, BlockType.STONE)
        assert event.weight == 1.0

    def test_chunk_routing(self):
        event = BlockChangeEvent(0.0, BlockPos(17, 5, -1), BlockType.AIR, BlockType.STONE)
        assert event.chunk_pos == ChunkPos(1, -1)


class TestEntityMoveEvent:
    def test_merge_key_is_per_entity(self):
        assert make_move(1).merge_key == make_move(1, new=(9, 30, 9)).merge_key
        assert make_move(1).merge_key != make_move(2).merge_key

    def test_weight_is_distance_moved(self):
        event = make_move(old=(0, 0, 0), new=(3, 0, 4))
        assert event.weight == 5.0

    def test_routes_to_destination_chunk(self):
        event = make_move(old=(0, 0, 0), new=(20, 0, 0))
        assert event.chunk_pos == ChunkPos(1, 0)


class TestSpawnDespawn:
    def test_despawn_supersedes_spawn(self):
        spawn = EntitySpawnEvent(0.0, 7, EntityKind.PLAYER, Vec3(0, 0, 0))
        despawn = EntityDespawnEvent(1.0, 7, Vec3(0, 0, 0))
        assert spawn.merge_key == despawn.merge_key

    def test_spawn_weight_forces_prompt_delivery(self):
        spawn = EntitySpawnEvent(0.0, 7, EntityKind.PLAYER, Vec3(0, 0, 0))
        # Heavier than any plausible numerical bound on a view-area dyconit.
        assert spawn.weight >= 100.0

    def test_spawn_does_not_merge_with_moves(self):
        spawn = EntitySpawnEvent(0.0, 7, EntityKind.PLAYER, Vec3(0, 0, 0))
        assert spawn.merge_key != make_move(7).merge_key


class TestChatEvent:
    def test_chat_events_never_merge(self):
        a = ChatEvent(0.0, 1, "hello")
        b = ChatEvent(0.0, 1, "world")
        c = ChatEvent(1.0, 1, "hello")
        assert a.merge_key != b.merge_key
        assert a.merge_key != c.merge_key

    def test_chat_is_global(self):
        assert ChatEvent(0.0, 1, "hi").chunk_pos is None


def test_events_are_immutable():
    event = make_move()
    try:
        event.entity_id = 99
        mutated = True
    except AttributeError:
        mutated = False
    assert not mutated
