#!/usr/bin/env python3
"""Overload and adapt: watch the dynamic policy servo in real time.

A base population plays normally; at t=20 s a burst of extra players
floods in, pushing the server toward its 50 ms tick budget; at t=40 s
they leave. The adaptive policy's looseness factor rises to shed load and
falls back to reclaim consistency — printed here as a timeline.

Run:  python examples/overload_adaptive.py
"""

from repro import (
    AdaptiveBoundsPolicy,
    GameServer,
    ServerConfig,
    Simulation,
    Workload,
    WorkloadSpec,
)

BASE_BOTS = 60
BURST_BOTS = 120
DURATION_MS = 60_000


def main() -> None:
    sim = Simulation()
    policy = AdaptiveBoundsPolicy()
    server = GameServer(
        sim,
        config=ServerConfig(seed=31, synchronous_delivery=True),
        policy=policy,
    )
    server.start()

    workload = Workload(sim, server, WorkloadSpec(bots=BASE_BOTS, seed=31))
    workload.start()
    sim.schedule_at(20_000, lambda: workload.add_bots(BURST_BOTS))
    sim.schedule_at(40_000, lambda: workload.remove_bots(BURST_BOTS))

    print(f"{'t (s)':>6} | {'players':>7} | {'tick ms':>8} | {'factor':>7} | note")
    print("-" * 55)
    last_bytes = 0

    def report() -> None:
        nonlocal last_bytes
        note = ""
        if sim.now == 20_000:
            note = "<- burst joins"
        elif sim.now == 40_000:
            note = "<- burst leaves"
        print(
            f"{sim.now / 1000:6.0f} | {server.player_count:7d} | "
            f"{server.smoothed_tick_ms:8.2f} | {policy.factor:7.2f} | {note}"
        )
        if sim.now < DURATION_MS:
            sim.schedule(2_000, report)

    sim.schedule_at(2_000, report)
    sim.run_until(DURATION_MS)

    print()
    print("The factor climbs while the burst is in (bounds loosen, load sheds)")
    print("and decays back toward vanilla once the burst leaves.")


if __name__ == "__main__":
    main()
