"""Stdlib HTTP server around :class:`GatewayCore` (S19).

Zero-dependency on purpose: the CI smoke job and any laptop demo only
need the standard library. When FastAPI is installed,
:func:`repro.gateway.fastapi_app.create_app` wraps the same core.
"""

from __future__ import annotations

import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.gateway.core import GatewayCore


class _Handler(BaseHTTPRequestHandler):
    core: GatewayCore  # injected by make_handler

    def _dispatch(self, method: str) -> None:
        length = int(self.headers.get("Content-Length") or 0)
        body = self.rfile.read(length) if length else None
        status, content_type, payload = self.core.handle(method, self.path, body)
        data = payload.encode()
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    def do_GET(self) -> None:  # noqa: N802 — BaseHTTPRequestHandler API
        self._dispatch("GET")

    def do_PUT(self) -> None:  # noqa: N802
        self._dispatch("PUT")

    def do_POST(self) -> None:  # noqa: N802
        self._dispatch("POST")

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass  # operator endpoint; stay quiet on the server's stderr


class GatewayHTTPServer:
    """A :class:`GatewayCore` served over HTTP on a background thread.

    ``port=0`` binds an ephemeral port (read it back from ``.port``
    after ``start()``), which is what the smoke script and tests use.
    """

    def __init__(
        self, core: GatewayCore, host: str = "127.0.0.1", port: int = 0
    ) -> None:
        handler = type("GatewayHandler", (_Handler,), {"core": core})
        self._httpd = ThreadingHTTPServer((host, port), handler)
        self._thread: threading.Thread | None = None

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    def start(self) -> "GatewayHTTPServer":
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="gateway-http", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None


def serve_gateway(target, host: str = "127.0.0.1", port: int = 0) -> GatewayHTTPServer:
    """Attach a gateway to *target* and serve it; returns the running server."""
    return GatewayHTTPServer(GatewayCore(target), host=host, port=port).start()
