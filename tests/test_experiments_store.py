"""Round-trip tests for experiment result persistence."""

from repro.core.bounds import Bounds
from repro.experiments.configs import ExperimentConfig
from repro.experiments.runner import run_experiment
from repro.experiments.store import load_results, result_from_dict, result_to_dict, save_results


def small_result():
    config = ExperimentConfig(
        policy="fixed",
        fixed_bounds=Bounds(5.0, 400.0),
        bots=4,
        duration_ms=3_000.0,
        warmup_ms=1_000.0,
        seed=13,
    )
    return run_experiment(config)


def test_dict_roundtrip_preserves_metrics():
    result = small_result()
    rebuilt = result_from_dict(result_to_dict(result))
    assert rebuilt.bytes_total == result.bytes_total
    assert rebuilt.packets_total == result.packets_total
    assert rebuilt.tick_duration == result.tick_duration
    assert rebuilt.dyconit_stats == result.dyconit_stats
    assert rebuilt.bandwidth_timeline == result.bandwidth_timeline


def test_dict_roundtrip_preserves_config():
    result = small_result()
    rebuilt = result_from_dict(result_to_dict(result))
    assert rebuilt.config.policy == "fixed"
    assert rebuilt.config.fixed_bounds == Bounds(5.0, 400.0)
    assert rebuilt.config.bots == 4
    assert rebuilt.config.seed == 13


def test_file_roundtrip(tmp_path):
    result = small_result()
    path = tmp_path / "results.json"
    save_results(path, {"e-test": result})
    loaded = load_results(path)
    assert set(loaded) == {"e-test"}
    assert loaded["e-test"].bytes_total == result.bytes_total


def test_rebuilt_result_renders_row():
    result = small_result()
    rebuilt = result_from_dict(result_to_dict(result))
    assert rebuilt.as_row()["policy"] == "fixed"
