"""Crash-resume regression tests for the sweep executor.

Two failure shapes from the issue:

* a worker that raises mid-sweep — the cell is retried a bounded number
  of times, reported failed, and never hangs the sweep or poisons the
  other cells;
* a SIGKILL-style truncated store write — a half-written cell file (and
  stray ``.tmp`` litter) is treated as a cache miss, and a rerun
  recomputes exactly the missing cells and produces a valid final store.
"""

import json

import pytest

from repro.experiments.configs import ExperimentConfig
from repro.experiments.parallel import (
    cell_path,
    config_digest,
    load_cell,
    run_sweep,
)


@pytest.fixture()
def cells():
    base = ExperimentConfig(bots=3, duration_ms=2_000.0, warmup_ms=600.0, seed=3)
    return [
        base.with_(name="cell-a", policy="zero"),
        base.with_(name="cell-b", policy="fixed"),
        base.with_(name="cell-c", policy="adaptive", seed=4),
    ]


@pytest.mark.parametrize("jobs", [1, 3])
def test_raising_cell_is_retried_then_reported(cells, tmp_path, jobs):
    """An unknown policy raises inside the worker on every attempt."""
    broken = cells[0].with_(name="cell-broken", policy="definitely-not-a-policy")
    sweep = [broken] + cells[1:]
    report = run_sweep(
        sweep,
        jobs=jobs,
        cache_dir=tmp_path / "cache",
        retries=2,
        store_path=tmp_path / "store.json",
    )
    # The broken cell failed after exactly retries+1 attempts...
    assert set(report.failures) == {"cell-broken"}
    outcome = {cell.name: cell for cell in report.cells}["cell-broken"]
    assert outcome.source == "failed"
    assert outcome.attempts == 3
    assert "definitely-not-a-policy" in outcome.error
    # ...the healthy cells all completed...
    assert report.cells_run == ["cell-b", "cell-c"]
    # ...and the merged store contains exactly the healthy cells.
    store = json.loads((tmp_path / "store.json").read_text())
    assert list(store) == ["cell-b", "cell-c"]
    with pytest.raises(RuntimeError, match="cell-broken"):
        report.raise_on_failure()


def test_truncated_cell_write_resumes_cleanly(cells, tmp_path):
    """A killed sweep leaves a torn cell file; the rerun recovers."""
    cache = tmp_path / "cache"

    # First run completes two of three cells (simulate an interrupted
    # sweep by running only a prefix).
    first = run_sweep(cells[:2], jobs=1, cache_dir=cache)
    first.raise_on_failure()

    # SIGKILL mid-write: truncate one completed cell's file to half its
    # bytes and drop a stale .tmp file next to it (what a pre-rename
    # kill leaves behind).
    victim = cell_path(cache, config_digest(cells[1]))
    body = victim.read_bytes()
    victim.write_bytes(body[: len(body) // 2])
    (cache / "sweep-leftover.tmp").write_text("{torn")
    assert load_cell(cache, config_digest(cells[1])) is None

    # The rerun treats the torn cell as missing, keeps the intact one,
    # and produces a complete, valid store.
    report = run_sweep(
        cells, jobs=3, cache_dir=cache, store_path=tmp_path / "store.json"
    )
    report.raise_on_failure()
    assert report.cache_hits == ["cell-a"]
    assert sorted(report.cells_run) == ["cell-b", "cell-c"]
    store = json.loads((tmp_path / "store.json").read_text())
    assert list(store) == ["cell-a", "cell-b", "cell-c"]

    # A second rerun is a pure cache replay.
    replay = run_sweep(
        cells, jobs=3, cache_dir=cache, store_path=tmp_path / "store2.json"
    )
    replay.raise_on_failure()
    assert replay.cache_hits == ["cell-a", "cell-b", "cell-c"]
    assert (tmp_path / "store2.json").read_bytes() == (
        tmp_path / "store.json"
    ).read_bytes()


def test_worker_that_dies_without_error_report(cells, tmp_path, monkeypatch):
    """A worker killed outright (no .err file) still reports an error."""
    import multiprocessing

    import repro.experiments.parallel as parallel

    if "fork" not in multiprocessing.get_all_start_methods():
        pytest.skip("monkeypatched worker needs fork inheritance")

    def kamikaze(spec):
        import os

        os._exit(42)  # no traceback, no cell file — like a SIGKILL

    monkeypatch.setattr(parallel, "_worker_main", kamikaze)
    report = run_sweep(
        cells[:1], jobs=2, cache_dir=tmp_path / "cache", retries=1
    )
    assert set(report.failures) == {"cell-a"}
    outcome = report.cells[0]
    assert outcome.attempts == 2
    assert "exit code 42" in outcome.error
