"""The sharded cluster facade.

:class:`ShardedCluster` presents N shards behind the single-server
surface that workloads, bots and experiments already use: ``connect`` /
``disconnect`` / ``submit_action`` with cluster-global client ids, and a
``world`` view resolving authoritative entities across shards. A bot
cannot tell (apart from the occasional rejoin) that its session migrates
between servers.

Scheduling discipline (the determinism contract):

* all shards share one simulation; shard ticks are scheduled in shard-id
  order, so same-timestamp ticks run 0, 1, ..., N-1;
* the bus **pump** is scheduled after every shard tick at cluster start
  and runs at fixed tick cadence; it drains all inter-shard traffic to
  empty (sorted edge order, FIFO within an edge) — the barrier at which
  cross-shard state is mutually consistent;
* cluster invariants (I7 ownership, I8 mirrored subscriptions) are
  audited exactly at that barrier.

The 1-shard cluster is the differential anchor: every routing decision
degenerates to shard 0, no bus message is ever posted, and the packet
streams are byte-identical to a legacy ``GameServer`` run.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.cluster.bus import InterShardBus
from repro.cluster.router import ShardRouter
from repro.cluster.shard import ShardServer
from repro.core.bounds import Bounds
from repro.core.invariants import InvariantAuditor, InvariantViolationError
from repro.net.protocol import PlayerActionPacket
from repro.server import engine as engine_module
from repro.server.config import ServerConfig
from repro.sim.simulator import Simulation
from repro.telemetry.hub import NULL_TELEMETRY, Telemetry
from repro.world.entity import Entity
from repro.world.geometry import Vec3
from repro.world.world import World


@dataclass(frozen=True, slots=True)
class ClientProfile:
    """Everything needed to rebuild a session on another shard."""

    name: str
    handler: object
    link: object
    view_distance: int | None
    faults: object


class ClusterWorldView:
    """Read-only cross-shard world resolver for bots and workloads.

    Terrain is identical on every shard (same seed), so terrain queries
    go to shard 0; entity lookups return the *authoritative* copy,
    skipping ghosts, so consistency metrics measure true cross-shard
    error.
    """

    def __init__(self, cluster: "ShardedCluster") -> None:
        self._cluster = cluster

    @property
    def time(self) -> float:
        return self._cluster.sim.now

    def surface_height(self, x: int, z: int) -> int:
        return self._cluster.shards[0].world.surface_height(x, z)

    def surface_position(self, x: float, z: float) -> Vec3:
        return self._cluster.shards[0].world.surface_position(x, z)

    def get_entity(self, entity_id: int) -> Entity | None:
        for shard in self._cluster.shards:
            entity = shard.world.get_entity(entity_id)
            if entity is not None and entity_id not in shard.ghost_ids:
                return entity
        return None

    def entities(self):
        """Authoritative entities, in shard order then spawn order."""
        for shard in self._cluster.shards:
            for entity in shard.world.entities():
                if entity.entity_id not in shard.ghost_ids:
                    yield entity

    @property
    def entity_count(self) -> int:
        return sum(1 for __ in self.entities())


class ShardedCluster:
    """N federated shards behind a single-server facade."""

    def __init__(
        self,
        sim: Simulation,
        shards: int = 2,
        strip_width: int = 4,
        config: ServerConfig | None = None,
        policy_factory=None,
        partitioner_factory=None,
        peer_bounds: Bounds | None = None,
        direct_mode: bool = False,
        telemetry: Telemetry | None = None,
        state_stores=None,
    ) -> None:
        if shards < 1:
            raise ValueError(f"shard count must be >= 1, got {shards}")
        if state_stores is not None and len(state_stores) != shards:
            raise ValueError(
                f"state_stores must have one entry per shard: got "
                f"{len(state_stores)} for {shards} shards"
            )
        if shards > 1 and (direct_mode or policy_factory is None):
            raise ValueError(
                "cross-shard federation runs on inter-server dyconits: a "
                "multi-shard cluster needs a policy_factory and "
                "direct_mode=False (only the 1-shard facade supports vanilla)"
            )
        self.sim = sim
        self.config = config if config is not None else ServerConfig()
        self.router = ShardRouter(shards, strip_width)
        self.bus = InterShardBus()
        self.peer_bounds = peer_bounds if peer_bounds is not None else Bounds.ZERO
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self.shards: list[ShardServer] = []
        for shard_id in range(shards):
            # Same terrain seed everywhere; disjoint strided entity ids.
            world = World(
                seed=self.config.seed,
                entity_id_start=shard_id + 1,
                entity_id_step=shards,
            )
            # Durable restart (S20): each shard may get its own state
            # store (file-backed stores cannot be shared across shards).
            shard_config = (
                self.config
                if state_stores is None
                else dataclasses.replace(self.config, state_store=state_stores[shard_id])
            )
            self.shards.append(
                ShardServer(
                    sim,
                    shard_id=shard_id,
                    router=self.router,
                    bus=self.bus,
                    peer_bounds=self.peer_bounds,
                    world=world,
                    config=shard_config,
                    policy=policy_factory() if policy_factory is not None else None,
                    partitioner=(
                        partitioner_factory() if partitioner_factory is not None else None
                    ),
                    direct_mode=direct_mode,
                    telemetry=self.telemetry,
                )
            )
        for shard in self.shards:
            shard.cluster = self
        self.world = ClusterWorldView(self)

        self._next_client_id = 1
        self._shard_by_client: dict[int, int] = {}
        self._profiles: dict[int, ClientProfile] = {}
        #: client id -> (src, dst) while a handoff message is in flight.
        self._in_transit: dict[int, tuple[int, int]] = {}
        self.handoffs = 0
        self.handoffs_cancelled = 0
        self.pump_count = 0
        self._running = False
        self._pump_event = None
        #: S19 control plane: queued retune ops are applied to every
        #: shard atomically at the cluster pump (the cluster barrier).
        self.control_plane = None
        self._audit_every_n_pumps = (
            self.config.audit_every_n_ticks
            or engine_module.AUDIT_DEFAULT_EVERY_N_TICKS
        )
        self._auditor = InvariantAuditor() if self._audit_every_n_pumps > 0 else None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        if self._running:
            raise RuntimeError("cluster already started")
        self._running = True
        for shard in self.shards:
            shard.start()
        if len(self.shards) > 1:
            # Eager full peer mesh for the global dyconit (chat flows
            # cluster-wide even with nobody near a border); chunk-level
            # subscriptions arrive lazily with interest.
            for publisher in self.shards:
                for subscriber in self.shards:
                    if subscriber.shard_id != publisher.shard_id:
                        publisher.ensure_peer(subscriber.shard_id, self.peer_bounds)
        # Scheduled after every shard scheduled its tick at the same
        # cadence, so at each timestamp the pump's sequence number sorts
        # after the ticks: tick 0..N-1, then the barrier.
        self._pump_event = self.sim.schedule(self.config.tick_interval_ms, self._pump)

    def stop(self) -> None:
        self._running = False
        if self._pump_event is not None:
            self._pump_event.cancel()
            self._pump_event = None
        for shard in self.shards:
            shard.stop()

    def close(self) -> None:
        """Stop the cluster and release every shard's backend resources
        (idempotent; stores handed in via ``state_stores`` instances
        remain the caller's to close)."""
        self.stop()
        for shard in self.shards:
            if shard.dyconits is not None:
                shard.dyconits.close()

    def __enter__(self) -> "ShardedCluster":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _pump(self) -> None:
        if not self._running:
            return
        self.pump_count += 1
        if self.control_plane is not None:
            self.control_plane.apply(self, self.pump_count)
        delivered = self.bus.pump()
        telemetry = self.telemetry
        if telemetry.enabled:
            telemetry.counter("cluster_pumps_total").increment()
            if delivered:
                telemetry.counter("cluster_bus_messages_total").increment(delivered)
            telemetry.gauge("cluster_bus_bytes").set(self.bus.total_bytes)
            telemetry.gauge("bus_pump_rounds").set(self.bus.last_pump_rounds)
            telemetry.gauge("cluster_handoffs").set(self.handoffs)
            for shard in self.shards:
                label = str(shard.shard_id)
                telemetry.gauge("shard_players", shard=label).set(len(shard.sessions))
                telemetry.gauge("shard_ghosts", shard=label).set(len(shard.ghost_ids))
                telemetry.gauge("shard_handoffs_out", shard=label).set(
                    shard.handoffs_out
                )
        if (
            self._auditor is not None
            and self.pump_count % self._audit_every_n_pumps == 0
        ):
            self.audit_now()
        self._pump_event = self.sim.schedule(self.config.tick_interval_ms, self._pump)

    # ------------------------------------------------------------------
    # Single-server facade
    # ------------------------------------------------------------------

    def connect(
        self,
        name: str,
        handler,
        position: Vec3 | None = None,
        link=None,
        view_distance: int | None = None,
        client_id: int | None = None,
        faults=None,
    ):
        """Connect a client to whichever shard owns its spawn position."""
        if client_id is None:
            client_id = self._next_client_id
            self._next_client_id += 1
        else:
            if client_id in self._shard_by_client or client_id in self._in_transit:
                raise ValueError(f"client {client_id} is already connected")
            self._next_client_id = max(self._next_client_id, client_id + 1)
        if position is None:
            position = self.shards[0].world.surface_position(8.0, 8.0)
        shard_id = self.router.shard_for_position(position)
        self._profiles[client_id] = ClientProfile(
            name=name,
            handler=handler,
            link=link,
            view_distance=view_distance,
            faults=faults,
        )
        session = self.shards[shard_id].connect(
            name,
            handler,
            position=position,
            link=link,
            view_distance=view_distance,
            client_id=client_id,
            faults=faults,
        )
        self._shard_by_client[client_id] = shard_id
        return session

    def disconnect(self, client_id: int) -> None:
        if client_id in self._in_transit:
            # Churn racing a handoff: the session only exists as a bus
            # message. Cancel the record; the target drops the message.
            del self._in_transit[client_id]
            self._profiles.pop(client_id, None)
            self.handoffs_cancelled += 1
            return
        shard_id = self._shard_by_client.pop(client_id, None)
        if shard_id is None:
            return
        self._profiles.pop(client_id, None)
        self.shards[shard_id].disconnect(client_id)

    def submit_action(self, client_id: int, action: PlayerActionPacket) -> None:
        shard_id = self._shard_by_client.get(client_id)
        if shard_id is None:
            return  # unknown, or mid-handoff: dropped like a raced disconnect
        self.shards[shard_id].submit_action(client_id, action)

    @property
    def player_count(self) -> int:
        return len(self._shard_by_client)

    @property
    def sessions(self):
        """client id -> session across all shards (facade-order merged)."""
        merged = {}
        for shard in self.shards:
            merged.update(shard.sessions)
        return merged

    def shard_of(self, client_id: int) -> int | None:
        return self._shard_by_client.get(client_id)

    # ------------------------------------------------------------------
    # Handoff bookkeeping (called by shards)
    # ------------------------------------------------------------------

    def on_handoff_started(self, client_id: int, src: int, dst: int) -> None:
        self._shard_by_client.pop(client_id, None)
        self._in_transit[client_id] = (src, dst)

    def take_handoff(self, client_id: int) -> ClientProfile | None:
        if client_id not in self._in_transit:
            return None
        del self._in_transit[client_id]
        return self._profiles.get(client_id)

    def on_handoff_completed(self, client_id: int, shard_id: int) -> None:
        self._shard_by_client[client_id] = shard_id
        self.handoffs += 1

    def in_transit_clients(self) -> tuple[int, ...]:
        return tuple(self._in_transit)

    # ------------------------------------------------------------------
    # Aggregates & audit
    # ------------------------------------------------------------------

    def total_bytes(self) -> int:
        return sum(shard.transport.total_bytes() for shard in self.shards)

    def total_packets(self) -> int:
        return sum(shard.transport.total_packets() for shard in self.shards)

    def audit_now(self) -> None:
        """One cluster-wide invariant audit at the pump barrier."""
        auditor = self._auditor if self._auditor is not None else InvariantAuditor()
        violations = auditor.check_cluster(self)
        if self.telemetry.enabled:
            self.telemetry.counter("invariant_checks_total").increment()
            if violations:
                self.telemetry.counter("invariant_violations_total").increment(
                    len(violations)
                )
        if violations:
            raise InvariantViolationError(violations)
