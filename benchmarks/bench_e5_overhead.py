"""E5 — middleware overhead microbenchmarks.

Regenerates the middleware-overhead table: the real (wall-clock) cost of
the commit path, the flush path, bound re-derivation, and the memory
footprint per dyconit. These are the only benchmarks in the suite that
measure *wall-clock* performance of the implementation itself (everything
else measures simulated quantities).
"""

import sys

import pytest

from repro.core.bounds import Bounds
from repro.core.manager import DyconitSystem
from repro.core.policy import Policy
from repro.core.subscription import Subscriber
from repro.world.events import EntityMoveEvent
from repro.world.geometry import Vec3


class StaticPolicy(Policy):
    def __init__(self, bounds):
        self.bounds = bounds

    def initial_bounds(self, system, dyconit_id, subscriber):
        return self.bounds


def build_system(subscribers: int, bounds: Bounds, telemetry=None) -> DyconitSystem:
    system = DyconitSystem(
        StaticPolicy(bounds), time_source=lambda: 0.0, telemetry=telemetry
    )
    for subscriber_id in range(subscribers):
        subscriber = Subscriber(subscriber_id=subscriber_id, deliver=lambda d, u: None)
        system.subscribe(("chunk", 0, 0), subscriber)
    return system


def make_moves(count: int):
    return [
        EntityMoveEvent(
            time=float(index),
            entity_id=index % 16 + 1,
            old_position=Vec3(0, 0, 0),
            new_position=Vec3(1, 0, 0),
        )
        for index in range(count)
    ]


@pytest.mark.benchmark(group="e5-overhead")
def test_e5_commit_throughput_queueing(benchmark):
    """Commit path with queueing (infinite bounds): enqueue + merge only."""
    system = build_system(subscribers=50, bounds=Bounds.INFINITE)
    moves = make_moves(1000)

    def commit_batch():
        for move in moves:
            system.commit_to(("chunk", 0, 0), move)

    benchmark(commit_batch)
    # 1000 commits x 50 subscribers per round.
    per_enqueue_us = benchmark.stats.stats.mean * 1e6 / (1000 * 50)
    print(f"\ncommit+enqueue cost: {per_enqueue_us:.2f} us per (update, subscriber)")


@pytest.mark.benchmark(group="e5-overhead")
def test_e5_commit_throughput_flushing(benchmark):
    """Commit path under zero bounds: every commit flushes immediately
    (the vanilla-equivalent worst case for middleware work)."""
    system = build_system(subscribers=50, bounds=Bounds.ZERO)
    moves = make_moves(1000)

    def commit_batch():
        for move in moves:
            system.commit_to(("chunk", 0, 0), move)

    benchmark(commit_batch)


@pytest.mark.benchmark(group="e5-overhead")
def test_e5_bound_rederivation(benchmark):
    """Policy set_bounds sweep across 2,000 subscriptions (what a spatial
    policy does when a player crosses a chunk border)."""
    system = build_system(subscribers=2000, bounds=Bounds(10.0, 1000.0))
    bounds_a = Bounds(10.0, 1000.0)
    bounds_b = Bounds(20.0, 2000.0)
    toggle = [False]

    def sweep():
        toggle[0] = not toggle[0]
        bounds = bounds_a if toggle[0] else bounds_b
        for subscriber_id in range(2000):
            system.set_bounds(("chunk", 0, 0), subscriber_id, bounds)

    benchmark(sweep)


@pytest.mark.benchmark(group="e5-overhead")
def test_e5_staleness_tick_scales_with_due_flushes_only(benchmark):
    """tick() must be cheap when nothing is due, regardless of how many
    subscriptions exist — the 'thin middleware' property."""
    system = build_system(subscribers=5000, bounds=Bounds(1e9, 1e9))
    for move in make_moves(100):
        system.commit_to(("chunk", 0, 0), move)

    benchmark(system.tick)
    assert benchmark.stats.stats.mean < 0.001  # < 1 ms with 5k subscriptions


@pytest.mark.benchmark(group="e5-overhead")
def test_e5_telemetry_overhead_disabled(benchmark):
    """Commit throughput with the (default) disabled telemetry hub.

    The instrumented commit path must cost one attribute check when
    telemetry is off — this row guards the < 3% regression budget
    against the uninstrumented seed.
    """
    system = build_system(subscribers=50, bounds=Bounds.INFINITE)
    moves = make_moves(1000)

    def commit_batch():
        for move in moves:
            system.commit_to(("chunk", 0, 0), move)

    benchmark(commit_batch)
    per_enqueue_us = benchmark.stats.stats.mean * 1e6 / (1000 * 50)
    print(f"\ntelemetry off: {per_enqueue_us:.3f} us per (update, subscriber)")


@pytest.mark.benchmark(group="e5-overhead")
def test_e5_telemetry_overhead_enabled(benchmark):
    """Commit throughput with a live hub: counters on every commit/enqueue.

    Prints the enabled-vs-nothing cost so the perf trajectory records
    what switching observability on costs on the hottest path.
    """
    from repro.telemetry import Telemetry

    telemetry = Telemetry(enabled=True)
    system = build_system(subscribers=50, bounds=Bounds.INFINITE, telemetry=telemetry)
    moves = make_moves(1000)

    def commit_batch():
        for move in moves:
            system.commit_to(("chunk", 0, 0), move)

    benchmark(commit_batch)
    per_enqueue_us = benchmark.stats.stats.mean * 1e6 / (1000 * 50)
    print(f"\ntelemetry on: {per_enqueue_us:.3f} us per (update, subscriber)")
    assert telemetry.counter("dyconit_commits_total").value > 0


@pytest.mark.benchmark(group="e5-overhead")
def test_e5_audit_overhead_off(benchmark):
    """Tick + commit mix with checked mode off (the production default).

    The audit hook must cost one attribute check per tick when disabled;
    this row is the baseline for the audit-on row below.
    """
    system = build_system(subscribers=50, bounds=Bounds.INFINITE)
    moves = make_moves(200)

    def round_trip():
        for move in moves:
            system.commit_to(("chunk", 0, 0), move)
        system.tick()

    benchmark(round_trip)
    per_round_us = benchmark.stats.stats.mean * 1e6
    print(f"\naudit off: {per_round_us:.1f} us per 200-commit round")


@pytest.mark.benchmark(group="e5-overhead")
def test_e5_audit_overhead_on(benchmark):
    """Same mix plus a full invariant audit per round (checked mode).

    Auditing walks every structure pair (aliases, membership registry,
    queues, deadline heap), so its cost scales with live state; this row
    records what ``--audit 1`` costs so users can pick a period.
    """
    from repro.core.invariants import InvariantAuditor

    system = build_system(subscribers=50, bounds=Bounds.INFINITE)
    auditor = InvariantAuditor()
    moves = make_moves(200)

    def round_trip():
        for move in moves:
            system.commit_to(("chunk", 0, 0), move)
        system.tick()
        violations = auditor.check(system)
        assert not violations

    benchmark(round_trip)
    per_round_us = benchmark.stats.stats.mean * 1e6
    print(f"\naudit on: {per_round_us:.1f} us per 200-commit round + audit")


def test_e5_memory_per_dyconit():
    """Rough memory footprint of an idle dyconit + subscription state."""
    from repro.core.dyconit import Dyconit

    dyconit = Dyconit(("chunk", 0, 0))
    subscriber = Subscriber(subscriber_id=1, deliver=lambda d, u: None)
    state = dyconit.subscribe(subscriber)
    footprint = (
        sys.getsizeof(dyconit)
        + sys.getsizeof(state)
        + sys.getsizeof(state.pending)
    )
    print(f"\napprox. footprint: dyconit + 1 subscription ~ {footprint} bytes")
    assert footprint < 4096
