"""Partitioning-invariance integration tests.

With zero bounds, the partitioning must be unobservable: whether updates
route through per-chunk, per-region, or one global dyconit, every commit
flushes immediately, so all three configurations (and the vanilla direct
path) must produce identical client traffic.
"""

import pytest

from repro.bots.workload import BehaviorMix, Workload, WorkloadSpec
from repro.core.partition import (
    ChunkPartitioner,
    GlobalPartitioner,
    RegionPartitioner,
)
from repro.policies.zero import ZeroBoundsPolicy
from repro.policies.distance import DistanceBasedPolicy
from repro.server.config import ServerConfig
from repro.server.engine import GameServer
from repro.sim.simulator import Simulation
from repro.world.world import World


def run(partitioner=None, policy=None, direct=False):
    sim = Simulation()
    server = GameServer(
        sim,
        world=World(seed=99),
        config=ServerConfig(seed=99, synchronous_delivery=True),
        policy=policy,
        partitioner=partitioner,
        direct_mode=direct,
    )
    server.start()
    workload = Workload(
        sim,
        server,
        WorkloadSpec(
            bots=6, seed=99, movement="hotspot",
            behavior=BehaviorMix(build=0.08, dig=0.04),
            arrival_stagger_ms=30.0,
        ),
    )
    workload.start()
    sim.run_until(6_000.0)
    return server


@pytest.mark.parametrize(
    "partitioner",
    [ChunkPartitioner(), RegionPartitioner(2), RegionPartitioner(4), GlobalPartitioner()],
    ids=["chunk", "region2", "region4", "global"],
)
def test_zero_bounds_identical_under_any_partitioning(partitioner):
    vanilla = run(direct=True)
    zero = run(partitioner=partitioner, policy=ZeroBoundsPolicy())
    assert zero.transport.total_bytes() == vanilla.transport.total_bytes()
    assert zero.transport.packets_by_kind() == vanilla.transport.packets_by_kind()


def test_coarser_partitioning_creates_fewer_dyconits():
    chunk = run(partitioner=ChunkPartitioner(), policy=DistanceBasedPolicy())
    region = run(partitioner=RegionPartitioner(4), policy=DistanceBasedPolicy())
    global_ = run(partitioner=GlobalPartitioner(), policy=DistanceBasedPolicy())
    assert (
        chunk.dyconits.stats.dyconits_created
        > region.dyconits.stats.dyconits_created
        > global_.dyconits.stats.dyconits_created
    )
    assert global_.dyconits.stats.dyconits_created == 1


def test_workload_equivalence_across_partitioners():
    """Bot action streams are identical regardless of partitioning, so
    middleware commit counts match exactly."""
    chunk = run(partitioner=ChunkPartitioner(), policy=ZeroBoundsPolicy())
    global_ = run(partitioner=GlobalPartitioner(), policy=ZeroBoundsPolicy())
    assert chunk.dyconits.stats.commits == global_.dyconits.stats.commits
