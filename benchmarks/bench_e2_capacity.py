"""E2 — player capacity (paper: "supports up to 40% more concurrent players").

Sweeps the player count for the vanilla baseline and the adaptive dyconit
policy, reports p95 simulated tick duration per point, and the capacity
at the 50 ms tick budget.
"""

import pytest

from repro.experiments.figures import capacity_sweep
from repro.metrics.plot import line_plot
from repro.metrics.report import render_table


@pytest.mark.benchmark(group="e2-capacity", min_rounds=1, max_time=1.0, warmup=False)
def test_e2_capacity_sweep(benchmark, scale):
    result = benchmark.pedantic(
        capacity_sweep,
        kwargs=dict(
            bot_counts=scale["capacity_counts"],
            duration_ms=scale["capacity_duration_ms"],
            # Generous warmup: the adaptive servo needs a few evaluation
            # periods after the join ramp before its steady state is what
            # the capacity number should reflect.
            warmup_ms=scale["capacity_duration_ms"] * 0.6,
        ),
        rounds=1,
        iterations=1,
    )
    print()
    for policy, curve in result["curves"].items():
        rows = [[bots, p95] for bots, p95 in curve]
        print(render_table(["players", "p95 tick ms"], rows, title=f"policy: {policy}"))
        print()
    # Clip the curves at 2x budget so the death-spiral tail does not
    # flatten the interesting region of the figure.
    clipped = {
        policy: [(bots, min(p95, 100.0)) for bots, p95 in curve]
        for policy, curve in result["curves"].items()
    }
    print(line_plot(
        clipped,
        title="E2: p95 tick duration vs players (clipped at 100 ms)",
        x_label="players",
        y_label="p95 tick [ms]",
    ))
    print()
    print(result["table"])

    vanilla = result["capacities"]["vanilla"]
    adaptive = result["capacities"]["adaptive"]
    assert vanilla > 0, "vanilla never stayed under budget - cost model broken"
    # The headline shape: dyconits support substantially more players.
    # (The asserted margin is scale-dependent; see conftest for why short
    # windows compress the measured gain.)
    minimum_gain = scale["capacity_min_gain"]
    assert adaptive > vanilla * minimum_gain, (
        f"adaptive capacity {adaptive:.0f} should exceed vanilla "
        f"{vanilla:.0f} by at least {100 * (minimum_gain - 1):.0f}%"
    )
