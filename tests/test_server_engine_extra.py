"""Additional engine behaviours: view-distance overrides, chat bots,
jitter determinism, direct-mode accounting."""

import pytest

from repro.net.link import LinkConfig
from repro.net.protocol import ChunkDataPacket
from repro.net.transport import Transport
from repro.net.protocol import KeepAlivePacket
from repro.policies.zero import ZeroBoundsPolicy
from repro.sim.simulator import Simulation
from repro.world.geometry import Vec3


class Client:
    def __init__(self):
        self.packets = []

    def __call__(self, delivered):
        self.packets.append(delivered.packet)


def test_per_session_view_distance_override(server_factory):
    server = server_factory(policy=ZeroBoundsPolicy(), synchronous_delivery=True)
    client = Client()
    session = server.connect("near-sighted", handler=client, view_distance=2)
    assert session.view_distance == 2
    chunk_packets = [p for p in client.packets if isinstance(p, ChunkDataPacket)]
    assert len(chunk_packets) == 25  # (2*2+1)^2


def test_chat_bot_produces_chat_traffic(sim, server_factory):
    from repro.bots.bot import BotClient
    from repro.net.protocol import ChatMessagePacket

    server = server_factory(policy=ZeroBoundsPolicy(), synchronous_delivery=True)
    chatty = BotClient(sim, server, "chatty", seed=3, chat_probability=1.0)
    listener = BotClient(sim, server, "listener", seed=3)
    chatty.connect(server.world.surface_position(8.0, 8.0))
    listener.connect(server.world.surface_position(10.0, 10.0))
    sim.run_until(2_000.0)
    assert listener.perceived.chat_log
    assert server.transport.packets_by_kind().get("ChatMessagePacket", 0) > 0


def test_link_jitter_is_seeded_and_deterministic():
    def latencies(seed):
        sim = Simulation()
        transport = Transport(
            sim, LinkConfig(latency_ms=10.0, jitter_ms=8.0), seed=seed
        )
        transport.connect(1, lambda d: None)
        for __ in range(5):
            transport.send(1, KeepAlivePacket())
        sim.run()
        return list(transport.latencies_ms)

    assert latencies(7) == latencies(7)
    assert latencies(7) != latencies(8)


def test_direct_mode_has_no_middleware(server_factory):
    server = server_factory(policy=None, direct_mode=True)
    assert server.dyconits is None
    client = Client()
    server.connect("solo", handler=client)
    assert server.player_count == 1


def test_actions_from_disconnected_clients_are_dropped(sim, server_factory):
    from repro.net.protocol import PlayerActionPacket

    server = server_factory(policy=ZeroBoundsPolicy(), synchronous_delivery=True)
    session = server.connect("ghost", handler=Client())
    server.disconnect(session.client_id)
    server.submit_action(
        session.client_id, PlayerActionPacket("move", position=Vec3(0, 30, 0))
    )
    sim.run_until(sim.now + 200.0)  # must not raise


def test_effective_tick_rate_is_20hz_when_idle(sim, server_factory):
    server = server_factory(policy=ZeroBoundsPolicy())
    sim.run_until(5_000.0)
    assert server.tick_count == pytest.approx(100, abs=2)


def test_restart_does_not_respawn_mobs(sim, server_factory):
    server = server_factory(policy=ZeroBoundsPolicy(), mob_count=8)
    assert server.world.entity_count == 8
    server.stop()
    server.start()
    # Mobs are spawned once per server, not once per start().
    assert server.world.entity_count == 8


def test_restart_does_not_double_schedule_tick_loop(sim, server_factory):
    server = server_factory(policy=ZeroBoundsPolicy())
    sim.run_until(1_000.0)
    server.stop()
    sim.run_until(2_000.0)
    ticks_while_stopped = server.tick_count
    server.start()
    sim.run_until(7_000.0)
    # 5 s at 20 Hz: a doubled loop would show ~200 extra ticks.
    assert server.tick_count - ticks_while_stopped == pytest.approx(100, abs=3)


def test_rapid_stop_start_cycles_keep_single_tick_loop(sim, server_factory):
    server = server_factory(policy=ZeroBoundsPolicy())
    for __ in range(5):
        server.stop()
        server.start()
    sim.run_until(5_000.0)
    assert server.tick_count == pytest.approx(100, abs=3)
    with pytest.raises(RuntimeError):
        server.start()  # starting a running server is a caller bug
