"""Experiment execution."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bots.workload import ChurnWorkload, Workload
from repro.experiments.configs import ExperimentConfig, make_partitioner
from repro.metrics.summary import Summary, describe
from repro.server.engine import GameServer
from repro.sim.simulator import Simulation
from repro.telemetry.bridge import install_tracer
from repro.telemetry.hub import Telemetry, get_telemetry
from repro.world.world import World


@dataclass
class ExperimentResult:
    """Everything measured in one experiment point."""

    config: ExperimentConfig

    # Traffic (whole run and steady-state window).
    bytes_total: int = 0
    packets_total: int = 0
    steady_bytes_per_second: float = 0.0
    steady_packets_per_second: float = 0.0
    steady_bytes_per_player_per_second: float = 0.0
    bytes_by_kind: dict[str, int] = field(default_factory=dict)
    packets_by_kind: dict[str, int] = field(default_factory=dict)

    # Server health over the steady window.
    tick_duration: Summary = field(default_factory=lambda: describe([]))
    effective_tick_rate_hz: float = 0.0

    # Middleware behaviour.
    dyconit_stats: dict[str, float] = field(default_factory=dict)
    update_queue_delay_p50_ms: float = 0.0
    update_queue_delay_p99_ms: float = 0.0

    # Client-observed inconsistency.
    positional_error_mean: float = 0.0
    positional_error_p95: float = 0.0
    positional_error_p99: float = 0.0
    positional_error_max: float = 0.0
    staleness_p50_ms: float = 0.0
    staleness_p99_ms: float = 0.0

    # Network latency (exact when config.record_latencies, reservoir-
    # sampled otherwise).
    packet_latency: Summary = field(default_factory=lambda: describe([]))

    # Fault layer & churn (E9).
    packets_dropped: int = 0
    reconnects: int = 0
    churn_crashes: int = 0
    churn_rejoins: int = 0

    # Timelines for the dynamics figure.
    bandwidth_timeline: list[tuple[float, float]] = field(default_factory=list)
    player_timeline: list[tuple[float, float]] = field(default_factory=list)
    tick_timeline: list[tuple[float, float]] = field(default_factory=list)
    factor_timeline: list[tuple[float, float]] = field(default_factory=list)

    def as_row(self) -> dict[str, object]:
        """Flat row used by the table-producing figures."""
        return {
            "policy": self.config.policy,
            "bots": self.config.bots,
            "kB/s": self.steady_bytes_per_second / 1e3,
            "pkts/s": self.steady_packets_per_second,
            "p95 tick ms": self.tick_duration.p95,
            "merge %": 100.0 * self.dyconit_stats.get("merge_ratio", 0.0),
            "err p99": self.positional_error_p99,
            "stale p99 ms": self.staleness_p99_ms,
        }


def run_experiment(
    config: ExperimentConfig,
    hooks=None,
    telemetry: Telemetry | None = None,
) -> ExperimentResult:
    """Run one experiment point in a fresh simulation.

    ``hooks`` is an optional list of ``(time_ms, callable(server, workload))``
    pairs the dynamics experiment uses to inject load bursts.

    ``telemetry`` defaults to the ambient hub (installed by the CLI's
    ``--telemetry`` flag); when enabled, the run is instrumented
    end-to-end — tick-phase spans, middleware counters, a tracer bridging
    middleware decisions onto the same timeline — and the whole run is
    wrapped in an ``experiment.run`` span labeled with the config.
    """
    if telemetry is None:
        telemetry = get_telemetry()
    sim = Simulation(telemetry=telemetry)
    if telemetry.enabled:
        telemetry.set_time_source(lambda: sim.now)
    world = World(seed=config.seed)
    policy = config.build_policy()
    server = GameServer(
        sim,
        world=world,
        config=config.build_server_config(),
        policy=policy,
        partitioner=None if policy is None else make_partitioner(config.partitioner),
        direct_mode=policy is None,
        telemetry=telemetry,
    )
    if server.dyconits is not None:
        server.dyconits.merging_enabled = config.merging_enabled
        if telemetry.enabled:
            install_tracer(server.dyconits, telemetry)
    server.transport.record_latencies = config.record_latencies
    server.start()

    if config.churn is not None:
        workload: Workload = ChurnWorkload(
            sim, server, config.build_workload_spec(), churn=config.churn
        )
    else:
        workload = Workload(sim, server, config.build_workload_spec())
    workload.start()

    if hooks:
        for time_ms, hook in hooks:
            sim.schedule_at(time_ms, _bind_hook(hook, server, workload))

    with telemetry.span(
        "experiment.run", name=config.name, policy=config.policy, bots=config.bots
    ):
        sim.run_until(config.duration_ms)

    return collect_result(config, server, workload, policy)


def _bind_hook(hook, server, workload):
    def fire() -> None:
        hook(server, workload)

    return fire


def collect_result(
    config: ExperimentConfig, server: GameServer, workload: Workload, policy
) -> ExperimentResult:
    """Assemble an :class:`ExperimentResult` from a finished run."""
    result = ExperimentResult(config=config)
    transport = server.transport
    result.bytes_total = transport.total_bytes()
    result.packets_total = transport.total_packets()
    result.bytes_by_kind = transport.bytes_by_kind()
    result.packets_by_kind = transport.packets_by_kind()

    window_s = (config.duration_ms - config.warmup_ms) / 1000.0
    bytes_series = server.metrics.series("bytes_total")
    steady_bytes = _series_growth(bytes_series, config.warmup_ms, config.duration_ms)
    result.steady_bytes_per_second = steady_bytes / window_s if window_s > 0 else 0.0
    players = max(1, config.bots)
    result.steady_bytes_per_player_per_second = result.steady_bytes_per_second / players

    tick_series = server.metrics.series("tick_duration_ms")
    steady_ticks = tick_series.window(config.warmup_ms, config.duration_ms)
    result.tick_duration = describe(steady_ticks)
    if steady_ticks:
        # Effective rate: ticks per second of the steady window.
        result.effective_tick_rate_hz = len(steady_ticks) / window_s
    result.steady_packets_per_second = _estimate_packet_rate(server, config, window_s)

    if server.dyconits is not None:
        result.dyconit_stats = server.dyconits.stats.as_dict()
        delay_hist = server.metrics.histogram("update_queue_delay_ms", min_value=0.1)
        result.update_queue_delay_p50_ms = delay_hist.quantile(0.50)
        result.update_queue_delay_p99_ms = delay_hist.quantile(0.99)

    result.positional_error_mean = workload.error_histogram.mean
    result.positional_error_p95 = workload.error_histogram.quantile(0.95)
    result.positional_error_p99 = workload.error_histogram.quantile(0.99)
    result.positional_error_max = max(0.0, workload.error_histogram.max_value)
    result.staleness_p50_ms = workload.staleness_histogram.quantile(0.50)
    result.staleness_p99_ms = workload.staleness_histogram.quantile(0.99)

    if config.record_latencies:
        result.packet_latency = describe(transport.latencies_ms)

    result.packets_dropped = transport.packets_dropped
    result.reconnects = transport.reconnect_count
    if isinstance(workload, ChurnWorkload):
        result.churn_crashes = workload.crashes
        result.churn_rejoins = workload.rejoins

    result.bandwidth_timeline = _rate_timeline(bytes_series)
    player_series = server.metrics.series("player_count")
    result.player_timeline = list(zip(player_series.times, player_series.values))
    result.tick_timeline = list(zip(tick_series.times, tick_series.values))
    if policy is not None and hasattr(policy, "factor_history"):
        result.factor_timeline = list(policy.factor_history)
    return result


def _series_growth(series, start: float, end: float) -> float:
    """Growth of a cumulative series across [start, end)."""
    value_at_start = None
    value_at_end = None
    for time, value in zip(series.times, series.values):
        if time < start:
            value_at_start = value
        if time < end:
            value_at_end = value
    if value_at_end is None:
        return 0.0
    if value_at_start is None:
        value_at_start = 0.0
    return value_at_end - value_at_start


def _estimate_packet_rate(server: GameServer, config: ExperimentConfig, window_s: float) -> float:
    # messages_sent counts every packet the engine sent; approximate the
    # steady rate by scaling total packets by the window share of sends.
    # (Exact per-window packet counts would need a packet series; bytes
    # are the primary bandwidth metric, packets are a secondary view.)
    total_s = config.duration_ms / 1000.0
    if total_s <= 0 or window_s <= 0:
        return 0.0
    return server.transport.total_packets() / total_s


def _rate_timeline(series, bucket_ms: float = 1000.0) -> list[tuple[float, float]]:
    """Convert a cumulative byte series to per-second rates per bucket."""
    if len(series) < 2:
        return []
    timeline: list[tuple[float, float]] = []
    bucket_start = series.times[0]
    bucket_value = series.values[0]
    for time, value in zip(series.times, series.values):
        while time >= bucket_start + bucket_ms:
            elapsed_s = bucket_ms / 1000.0
            timeline.append(((bucket_start + bucket_ms), (value - bucket_value) / elapsed_s))
            bucket_start += bucket_ms
            bucket_value = value
    return timeline
