#!/usr/bin/env python3
"""Boot a server + gateway, retune it over real HTTP — CI smoke (S19).

Usage: [PYTHONPATH=src] python scripts/gateway_smoke.py [--store SPEC]
           [--bots N] [--warmup-ms MS]

Checks, over an actual loopback socket (stdlib server, stdlib client):

1. ``GET /healthz`` and ``GET /metrics`` respond; the metrics text
   carries the middleware counter families.
2. ``PUT /policy`` with tightened bounds is accepted (202) and the op
   is applied at **exactly the next tick** — the "observable within one
   tick" acceptance bar, read back from ``GET /ops``.
3. The retune is live: the policy view reflects the new bounds, and a
   post-retune run flushes on every commit (zero bounds ⇒ no batching).
4. A bad request (policy "vanilla") is rejected with 400 and no op is
   queued.

Exit code 0 on success; any assertion failure is fatal.
"""

from __future__ import annotations

import argparse
import json
import sys
import urllib.error
import urllib.request

from repro.bots.workload import Workload, WorkloadSpec
from repro.experiments.configs import make_policy
from repro.gateway import serve_gateway
from repro.server.config import ServerConfig
from repro.server.engine import GameServer
from repro.sim.simulator import Simulation
from repro.telemetry.hub import Telemetry
from repro.world.world import World


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--store", default="memory", help="state store spec")
    parser.add_argument("--bots", type=int, default=6)
    parser.add_argument("--warmup-ms", type=float, default=2_000.0)
    args = parser.parse_args()

    sim = Simulation()
    server = GameServer(
        sim,
        world=World(seed=11),
        config=ServerConfig(
            seed=11,
            synchronous_delivery=True,
            mob_count=3,
            audit_every_n_ticks=1,
            state_store=args.store,
        ),
        policy=make_policy("fixed"),
        telemetry=Telemetry(),
    )
    server.start()
    Workload(sim, server, WorkloadSpec(bots=args.bots, seed=11)).start()
    sim.run_until(args.warmup_ms)

    gateway = serve_gateway(server)
    base = f"http://127.0.0.1:{gateway.port}"
    print(f"gateway up on {base} (store={args.store})")

    def get(path: str) -> tuple[int, str]:
        with urllib.request.urlopen(base + path) as response:
            return response.status, response.read().decode()

    def put(path: str, payload: dict) -> tuple[int, str]:
        request = urllib.request.Request(
            base + path, method="PUT", data=json.dumps(payload).encode()
        )
        with urllib.request.urlopen(request) as response:
            return response.status, response.read().decode()

    # 1. Liveness + telemetry out.
    status, body = get("/healthz")
    assert status == 200 and json.loads(body)["status"] == "ok", body
    status, metrics = get("/metrics")
    assert status == 200, status
    for family in ("repro_dyconit_commits_total", "repro_dyconit_flushes_total"):
        assert family in metrics, f"metrics missing {family}"
    print(f"  /metrics: {len(metrics.splitlines())} lines")

    # 2. Retune in, applied at exactly the next tick barrier.
    status, body = put("/policy", {"bounds": {"numerical": 0.0, "staleness_ms": 0.0}})
    assert status == 202, (status, body)
    tick_at_submit = server.tick_count
    sim.run_until(sim.now + 200.0)
    status, body = get("/ops")
    ops = json.loads(body)
    (applied,) = ops["applied"]
    assert applied["status"] == "ok", applied
    assert applied["applied_tick"] == tick_at_submit + 1, (
        f"retune took effect at tick {applied['applied_tick']}, "
        f"submitted during tick {tick_at_submit}"
    )
    print(f"  retune applied at tick {applied['applied_tick']} "
          f"(submitted during tick {tick_at_submit})")

    # 3. Effect is live: policy view shows the bounds; zero bounds means
    #    every enqueue flushes, so no update sits in a queue afterwards.
    status, body = get("/policy")
    bounds = json.loads(body)["policies"][0]["bounds"]
    assert bounds["numerical"] == 0.0 and bounds["staleness_ms"] == 0.0, bounds
    stats = server.dyconits.stats
    flushed_before = stats.updates_delivered
    sim.run_until(sim.now + 1_000.0)
    assert stats.updates_delivered > flushed_before, "no deliveries after retune"
    pending = sum(
        1
        for dyconit in server.dyconits.dyconits()
        for state in dyconit.subscription_states()
        if state.has_pending
    )
    assert pending == 0, f"{pending} updates queued despite zero bounds"
    print(f"  post-retune deliveries: {stats.updates_delivered - flushed_before}, "
          f"pending after tick: {pending}")

    # 4. Bad requests bounce with 400 and queue nothing.
    try:
        put("/policy", {"policy": "vanilla"})
        raise AssertionError("vanilla retune should have been rejected")
    except urllib.error.HTTPError as error:
        assert error.code == 400, error.code
    status, body = get("/ops")
    assert json.loads(body)["pending"] == 0

    gateway.stop()
    print("gateway smoke OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
