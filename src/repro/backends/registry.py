"""Backend registries and spec resolution.

Backends register a *factory* under a name; systems are configured with
a **spec** — either an already-constructed backend instance or a string:

* ``"memory"`` — in-memory store (the default; byte-identical legacy
  behaviour);
* ``"sqlite"`` — SQLite store in ``:memory:``;
* ``"sqlite:///path/to.db"`` — SQLite store on disk;
* ``"redis"`` / ``"redis://host:port/db"`` — Redis store (requires the
  client package and a reachable server, else
  :class:`~repro.backends.base.BackendUnavailable`);
* ``"postgres"`` / ``"postgres://..."`` / ``"postgresql://..."`` —
  Postgres store (same gating, via ``REPRO_POSTGRES_URL`` or the URL).

Event buses: ``"direct"``, ``"buffered"``, and ``"spool:///path.db"`` —
a :class:`~repro.backends.pipeline.SpoolEventBus` teeing deliveries
into a durable spool for an out-of-process consumer.

The conformance suite iterates :func:`state_store_factories` /
:func:`event_bus_factories`, so registering a new adapter is all it
takes to put it under the full contract.
"""

from __future__ import annotations

from typing import Callable

from repro.backends.base import EventBus, StateStore
from repro.backends.memory import BufferedEventBus, DirectEventBus, InMemoryStateStore
from repro.backends.postgres_store import PostgresStateStore
from repro.backends.redis_store import RedisStateStore
from repro.backends.sqlite_store import SQLiteStateStore

_STATE_STORES: dict[str, Callable[[], StateStore]] = {}
_EVENT_BUSES: dict[str, Callable[[], EventBus]] = {}


def register_state_store(name: str, factory: Callable[[], StateStore]) -> None:
    """Register a store factory; later registrations override earlier."""
    _STATE_STORES[name] = factory


def register_event_bus(name: str, factory: Callable[[], EventBus]) -> None:
    _EVENT_BUSES[name] = factory


def state_store_factories() -> dict[str, Callable[[], StateStore]]:
    """Registered store factories (name -> zero-arg factory)."""
    return dict(_STATE_STORES)


def event_bus_factories() -> dict[str, Callable[[], EventBus]]:
    return dict(_EVENT_BUSES)


def create_state_store(spec: "StateStore | str | None") -> StateStore:
    """Resolve a store spec (instance, name, or URL) to an instance."""
    if spec is None:
        spec = "memory"
    if isinstance(spec, StateStore):
        return spec
    if spec.startswith("sqlite:///"):
        return SQLiteStateStore(spec[len("sqlite:///"):])
    if spec.startswith("redis://"):
        return RedisStateStore(url=spec)
    if spec.startswith(("postgres://", "postgresql://")):
        return PostgresStateStore(url=spec)
    factory = _STATE_STORES.get(spec)
    if factory is None:
        raise ValueError(
            f"unknown state store {spec!r}; registered: {sorted(_STATE_STORES)}"
        )
    return factory()


def create_event_bus(spec: "EventBus | str | None") -> EventBus:
    """Resolve a bus spec (instance or name) to an instance."""
    if spec is None:
        spec = "direct"
    if isinstance(spec, EventBus):
        return spec
    if spec.startswith("spool:///"):
        from repro.backends.pipeline import SpoolEventBus

        return SpoolEventBus(spec[len("spool:///"):])
    factory = _EVENT_BUSES.get(spec)
    if factory is None:
        raise ValueError(
            f"unknown event bus {spec!r}; registered: {sorted(_EVENT_BUSES)}"
        )
    return factory()


register_state_store("memory", InMemoryStateStore)
register_state_store("sqlite", SQLiteStateStore)
# Constructing the Redis/Postgres stores verifies the driver + server
# and raises BackendUnavailable otherwise; the contract suite skips on
# that.
register_state_store("redis", RedisStateStore)
register_state_store("postgres", PostgresStateStore)
register_event_bus("direct", DirectEventBus)
register_event_bus("buffered", BufferedEventBus)
