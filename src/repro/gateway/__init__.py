"""Live telemetry/control gateway (S19).

>>> core = GatewayCore(server)              # attaches a ControlPlane
>>> core.handle("GET", "/metrics")          # Prometheus text
>>> core.handle("PUT", "/policy", b'{"bounds": {...}}')  # next-tick retune

Serve it over HTTP with :func:`serve_gateway` (stdlib, no deps) or
:func:`repro.gateway.fastapi_app.create_app` (optional FastAPI).
"""

from repro.gateway.app import GatewayHTTPServer, serve_gateway
from repro.gateway.control import OP_KINDS, ControlPlane
from repro.gateway.core import GatewayCore

__all__ = [
    "ControlPlane",
    "GatewayCore",
    "GatewayHTTPServer",
    "OP_KINDS",
    "serve_gateway",
]
