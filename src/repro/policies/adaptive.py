"""The headline dynamic policy: load-adaptive bounds.

The policy keeps a single *looseness factor* and servos it against the
server's tick utilization (smoothed tick duration / tick budget), and
optionally against a bandwidth budget:

* utilization above the high watermark → multiply the factor up
  (shed load by tolerating more inconsistency);
* utilization below the low watermark → multiply it down
  (spend the headroom on consistency, converging toward vanilla).

Bounds for each subscription are the :class:`DistanceBasedPolicy` surface
scaled by the factor, so nearby action always stays crisper than the
periphery; the factor only moves the whole surface up and down.

This is the mechanism behind the paper's headline results: under light
load the game behaves like vanilla (no QoE cost), and as load approaches
the tick budget the policy trades imperceptible peripheral fidelity for
~40% more player capacity and up to ~85% less bandwidth.
"""

from __future__ import annotations

from typing import Hashable

from repro.core.bounds import Bounds
from repro.core.policy import LoadSignals, Policy
from repro.core.subscription import Subscriber
from repro.policies.distance import DistanceBasedPolicy


class AdaptiveBoundsPolicy(Policy):
    """Distance-shaped bounds scaled by a load-servoed factor."""

    def __init__(
        self,
        shape: DistanceBasedPolicy | None = None,
        high_watermark: float = 0.8,
        low_watermark: float = 0.5,
        loosen_factor: float = 1.6,
        tighten_factor: float = 0.75,
        min_factor: float = 0.0,
        max_factor: float = 32.0,
        bandwidth_budget_bytes_per_s: float | None = None,
        evaluation_period_ms: float = 1000.0,
    ) -> None:
        if not (0 <= low_watermark < high_watermark):
            raise ValueError(
                f"watermarks must satisfy 0 <= low < high, got "
                f"low={low_watermark}, high={high_watermark}"
            )
        if loosen_factor <= 1.0 or not (0.0 < tighten_factor < 1.0):
            raise ValueError("loosen_factor must be > 1 and tighten_factor in (0, 1)")
        self.shape = shape if shape is not None else DistanceBasedPolicy()
        self.high_watermark = high_watermark
        self.low_watermark = low_watermark
        self.loosen_factor = loosen_factor
        self.tighten_factor = tighten_factor
        self.min_factor = min_factor
        self.max_factor = max_factor
        self.bandwidth_budget_bytes_per_s = bandwidth_budget_bytes_per_s
        self.evaluation_period_ms = evaluation_period_ms
        self.factor = 1.0
        #: (time, factor) trace for the E6 dynamics figure.
        self.factor_history: list[tuple[float, float]] = []

    # ------------------------------------------------------------------
    # Bound derivation
    # ------------------------------------------------------------------

    def bounds_for(
        self, system, dyconit_id: Hashable, subscriber: Subscriber
    ) -> Bounds:
        base = self.shape.bounds_for(system, dyconit_id, subscriber)
        if base.is_zero or base.is_infinite:
            return base
        return base.scaled(self.factor)

    def initial_bounds(
        self, system, dyconit_id: Hashable, subscriber: Subscriber
    ) -> Bounds:
        return self.bounds_for(system, dyconit_id, subscriber)

    def on_subscriber_moved(self, system, subscriber: Subscriber) -> None:
        for dyconit_id in system.subscription_ids_of(subscriber.subscriber_id):
            system.set_bounds(
                dyconit_id,
                subscriber.subscriber_id,
                self.bounds_for(system, dyconit_id, subscriber),
            )

    # ------------------------------------------------------------------
    # Dynamic evaluation
    # ------------------------------------------------------------------

    def evaluate(self, system, signals: LoadSignals) -> None:
        overloaded = signals.tick_utilization > self.high_watermark
        if self.bandwidth_budget_bytes_per_s is not None:
            overloaded = overloaded or (
                signals.outgoing_bytes_per_second > self.bandwidth_budget_bytes_per_s
            )
        underloaded = signals.tick_utilization < self.low_watermark and not overloaded

        previous = self.factor
        if overloaded:
            # Proportional response: deep overload (tick several times the
            # budget, e.g. after a join burst) must not take a dozen
            # evaluation periods to shed — scale the step with how far
            # past the watermark the server is, capped to stay stable.
            boost = min(
                8.0,
                max(self.loosen_factor, signals.tick_utilization / self.high_watermark),
            )
            self.factor = min(self.max_factor, max(self.factor, 0.25) * boost)
        elif underloaded:
            self.factor = self.factor * self.tighten_factor
            if self.factor < 0.05:
                self.factor = self.min_factor
        self.factor = max(self.min_factor, min(self.max_factor, self.factor))
        self.factor_history.append((signals.now, self.factor))

        telemetry = getattr(system, "telemetry", None)
        if telemetry is not None and telemetry.enabled:
            telemetry.gauge("policy_factor").set(self.factor)
            telemetry.gauge("policy_tick_utilization").set(signals.tick_utilization)
            if self.factor != previous:
                direction = "loosen" if self.factor > previous else "tighten"
                telemetry.counter("policy_adjustments_total", direction=direction).increment()

        if self.factor != previous:
            self._reapply_all(system)

    def _reapply_all(self, system) -> None:
        for subscriber in list(system.subscribers()):
            if subscriber.kind != "client":
                # Peer-shard subscriptions (S16) carry bounds chosen by
                # the *subscribing* shard; the publisher's load servo has
                # no business rewriting another server's error budget.
                continue
            for dyconit_id in system.subscription_ids_of(subscriber.subscriber_id):
                system.set_bounds(
                    dyconit_id,
                    subscriber.subscriber_id,
                    self.bounds_for(system, dyconit_id, subscriber),
                )

    def __repr__(self) -> str:
        return (
            f"AdaptiveBoundsPolicy(factor={self.factor:.2f}, "
            f"watermarks=({self.low_watermark}, {self.high_watermark}))"
        )
