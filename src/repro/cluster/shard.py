"""One shard: a full game server that federates with its neighbours.

A :class:`ShardServer` *is* a :class:`~repro.server.engine.GameServer` —
same tick loop, interest manager, codec, transport, dyconit system — plus
the four cluster behaviours:

* **Peer publication.** Other shards subscribe to this shard's chunk
  dyconits as ``kind="peer"`` subscribers (negative subscriber ids, no
  position). Flushes to a peer are enriched into ghost records and posted
  on the bus instead of being encoded into packets — the dyconit
  middleware itself neither knows nor cares that the subscriber is a
  server.
* **Ghost replicas.** Updates received from a neighbour are applied to
  this shard's *own world* as ghost entities/blocks. Local clients then
  see them through the completely unchanged broadcast path, so remote
  state experiences exactly two dyconit hops: the publisher's peer bounds
  and the local client's bounds.
* **Remote interest.** The viewer index reports when a chunk gains its
  first or loses its last viewing session; for chunks owned by a
  neighbour this drives PeerSubscribe/PeerUnsubscribe control messages,
  the cross-shard mirror of per-client interest management (invariant
  I8 checks the two registries agree at every barrier).
* **Ownership transfer.** An authoritative entity that crosses into a
  neighbour's region leaves this shard — sessions via the handoff
  protocol (disconnect here, reconnect there under the same client and
  entity ids), mobs via a plain entity transfer.

Echo safety is structural, not flag-based: a peer only subscribes to
chunks the publisher *owns*, ghost mutations live in chunks the applier
does *not* own, and ghost records are filtered against both ownership
and the ghost set before posting — so a remote update can never be
re-published to the bus.
"""

from __future__ import annotations

from repro.cluster.bus import InterShardBus
from repro.cluster.messages import (
    EntityTransfer,
    GhostBlock,
    GhostChat,
    GhostDespawn,
    GhostMove,
    GhostSpawn,
    PeerSnapshot,
    PeerSubscribe,
    PeerUnsubscribe,
    PeerUpdates,
    SessionHandoff,
    ShardMessage,
)
from repro.cluster.router import ShardRouter
from repro.core.bounds import Bounds
from repro.core.partition import GLOBAL_DYCONIT
from repro.core.subscription import Subscriber
from repro.server.engine import GameServer
from repro.server.viewindex import ViewerIndex
from repro.world.block import BlockType
from repro.world.entity import EntityKind
from repro.world.events import (
    BlockChangeEvent,
    ChatEvent,
    EntityDespawnEvent,
    EntityMoveEvent,
    EntitySpawnEvent,
    WorldEvent,
)
from repro.world.geometry import BlockPos, ChunkPos, Vec3


def peer_subscriber_id(shard_id: int) -> int:
    """Subscriber id a peer shard uses inside a publisher's dyconit
    system. Negative by convention: client ids are positive, so the two
    populations can share one registry without collisions."""
    return -(shard_id + 1)


class _ClusterViewerIndex(ViewerIndex):
    """Viewer index that reports chunk occupancy edge transitions.

    ``add_view``/``remove_view`` are the *only* places a session's view
    set changes (join, refresh, leave all funnel through them), so
    hooking the 0→1 and 1→0 transitions here gives the shard an exact,
    incrementally-maintained "chunks any of my clients can see" set —
    the driver for cross-shard interest.
    """

    def __init__(self, shard: "ShardServer") -> None:
        super().__init__()
        self._shard = shard

    def add_view(self, session, chunks) -> None:
        chunks = list(chunks)
        fresh = [c for c in chunks if c not in self._viewers_by_chunk]
        super().add_view(session, chunks)
        for chunk in fresh:
            self._shard._on_chunk_first_viewed(chunk)

    def remove_view(self, session, chunks) -> None:
        chunks = list(chunks)
        present = [c for c in chunks if c in self._viewers_by_chunk]
        super().remove_view(session, chunks)
        for chunk in present:
            if chunk not in self._viewers_by_chunk:
                self._shard._on_chunk_last_viewed(chunk)


class ShardServer(GameServer):
    """A game server owning one shard of the cluster's chunk space."""

    def __init__(
        self,
        sim,
        shard_id: int,
        router: ShardRouter,
        bus: InterShardBus,
        peer_bounds: Bounds | None = None,
        **server_kwargs,
    ) -> None:
        super().__init__(sim, **server_kwargs)
        self.shard_id = shard_id
        self.router = router
        self.bus = bus
        self.peer_bounds = peer_bounds if peer_bounds is not None else Bounds.ZERO
        #: Back-reference set by the facade; handoff bookkeeping lives there.
        self.cluster = None
        #: Replicas of entities another shard owns, present in our world.
        self.ghost_ids: set[int] = set()
        #: Subscriber side: owner shard -> chunks we are subscribed to
        #: (dict-as-ordered-set; insertion order is simulation history).
        self.remote_interest: dict[int, dict[ChunkPos, None]] = {}
        #: Publisher side: peer shard -> chunks it subscribed from us.
        self.peer_registry: dict[int, dict[ChunkPos, None]] = {}
        self._peer_subscribers: dict[int, Subscriber] = {}
        #: True while a remote record is being applied to our world, so
        #: the resulting events never trigger transfer/correction logic.
        self._applying_remote = False
        self.handoffs_out = 0
        self.handoffs_in = 0
        self.transfers_out = 0
        self.transfers_in = 0
        # Replace the plain index *before* any session exists; all later
        # bind/add_view calls go through the transition-aware subclass.
        self.viewers = _ClusterViewerIndex(self)
        bus.attach(shard_id, self._on_bus_message)

    # ------------------------------------------------------------------
    # Peer mesh (publisher side)
    # ------------------------------------------------------------------

    def ensure_peer(self, peer_shard: int, bounds: Bounds) -> Subscriber:
        """Register ``peer_shard`` as a subscriber of this shard.

        Called eagerly for every ordered shard pair at cluster start: the
        global dyconit (chat and other world-wide updates) must flow
        between all shards even when no client is near a border. Chunk
        dyconits are added lazily by PeerSubscribe as interest appears.
        """
        subscriber = self._peer_subscribers.get(peer_shard)
        if subscriber is None:
            subscriber = Subscriber(
                subscriber_id=peer_subscriber_id(peer_shard),
                deliver=self._make_peer_delivery(peer_shard),
                position_provider=None,
                kind="peer",
            )
            self._peer_subscribers[peer_shard] = subscriber
            self.peer_registry.setdefault(peer_shard, {})
            self.dyconits.register_subscriber(subscriber)
            self.dyconits.subscribe(GLOBAL_DYCONIT, subscriber, bounds=bounds)
        return subscriber

    def _make_peer_delivery(self, peer_shard: int):
        def deliver(dyconit_id, updates) -> None:
            records = []
            for update in updates:
                record = self._ghost_record(update)
                if record is not None:
                    records.append(record)
            if records:
                self.bus.post(
                    self.shard_id, peer_shard, PeerUpdates(records=tuple(records))
                )

        return deliver

    def _ghost_record(self, event: WorldEvent):
        """Convert one world event into a ghost record for peers, or None.

        The ownership filter is the structural echo guard: only events in
        chunks *we own*, about entities *we own*, are published. Merged
        dyconits can span owned and foreign chunks, so the filter runs
        per event, not per dyconit.
        """
        if isinstance(event, ChatEvent):
            if event.sender_id in self.ghost_ids:
                return None
            return GhostChat(
                sender_id=event.sender_id, text=event.text, time=event.time
            )
        chunk = event.chunk_pos
        if chunk is None or self.router.shard_for_chunk(chunk) != self.shard_id:
            return None
        if isinstance(event, EntityMoveEvent):
            if event.entity_id in self.ghost_ids:
                return None
            entity = self.world.get_entity(event.entity_id)
            return GhostMove(
                entity_id=event.entity_id,
                x=event.new_position.x,
                y=event.new_position.y,
                z=event.new_position.z,
                yaw=event.yaw,
                pitch=event.pitch,
                time=event.time,
                kind_value=entity.kind.value if entity is not None else "",
                name=entity.name if entity is not None else "",
            )
        if isinstance(event, EntitySpawnEvent):
            if event.entity_id in self.ghost_ids:
                return None
            return GhostSpawn(
                entity_id=event.entity_id,
                kind_value=event.kind.value,
                x=event.position.x,
                y=event.position.y,
                z=event.position.z,
                name=event.name,
                time=event.time,
            )
        if isinstance(event, EntityDespawnEvent):
            if event.entity_id in self.ghost_ids:
                return None
            return GhostDespawn(
                entity_id=event.entity_id,
                x=event.position.x,
                y=event.position.y,
                z=event.position.z,
                time=event.time,
            )
        if isinstance(event, BlockChangeEvent):
            return GhostBlock(
                x=event.pos.x,
                y=event.pos.y,
                z=event.pos.z,
                block_value=event.new_block.value,
                time=event.time,
            )
        return None

    # ------------------------------------------------------------------
    # Remote interest (subscriber side)
    # ------------------------------------------------------------------

    def _on_chunk_first_viewed(self, chunk: ChunkPos) -> None:
        owner = self.router.shard_for_chunk(chunk)
        if owner == self.shard_id:
            return
        interest = self.remote_interest.setdefault(owner, {})
        if chunk in interest:
            return
        interest[chunk] = None
        self.bus.post(
            self.shard_id, owner, PeerSubscribe(chunk=chunk, bounds=self.peer_bounds)
        )

    def _on_chunk_last_viewed(self, chunk: ChunkPos) -> None:
        owner = self.router.shard_for_chunk(chunk)
        if owner == self.shard_id:
            return
        interest = self.remote_interest.get(owner)
        if interest is None or chunk not in interest:
            return
        del interest[chunk]
        self.bus.post(self.shard_id, owner, PeerUnsubscribe(chunk=chunk))
        # Ghosts stranded in a chunk nobody views any more would never be
        # updated again; collect them now (sorted for determinism).
        for entity in sorted(
            self.world.entities_in_chunk(chunk), key=lambda e: e.entity_id
        ):
            if entity.entity_id in self.ghost_ids:
                self.world.despawn_entity(entity.entity_id)
                self.ghost_ids.discard(entity.entity_id)

    # ------------------------------------------------------------------
    # Bus inbound
    # ------------------------------------------------------------------

    def _on_bus_message(self, src: int, message: ShardMessage) -> None:
        if isinstance(message, PeerSubscribe):
            self._handle_peer_subscribe(src, message)
        elif isinstance(message, PeerUnsubscribe):
            self._handle_peer_unsubscribe(src, message)
        elif isinstance(message, PeerSnapshot):
            if message.chunk in self.remote_interest.get(src, {}):
                self._apply_records(src, message.records)
        elif isinstance(message, PeerUpdates):
            self._apply_records(src, message.records)
        elif isinstance(message, SessionHandoff):
            self._adopt_session(src, message)
        elif isinstance(message, EntityTransfer):
            self._adopt_entity(src, message)
        else:  # pragma: no cover - defensive
            raise TypeError(f"unknown bus message {type(message).__name__}")

    def _handle_peer_subscribe(self, src: int, message: PeerSubscribe) -> None:
        subscriber = self.ensure_peer(src, message.bounds)
        registry = self.peer_registry[src]
        if message.chunk in registry:
            return
        registry[message.chunk] = None
        dyconit_id = self.dyconits.partitioner.dyconit_for_chunk(message.chunk)
        self.dyconits.subscribe(dyconit_id, subscriber, bounds=message.bounds)
        # Seed the subscriber with the chunk's current population — the
        # dyconit stream only carries deltas from this point on.
        records = tuple(
            GhostSpawn(
                entity_id=entity.entity_id,
                kind_value=entity.kind.value,
                x=entity.position.x,
                y=entity.position.y,
                z=entity.position.z,
                name=entity.name,
                time=self.world.time,
            )
            for entity in sorted(
                self.world.entities_in_chunk(message.chunk), key=lambda e: e.entity_id
            )
            if entity.entity_id not in self.ghost_ids
        )
        self.bus.post(
            self.shard_id, src, PeerSnapshot(chunk=message.chunk, records=records)
        )

    def _handle_peer_unsubscribe(self, src: int, message: PeerUnsubscribe) -> None:
        registry = self.peer_registry.get(src)
        if registry is None or message.chunk not in registry:
            return
        del registry[message.chunk]
        partitioner = self.dyconits.partitioner
        dyconit_id = partitioner.dyconit_for_chunk(message.chunk)
        # Under coarse partitioners several chunks share one dyconit;
        # keep the subscription while any registered chunk still maps to it.
        still_needed = any(
            partitioner.dyconit_for_chunk(chunk) == dyconit_id for chunk in registry
        )
        if not still_needed:
            self.dyconits.unsubscribe(
                dyconit_id, peer_subscriber_id(src), flush_pending=False
            )

    # ------------------------------------------------------------------
    # Ghost application (subscriber side)
    # ------------------------------------------------------------------

    def _apply_records(self, src: int, records: tuple) -> None:
        self._applying_remote = True
        try:
            # Ghost application is the cluster's second commit burst (the
            # first is the local action loop): every applied move/block
            # re-enters `_on_world_event` and commits to the local
            # dyconits, so batch them too. `_apply_record` flushes at the
            # points where deferred delivery could observe a different
            # world (spawns/despawns) or reorder direct sends (chat).
            with self._commit_batching():
                for record in records:
                    self._apply_record(src, record)
        finally:
            self._applying_remote = False

    def _is_local_authority(self, entity_id: int) -> bool:
        return (
            self.world.get_entity(entity_id) is not None
            and entity_id not in self.ghost_ids
        )

    def _apply_record(self, src: int, record) -> None:
        if isinstance(record, GhostChat):
            # Chat is global and unowned; re-emitting it into our world
            # would publish it back to every peer. Encode straight to the
            # local sessions instead (legacy chat is an unbounded global
            # broadcast, so skipping the local dyconit hop matches it).
            # Direct sends bypass the commit buffer: flush first so the
            # per-session packet order matches the unbatched path.
            if self._commit_buffer:
                self._flush_commits()
            event = ChatEvent(
                time=record.time, sender_id=record.sender_id, text=record.text
            )
            for session in self.sessions.values():
                packets = self.codec.encode(session, [event])
                if packets:
                    self.send_packets(session, packets)
            return
        if isinstance(record, GhostBlock):
            self.world.set_block(
                BlockPos(record.x, record.y, record.z), BlockType(record.block_value)
            )
            return
        entity_id = record.entity_id
        if self._is_local_authority(entity_id):
            # A correction/flush raced an ownership transfer we already
            # completed; authority always wins over ghost bookkeeping.
            return
        if isinstance(record, (GhostSpawn, GhostDespawn)) and self._commit_buffer:
            # Pre-mutation flush: a despawn applied here changes what the
            # codec sees for the entity's *already-buffered* moves (an
            # absent entity drops the packet), so deliver them against
            # the world the unbatched path would have seen.
            self._flush_commits()
        if isinstance(record, GhostSpawn):
            position = Vec3(record.x, record.y, record.z)
            if entity_id in self.ghost_ids:
                self.world.move_entity(entity_id, position)
            elif position.to_chunk_pos() in self.remote_interest.get(src, {}):
                self.world.spawn_entity(
                    EntityKind(record.kind_value),
                    position,
                    name=record.name,
                    entity_id=entity_id,
                )
                self.ghost_ids.add(entity_id)
        elif isinstance(record, GhostMove):
            position = Vec3(record.x, record.y, record.z)
            if entity_id in self.ghost_ids:
                self.world.move_entity(entity_id, position, record.yaw, record.pitch)
            elif (
                record.spawnable
                and position.to_chunk_pos() in self.remote_interest.get(src, {})
            ):
                # First sight mid-flight: the entity entered our interest
                # between snapshot and now; materialize it from the
                # enriched move.
                self.world.spawn_entity(
                    EntityKind(record.kind_value),
                    position,
                    name=record.name,
                    entity_id=entity_id,
                )
                self.ghost_ids.add(entity_id)
        elif isinstance(record, GhostDespawn):
            if entity_id in self.ghost_ids:
                self.world.despawn_entity(entity_id)
                self.ghost_ids.discard(entity_id)

    # ------------------------------------------------------------------
    # Event hook: corrections + ownership transfer
    # ------------------------------------------------------------------

    def _on_world_event(self, event: WorldEvent) -> None:
        # Interest corrections must be posted *before* the event is
        # committed: a despawn correction racing the (possibly bounded)
        # dyconit flush of the same crossing must arrive first on the
        # FIFO edge.
        if (
            isinstance(event, EntityMoveEvent)
            and not self._applying_remote
            and event.entity_id not in self.ghost_ids
        ):
            old_chunk = event.old_position.to_chunk_pos()
            new_chunk = event.new_position.to_chunk_pos()
            if old_chunk != new_chunk:
                # Corrections ride the same FIFO bus edge as dyconit
                # flushes; drain the commit buffer first so records
                # already committed keep their pre-correction position.
                if self._commit_buffer:
                    self._flush_commits()
                self._peer_crossing_corrections(event, old_chunk, new_chunk)
        super()._on_world_event(event)
        if self._applying_remote or not isinstance(event, EntityMoveEvent):
            return
        entity_id = event.entity_id
        if entity_id in self.ghost_ids:
            return
        new_chunk = event.new_position.to_chunk_pos()
        owner = self.router.shard_for_chunk(new_chunk)
        if owner != self.shard_id:
            # Emigration despawns the entity and posts bus messages; the
            # buffered commits (including this very move) must be
            # delivered while the entity still exists and before the
            # transfer appears on the bus.
            if self._commit_buffer:
                self._flush_commits()
            self._emigrate(entity_id, owner, event)

    def _peer_crossing_corrections(
        self, event: EntityMoveEvent, old_chunk: ChunkPos, new_chunk: ChunkPos
    ) -> None:
        """Cross-shard mirror of ``InterestManager.on_entity_crossed``.

        Dyconits route an event to its *new* chunk, so a peer subscribed
        to only one side of a crossing would silently gain a stale ghost
        (crossed out) or miss the entity entirely (crossed in). Exactly
        like the per-client interest manager, the publisher fixes both
        edges with direct spawn/despawn records outside the bounds
        machinery.
        """
        entity = self.world.get_entity(event.entity_id)
        if entity is None:
            return
        for peer_shard in sorted(self.peer_registry):
            registry = self.peer_registry[peer_shard]
            old_in = old_chunk in registry
            new_in = new_chunk in registry
            if old_in == new_in:
                continue
            if new_in:
                record = GhostSpawn(
                    entity_id=event.entity_id,
                    kind_value=entity.kind.value,
                    x=event.new_position.x,
                    y=event.new_position.y,
                    z=event.new_position.z,
                    name=entity.name,
                    time=event.time,
                )
            else:
                record = GhostDespawn(
                    entity_id=event.entity_id,
                    x=event.new_position.x,
                    y=event.new_position.y,
                    z=event.new_position.z,
                    time=event.time,
                )
            self.bus.post(self.shard_id, peer_shard, PeerUpdates(records=(record,)))

    # ------------------------------------------------------------------
    # Ownership transfer
    # ------------------------------------------------------------------

    def _emigrate(self, entity_id: int, owner: int, event: EntityMoveEvent) -> None:
        client_id = self._client_by_entity.get(entity_id)
        if client_id is not None:
            session = self.sessions.get(client_id)
            if session is None:
                return
            entity = self.world.get_entity(entity_id)
            yaw = entity.yaw if entity is not None else 0.0
            pitch = entity.pitch if entity is not None else 0.0
            self.handoffs_out += 1
            if self.cluster is not None:
                self.cluster.on_handoff_started(client_id, self.shard_id, owner)
            # Full disconnect: pending dyconit updates are dropped (the
            # target resyncs the view from scratch), the avatar despawns
            # for local viewers, and the transport link closes.
            self.disconnect(client_id)
            self.bus.post(
                self.shard_id,
                owner,
                SessionHandoff(
                    client_id=client_id,
                    entity_id=entity_id,
                    x=event.new_position.x,
                    y=event.new_position.y,
                    z=event.new_position.z,
                    yaw=yaw,
                    pitch=pitch,
                ),
            )
            return
        entity = self.world.get_entity(entity_id)
        if entity is None:
            return
        self.transfers_out += 1
        if entity_id in self._mob_ids:
            self._mob_ids.remove(entity_id)
        self.world.despawn_entity(entity_id)
        self.bus.post(
            self.shard_id,
            owner,
            EntityTransfer(
                entity_id=entity_id,
                kind_value=entity.kind.value,
                x=event.new_position.x,
                y=event.new_position.y,
                z=event.new_position.z,
                name=entity.name,
            ),
        )

    def _adopt_session(self, src: int, message: SessionHandoff) -> None:
        if self.cluster is None:
            raise RuntimeError("a session handoff needs a cluster facade")
        profile = self.cluster.take_handoff(message.client_id)
        if profile is None:
            # The client disconnected while its session was in flight —
            # churn racing a handoff. The avatar already despawned at the
            # source; dropping the message completes the disconnect.
            return
        if message.entity_id in self.ghost_ids:
            # Our ghost of the avatar is superseded by the authoritative
            # spawn below (the source's despawn correction usually got
            # here first; this handles loose peer bounds).
            self.world.despawn_entity(message.entity_id)
            self.ghost_ids.discard(message.entity_id)
        self.handoffs_in += 1
        position = Vec3(message.x, message.y, message.z)
        self.connect(
            profile.name,
            profile.handler,
            position=position,
            link=profile.link,
            view_distance=profile.view_distance,
            client_id=message.client_id,
            faults=profile.faults,
            entity_id=message.entity_id,
        )
        self.cluster.on_handoff_completed(message.client_id, self.shard_id)

    def _adopt_entity(self, src: int, message: EntityTransfer) -> None:
        if message.entity_id in self.ghost_ids:
            self.world.despawn_entity(message.entity_id)
            self.ghost_ids.discard(message.entity_id)
        if self.world.get_entity(message.entity_id) is not None:
            return  # defensive: already adopted
        self.transfers_in += 1
        self.world.spawn_entity(
            EntityKind(message.kind_value),
            Vec3(message.x, message.y, message.z),
            name=message.name,
            entity_id=message.entity_id,
        )
        # Transferred entities are ambient mobs; step them here from now on.
        self._mob_ids.append(message.entity_id)

    # ------------------------------------------------------------------
    # Ambient mobs: same seeded draw on every shard, keep what we own
    # ------------------------------------------------------------------

    def _spawn_mobs(self) -> None:
        """Every shard draws the *same* mob sequence from the same seeded
        stream and keeps only the mobs landing in its own region — no
        coordination, and the 1-shard cluster keeps the legacy sequence
        (and ids) exactly."""
        kinds = (EntityKind.COW, EntityKind.SHEEP, EntityKind.ZOMBIE)
        for index in range(self.config.mob_count):
            x = self._mob_rng.uniform(-40.0, 40.0)
            z = self._mob_rng.uniform(-40.0, 40.0)
            position = self.world.surface_position(x, z)
            if self.router.shard_for_position(position) != self.shard_id:
                continue
            kind = kinds[index % len(kinds)]
            mob = self.world.spawn_entity(kind, position)
            self._mob_ids.append(mob.entity_id)
