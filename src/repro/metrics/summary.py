"""Statistical summaries over raw samples."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence


def percentile(samples: Sequence[float], q: float) -> float:
    """Exact q-th percentile (q in [0, 100]) with linear interpolation."""
    if not samples:
        raise ValueError("cannot take percentile of empty sample set")
    if not (0.0 <= q <= 100.0):
        raise ValueError(f"percentile must be in [0, 100], got {q}")
    ordered = sorted(samples)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return ordered[low]
    fraction = rank - low
    # Additive form is exact when both neighbours are equal (the blended
    # form can round one ulp away from them).
    return ordered[low] + fraction * (ordered[high] - ordered[low])


@dataclass(frozen=True, slots=True)
class Summary:
    """Five-number-plus summary of a sample set."""

    count: int
    mean: float
    minimum: float
    p50: float
    p95: float
    p99: float
    maximum: float

    def as_dict(self) -> dict[str, float]:
        return {
            "count": self.count,
            "mean": self.mean,
            "min": self.minimum,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
            "max": self.maximum,
        }


def describe(samples: Sequence[float]) -> Summary:
    """Summarize ``samples``; empty input yields an all-zero summary."""
    if not samples:
        return Summary(0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
    return Summary(
        count=len(samples),
        mean=sum(samples) / len(samples),
        minimum=min(samples),
        p50=percentile(samples, 50),
        p95=percentile(samples, 95),
        p99=percentile(samples, 99),
        maximum=max(samples),
    )
