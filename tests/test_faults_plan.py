"""Unit tests for the declarative fault plans."""

import pytest

from repro.faults import DegradedWindow, FaultPlan
from repro.faults.plan import NULL_FAULT_PLAN


def test_default_plan_is_null():
    plan = FaultPlan()
    assert plan.is_null()
    assert not plan.has_burst_model
    assert not plan.has_spikes
    assert NULL_FAULT_PLAN.is_null()


def test_any_active_component_makes_plan_non_null():
    assert not FaultPlan(loss_rate=0.01).is_null()
    assert not FaultPlan(burst_loss_rate=0.5, p_good_to_bad=0.1).is_null()
    assert not FaultPlan(spike_probability=0.1, spike_ms=50.0).is_null()
    assert not FaultPlan(
        degraded_windows=(DegradedWindow(0.0, 100.0, 0.5),)
    ).is_null()


def test_inactive_components_do_not_arm_models():
    # Burst loss with no transition into BAD never fires.
    assert not FaultPlan(burst_loss_rate=0.5).has_burst_model
    # Spike probability with zero duration is a no-op.
    assert not FaultPlan(spike_probability=0.5).has_spikes


@pytest.mark.parametrize(
    "kwargs",
    [
        {"loss_rate": -0.1},
        {"loss_rate": 1.5},
        {"burst_loss_rate": 2.0},
        {"p_good_to_bad": -1.0},
        {"p_bad_to_good": 1.01},
        {"spike_probability": 7.0},
        {"spike_ms": -5.0},
    ],
)
def test_rate_validation(kwargs):
    with pytest.raises(ValueError):
        FaultPlan(**kwargs)


def test_absorbing_total_loss_rejected():
    with pytest.raises(ValueError):
        FaultPlan(p_good_to_bad=0.5, p_bad_to_good=0.0, burst_loss_rate=1.0)


def test_degraded_window_validation():
    with pytest.raises(ValueError):
        DegradedWindow(100.0, 100.0, 0.5)  # empty window
    with pytest.raises(ValueError):
        DegradedWindow(0.0, 100.0, 0.0)  # zero bandwidth
    with pytest.raises(ValueError):
        DegradedWindow(0.0, 100.0, 1.5)  # "degraded" above full rate


def test_degraded_window_contains_is_half_open():
    window = DegradedWindow(100.0, 200.0, 0.5)
    assert not window.contains(99.9)
    assert window.contains(100.0)
    assert window.contains(199.9)
    assert not window.contains(200.0)


def test_plan_is_immutable():
    plan = FaultPlan(loss_rate=0.1)
    with pytest.raises(AttributeError):
        plan.loss_rate = 0.2
