"""Command-line experiment runner.

Regenerate any of the paper's tables/figures from a terminal::

    python -m repro.experiments e1 --bots 100 --duration 30
    python -m repro.experiments e2 --counts 50,100,150,200
    python -m repro.experiments all --bots 40 --duration 15

Each command prints the same rows the corresponding ``benchmarks/``
target asserts on (the benchmarks add the shape checks).
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments import figures
from repro.experiments.store import save_telemetry
from repro.telemetry import Telemetry, render_summary, set_telemetry


def _common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--bots", type=int, default=60, help="fleet size")
    parser.add_argument(
        "--duration", type=float, default=20.0, help="run length in simulated seconds"
    )
    parser.add_argument(
        "--warmup", type=float, default=None,
        help="measurement warmup in simulated seconds (default: duration/3)",
    )
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument(
        "--telemetry", metavar="PATH", default=None,
        help="record an instrumented run: write a JSONL span/metric stream "
        "to PATH and a Prometheus snapshot to PATH.prom",
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="shard experiment cells across N worker processes "
        "(1 = in-process serial; output is byte-identical either way)",
    )
    parser.add_argument(
        "--cache-dir", metavar="DIR", default=None,
        help="content-addressed result cache: completed cells found in DIR "
        "are not re-run, and an interrupted sweep resumes from it",
    )
    parser.add_argument(
        "--audit", type=int, nargs="?", const=1, default=0, metavar="TICKS",
        help="checked mode: audit middleware invariants every TICKS ticks "
        "(bare --audit = every tick) and abort on the first violation",
    )


def _window(args) -> dict:
    duration_ms = args.duration * 1000.0
    warmup_ms = args.warmup * 1000.0 if args.warmup is not None else duration_ms / 3.0
    return dict(
        bots=args.bots, duration_ms=duration_ms, warmup_ms=warmup_ms, seed=args.seed,
        jobs=args.jobs, cache_dir=args.cache_dir,
        audit_every_n_ticks=args.audit,
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="regenerate the Dyconits paper's tables and figures",
    )
    sub = parser.add_subparsers(dest="experiment", required=True)

    for name, help_text in (
        ("e1", "bandwidth by policy (claim: up to -85%)"),
        ("e3", "client-observed inconsistency by policy"),
        ("e4", "latency: network CDF + middleware queue delay"),
        ("e6", "adaptive policy dynamics under a player burst"),
        ("e7", "policy summary table"),
        ("e8a", "ablation: update merging on/off"),
        ("e8b", "ablation: dyconit granularity"),
        ("e8c", "ablation: policy evaluation period"),
        ("e9", "resilience: packet loss + session churn sweep"),
        ("all", "run every experiment above in sequence"),
    ):
        sub_parser = sub.add_parser(name, help=help_text)
        _common(sub_parser)

    e11 = sub.add_parser(
        "e11", help="sharded world: shard-count scaling (S16)"
    )
    _common(e11)
    e11.add_argument(
        "--shards", default="1,2,4",
        help="comma-separated shard counts to sweep",
    )
    e11.add_argument(
        "--movement", default="gathering",
        help="workload movement model (gathering = border hotspot)",
    )

    e2 = sub.add_parser("e2", help="player capacity sweep (claim: up to +40%)")
    _common(e2)
    e2.add_argument(
        "--counts", default="50,100,150,200",
        help="comma-separated player counts to sweep",
    )

    args = parser.parse_args(argv)
    window = _window(args)

    def run_one(name: str) -> None:
        if name == "e1":
            print(figures.bandwidth_by_policy(**window)["table"])
        elif name == "e2":
            counts = tuple(int(c) for c in args.counts.split(","))
            out = figures.capacity_sweep(
                bot_counts=counts,
                duration_ms=window["duration_ms"],
                warmup_ms=window["warmup_ms"],
                seed=window["seed"],
                jobs=window["jobs"],
                cache_dir=window["cache_dir"],
                audit_every_n_ticks=window["audit_every_n_ticks"],
            )
            print(out["table"])
        elif name == "e3":
            print(figures.inconsistency_by_policy(**window)["table"])
        elif name == "e4":
            print(figures.latency_by_policy(**window)["table"])
        elif name == "e6":
            duration = window["duration_ms"]
            out = figures.dynamics_timeline(
                base_bots=window["bots"],
                burst_bots=window["bots"] * 2,
                duration_ms=max(duration, 45_000.0),
                burst_at_ms=max(duration, 45_000.0) / 3,
                burst_end_ms=2 * max(duration, 45_000.0) / 3,
                seed=window["seed"],
                audit_every_n_ticks=window["audit_every_n_ticks"],
            )
            print(out["table"])
        elif name == "e7":
            print(figures.policy_summary_table(**window)["table"])
        elif name == "e8a":
            print(figures.ablation_merging(**window)["table"])
        elif name == "e8b":
            print(figures.ablation_granularity(**window)["table"])
        elif name == "e8c":
            print(figures.ablation_policy_period(**window)["table"])
        elif name == "e9":
            print(figures.fault_churn_sweep(**window)["table"])
        elif name == "e11":
            shard_counts = tuple(int(c) for c in args.shards.split(","))
            out = figures.shard_scaling(
                bots=window["bots"],
                duration_ms=window["duration_ms"],
                warmup_ms=window["warmup_ms"],
                seed=window["seed"],
                shard_counts=shard_counts,
                movement=args.movement,
                jobs=window["jobs"],
                cache_dir=window["cache_dir"],
                audit_every_n_ticks=window["audit_every_n_ticks"],
            )
            print(out["table"])
        else:
            raise ValueError(f"unknown experiment {name!r}")

    hub = None
    previous_hub = None
    if args.telemetry:
        hub = Telemetry(enabled=True)
        previous_hub = set_telemetry(hub)

    try:
        if args.experiment == "all":
            for name in ("e1", "e3", "e4", "e6", "e7", "e8a", "e8b", "e8c", "e9"):
                print(f"=== {name} ===")
                run_one(name)
                print()
        else:
            run_one(args.experiment)
    finally:
        if hub is not None:
            set_telemetry(previous_hub)

    if hub is not None:
        jsonl_path, prom_path = save_telemetry(args.telemetry, hub)
        print()
        print(render_summary(hub))
        print(f"\ntelemetry: wrote {jsonl_path} and {prom_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
