"""Reverse view index: O(viewers) event fan-out.

The engine's broadcast path and the interest manager's chunk-crossing
handler both need "which sessions care about this chunk/entity?". The
naive answer — scan every connected session — makes a movement-heavy
tick O(players²): every move event visits every player even though only
the handful viewing the event's chunk can receive it.

:class:`ViewerIndex` keeps two reverse maps in lockstep with per-session
state so those paths touch only the sessions that matter:

* ``chunk -> sessions viewing it`` — the exact inverse of
  ``session.view_chunks``, maintained by :class:`InterestManager` at the
  three places the view set changes (join, refresh, leave);
* ``entity -> sessions knowing it`` — the exact inverse of
  ``session.known_entities`` membership, maintained by
  :class:`~repro.server.session.KnownEntityMap` write hooks (the codec
  and the interest manager mutate that map on many paths; hooking the
  map itself is the only way to stay exact).

Buckets are insertion-ordered dicts keyed by client id, not sets:
iteration order is then a deterministic function of the simulation
history, which keeps seeded runs reproducible (session objects hash by
identity, so set iteration order would vary run to run).

The indexed fan-out is required to be *packet-for-packet identical* to
the brute-force scan; ``tests/test_server_viewindex.py`` proves this
differentially and by property-checking the inverse-map invariants.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

from repro.world.geometry import ChunkPos

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.server.session import PlayerSession


class ViewerIndex:
    """Chunk→viewers and entity→knowers reverse maps."""

    def __init__(self) -> None:
        self._viewers_by_chunk: dict[ChunkPos, dict[int, "PlayerSession"]] = {}
        self._knowers_by_entity: dict[int, dict[int, "PlayerSession"]] = {}

    # ------------------------------------------------------------------
    # View maintenance (called by InterestManager)
    # ------------------------------------------------------------------

    def add_view(self, session: "PlayerSession", chunks: Iterable[ChunkPos]) -> None:
        """Record that ``session`` now views every chunk in ``chunks``."""
        client_id = session.client_id
        buckets = self._viewers_by_chunk
        for chunk in chunks:
            bucket = buckets.get(chunk)
            if bucket is None:
                bucket = buckets[chunk] = {}
            bucket[client_id] = session

    def remove_view(self, session: "PlayerSession", chunks: Iterable[ChunkPos]) -> None:
        """Record that ``session`` no longer views the chunks in ``chunks``.

        Empty buckets are pruned immediately: a trekking player would
        otherwise leave a trail of dead dict entries for every chunk it
        ever saw.
        """
        client_id = session.client_id
        buckets = self._viewers_by_chunk
        for chunk in chunks:
            bucket = buckets.get(chunk)
            if bucket is None:
                continue
            bucket.pop(client_id, None)
            if not bucket:
                del buckets[chunk]

    # ------------------------------------------------------------------
    # Knower maintenance (called by KnownEntityMap write hooks)
    # ------------------------------------------------------------------

    def on_entity_known(self, entity_id: int, session: "PlayerSession") -> None:
        bucket = self._knowers_by_entity.get(entity_id)
        if bucket is None:
            bucket = self._knowers_by_entity[entity_id] = {}
        bucket[session.client_id] = session

    def on_entity_forgotten(self, entity_id: int, session: "PlayerSession") -> None:
        bucket = self._knowers_by_entity.get(entity_id)
        if bucket is None:
            return
        bucket.pop(session.client_id, None)
        if not bucket:
            del self._knowers_by_entity[entity_id]

    # ------------------------------------------------------------------
    # Queries (the O(viewers) fan-out paths)
    # ------------------------------------------------------------------

    def viewers(self, chunk: ChunkPos) -> list["PlayerSession"]:
        """Sessions currently viewing ``chunk`` (snapshot; safe to mutate
        views or send packets while iterating)."""
        bucket = self._viewers_by_chunk.get(chunk)
        if not bucket:
            return []
        return list(bucket.values())

    def knowers(self, entity_id: int) -> list["PlayerSession"]:
        """Sessions whose client currently has a replica of ``entity_id``
        (snapshot; forgetting entities while iterating is safe)."""
        bucket = self._knowers_by_entity.get(entity_id)
        if not bucket:
            return []
        return list(bucket.values())

    def viewer_count(self, chunk: ChunkPos) -> int:
        return len(self._viewers_by_chunk.get(chunk, ()))

    # ------------------------------------------------------------------
    # Introspection (telemetry + tests)
    # ------------------------------------------------------------------

    @property
    def chunk_count(self) -> int:
        """Distinct chunks with at least one viewer."""
        return len(self._viewers_by_chunk)

    @property
    def pair_count(self) -> int:
        """Total (chunk, session) pairs — the index's working-set size."""
        return sum(len(bucket) for bucket in self._viewers_by_chunk.values())

    def violations(self, sessions: Iterable["PlayerSession"]) -> list[str]:
        """Differential ground truth: compare both maps against a
        brute-force scan of per-session state; returns one message per
        divergence (empty list = exact inverse). This is the check the
        invariant auditor (S15 checked mode) runs every N ticks."""
        sessions = list(sessions)
        expected_viewers: dict[ChunkPos, set[int]] = {}
        expected_knowers: dict[int, set[int]] = {}
        for session in sessions:
            for chunk in session.view_chunks:
                expected_viewers.setdefault(chunk, set()).add(session.client_id)
            for entity_id in session.known_entities:
                expected_knowers.setdefault(entity_id, set()).add(session.client_id)
        actual_viewers = {
            chunk: set(bucket) for chunk, bucket in self._viewers_by_chunk.items()
        }
        actual_knowers = {
            entity_id: set(bucket)
            for entity_id, bucket in self._knowers_by_entity.items()
        }
        found: list[str] = []
        if actual_viewers != expected_viewers:
            found.append(
                f"viewer index diverged from session.view_chunks: "
                f"index={actual_viewers} expected={expected_viewers}"
            )
        if actual_knowers != expected_knowers:
            found.append(
                f"knower index diverged from session.known_entities: "
                f"index={actual_knowers} expected={expected_knowers}"
            )
        for chunk, bucket in self._viewers_by_chunk.items():
            if not bucket:
                found.append(f"empty viewer bucket left behind for {chunk}")
        for entity_id, bucket in self._knowers_by_entity.items():
            if not bucket:
                found.append(f"empty knower bucket left behind for entity {entity_id}")
        return found

    def audit(self, sessions: Iterable["PlayerSession"]) -> None:
        """Assert both maps are the exact inverse of per-session state.

        Used by the property tests after arbitrary interleavings of
        join / refresh / crossing / disconnect; raises AssertionError
        with a precise message on the first violation found.
        """
        for message in self.violations(sessions):
            raise AssertionError(message)
