"""Simulated clock.

All timestamps in the simulation are floats in *milliseconds* since the
start of the run. Using milliseconds keeps the numbers aligned with the
game's natural unit (the 50 ms server tick) and with the paper's reported
tick-duration and staleness figures.
"""

from __future__ import annotations


class SimClock:
    """Monotonic simulated clock.

    The clock can only move forward; the simulation kernel advances it as
    events are dispatched. Everything else reads it through :attr:`now`.
    """

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise ValueError(f"clock cannot start before zero, got {start}")
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulated time in milliseconds."""
        return self._now

    def advance_to(self, when: float) -> None:
        """Move the clock forward to ``when``.

        Raises :class:`ValueError` on any attempt to move backwards, which
        would indicate a scheduling bug.
        """
        if when < self._now:
            raise ValueError(
                f"clock cannot move backwards: now={self._now}, requested={when}"
            )
        self._now = when

    def __repr__(self) -> str:
        return f"SimClock(now={self._now:.3f}ms)"
