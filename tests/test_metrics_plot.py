"""Unit tests for terminal plotting."""

from repro.metrics.plot import line_plot, sparkline


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""

    def test_constant_series_is_flat(self):
        line = sparkline([5.0, 5.0, 5.0])
        assert len(line) == 3
        assert len(set(line)) == 1

    def test_monotone_series_is_nondecreasing_glyphs(self):
        from repro.metrics.plot import _BARS

        line = sparkline([0.0, 1.0, 2.0, 3.0])
        indices = [_BARS.index(ch) for ch in line]
        assert indices == sorted(indices)

    def test_extremes_map_to_extreme_glyphs(self):
        from repro.metrics.plot import _BARS

        line = sparkline([0.0, 10.0])
        assert line[0] == _BARS[0]
        assert line[-1] == _BARS[-1]


class TestLinePlot:
    def test_empty_series(self):
        out = line_plot({"a": []}, title="empty")
        assert "no data" in out

    def test_contains_title_axes_and_legend(self):
        out = line_plot(
            {"vanilla": [(0, 0), (10, 100)], "dyconits": [(0, 0), (10, 40)]},
            title="capacity",
            x_label="players",
        )
        assert "capacity" in out
        assert "players" in out
        assert "* vanilla" in out
        assert "o dyconits" in out
        assert "100" in out and "0" in out  # y-axis labels

    def test_dimensions(self):
        out = line_plot({"s": [(0, 0), (1, 1)]}, width=30, height=6)
        plot_rows = [line for line in out.splitlines() if "|" in line]
        assert len(plot_rows) == 6
        for row in plot_rows:
            assert len(row.split("|", 1)[1]) == 30

    def test_single_point(self):
        out = line_plot({"s": [(5.0, 5.0)]})
        assert "*" in out
