"""The DyconitSystem: middleware facade the game integrates with.

Responsibilities:

* owns all dyconits and the event→dyconit partitioning;
* runs the commit path (enqueue + numerical-bound check + flush);
* runs the tick path (staleness-bound checks via a deadline heap, and
  periodic policy evaluation);
* manages subscriptions, including flush-on-unsubscribe semantics; and
* exposes :class:`~repro.core.stats.DyconitStats` to the evaluation.

Performance note: staleness deadlines live in a lazy min-heap keyed by
``oldest_pending_time + staleness_bound``. The tick only examines entries
that are due, so tick cost scales with the number of *flushes*, not with
the number of subscriptions — the property that keeps the middleware
"thin" as the paper requires.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field
from typing import Callable, Hashable, Iterator, Sequence

from repro.backends.base import (
    EventBus,
    StateStore,
    SubscriptionSnapshot,
    snapshot_subscription,
)
from repro.backends.registry import create_event_bus, create_state_store
from repro.core.bounds import Bounds
from repro.core.dyconit import Dyconit, SubscriptionState
from repro.core.partition import ChunkPartitioner, DyconitPartitioner
from repro.core.policy import LoadSignals, Policy
from repro.core.stats import DyconitStats
from repro.core.subscription import Subscriber
from repro.core.update import Update
from repro.telemetry.hub import NULL_TELEMETRY, Telemetry


@dataclass
class DyconitRecord:
    """One dyconit's durable half in a :class:`SystemSnapshot`."""

    dyconit_id: Hashable
    total_committed_weight: float
    commit_count: int
    default_bounds: Bounds
    merging: bool
    #: Subscription snapshots in iteration (= legacy dict insertion) order.
    subscriptions: list[SubscriptionSnapshot] = field(default_factory=list)


@dataclass
class SystemSnapshot:
    """Everything a :class:`DyconitSystem` needs to resume bit-compatibly.

    Subscriber *callbacks* are deliberately absent — they are runtime
    objects (closures over sockets and sessions) and are re-supplied by
    the host at :meth:`DyconitSystem.restore` time. Everything else is
    plain picklable data; the policy rides along whole (policies hold
    only picklable tuning state, a property the parallel sweep executor
    already relies on).
    """

    dyconits: list[DyconitRecord]
    #: Subscriber ids in registration order.
    subscriber_order: list[int]
    #: Per subscriber, its dyconit ids in subscription order.
    membership: dict[int, list[Hashable]]
    aliases: dict[Hashable, Hashable]
    alias_sources: dict[Hashable, list[Hashable]]
    deadline_heap: list[tuple[float, int, Hashable, int]]
    heap_seq: int
    last_policy_evaluation: float
    repartition_epoch: int
    stats: DyconitStats
    policy: Policy
    merging_enabled: bool
    use_batched_commit: bool


class DyconitSystem:
    """Middleware instance serving one game server."""

    def __init__(
        self,
        policy: Policy,
        partitioner: DyconitPartitioner | None = None,
        time_source: Callable[[], float] | None = None,
        merging_enabled: bool = True,
        telemetry: Telemetry | None = None,
        use_batched_commit: bool = True,
        state_store=None,
        event_bus=None,
    ) -> None:
        self.policy = policy
        self.partitioner = partitioner if partitioner is not None else ChunkPartitioner()
        #: S19 backend seam: where per-dyconit subscription state lives.
        #: Accepts a StateStore instance or a registry spec ("memory",
        #: "sqlite", "sqlite:///path", "redis://..."); default is the
        #: in-memory store, byte-identical to the pre-seam tree.
        self.state_store = create_state_store(state_store)
        #: S19 fan-out seam: flushed batches go through this bus. The
        #: default direct bus delivers inline, exactly like the legacy
        #: ``subscriber.deliver(...)`` call.
        self.event_bus = create_event_bus(event_bus)
        # Backends built here from a spec are this system's to close;
        # instances handed in stay the caller's (a restart harness keeps
        # its store open across the system it is tearing down).
        self._owns_state_store = not isinstance(state_store, StateStore)
        self._owns_event_bus = not isinstance(event_bus, EventBus)
        self._closed = False
        #: E8(a) ablation switch; affects dyconits created after the change.
        self.merging_enabled = merging_enabled
        #: S17 toggle: new dyconits use the flat columnar subscription
        #: store and the vectorized commit path. Off = legacy per-object
        #: states, kept as differential ground truth (the PR 2 playbook).
        self.use_batched_commit = use_batched_commit
        #: Bumped by merge/split/remove so :meth:`commit_many` knows to
        #: re-resolve a cached (dyconit id -> dyconit) run mid-batch.
        self._repartition_epoch = 0
        self._time_source = time_source if time_source is not None else (lambda: 0.0)
        self._dyconits: dict[Hashable, Dyconit] = {}
        #: Runtime repartitioning: source id -> merged target id. Commits
        #: and (un)subscriptions resolve through this table, so policies
        #: can merge cold dyconits and split them again live.
        self._aliases: dict[Hashable, Hashable] = {}
        #: Reverse of ``_aliases``: target id -> its direct sources, in
        #: merge order (dict-as-ordered-set). Lets ``split_dyconit`` run
        #: in O(sources of that target) instead of scanning every alias.
        self._alias_sources: dict[Hashable, dict[Hashable, None]] = {}
        self._subscribers: dict[int, Subscriber] = {}
        #: dyconit ids each subscriber currently subscribes to, in
        #: subscription order (dict-as-ordered-set). A plain set would
        #: iterate in string-hash order — randomized per process — and
        #: policies sweeping a subscriber's subscriptions would flush in
        #: a different order each run, breaking run-to-run determinism.
        self._subscriptions_by_subscriber: dict[int, dict[Hashable, None]] = {}
        #: Lazy staleness-deadline heap: (deadline, seq, dyconit_id, subscriber_id).
        self._deadline_heap: list[tuple[float, int, Hashable, int]] = []
        self._heap_seq = 0
        self._last_policy_evaluation = -math.inf
        self.stats = DyconitStats()
        #: Optional DyconitTracer recording middleware decisions.
        self.tracer = None
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        # Metric handles are resolved once here so the commit/flush hot
        # paths never pay a registry lookup; a disabled hub keeps them
        # None and the paths pay a single attribute check instead.
        if self.telemetry.enabled:
            self._tm_commits = self.telemetry.counter("dyconit_commits_total")
            self._tm_enqueued = self.telemetry.counter("dyconit_updates_enqueued_total")
            self._tm_delivered = self.telemetry.counter("dyconit_updates_delivered_total")
            self._tm_batch_size = self.telemetry.histogram(
                "dyconit_flush_batch_size", min_value=1.0
            )
        else:
            self._tm_commits = None
            self._tm_enqueued = None
            self._tm_delivered = None
            self._tm_batch_size = None
        policy.on_attach(self)

    # ------------------------------------------------------------------
    # Time
    # ------------------------------------------------------------------

    @property
    def now(self) -> float:
        return self._time_source()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Release backend resources (idempotent).

        Backends the system constructed from specs are closed; instances
        the caller passed in remain the caller's to close — the restart
        harness hands one store to a system, tears the system down, and
        keeps using the store.
        """
        if self._closed:
            return
        self._closed = True
        if self._owns_state_store:
            self.state_store.close()
        if self._owns_event_bus:
            self.event_bus.close()

    def __enter__(self) -> "DyconitSystem":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Restart (S20): snapshot / restore
    # ------------------------------------------------------------------

    def snapshot(self) -> SystemSnapshot:
        """Capture the durable half of the middleware, bit-for-bit.

        Called at a tick barrier (no partially applied commit). The
        result is plain data — see :class:`SystemSnapshot` for what is
        deliberately left out.
        """
        records = []
        for dyconit_id, dyconit in self._dyconits.items():
            records.append(
                DyconitRecord(
                    dyconit_id=dyconit_id,
                    total_committed_weight=dyconit.total_committed_weight,
                    commit_count=dyconit.commit_count,
                    default_bounds=dyconit.default_bounds,
                    merging=dyconit.merging,
                    subscriptions=[
                        snapshot_subscription(state)
                        for state in dyconit.subscription_states()
                    ],
                )
            )
        return SystemSnapshot(
            dyconits=records,
            subscriber_order=list(self._subscribers),
            membership={
                sub_id: list(ids)
                for sub_id, ids in self._subscriptions_by_subscriber.items()
            },
            aliases=dict(self._aliases),
            alias_sources={
                target: list(sources)
                for target, sources in self._alias_sources.items()
            },
            deadline_heap=list(self._deadline_heap),
            heap_seq=self._heap_seq,
            last_policy_evaluation=self._last_policy_evaluation,
            repartition_epoch=self._repartition_epoch,
            stats=self.stats,
            policy=self.policy,
            merging_enabled=self.merging_enabled,
            use_batched_commit=self.use_batched_commit,
        )

    def restore(self, snap: SystemSnapshot, subscribers: dict[int, Subscriber]) -> None:
        """Rebuild this (freshly constructed, empty) system from ``snap``.

        ``subscribers`` supplies the runtime callback objects, keyed by
        subscriber id — the host rebuilt them alongside its sessions.
        The store is wiped first (:meth:`StateStore.reset`) so rows a
        killed run wrote *after* the checkpoint can never leak in; every
        queue and accounting field is then rewritten verbatim through
        :meth:`~repro.backends.base.DyconitStateHandle.restore_subscription`.
        """
        if self._dyconits or self._subscribers:
            raise RuntimeError("restore() requires a fresh, empty DyconitSystem")
        missing = [
            sub.subscriber_id
            for record in snap.dyconits
            for sub in record.subscriptions
            if sub.subscriber_id not in subscribers
        ]
        if missing:
            raise ValueError(f"no runtime subscriber supplied for ids {missing}")
        self.merging_enabled = snap.merging_enabled
        self.use_batched_commit = snap.use_batched_commit
        # Adopt the snapshot's policy wholesale: adaptive policies carry
        # tuning state (EWMA baselines, last decisions) that must resume
        # where the captured run left off.
        self.policy = snap.policy
        snap.policy.on_attach(self)
        self.state_store.reset()
        for sub_id in snap.subscriber_order:
            self.register_subscriber(subscribers[sub_id])
        for record in snap.dyconits:
            handle = self.state_store.create_dyconit_state(
                record.dyconit_id,
                merging=record.merging,
                flat=self.use_batched_commit,
            )
            self._dyconits[record.dyconit_id] = handle
            handle.default_bounds = record.default_bounds
            handle.total_committed_weight = record.total_committed_weight
            handle.commit_count = record.commit_count
            for sub in record.subscriptions:
                handle.restore_subscription(subscribers[sub.subscriber_id], sub)
        self._subscriptions_by_subscriber = {
            sub_id: dict.fromkeys(ids) for sub_id, ids in snap.membership.items()
        }
        self._aliases = dict(snap.aliases)
        self._alias_sources = {
            target: dict.fromkeys(sources)
            for target, sources in snap.alias_sources.items()
        }
        # The recorded list was a valid heap when captured; restoring it
        # verbatim (entries, seq counter and all) keeps future pops and
        # pushes identical to the unkilled run.
        self._deadline_heap = [tuple(entry) for entry in snap.deadline_heap]
        self._heap_seq = snap.heap_seq
        self._last_policy_evaluation = snap.last_policy_evaluation
        self._repartition_epoch = snap.repartition_epoch
        self.stats = snap.stats

    # ------------------------------------------------------------------
    # Dyconit lifecycle
    # ------------------------------------------------------------------

    def resolve(self, dyconit_id: Hashable) -> Hashable:
        """Follow merge aliases to the dyconit that currently owns ``dyconit_id``."""
        seen = set()
        while dyconit_id in self._aliases:
            if dyconit_id in seen:  # defensive: a cycle would hang commits
                raise RuntimeError(f"alias cycle involving {dyconit_id!r}")
            seen.add(dyconit_id)
            dyconit_id = self._aliases[dyconit_id]
        return dyconit_id

    def get_or_create(self, dyconit_id: Hashable) -> Dyconit:
        dyconit = self._dyconits.get(dyconit_id)
        if dyconit is None:
            dyconit = self.state_store.create_dyconit_state(
                dyconit_id,
                merging=self.merging_enabled,
                flat=self.use_batched_commit,
            )
            self._dyconits[dyconit_id] = dyconit
            self.stats.dyconits_created += 1
        return dyconit

    def get(self, dyconit_id: Hashable) -> Dyconit | None:
        return self._dyconits.get(dyconit_id)

    def remove_dyconit(self, dyconit_id: Hashable, flush_pending: bool = True) -> None:
        dyconit = self._dyconits.pop(dyconit_id, None)
        if dyconit is None:
            return
        self._repartition_epoch += 1
        # Removing a merge *target* releases its aliases: a later commit
        # to a source id must create a fresh dyconit under that id, not
        # resurrect an empty ghost under the removed target id (where it
        # would be dropped with no subscribers).
        for source_id in self._alias_sources.pop(dyconit_id, ()):
            self._aliases.pop(source_id, None)
        for state in dyconit.subscription_states():
            if flush_pending and state.has_pending:
                self._deliver(dyconit_id, state, reason="forced")
            membership = self._subscriptions_by_subscriber.get(
                state.subscriber.subscriber_id
            )
            if membership is not None:
                membership.pop(dyconit_id, None)
        self.state_store.drop_dyconit_state(dyconit_id)
        self.stats.dyconits_removed += 1

    def dyconits(self) -> Iterator[Dyconit]:
        return iter(self._dyconits.values())

    @property
    def dyconit_count(self) -> int:
        return len(self._dyconits)

    # ------------------------------------------------------------------
    # Runtime repartitioning (merge / split)
    # ------------------------------------------------------------------

    def merge_dyconits(self, source_ids: Sequence[Hashable], target_id: Hashable) -> Dyconit:
        """Merge ``source_ids`` into one dyconit under ``target_id``.

        Subscribers of every source are re-subscribed to the target with
        the component-wise *tightest* of their bounds (merging must never
        loosen a promise), pending updates move across, and future
        commits to a source id are aliased to the target. Policies use
        this to collapse cold areas into coarse units and cut bookkeeping.
        """
        target_id = self.resolve(target_id)
        target = self.get_or_create(target_id)
        self._repartition_epoch += 1
        # Cross-queue backlog moves below mutate SubscriptionStates in
        # ways the columnar store does not model; drop the target and
        # every source back to per-object states first (S17). Merge
        # targets are cold by policy design, so they stay private.
        target._ensure_private()
        for source_id in source_ids:
            source_id = self.resolve(source_id)
            if source_id == target_id:
                continue
            self._aliases[source_id] = target_id
            self._alias_sources.setdefault(target_id, {})[source_id] = None
            if self.telemetry.enabled:
                self.telemetry.counter("dyconit_merges_total").increment()
            if self.tracer is not None:
                self.tracer.record(
                    self.now, "merge", source_id, detail=f"into {target_id!r}"
                )
            source = self._dyconits.pop(source_id, None)
            if source is None:
                continue
            source._ensure_private()
            target.total_committed_weight += source.total_committed_weight
            target.commit_count += source.commit_count
            for state in source.subscription_states():
                subscriber = state.subscriber
                membership = self._subscriptions_by_subscriber.get(
                    subscriber.subscriber_id
                )
                if membership is not None:
                    membership.pop(source_id, None)
                existing = target.get_state(subscriber.subscriber_id)
                if existing is None:
                    merged_state = target.subscribe(subscriber, state.bounds)
                    if membership is not None:
                        membership[target_id] = None
                else:
                    merged_state = existing
                    merged_bounds = Bounds(
                        min(existing.bounds.numerical, state.bounds.numerical),
                        min(existing.bounds.staleness_ms, state.bounds.staleness_ms),
                        min(existing.bounds.order, state.bounds.order),
                    )
                    if merged_bounds != existing.bounds:
                        merged_state.bounds = merged_bounds
                        if merged_state.has_pending:
                            # Tightening staleness moves the deadline
                            # *earlier* than any heap entry pushed under
                            # the old bounds; without a fresh entry the
                            # backlog flushes late (or, if the source had
                            # nothing pending below, never by deadline).
                            self._push_deadline(target_id, merged_state)
                if state.has_pending:
                    had_backlog = merged_state.has_pending
                    for update in state.drain():
                        merged_state.enqueue(update)
                    if had_backlog:
                        # The moved backlog may predate updates already
                        # queued on the target; restore the time order the
                        # sort-free drain relies on.
                        merged_state.restore_time_order()
                    self._push_deadline(target_id, merged_state)
            self.state_store.drop_dyconit_state(source_id)
            self.stats.dyconits_removed += 1
        return target

    def split_dyconit(self, target_id: Hashable) -> list[Hashable]:
        """Undo a merge: release every id aliased to ``target_id``.

        The target's subscribers are re-subscribed to each released id
        (with their current bounds) so no updates are lost between the
        split and the next interest refresh; the target is then removed,
        flushing anything still queued.
        """
        sources = list(self._alias_sources.pop(target_id, ()))
        for source_id in sources:
            del self._aliases[source_id]
            if self.telemetry.enabled:
                self.telemetry.counter("dyconit_splits_total").increment()
            if self.tracer is not None:
                self.tracer.record(
                    self.now, "split", source_id, detail=f"out of {target_id!r}"
                )
        target = self._dyconits.get(target_id)
        if target is not None:
            for state in target.subscription_states():
                for source_id in sources:
                    self.subscribe(source_id, state.subscriber, bounds=state.bounds)
            self.remove_dyconit(target_id)
        return sources

    def is_merged(self, dyconit_id: Hashable) -> bool:
        return dyconit_id in self._aliases

    @property
    def alias_count(self) -> int:
        return len(self._aliases)

    # ------------------------------------------------------------------
    # Subscribers
    # ------------------------------------------------------------------

    def register_subscriber(self, subscriber: Subscriber) -> None:
        if subscriber.subscriber_id in self._subscribers:
            raise ValueError(f"subscriber {subscriber.subscriber_id} already registered")
        self._subscribers[subscriber.subscriber_id] = subscriber
        self._subscriptions_by_subscriber[subscriber.subscriber_id] = {}

    def remove_subscriber(self, subscriber_id: int, flush_pending: bool = False) -> None:
        """Drop a subscriber from every dyconit (player disconnect).

        ``flush_pending=False`` by default: a disconnecting player's
        socket is gone, so pending updates are dropped, not sent.
        """
        membership = self._subscriptions_by_subscriber.pop(subscriber_id, {})
        for dyconit_id in list(membership):
            dyconit = self._dyconits.get(dyconit_id)
            if dyconit is None:
                continue
            state = dyconit.unsubscribe(subscriber_id)
            if state is not None:
                if flush_pending and state.has_pending:
                    self._deliver(dyconit_id, state, reason="forced")
                self.stats.unsubscriptions += 1
        self._subscribers.pop(subscriber_id, None)

    def subscriber(self, subscriber_id: int) -> Subscriber | None:
        return self._subscribers.get(subscriber_id)

    def subscribers(self) -> Iterator[Subscriber]:
        return iter(self._subscribers.values())

    @property
    def subscriber_count(self) -> int:
        return len(self._subscribers)

    def subscriptions_of(self, subscriber_id: int) -> set[Hashable]:
        return set(self._subscriptions_by_subscriber.get(subscriber_id, ()))

    def subscription_ids_of(self, subscriber_id: int) -> tuple[Hashable, ...]:
        """Like :meth:`subscriptions_of` but in deterministic subscription
        order — use this when *iterating* (bound sweeps, flushes) so the
        sweep order doesn't depend on string-hash randomization."""
        return tuple(self._subscriptions_by_subscriber.get(subscriber_id, ()))

    # ------------------------------------------------------------------
    # Subscription management
    # ------------------------------------------------------------------

    def subscribe(
        self,
        dyconit_id: Hashable,
        subscriber: Subscriber,
        bounds: Bounds | None = None,
    ) -> SubscriptionState:
        """Subscribe; bounds default to ``policy.initial_bounds``."""
        if subscriber.subscriber_id not in self._subscribers:
            self.register_subscriber(subscriber)
        dyconit_id = self.resolve(dyconit_id)
        dyconit = self.get_or_create(dyconit_id)
        if bounds is None:
            bounds = self.policy.initial_bounds(self, dyconit_id, subscriber)
        state = dyconit.get_state(subscriber.subscriber_id)
        if state is not None:
            # Re-subscribing (e.g. an interest refresh) may change the
            # bounds; that must go through the same re-check/re-push path
            # as set_bounds, or a tightened staleness bound on a queued
            # backlog silently keeps its old (later) deadline.
            if bounds != state.bounds:
                self._apply_bounds(dyconit_id, state, bounds)
            return state
        state = dyconit.subscribe(subscriber, bounds)
        self._subscriptions_by_subscriber[subscriber.subscriber_id][dyconit_id] = None
        self.stats.subscriptions += 1
        return state

    def unsubscribe(
        self, dyconit_id: Hashable, subscriber_id: int, flush_pending: bool = True
    ) -> None:
        dyconit_id = self.resolve(dyconit_id)
        dyconit = self._dyconits.get(dyconit_id)
        if dyconit is None:
            return
        state = dyconit.unsubscribe(subscriber_id)
        if state is None:
            return
        if flush_pending and state.has_pending:
            self._deliver(dyconit_id, state, reason="forced")
        membership = self._subscriptions_by_subscriber.get(subscriber_id)
        if membership is not None:
            membership.pop(dyconit_id, None)
        self.stats.unsubscriptions += 1

    def set_bounds(self, dyconit_id: Hashable, subscriber_id: int, bounds: Bounds) -> None:
        """Update one subscription's bounds; re-checks immediately so a
        tightened bound takes effect without waiting for the next commit."""
        dyconit_id = self.resolve(dyconit_id)
        dyconit = self._dyconits.get(dyconit_id)
        if dyconit is None:
            return
        state = dyconit.get_state(subscriber_id)
        if state is None:
            return
        if self.tracer is not None:
            self.tracer.record(
                self.now, "bounds", dyconit_id, subscriber_id,
                detail=f"numerical={bounds.numerical:g} staleness={bounds.staleness_ms:g}",
            )
        self._apply_bounds(dyconit_id, state, bounds)

    def _apply_bounds(
        self, dyconit_id: Hashable, state: SubscriptionState, bounds: Bounds
    ) -> None:
        """Install new bounds on a live subscription and re-check them.

        Shared by :meth:`set_bounds` and re-subscription: a tightened
        bound must take effect immediately — flush if already exceeded,
        otherwise re-arm the deadline heap under the new staleness bound.
        """
        state.bounds = bounds
        if state.has_pending:
            now = self.now
            self.stats.bound_checks += 1
            reason = state.tripped_dimension(now)
            if reason is not None:
                self._deliver(dyconit_id, state, reason=reason)
            else:
                self._push_deadline(dyconit_id, state)

    # ------------------------------------------------------------------
    # Commit path
    # ------------------------------------------------------------------

    def commit(self, update: Update, exclude_subscriber: int | None = None) -> Hashable:
        """Commit an update, routing it through the partitioner.

        Returns the dyconit id the update was committed to.
        """
        dyconit_id = self.partitioner.dyconit_for_event(update)
        self.commit_to(dyconit_id, update, exclude_subscriber)
        return dyconit_id

    def commit_to(
        self, dyconit_id: Hashable, update: Update, exclude_subscriber: int | None = None
    ) -> None:
        """Commit an update to an explicit dyconit."""
        dyconit_id = self.resolve(dyconit_id)
        dyconit = self.get_or_create(dyconit_id)
        if self._tm_commits is not None:
            self._tm_commits.increment()
        self._commit_resolved(dyconit_id, dyconit, update, exclude_subscriber)

    def commit_many(
        self,
        batch: Sequence[tuple[Hashable, Update, int | None]],
    ) -> None:
        """Commit a batch of ``(dyconit_id, update, exclude_subscriber)``.

        Consecutive items targeting the same (unresolved) dyconit id form
        a *run* that shares one alias resolution and dyconit lookup —
        the per-update overhead the legacy path pays on every commit.
        Runs are only formed over consecutive items so the delivery order
        of an interleaved stream is exactly that of the equivalent
        :meth:`commit_to` loop. A repartition triggered mid-batch (e.g.
        by a delivery handler) bumps ``_repartition_epoch`` and forces
        the cached resolution to be redone.
        """
        marker = object()
        run_id: object = marker
        epoch = -1
        resolved: Hashable = None
        dyconit: Dyconit | None = None
        committed = 0
        for dyconit_id, update, exclude_subscriber in batch:
            if dyconit_id != run_id or epoch != self._repartition_epoch:
                run_id = dyconit_id
                epoch = self._repartition_epoch
                resolved = self.resolve(dyconit_id)
                dyconit = self.get_or_create(resolved)
            committed += 1
            self._commit_resolved(resolved, dyconit, update, exclude_subscriber)
        if committed and self._tm_commits is not None:
            self._tm_commits.increment(committed)

    def _commit_resolved(
        self,
        dyconit_id: Hashable,
        dyconit: Dyconit,
        update: Update,
        exclude_subscriber: int | None,
    ) -> None:
        """Shared commit body; ``dyconit_id`` must already be resolved."""
        self.stats.commits += 1
        if dyconit._flat is not None:
            n_enqueued, n_merged, events = dyconit.commit_flat(
                update, exclude_subscriber, self.now
            )
            if not n_enqueued:
                return
            self.stats.updates_enqueued += n_enqueued
            self.stats.updates_merged += n_merged
            self.stats.bound_checks += n_enqueued
            if self._tm_enqueued is not None:
                self._tm_enqueued.increment(n_enqueued)
            if events is not None:
                for view, reason in events:
                    if reason is not None:
                        self._deliver(dyconit_id, view, reason=reason)
                    else:
                        self._push_deadline(dyconit_id, view)
            return
        touched = dyconit.commit(update, exclude_subscriber)
        if not touched:
            return
        now = self.now
        if self._tm_enqueued is not None:
            self._tm_enqueued.increment(len(touched))
        for state, result in touched:
            self.stats.updates_enqueued += 1
            if result.superseded:
                self.stats.updates_merged += 1
            self.stats.bound_checks += 1
            reason = state.tripped_dimension(now)
            if reason is not None:
                self._deliver(dyconit_id, state, reason=reason)
            elif result.became_pending:
                self._push_deadline(dyconit_id, state)

    # ------------------------------------------------------------------
    # Tick path
    # ------------------------------------------------------------------

    def tick(self) -> int:
        """Run due staleness flushes; returns the number performed.

        Policy evaluation is separate (:meth:`evaluate_policy`) because it
        needs load signals only the server can supply; unit tests can tick
        the middleware without a server.
        """
        return self._flush_due_deadlines(self.now)

    def evaluate_policy(self, signals: LoadSignals) -> bool:
        """Run the policy if its evaluation period has elapsed."""
        if signals.now - self._last_policy_evaluation < self.policy.evaluation_period_ms:
            return False
        self._last_policy_evaluation = signals.now
        with self.telemetry.span("policy.evaluate"):
            self.policy.evaluate(self, signals)
        self.stats.policy_evaluations += 1
        return True

    def notify_subscriber_moved(self, subscriber_id: int) -> None:
        subscriber = self._subscribers.get(subscriber_id)
        if subscriber is not None:
            self.policy.on_subscriber_moved(self, subscriber)

    def _flush_due_deadlines(self, now: float) -> int:
        flushed = 0
        heap = self._deadline_heap
        while heap and heap[0][0] <= now:
            __, __, dyconit_id, subscriber_id = heapq.heappop(heap)
            dyconit = self._dyconits.get(dyconit_id)
            if dyconit is None:
                continue
            state = dyconit.get_state(subscriber_id)
            if state is None or not state.has_pending:
                continue  # lazy entry: already flushed or unsubscribed
            self.stats.bound_checks += 1
            reason = state.tripped_dimension(now)
            if reason is not None:
                # Usually "staleness" (that is what the heap tracks), but
                # a backlog moved here by a merge can trip the numerical
                # or order dimension first; report what actually tripped.
                self._deliver(dyconit_id, state, reason=reason)
                flushed += 1
            else:
                # Deadline moved (bounds loosened or queue drained and
                # refilled); push the fresh deadline — unless float
                # arithmetic cannot place it in the future (a staleness
                # bound so small that ``oldest + staleness <= now`` while
                # ``now - oldest < staleness``, e.g. a subnormal from a
                # multiplicatively-decayed or live-retuned bound). That
                # deadline is due *now* for every representable purpose;
                # re-pushing it would live-lock this loop.
                oldest = state.oldest_pending_time
                staleness = state.bounds.staleness_ms
                if (
                    oldest is not None
                    and not math.isinf(staleness)
                    and oldest + staleness <= now
                ):
                    self._deliver(dyconit_id, state, reason="staleness")
                    flushed += 1
                else:
                    self._push_deadline(dyconit_id, state)
        return flushed

    def _push_deadline(self, dyconit_id: Hashable, state: SubscriptionState) -> None:
        if state.oldest_pending_time is None:
            return
        if math.isinf(state.bounds.staleness_ms):
            return
        deadline = state.oldest_pending_time + state.bounds.staleness_ms
        self._heap_seq += 1
        heapq.heappush(
            self._deadline_heap,
            (deadline, self._heap_seq, dyconit_id, state.subscriber.subscriber_id),
        )

    # ------------------------------------------------------------------
    # Flushing
    # ------------------------------------------------------------------

    def flush(self, dyconit_id: Hashable, subscriber_id: int) -> None:
        """Force-flush one subscription (used by policies and shutdown)."""
        dyconit_id = self.resolve(dyconit_id)
        dyconit = self._dyconits.get(dyconit_id)
        if dyconit is None:
            return
        state = dyconit.get_state(subscriber_id)
        if state is not None and state.has_pending:
            self._deliver(dyconit_id, state, reason="forced")

    def flush_subscriber(self, subscriber_id: int) -> None:
        """Force-flush everything queued for one subscriber."""
        for dyconit_id in self.subscription_ids_of(subscriber_id):
            self.flush(dyconit_id, subscriber_id)

    def flush_all(self) -> None:
        """Force-flush every queue (end-of-run barrier in experiments)."""
        for dyconit_id, dyconit in list(self._dyconits.items()):
            for state in dyconit.subscription_states():
                if state.has_pending:
                    self._deliver(dyconit_id, state, reason="forced")

    def _deliver(
        self, dyconit_id: Hashable, state: SubscriptionState, reason: str
    ) -> None:
        updates = state.drain()
        if not updates:
            return
        now = self.now
        self.stats.flushes += 1
        if reason == "numerical":
            self.stats.flushes_numerical += 1
        elif reason == "staleness":
            self.stats.flushes_staleness += 1
        elif reason == "order":
            self.stats.flushes_order += 1
        else:
            self.stats.flushes_forced += 1
        self.stats.updates_delivered += len(updates)
        self.stats.per_flush_batch_sizes.append(len(updates))
        if self._tm_delivered is not None:
            self._tm_delivered.increment(len(updates))
            self._tm_batch_size.record(len(updates))
            self.telemetry.counter("dyconit_flushes_total", reason=reason).increment()
        for update in updates:
            self.stats.queue_delay_total_ms += max(0.0, now - update.time)
            self.stats.queue_delay_samples += 1
        if self.tracer is not None:
            self.tracer.record(
                now, "flush", dyconit_id, state.subscriber.subscriber_id,
                detail=f"reason={reason} updates={len(updates)}",
            )
        self.event_bus.publish(dyconit_id, state.subscriber, updates)
