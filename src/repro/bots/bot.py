"""The bot client: an emulated player.

A bot drives one player session: it walks toward waypoints, occasionally
places/breaks blocks and chats, and — crucially for the evaluation —
applies every received packet to a :class:`PerceivedWorld` replica. The
difference between that replica and the authoritative world *is* the
inconsistency the dyconit bounds promise to limit.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.net.protocol import (
    BlockChangePacket,
    ChatMessagePacket,
    ChunkDataPacket,
    ChunkUnloadPacket,
    DestroyEntitiesPacket,
    EntityPositionPacket,
    EntityTeleportPacket,
    JoinGamePacket,
    MultiBlockChangePacket,
    PlayerActionPacket,
    SpawnEntityPacket,
)
from repro.net.transport import DeliveredPacket
from repro.sim.rng import derive_rng
from repro.sim.simulator import Simulation
from repro.world.block import BUILDING_BLOCKS, BlockType
from repro.world.chunk import WORLD_HEIGHT
from repro.world.geometry import BlockPos, ChunkPos, Vec3
from repro.bots.movement import WALK_SPEED, MovementModel, RandomWaypointModel

#: Upstream (client -> server) one-way latency for bot actions, ms.
DEFAULT_UPSTREAM_LATENCY_MS = 25.0


@dataclass
class PerceivedWorld:
    """The bot's replica, reconstructed purely from received packets."""

    #: entity id -> believed position.
    entity_positions: dict[int, Vec3] = field(default_factory=dict)
    #: entity id -> sim time of the last update applied for it.
    entity_last_update: dict[int, float] = field(default_factory=dict)
    #: sparse overlay of block changes received (pos -> block).
    blocks: dict[BlockPos, BlockType] = field(default_factory=dict)
    loaded_chunks: set[ChunkPos] = field(default_factory=set)
    chat_log: list[str] = field(default_factory=list)

    def apply(self, delivered: DeliveredPacket) -> None:
        packet = delivered.packet
        now = delivered.delivered_at
        if isinstance(packet, SpawnEntityPacket):
            self.entity_positions[packet.entity_id] = packet.position
            self.entity_last_update[packet.entity_id] = now
        elif isinstance(packet, EntityPositionPacket):
            current = self.entity_positions.get(packet.entity_id)
            if current is not None:
                self.entity_positions[packet.entity_id] = current + packet.delta
                self.entity_last_update[packet.entity_id] = now
        elif isinstance(packet, EntityTeleportPacket):
            self.entity_positions[packet.entity_id] = packet.position
            self.entity_last_update[packet.entity_id] = now
        elif isinstance(packet, DestroyEntitiesPacket):
            for entity_id in packet.entity_ids:
                self.entity_positions.pop(entity_id, None)
                self.entity_last_update.pop(entity_id, None)
        elif isinstance(packet, BlockChangePacket):
            self.blocks[packet.pos] = packet.block
        elif isinstance(packet, MultiBlockChangePacket):
            for pos, block in packet.changes:
                self.blocks[pos] = block
        elif isinstance(packet, ChunkDataPacket):
            self.loaded_chunks.add(packet.chunk)
        elif isinstance(packet, ChunkUnloadPacket):
            self.loaded_chunks.discard(packet.chunk)
            # Forget overlay blocks in the unloaded chunk.
            for pos in [p for p in self.blocks if p.to_chunk_pos() == packet.chunk]:
                del self.blocks[pos]
        elif isinstance(packet, ChatMessagePacket):
            self.chat_log.append(packet.text)


class BotClient:
    """Emulated player driving one session."""

    def __init__(
        self,
        sim: Simulation,
        server,
        name: str,
        seed: int,
        movement: MovementModel | None = None,
        act_interval_ms: float = 100.0,
        build_probability: float = 0.0,
        dig_probability: float = 0.0,
        chat_probability: float = 0.0,
        upstream_latency_ms: float = DEFAULT_UPSTREAM_LATENCY_MS,
    ) -> None:
        self.sim = sim
        self.server = server
        self.name = name
        self.rng = derive_rng(seed, "bot", name)
        self.movement = movement if movement is not None else RandomWaypointModel()
        self.act_interval_ms = act_interval_ms
        self.build_probability = build_probability
        self.dig_probability = dig_probability
        self.chat_probability = chat_probability
        self.upstream_latency_ms = upstream_latency_ms

        self.perceived = PerceivedWorld()
        self.position: Vec3 | None = None
        self.waypoint: Vec3 | None = None
        self.client_id: int | None = None
        self.entity_id: int | None = None
        self.connected = False
        #: Set before a deferred connect fires to abort it (burst churn).
        self.cancelled = False
        self.packets_received = 0
        self.blocks_placed = 0
        self.blocks_dug = 0
        self.reconnects = 0
        self._act_event = None

    # ------------------------------------------------------------------
    # Connection lifecycle
    # ------------------------------------------------------------------

    def connect(
        self, position: Vec3 | None = None, reuse_client_id: bool = False
    ) -> None:
        """(Re)connect. A reconnect models a fresh client process: the
        perceived replica starts empty and is rebuilt purely from the
        packets of the new session. ``reuse_client_id=True`` keeps the
        previous client id (exercising the transport's connection
        generations against in-flight packets from the old socket)."""
        if self.cancelled:
            return
        if self.connected:
            raise RuntimeError(f"bot {self.name} is already connected")
        previous_id = self.client_id if reuse_client_id else None
        self.perceived = PerceivedWorld()
        self.waypoint = None
        session = self.server.connect(
            self.name,
            handler=self.on_packet,
            position=position,
            client_id=previous_id,
        )
        self.client_id = session.client_id
        self.entity_id = session.entity_id
        entity = self.server.world.get_entity(session.entity_id)
        self.position = entity.position
        self.connected = True
        if previous_id is not None:
            self.reconnects += 1
        self._schedule_act()

    def disconnect(self) -> None:
        if not self.connected:
            return
        self.connected = False
        if self._act_event is not None:
            self._act_event.cancel()
            self._act_event = None
        self.server.disconnect(self.client_id)

    # ------------------------------------------------------------------
    # Inbound
    # ------------------------------------------------------------------

    def on_packet(self, delivered: DeliveredPacket) -> None:
        self.packets_received += 1
        packet = delivered.packet
        if isinstance(packet, JoinGamePacket):
            self.entity_id = packet.entity_id
            # A JoinGame marks a brand-new server-side session — either
            # this connect, or a cross-shard handoff (S16) that rebuilt
            # the session elsewhere. Server state starts from scratch
            # (sync-on-join replays the view), so the replica must too;
            # keeping stale entries would double-count replicas the new
            # session re-announces.
            self.perceived = PerceivedWorld()
            return
        self.perceived.apply(delivered)

    # ------------------------------------------------------------------
    # Acting
    # ------------------------------------------------------------------

    def _schedule_act(self) -> None:
        self._act_event = self.sim.schedule(self.act_interval_ms, self.act)

    def act(self) -> None:
        """One client frame: walk a step, maybe build/dig/chat."""
        if not self.connected:
            return
        self._step_movement()
        roll = self.rng.random()
        if roll < self.build_probability:
            self._build()
        elif roll < self.build_probability + self.dig_probability:
            self._dig()
        elif roll < self.build_probability + self.dig_probability + self.chat_probability:
            self._chat()
        self._schedule_act()

    def _step_movement(self) -> None:
        if self.waypoint is None or self._horizontal_distance(self.waypoint) < 1.0:
            self.waypoint = self.movement.next_waypoint(self.rng, self.position)
        step = WALK_SPEED * (self.act_interval_ms / 1000.0)
        direction = Vec3(
            self.waypoint.x - self.position.x, 0.0, self.waypoint.z - self.position.z
        )
        length = direction.horizontal_length()
        if length <= step:
            new_x, new_z = self.waypoint.x, self.waypoint.z
        else:
            new_x = self.position.x + direction.x / length * step
            new_z = self.position.z + direction.z / length * step
        new_position = self.server.world.surface_position(new_x, new_z)
        self.position = new_position
        self._send(PlayerActionPacket(action="move", position=new_position))

    def _build(self) -> None:
        target = self._nearby_block(dy_range=(1, 3))
        if target is None:
            return
        block = self.rng.choice(BUILDING_BLOCKS)
        self.blocks_placed += 1
        self._send(PlayerActionPacket(action="place", block_pos=target, block=block))

    def _dig(self) -> None:
        target = self._nearby_block(dy_range=(-2, 0))
        if target is None:
            return
        self.blocks_dug += 1
        self._send(PlayerActionPacket(action="dig", block_pos=target))

    def _chat(self) -> None:
        self._send(
            PlayerActionPacket(
                action="chat", extra={"text": f"{self.name}: anybody near {int(self.position.x)},{int(self.position.z)}?"}
            )
        )

    def _nearby_block(self, dy_range: tuple[int, int]) -> BlockPos | None:
        base = self.position.to_block_pos()
        dx = self.rng.randint(-3, 3)
        dz = self.rng.randint(-3, 3)
        dy = self.rng.randint(*dy_range)
        y = base.y + dy
        if not (1 <= y < WORLD_HEIGHT):
            return None
        return BlockPos(base.x + dx, y, base.z + dz)

    def _send(self, action: PlayerActionPacket) -> None:
        client_id = self.client_id

        def arrive() -> None:
            self.server.submit_action(client_id, action)

        self.sim.schedule(self.upstream_latency_ms, arrive)

    # ------------------------------------------------------------------
    # Inconsistency measurement
    # ------------------------------------------------------------------

    def _horizontal_distance(self, target: Vec3) -> float:
        return self.position.horizontal_distance_to(target)

    def positional_errors(self) -> list[float]:
        """|perceived - authoritative| for every replica entity that still
        exists; the bot's observed numerical inconsistency right now."""
        world = self.server.world
        errors: list[float] = []
        for entity_id, believed in self.perceived.entity_positions.items():
            if entity_id == self.entity_id:
                continue
            entity = world.get_entity(entity_id)
            if entity is None:
                continue
            errors.append(entity.position.distance_to(believed))
        return errors

    def replica_staleness_ms(self, now: float) -> list[float]:
        """Age of each replica entity's last update, for entities that
        have moved since (still exist and are not where we believe)."""
        world = self.server.world
        ages: list[float] = []
        for entity_id, last_update in self.perceived.entity_last_update.items():
            if entity_id == self.entity_id:
                continue
            entity = world.get_entity(entity_id)
            if entity is None:
                continue
            believed = self.perceived.entity_positions.get(entity_id)
            if believed is None:
                continue
            if entity.position.distance_to(believed) > 1e-9:
                # Clamp: with synchronous transport delivery the recorded
                # update time can sit slightly in the future.
                ages.append(max(0.0, now - last_update))
        return ages
