"""Tests for the command-line experiment runner."""

import pytest

from repro.experiments.__main__ import main


def test_e1_runs_and_prints(capsys):
    assert main(["e1", "--bots", "5", "--duration", "4", "--seed", "3"]) == 0
    out = capsys.readouterr().out
    assert "E1 bandwidth by policy" in out
    assert "adaptive" in out


def test_e2_accepts_counts(capsys):
    assert main(["e2", "--counts", "4,8", "--duration", "4", "--seed", "3"]) == 0
    out = capsys.readouterr().out
    assert "capacity" in out


def test_e11_runs_a_shard_sweep(capsys):
    assert main(
        ["e11", "--shards", "1,2", "--bots", "6", "--duration", "4", "--seed", "3"]
    ) == 0
    out = capsys.readouterr().out
    assert "E11 shard-count scaling" in out


def test_requires_subcommand():
    with pytest.raises(SystemExit):
        main([])


def test_unknown_experiment_rejected():
    with pytest.raises(SystemExit):
        main(["e99"])
