"""ViewerIndex: inverse-map invariants and fan-out equivalence.

Three layers of proof that the O(viewers) indexed fan-out is safe:

1. *Invariant property*: after arbitrary interleavings of join / refresh
   / chunk-crossing / disconnect, the index is the exact inverse of
   ``session.view_chunks`` (and the knower map of
   ``session.known_entities``) — ``chunk in session.view_chunks`` iff
   ``session in index[chunk]``.
2. *Operation count*: broadcasting a chunk-anchored event never visits a
   session that does not view the event's chunk.
3. *Differential*: a seeded 2,000-tick workload produces byte-identical
   per-client packet streams with the index on and off (the off path is
   the original brute-force scan), in both direct and dyconit modes.
"""

from __future__ import annotations

import random

import pytest

from repro.bots.workload import BehaviorMix, Workload, WorkloadSpec
from repro.core.bounds import Bounds
from repro.policies.fixed import FixedBoundsPolicy
from repro.server.config import ServerConfig
from repro.server.engine import GameServer
from repro.sim.simulator import Simulation
from repro.world.block import BlockType
from repro.world.entity import EntityKind
from repro.world.geometry import BlockPos
from repro.world.world import World


def build_server(
    sim: Simulation,
    direct_mode: bool = True,
    policy=None,
    use_viewer_index: bool = True,
    mob_count: int = 0,
) -> GameServer:
    server = GameServer(
        sim,
        world=World(seed=99),
        config=ServerConfig(
            seed=99,
            synchronous_delivery=True,
            mob_count=mob_count,
            use_viewer_index=use_viewer_index,
        ),
        policy=policy,
        direct_mode=direct_mode,
    )
    server.start()
    return server


# ----------------------------------------------------------------------
# 1. Inverse-map invariant under random interleavings
# ----------------------------------------------------------------------


@pytest.mark.parametrize("seed", [0, 1, 2])
@pytest.mark.parametrize("mode", ["direct", "dyconit"])
def test_index_is_exact_inverse_under_random_interleavings(seed, mode):
    """chunk ∈ session.view_chunks ⇔ session ∈ index[chunk], and the
    knower map mirrors known_entities, after any op sequence."""
    sim = Simulation()
    server = build_server(
        sim,
        direct_mode=(mode == "direct"),
        policy=None if mode == "direct" else FixedBoundsPolicy(Bounds(25.0, 400.0)),
        mob_count=3,
    )
    rng = random.Random(seed)
    sessions = []
    next_name = 0

    def audit():
        server.viewers.audit(server.sessions.values())

    for step in range(120):
        op = rng.random()
        if op < 0.25 or not sessions:
            # Join at a random spot (possibly far from everyone).
            x = rng.uniform(-120.0, 120.0)
            z = rng.uniform(-120.0, 120.0)
            session = server.connect(
                f"p{next_name}", lambda delivered: None,
                position=server.world.surface_position(x, z),
            )
            next_name += 1
            sessions.append(session)
        elif op < 0.75:
            # Move a random player, often across a chunk border; the
            # engine runs on_entity_crossed + refresh off the move event.
            session = rng.choice(sessions)
            entity = server.world.get_entity(session.entity_id)
            dx = rng.uniform(-24.0, 24.0)
            dz = rng.uniform(-24.0, 24.0)
            target = server.world.surface_position(
                entity.position.x + dx, entity.position.z + dz
            )
            server.world.move_entity(session.entity_id, target)
        elif op < 0.9:
            # Advance the clock so ticks (mob steps, flushes) interleave.
            sim.run_until(sim.now + rng.choice([50.0, 150.0, 400.0]))
        else:
            session = sessions.pop(rng.randrange(len(sessions)))
            server.disconnect(session.client_id)
        audit()

    while sessions:
        server.disconnect(sessions.pop().client_id)
    audit()
    assert server.viewers.chunk_count == 0
    assert server.viewers.pair_count == 0


# ----------------------------------------------------------------------
# 2. Operation count: non-viewers are never visited
# ----------------------------------------------------------------------


def test_broadcast_never_visits_sessions_outside_the_event_chunk():
    sim = Simulation()
    server = build_server(sim, direct_mode=True)
    # Two clusters far enough apart (view distance 5 → 5*16=80 blocks)
    # that neither sees the other's chunks.
    near = [
        server.connect(f"near{i}", lambda d: None,
                       position=server.world.surface_position(8.0 + i, 8.0))
        for i in range(3)
    ]
    far = [
        server.connect(f"far{i}", lambda d: None,
                       position=server.world.surface_position(800.0 + i, 800.0))
        for i in range(3)
    ]

    visited: list[int] = []
    original_encode = server.codec.encode

    def counting_encode(session, updates):
        visited.append(session.client_id)
        return original_encode(session, updates)

    server.codec.encode = counting_encode

    event_chunk = BlockPos(9, 0, 9).to_chunk_pos()
    server.world.set_block(BlockPos(9, 60, 9), BlockType.STONE)
    assert visited, "the near cluster must receive the block change"
    far_ids = {session.client_id for session in far}
    assert not far_ids & set(visited), "a non-viewer session was visited"
    for client_id in visited:
        assert server.sessions[client_id].sees_chunk(event_chunk)

    # Chunk-less events (chat) legitimately visit everyone.
    visited.clear()
    server.world.chat(near[0].entity_id, "hello")
    assert set(visited) == {s.client_id for s in near + far} - {near[0].client_id}


def test_chunk_crossing_never_visits_unrelated_sessions():
    sim = Simulation()
    server = build_server(sim, direct_mode=True)
    watcher = server.connect(
        "watcher", lambda d: None, position=server.world.surface_position(8.0, 8.0)
    )
    bystander = server.connect(
        "bystander", lambda d: None,
        position=server.world.surface_position(800.0, 800.0),
    )
    mob = server.world.spawn_entity(
        EntityKind.COW, server.world.surface_position(10.0, 10.0)
    )

    calls: list[int] = []
    original = server.codec.encode_entity_snapshot

    def counting_snapshot(session, entity_id):
        calls.append(session.client_id)
        return original(session, entity_id)

    server.codec.encode_entity_snapshot = counting_snapshot
    # Walk the mob across several chunk borders near the watcher.
    for step in range(1, 5):
        server.world.move_entity(
            mob.entity_id, server.world.surface_position(10.0 + 16.0 * step, 10.0)
        )
    assert bystander.client_id not in calls
    assert bystander.entity_id not in [  # replica set never touched either
        entity_id for entity_id in bystander.known_entities
    ]
    assert watcher.client_id in calls or mob.entity_id in watcher.known_entities


# ----------------------------------------------------------------------
# 3. Differential: indexed ≡ brute-force scan, packet for packet
# ----------------------------------------------------------------------

#: 2,000 ticks at the 50 ms default interval.
DIFFERENTIAL_DURATION_MS = 2_000 * 50.0


def run_fanout_capture(direct_mode: bool, use_viewer_index: bool):
    """Seeded wandering+building workload; returns per-client packets."""
    sim = Simulation()
    server = GameServer(
        sim,
        world=World(seed=31),
        config=ServerConfig(
            seed=31,
            synchronous_delivery=True,
            mob_count=3,
            use_viewer_index=use_viewer_index,
        ),
        # Loose bounds queue updates long enough for replicas to go stale
        # while entities cross chunks — the path where the knower map must
        # exactly reproduce the scan's destroy sweep.
        policy=None if direct_mode else FixedBoundsPolicy(Bounds(30.0, 600.0)),
        direct_mode=direct_mode,
    )
    server.start()
    spec = WorkloadSpec(
        bots=6,
        seed=31,
        movement="uniform",  # random-waypoint wandering: heavy chunk churn
        behavior=BehaviorMix(build=0.08, dig=0.04, chat=0.01),
        arrival_stagger_ms=60.0,
        measure_interval_ms=0.0,
    )
    workload = Workload(sim, server, spec)

    captures: dict[str, list] = {}
    original_connect = server.connect

    def tapping_connect(name, handler, **kwargs):
        log = captures.setdefault(name, [])

        def tapped(delivered):
            log.append(delivered.packet)
            handler(delivered)

        return original_connect(name, tapped, **kwargs)

    server.connect = tapping_connect
    workload.start()
    sim.run_until(DIFFERENTIAL_DURATION_MS)
    return captures, server


@pytest.mark.parametrize("direct_mode", [True, False])
def test_indexed_fanout_is_packet_identical_to_scan(direct_mode):
    indexed, indexed_server = run_fanout_capture(direct_mode, use_viewer_index=True)
    scanned, scanned_server = run_fanout_capture(direct_mode, use_viewer_index=False)

    assert indexed_server.tick_count >= 2_000
    assert set(indexed) == set(scanned)
    for name in indexed:
        assert indexed[name] == scanned[name], f"packet stream diverged for {name}"
    assert (
        indexed_server.transport.total_bytes() == scanned_server.transport.total_bytes()
    )
    assert (
        indexed_server.transport.packets_by_kind()
        == scanned_server.transport.packets_by_kind()
    )
    assert indexed_server.messages_sent == scanned_server.messages_sent
