"""Elastic repartitioning: dynamic dyconit creation and merging.

The abstract's second "dynamic" axis: *"The Dyconits system controls,
dynamically and policy-based, the creation of dyconits and the management
of their bounds."* This policy wraps an inner bound policy (distance or
adaptive) and additionally reshapes the partitioning at runtime:

* chunk dyconits inside a cold region (few commits per second across all
  of its chunks) are **merged** into one region-level dyconit, cutting
  per-subscription bookkeeping in quiet areas;
* a merged region that heats up is **split** back into per-chunk
  dyconits, restoring fine-grained spatial bound targeting where the
  action is.

The hysteresis gap between the cold and hot thresholds prevents
merge/split thrashing at the boundary.
"""

from __future__ import annotations

from typing import Hashable

from repro.core.bounds import Bounds
from repro.core.policy import LoadSignals, Policy
from repro.core.subscription import Subscriber
from repro.policies.distance import DistanceBasedPolicy


class ElasticPartitioningPolicy(Policy):
    """Inner bound policy + runtime merge/split of cold/hot areas."""

    def __init__(
        self,
        inner: Policy | None = None,
        region_size: int = 4,
        cold_commits_per_second: float = 1.0,
        hot_commits_per_second: float = 8.0,
        evaluation_period_ms: float = 2000.0,
    ) -> None:
        if region_size < 2:
            raise ValueError(f"region size must be >= 2, got {region_size}")
        if hot_commits_per_second <= cold_commits_per_second:
            raise ValueError(
                "hot threshold must exceed cold threshold (hysteresis), got "
                f"cold={cold_commits_per_second}, hot={hot_commits_per_second}"
            )
        self.inner = inner if inner is not None else DistanceBasedPolicy()
        self.region_size = region_size
        self.cold_commits_per_second = cold_commits_per_second
        self.hot_commits_per_second = hot_commits_per_second
        self.evaluation_period_ms = evaluation_period_ms
        self._last_commit_counts: dict[Hashable, int] = {}
        self._last_evaluation_ms: float | None = None
        #: Commit rates computed in the most recent evaluation window
        #: (diagnostic; the fuzz harness checks these against a reference
        #: model to pin down baseline accounting across repartitions).
        self.last_window_rates: dict[Hashable, float] = {}
        self.merges = 0
        self.splits = 0

    # ------------------------------------------------------------------
    # Bound management delegates to the inner policy
    # ------------------------------------------------------------------

    def on_attach(self, system) -> None:
        self.inner.on_attach(system)

    def initial_bounds(self, system, dyconit_id: Hashable, subscriber: Subscriber) -> Bounds:
        return self.inner.initial_bounds(system, dyconit_id, subscriber)

    def on_subscriber_moved(self, system, subscriber: Subscriber) -> None:
        self.inner.on_subscriber_moved(system, subscriber)

    # ------------------------------------------------------------------
    # Repartitioning
    # ------------------------------------------------------------------

    def _region_of(self, dyconit_id: Hashable) -> tuple[int, int] | None:
        if (
            isinstance(dyconit_id, tuple)
            and len(dyconit_id) == 3
            and dyconit_id[0] == "chunk"
        ):
            return (dyconit_id[1] // self.region_size, dyconit_id[2] // self.region_size)
        return None

    def _merged_id(self, region: tuple[int, int]) -> Hashable:
        return ("region", self.region_size, region[0], region[1])

    def evaluate(self, system, signals: LoadSignals) -> None:
        self.inner.evaluate(system, signals)

        window_s = (
            (signals.now - self._last_evaluation_ms) / 1000.0
            if self._last_evaluation_ms is not None
            else None
        )
        self._last_evaluation_ms = signals.now

        current_counts = {
            dyconit.dyconit_id: dyconit.commit_count for dyconit in system.dyconits()
        }
        if window_s is None or window_s <= 0:
            self._last_commit_counts = current_counts
            return

        rates: dict[Hashable, float] = {}
        for dyconit_id, count in current_counts.items():
            previous = self._last_commit_counts.get(dyconit_id, 0)
            rates[dyconit_id] = (count - previous) / window_s
        self._last_commit_counts = current_counts
        self.last_window_rates = rates

        self._merge_cold_regions(system, rates)
        self._split_hot_regions(system, rates)

    def _merge_cold_regions(self, system, rates: dict[Hashable, float]) -> None:
        by_region: dict[tuple[int, int], list[Hashable]] = {}
        for dyconit_id, rate in rates.items():
            region = self._region_of(dyconit_id)
            if region is not None:
                by_region.setdefault(region, []).append(dyconit_id)
        for region, members in by_region.items():
            if len(members) < 2:
                continue
            total_rate = sum(rates[dyconit_id] for dyconit_id in members)
            if total_rate <= self.cold_commits_per_second:
                merged_id = self._merged_id(region)
                system.merge_dyconits(members, merged_id)
                # Merging sums the members' commit counters into the
                # target, so the target's baseline must absorb the
                # members' baselines: diffing the merged counter against
                # a zero baseline next window would misread the whole
                # merged history as fresh traffic and instantly split a
                # region that was cold enough to merge (thrash).
                baselines = self._last_commit_counts
                carried = baselines.pop(merged_id, 0)
                for member in members:
                    carried += baselines.pop(member, 0)
                baselines[merged_id] = carried
                self.merges += 1
                self._count_repartition(system, "merge")

    def _split_hot_regions(self, system, rates: dict[Hashable, float]) -> None:
        for dyconit_id, rate in list(rates.items()):
            if (
                isinstance(dyconit_id, tuple)
                and len(dyconit_id) == 4
                and dyconit_id[0] == "region"
                and dyconit_id[1] == self.region_size
                and rate >= self.hot_commits_per_second
            ):
                released = system.split_dyconit(dyconit_id)
                # The region's counter (and its baseline) die with the
                # split; the released chunks restart counting from zero.
                # A leftover region baseline would go negative if the
                # region re-merges later; a stale chunk baseline would
                # suppress the chunks' real post-split rates.
                baselines = self._last_commit_counts
                baselines.pop(dyconit_id, None)
                for source_id in released:
                    baselines[source_id] = 0
                self.splits += 1
                self._count_repartition(system, "split")

    @staticmethod
    def _count_repartition(system, operation: str) -> None:
        telemetry = getattr(system, "telemetry", None)
        if telemetry is not None and telemetry.enabled:
            telemetry.counter("elastic_repartitions_total", operation=operation).increment()

    def __repr__(self) -> str:
        return (
            f"ElasticPartitioningPolicy(inner={self.inner!r}, "
            f"region={self.region_size}, merges={self.merges}, splits={self.splits})"
        )
