"""S18: the shard-parallel tick runtime.

:class:`ParallelShardRunner` presents the exact :class:`ShardedCluster`
facade, but each shard lives in a persistent **worker process** and runs
its simulate+commit tick phase there, inside one wall-clock tick. The
parent simulation keeps the event clock, the bots, and the bus; workers
keep the worlds, the dyconit systems, and the transports. The two halves
meet at the same post-tick pump barrier the serial cluster already has.

Determinism argument (why parallel N-shard ≡ serial N-shard, byte for
byte):

* Shard ticks scheduled at the same instant are mutually independent in
  the serial cluster: bus messages are deferred to the pump, and packet
  delivery (synchronous mode) only reaches bot handlers, which never
  read server state or schedule events. So running them concurrently
  and merging outputs **in fixed shard-id order** replays the exact
  serial insertion sequence.
* All cross-shard traffic still flows through the parent's
  :class:`InterShardBus`: workers *record* their posts, the parent
  re-posts them, and per-edge FIFO order is preserved because an edge's
  source is the only shard that ever posts on it.
* Every worker owns a private RNG universe derived from the same seed
  the serial shard would use, a private simulation clock advanced to
  the parent's event time before each command, and a **fresh telemetry
  hub** (a forked worker inheriting the parent's hub would double-count
  every counter; hubs are folded into the parent at :meth:`finalize`).

Per-tick inputs (buffered player actions, bus message batches from
:meth:`InterShardBus.take_round`) and outputs (flushed packet batches,
recorded posts, world deltas) cross the pipe as plain picklable data;
packets whose codec round-trips exactly travel as ``repro.net.wire``
bytes.

A worker failure surfaces as a parent-side exception carrying the
worker's traceback; invariant violations re-raise as
:class:`InvariantViolationError` with the shard prefix the serial
auditor would have used.
"""

from __future__ import annotations

import functools
import multiprocessing
import traceback
from dataclasses import dataclass

from repro.cluster.bus import MAX_PUMP_ROUNDS, BusPumpDivergenceError, InterShardBus
from repro.cluster.facade import ClientProfile, ClusterWorldView, ShardedCluster
from repro.cluster.messages import SessionHandoff
from repro.cluster.router import ShardRouter
from repro.cluster.shard import ShardServer, peer_subscriber_id
from repro.core.bounds import Bounds
from repro.core.invariants import (
    InvariantAuditor,
    InvariantViolationError,
    Violation,
)
from repro.net import wire
from repro.net.protocol import (
    BlockChangePacket,
    ChunkUnloadPacket,
    DestroyEntitiesPacket,
    KeepAlivePacket,
    MultiBlockChangePacket,
)
from repro.net.transport import DeliveredPacket
from repro.server import engine as engine_module
from repro.server.config import ServerConfig
from repro.sim.simulator import Simulation
from repro.telemetry.hub import NULL_TELEMETRY, Telemetry, set_telemetry
from repro.world.block import BlockType
from repro.world.entity import Entity, EntityKind
from repro.world.events import BlockChangeEvent
from repro.world.geometry import BlockPos, Vec3
from repro.world.world import World

#: Packet types whose wire codec round-trips losslessly; these ship as
#: encoded bytes. Everything else (quantized positions/angles, filler
#: payloads) ships as the packet object so replayed streams stay
#: byte-identical to the serial run.
_WIRE_EXACT = frozenset(
    {
        BlockChangePacket,
        MultiBlockChangePacket,
        ChunkUnloadPacket,
        DestroyEntitiesPacket,
        KeepAlivePacket,
    }
)


@dataclass
class _WorkerSpec:
    """Everything a worker needs to rebuild its shard from scratch.

    Must stay picklable under the ``spawn`` start method: factories must
    be module-level callables or bound methods of picklable objects.
    """

    shard_id: int
    num_shards: int
    strip_width: int
    config: ServerConfig
    policy_factory: object
    partitioner_factory: object
    peer_bounds: Bounds
    telemetry_enabled: bool
    merging_enabled: bool
    record_latencies: bool
    #: Parent-side :data:`engine.AUDIT_DEFAULT_EVERY_N_TICKS` at spawn
    #: time (checked mode is often enabled via that module global, which
    #: a spawned child would not inherit).
    audit_default_every_n_ticks: int


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------


class _OutputCollector:
    """Accumulates one command's observable effects for shipping."""

    def __init__(self) -> None:
        self.packets: list = []
        self.posts: list = []
        self.events: list = []
        self.blocks: list = []

    def handler_for(self, client_id: int):
        """A transport handler recording deliveries in arrival order."""

        def handler(delivered: DeliveredPacket) -> None:
            packet = delivered.packet
            if type(packet) in _WIRE_EXACT:
                item = (client_id, "w", wire.encode(packet))
            else:
                item = (client_id, "p", packet)
            self.packets.append(item + (delivered.sent_at, delivered.delivered_at))

        return handler

    def on_world_event(self, event) -> None:
        # Terrain is the only world state the parent mirror tracks
        # incrementally; entities ship as full snapshots per command.
        if isinstance(event, BlockChangeEvent):
            self.blocks.append(
                (event.pos.x, event.pos.y, event.pos.z, event.new_block.value)
            )

    def drain(self, shard: ShardServer) -> dict:
        out = {
            "packets": self.packets,
            "posts": self.posts,
            "events": self.events,
            "blocks": self.blocks,
            "entities": tuple(
                (
                    entity.entity_id,
                    entity.kind.value,
                    entity.position.x,
                    entity.position.y,
                    entity.position.z,
                    entity.yaw,
                    entity.pitch,
                    entity.name,
                )
                for entity in shard.world.entities()
            ),
            "ghosts": tuple(sorted(shard.ghost_ids)),
        }
        self.packets, self.posts, self.events, self.blocks = [], [], [], []
        return out


class _RecordingBus:
    """Worker-side bus stand-in: posts are recorded, never delivered.

    The parent re-posts them on the real :class:`InterShardBus`, where
    they get their authoritative per-edge sequence numbers. FIFO order
    survives because this worker is the only source for its edges and
    the recorded list preserves post order.
    """

    def __init__(self, out: _OutputCollector) -> None:
        self._out = out
        self._handlers: dict[int, object] = {}

    def attach(self, shard_id: int, handler) -> None:
        self._handlers[shard_id] = handler

    def post(self, src: int, dst: int, message) -> None:
        self._out.posts.append((dst, message))


class _WorkerClusterStub:
    """The slice of the facade a shard touches, running worker-side.

    Handoff bookkeeping is authoritative in the *parent*; the stub
    records the callbacks as events for barrier-time replay and answers
    ``take_handoff`` from the profile data the parent attached to the
    shipped :class:`SessionHandoff`.
    """

    def __init__(self, out: _OutputCollector) -> None:
        self._out = out
        self._staged_profiles: dict[int, tuple | None] = {}
        self.shard: ShardServer | None = None

    def stage_handoff(self, client_id: int, profile_data: tuple | None) -> None:
        self._staged_profiles[client_id] = profile_data

    def on_handoff_started(self, client_id: int, src: int, dst: int) -> None:
        self._out.events.append(("handoff_started", client_id, src, dst))

    def take_handoff(self, client_id: int) -> ClientProfile | None:
        data = self._staged_profiles.pop(client_id, None)
        if data is None:
            # The parent shipped no profile: the client disconnected
            # mid-flight and the adoption must drop, exactly like the
            # serial facade returning None.
            return None
        name, link, view_distance, faults = data
        return ClientProfile(
            name=name,
            handler=self._out.handler_for(client_id),
            link=link,
            view_distance=view_distance,
            faults=faults,
        )

    def on_handoff_completed(self, client_id: int, shard_id: int) -> None:
        session = self.shard.sessions[client_id]
        self._out.events.append(
            (
                "handoff_completed",
                client_id,
                shard_id,
                session.entity_id,
                session.name,
                session.view_distance,
            )
        )


def _handle_command(shard, sim, out, stub, spec, hub, cmd, payload):
    if cmd == "start":
        shard.start(schedule_ticks=False)
        if spec.num_shards > 1:
            for other in range(spec.num_shards):
                if other != spec.shard_id:
                    shard.ensure_peer(other, spec.peer_bounds)
        return out.drain(shard)
    if cmd == "connect":
        sim.clock.advance_to(payload["time"])
        x, y, z = payload["position"]
        session = shard.connect(
            payload["name"],
            out.handler_for(payload["client_id"]),
            position=Vec3(x, y, z),
            link=payload["link"],
            view_distance=payload["view_distance"],
            client_id=payload["client_id"],
            faults=payload["faults"],
        )
        result = out.drain(shard)
        result["session"] = (
            session.client_id,
            session.entity_id,
            session.name,
            session.view_distance,
        )
        return result
    if cmd == "disconnect":
        sim.clock.advance_to(payload["time"])
        shard.disconnect(payload["client_id"])
        return out.drain(shard)
    if cmd == "tick":
        sim.clock.advance_to(payload["time"])
        for client_id, action in payload["actions"]:
            shard.submit_action(client_id, action)
        duration = shard.tick_once()
        result = out.drain(shard)
        result["duration"] = duration
        return result
    if cmd == "pump":
        sim.clock.advance_to(payload["time"])
        for src, wrapped in payload["segment"]:
            for item in wrapped:
                if item[0] == "h":
                    stub.stage_handoff(item[1].client_id, item[2])
                shard._on_bus_message(src, item[1])
        return out.drain(shard)
    if cmd == "audit":
        violations = InvariantAuditor().check_server(shard)
        registered: dict = {}
        for chunks in shard.peer_registry.values():
            for chunk in chunks:
                registered[chunk] = None
        result = out.drain(shard)
        result.update(
            violations=[(v.invariant, v.subject, v.message) for v in violations],
            remote_interest={
                owner: tuple(chunks)
                for owner, chunks in shard.remote_interest.items()
            },
            peer_registry={
                peer: tuple(chunks) for peer, chunks in shard.peer_registry.items()
            },
            dyconit_by_chunk={
                chunk: shard.dyconits.resolve(
                    shard.dyconits.partitioner.dyconit_for_chunk(chunk)
                )
                for chunk in registered
            },
            peer_subscriptions={
                peer_subscriber_id(peer): tuple(
                    shard.dyconits.subscription_ids_of(peer_subscriber_id(peer))
                )
                for peer in shard.peer_registry
            },
        )
        return result
    if cmd == "finalize":
        sim.clock.advance_to(payload["time"])
        transport = shard.transport
        result = out.drain(shard)
        result.update(
            transport={
                "total_bytes": transport.total_bytes(),
                "total_packets": transport.total_packets(),
                "bytes_by_kind": transport.bytes_by_kind(),
                "packets_by_kind": transport.packets_by_kind(),
                "latencies_ms": list(transport.latencies_ms),
                "latency_sample_count": transport.latency_sample_count,
                "packets_dropped": transport.packets_dropped,
                "reconnect_count": transport.reconnect_count,
                "fifo_violations": list(transport.fifo_violations),
            },
            metrics=shard.metrics,
            dyconit_stats=shard.dyconits.stats,
            counters={
                "handoffs_in": shard.handoffs_in,
                "handoffs_out": shard.handoffs_out,
                "transfers_in": shard.transfers_in,
                "transfers_out": shard.transfers_out,
                "messages_sent": shard.messages_sent,
                "tick_count": shard.tick_count,
                "smoothed_tick_ms": shard.smoothed_tick_ms,
            },
            telemetry=(
                {
                    "counters": [
                        (name, labels, counter.value)
                        for (name, labels), counter in hub.counters().items()
                    ],
                    "gauges": [
                        (name, labels, gauge.value)
                        for (name, labels), gauge in hub.gauges().items()
                    ],
                    "histograms": [
                        (name, labels, histogram)
                        for (name, labels), histogram in hub.histograms().items()
                    ],
                }
                if spec.telemetry_enabled
                else None
            ),
        )
        return result
    raise ValueError(f"unknown worker command {cmd!r}")


def _shard_worker_main(spec: _WorkerSpec, conn) -> None:
    """Entry point of one shard worker process (spawn-safe: module
    level, rebuilds everything from the picklable spec)."""
    # Fresh hub first: under fork the child inherits the parent's
    # ambient hub object and every increment would double-count once
    # the hubs are folded at the barrier.
    hub = Telemetry(enabled=spec.telemetry_enabled)
    set_telemetry(hub)
    engine_module.AUDIT_DEFAULT_EVERY_N_TICKS = spec.audit_default_every_n_ticks

    sim = Simulation()
    out = _OutputCollector()
    world = World(
        seed=spec.config.seed,
        entity_id_start=spec.shard_id + 1,
        entity_id_step=spec.num_shards,
    )
    shard = ShardServer(
        sim,
        shard_id=spec.shard_id,
        router=ShardRouter(spec.num_shards, spec.strip_width),
        bus=_RecordingBus(out),
        peer_bounds=spec.peer_bounds,
        world=world,
        config=spec.config,
        policy=spec.policy_factory(),
        partitioner=(
            spec.partitioner_factory()
            if spec.partitioner_factory is not None
            else None
        ),
        direct_mode=False,
        telemetry=hub,
    )
    stub = _WorkerClusterStub(out)
    stub.shard = shard
    shard.cluster = stub
    shard.dyconits.merging_enabled = spec.merging_enabled
    shard.transport.record_latencies = spec.record_latencies
    world.add_listener(out.on_world_event)

    try:
        while True:
            try:
                cmd, payload = conn.recv()
            except EOFError:
                break
            if cmd == "exit":
                break
            try:
                result = _handle_command(
                    shard, sim, out, stub, spec, hub, cmd, payload
                )
            except InvariantViolationError as error:
                conn.send(
                    (
                        "invariant",
                        [
                            (v.invariant, v.subject, v.message)
                            for v in error.violations
                        ],
                    )
                )
            except Exception:
                conn.send(("error", traceback.format_exc()))
            else:
                conn.send(("ok", result))
    finally:
        conn.close()


# ----------------------------------------------------------------------
# Parent side
# ----------------------------------------------------------------------


class _MirrorWorld:
    """Parent-side read model of a worker's world.

    Terrain is a real :class:`World` (same seed: block-aware surface
    queries answer identically) kept current by replaying block deltas;
    entities and ghosts are replaced wholesale from per-command
    snapshots, in worker iteration order, so facade reads between
    barriers see exactly what the serial shard world would hold.
    """

    def __init__(self, seed: int, entity_id_start: int, entity_id_step: int) -> None:
        self._terrain = World(
            seed=seed,
            entity_id_start=entity_id_start,
            entity_id_step=entity_id_step,
        )
        self._entities: dict[int, Entity] = {}

    def get_entity(self, entity_id: int) -> Entity | None:
        return self._entities.get(entity_id)

    def entities(self):
        return list(self._entities.values())

    @property
    def entity_count(self) -> int:
        return len(self._entities)

    def apply_blocks(self, blocks) -> None:
        for x, y, z, value in blocks:
            self._terrain.set_block(BlockPos(x, y, z), BlockType(value))

    def apply_entities(self, snapshot) -> None:
        self._entities = {
            entity_id: Entity(
                entity_id=entity_id,
                kind=EntityKind(kind_value),
                position=Vec3(x, y, z),
                yaw=yaw,
                pitch=pitch,
                name=name,
            )
            for entity_id, kind_value, x, y, z, yaw, pitch, name in snapshot
        }

    def __getattr__(self, name):
        # Terrain queries (surface_height, surface_position, get_block,
        # chunk access) delegate to the seed-identical local world.
        return getattr(self._terrain, name)


@dataclass
class _HandleSession:
    """Facade-visible view of a session living in a worker."""

    client_id: int
    entity_id: int
    name: str
    view_distance: int


class _IdentityPartitioner:
    """Partitioner stand-in whose tokens the audit map resolves."""

    def dyconit_for_chunk(self, chunk):
        return chunk


class _HandleDyconits:
    """Just enough dyconit surface for the parent-side I8 audit.

    The worker ships, at each audit barrier, a chunk → resolved dyconit
    id map and the per-peer subscription id sets; ``resolve`` answers
    from that map (an unknown chunk resolves to a sentinel that can
    never be subscribed, turning a desync into a violation instead of a
    KeyError). ``stats`` is installed at finalize.
    """

    def __init__(self) -> None:
        self.merging_enabled = True
        self.stats = None
        self.partitioner = _IdentityPartitioner()
        self._by_chunk: dict = {}
        self._peer_subscriptions: dict[int, set] = {}

    def load_audit_state(self, by_chunk, peer_subscriptions) -> None:
        self._by_chunk = dict(by_chunk)
        self._peer_subscriptions = {
            subscriber_id: set(ids)
            for subscriber_id, ids in peer_subscriptions.items()
        }

    def resolve(self, token):
        return self._by_chunk.get(token, ("unresolved", token))

    def subscription_ids_of(self, subscriber_id: int) -> set:
        return self._peer_subscriptions.get(subscriber_id, set())


class _TransportSnapshot:
    """Final transport accounting shipped from a worker.

    Quacks like :class:`~repro.net.transport.Transport` for every
    aggregate the experiment collector and the facade read; zeros until
    :meth:`ParallelShardRunner.finalize` installs real numbers.
    """

    def __init__(self, data: dict | None = None) -> None:
        data = data or {}
        self._total_bytes = data.get("total_bytes", 0)
        self._total_packets = data.get("total_packets", 0)
        self._bytes_by_kind = data.get("bytes_by_kind", {})
        self._packets_by_kind = data.get("packets_by_kind", {})
        self.latencies_ms = data.get("latencies_ms", [])
        self.latency_sample_count = data.get("latency_sample_count", 0)
        self.packets_dropped = data.get("packets_dropped", 0)
        self.reconnect_count = data.get("reconnect_count", 0)
        self.fifo_violations = data.get("fifo_violations", [])
        self.record_latencies = False

    def total_bytes(self) -> int:
        return self._total_bytes

    def total_packets(self) -> int:
        return self._total_packets

    def bytes_by_kind(self) -> dict[str, int]:
        return dict(self._bytes_by_kind)

    def packets_by_kind(self) -> dict[str, int]:
        return dict(self._packets_by_kind)


class _ShardHandle:
    """Parent-side stand-in for one worker shard.

    Exposes the :class:`ShardServer` attributes the facade, the world
    view, and the cluster auditor read — backed by barrier-synced
    mirrors instead of live structures.
    """

    def __init__(self, runner, shard_id, process, conn, num_shards) -> None:
        self._runner = runner
        self.shard_id = shard_id
        self._process = process
        self._conn = conn
        self.world = _MirrorWorld(runner.config.seed, shard_id + 1, num_shards)
        self.ghost_ids: set[int] = set()
        self.sessions: dict[int, _HandleSession] = {}
        self.remote_interest: dict = {}
        self.peer_registry: dict = {}
        self.dyconits = _HandleDyconits()
        self.transport = _TransportSnapshot()
        self.metrics = None
        self._pending_actions: list = []
        self.handoffs_in = 0
        self.handoffs_out = 0
        self.transfers_in = 0
        self.transfers_out = 0
        self.messages_sent = 0
        self.tick_count = 0
        self.smoothed_tick_ms = 0.0

    # -- RPC plumbing --------------------------------------------------

    def _send(self, cmd: str, payload) -> None:
        self._conn.send((cmd, payload))

    def _recv(self):
        status, payload = self._conn.recv()
        if status == "invariant":
            raise InvariantViolationError(
                [
                    Violation(invariant, f"shard {self.shard_id}: {subject}", message)
                    for invariant, subject, message in payload
                ]
            )
        if status == "error":
            raise RuntimeError(
                f"shard {self.shard_id} worker failed:\n{payload}"
            )
        return payload

    def _rpc(self, cmd: str, payload):
        self._send(cmd, payload)
        return self._recv()

    # -- Facade-facing shard API ---------------------------------------

    def connect(
        self,
        name,
        handler,
        position=None,
        link=None,
        view_distance=None,
        client_id=None,
        faults=None,
    ) -> _HandleSession:
        self._runner._client_handlers[client_id] = handler
        out = self._rpc(
            "connect",
            {
                "time": self._runner.sim.now,
                "client_id": client_id,
                "name": name,
                "position": (position.x, position.y, position.z),
                "link": link,
                "view_distance": view_distance,
                "faults": faults,
            },
        )
        session = _HandleSession(*out.pop("session"))
        self.sessions[session.client_id] = session
        self._runner._apply_output(self, out)
        return session

    def disconnect(self, client_id: int) -> None:
        out = self._rpc(
            "disconnect", {"time": self._runner.sim.now, "client_id": client_id}
        )
        self.sessions.pop(client_id, None)
        self._runner._apply_output(self, out)
        self._runner._client_handlers.pop(client_id, None)

    def submit_action(self, client_id: int, action) -> None:
        # Serial shards only look at the inbound queue at the top of a
        # tick; buffering until the next tick RPC is order-equivalent.
        self._pending_actions.append((client_id, action))


class ParallelShardRunner(ShardedCluster):
    """A :class:`ShardedCluster` whose shards tick in worker processes.

    Drop-in facade: ``connect`` / ``disconnect`` / ``submit_action`` /
    ``sessions`` / ``world`` / ``audit_now`` behave identically, and an
    N-shard parallel run produces byte-identical packet streams to the
    serial N-shard cluster. Call :meth:`finalize` after the simulation
    ends to pull final transports/metrics/telemetry out of the workers
    and shut them down.
    """

    def __init__(
        self,
        sim: Simulation,
        shards: int = 2,
        strip_width: int = 4,
        config: ServerConfig | None = None,
        policy_factory=None,
        partitioner_factory=None,
        peer_bounds: Bounds | None = None,
        telemetry: Telemetry | None = None,
        mp_context: str | None = None,
        merging_enabled: bool = True,
        record_latencies: bool = False,
    ) -> None:
        if shards < 1:
            raise ValueError(f"shard count must be >= 1, got {shards}")
        if policy_factory is None:
            raise ValueError(
                "the parallel runner needs a policy_factory (direct/vanilla "
                "mode is serial-only)"
            )
        self.sim = sim
        self.config = config if config is not None else ServerConfig()
        if not self.config.synchronous_delivery:
            raise ValueError(
                "parallel shard ticks require synchronous_delivery: a "
                "scheduled delivery would land in the parent's event queue "
                "while the packet lives in a worker"
            )
        self.router = ShardRouter(shards, strip_width)
        self.bus = InterShardBus()
        # The parent drains the bus with take_round() and ships batches
        # to workers; the in-place pump() path must never run here.
        for shard_id in range(shards):
            self.bus.attach(shard_id, self._reject_inline_delivery)
        self.peer_bounds = peer_bounds if peer_bounds is not None else Bounds.ZERO
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY

        self._next_client_id = 1
        self._shard_by_client: dict[int, int] = {}
        self._profiles: dict[int, ClientProfile] = {}
        self._in_transit: dict[int, tuple[int, int]] = {}
        self._client_handlers: dict[int, object] = {}
        self.handoffs = 0
        self.handoffs_cancelled = 0
        self.pump_count = 0
        self._running = False
        self._pump_event = None
        self._finalized = False
        self._audit_every_n_pumps = (
            self.config.audit_every_n_ticks
            or engine_module.AUDIT_DEFAULT_EVERY_N_TICKS
        )
        self._auditor = InvariantAuditor() if self._audit_every_n_pumps > 0 else None

        self._mp = multiprocessing.get_context(mp_context)
        self.shards: list[_ShardHandle] = []
        self._next_tick_time: list[float] = [0.0] * shards
        self._tick_events: list = [None] * shards
        for shard_id in range(shards):
            spec = _WorkerSpec(
                shard_id=shard_id,
                num_shards=shards,
                strip_width=strip_width,
                config=self.config,
                policy_factory=policy_factory,
                partitioner_factory=partitioner_factory,
                peer_bounds=self.peer_bounds,
                telemetry_enabled=self.telemetry.enabled,
                merging_enabled=merging_enabled,
                record_latencies=record_latencies,
                audit_default_every_n_ticks=engine_module.AUDIT_DEFAULT_EVERY_N_TICKS,
            )
            parent_conn, child_conn = self._mp.Pipe()
            process = self._mp.Process(
                target=_shard_worker_main,
                args=(spec, child_conn),
                daemon=True,
                name=f"shard-worker-{shard_id}",
            )
            process.start()
            child_conn.close()
            self.shards.append(
                _ShardHandle(self, shard_id, process, parent_conn, shards)
            )
        self.world = ClusterWorldView(self)

    @staticmethod
    def _reject_inline_delivery(src: int, message) -> None:
        raise RuntimeError(
            "parallel runner bus messages are shipped to workers, never "
            f"delivered in-place (got {type(message).__name__} from {src})"
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        if self._running:
            raise RuntimeError("cluster already started")
        self._running = True
        for handle in self.shards:
            handle._send("start", {"time": self.sim.now})
        for handle in self.shards:
            self._apply_output(handle, handle._recv())
        interval = self.config.tick_interval_ms
        # Same event-insertion order as the serial cluster: shard ticks
        # 0..N-1, then the pump barrier.
        for shard_id in range(len(self.shards)):
            self._next_tick_time[shard_id] = self.sim.now + interval
            self._tick_events[shard_id] = self.sim.schedule(
                interval, functools.partial(self._shard_tick, shard_id)
            )
        self._pump_event = self.sim.schedule(interval, self._pump)

    def stop(self) -> None:
        self._running = False
        if self._pump_event is not None:
            self._pump_event.cancel()
            self._pump_event = None
        for shard_id, event in enumerate(self._tick_events):
            if event is not None:
                event.cancel()
                self._tick_events[shard_id] = None

    def shutdown(self) -> None:
        """Terminate the worker processes (idempotent)."""
        for handle in self.shards:
            try:
                handle._send("exit", None)
            except (BrokenPipeError, OSError):
                pass
        for handle in self.shards:
            handle._process.join(timeout=10)
            if handle._process.is_alive():  # pragma: no cover - defensive
                handle._process.terminate()
                handle._process.join(timeout=10)
            handle._conn.close()

    def finalize(self) -> None:
        """Pull final transports/metrics/stats/telemetry from the
        workers, fold them into the parent, and shut the workers down.

        Call after ``sim.run_until`` returns and before reading
        aggregate results; idempotent."""
        if self._finalized:
            return
        self._finalized = True
        self.stop()
        for handle in self.shards:
            handle._send("finalize", {"time": self.sim.now})
        payloads = [handle._recv() for handle in self.shards]
        for handle, payload in zip(self.shards, payloads):
            self._apply_output(handle, payload)
            handle.transport = _TransportSnapshot(payload["transport"])
            handle.metrics = payload["metrics"]
            handle.dyconits.stats = payload["dyconit_stats"]
            counters = payload["counters"]
            handle.handoffs_in = counters["handoffs_in"]
            handle.handoffs_out = counters["handoffs_out"]
            handle.transfers_in = counters["transfers_in"]
            handle.transfers_out = counters["transfers_out"]
            handle.messages_sent = counters["messages_sent"]
            handle.tick_count = counters["tick_count"]
            handle.smoothed_tick_ms = counters["smoothed_tick_ms"]
            if payload["telemetry"] is not None and self.telemetry.enabled:
                self._fold_telemetry(payload["telemetry"])
        self.shutdown()

    def _fold_telemetry(self, dump: dict) -> None:
        # Counters add, histograms merge (both commutative, so serial
        # and parallel totals agree); gauges are last-write samples and
        # folding in shard order keeps them deterministic.
        for name, labels, value in dump["counters"]:
            self.telemetry.counter(name, **dict(labels)).increment(value)
        for name, labels, value in dump["gauges"]:
            self.telemetry.gauge(name, **dict(labels)).set(value)
        for name, labels, histogram in dump["histograms"]:
            self.telemetry.histogram(
                name, min_value=histogram.min_value, **dict(labels)
            ).merge(histogram)

    # ------------------------------------------------------------------
    # Tick phase
    # ------------------------------------------------------------------

    def _shard_tick(self, shard_id: int) -> None:
        if not self._running:
            return
        now = self.sim.now
        # Every shard whose next tick lands at this exact instant joins
        # the batch: dispatch all tick RPCs first (the workers compute
        # concurrently), then merge outputs in fixed shard-id order so
        # the parent-side effects replay the serial insertion sequence.
        # Shards that drifted out of phase (duration > interval) tick
        # alone at their own events, exactly like the serial loop.
        due = [
            j
            for j in range(len(self.shards))
            if self._next_tick_time[j] == now
        ]
        for j in due:
            if j != shard_id and self._tick_events[j] is not None:
                self._tick_events[j].cancel()
            handle = self.shards[j]
            actions = handle._pending_actions
            handle._pending_actions = []
            handle._send("tick", {"time": now, "actions": actions})
        for j in due:
            handle = self.shards[j]
            out = handle._recv()
            self._apply_output(handle, out)
            delay = max(self.config.tick_interval_ms, out["duration"])
            self._next_tick_time[j] = now + delay
            self._tick_events[j] = self.sim.schedule(
                delay, functools.partial(self._shard_tick, j)
            )

    # ------------------------------------------------------------------
    # Pump barrier
    # ------------------------------------------------------------------

    def _pump(self) -> None:
        if not self._running:
            return
        self.pump_count += 1
        delivered = 0
        rounds_used = MAX_PUMP_ROUNDS
        for round_index in range(MAX_PUMP_ROUNDS):
            round_batches = self.bus.take_round()
            if not round_batches:
                rounds_used = round_index
                break
            # One segment per destination shard, edges in the round's
            # sorted order; destinations process concurrently (their
            # in-flight effects are disjoint: own world, own sessions).
            segments: dict[int, list] = {}
            for (src, dst), messages in round_batches:
                wrapped = []
                for message in messages:
                    delivered += 1
                    if isinstance(message, SessionHandoff):
                        # The facade's half of the adoption happens at
                        # ship time (exactly once per message, like the
                        # serial take_handoff at delivery time); the
                        # picklable profile travels with the message.
                        profile = self.take_handoff(message.client_id)
                        data = (
                            None
                            if profile is None
                            else (
                                profile.name,
                                profile.link,
                                profile.view_distance,
                                profile.faults,
                            )
                        )
                        wrapped.append(("h", message, data))
                    else:
                        wrapped.append(("m", message))
                segments.setdefault(dst, []).append((src, wrapped))
            for dst in sorted(segments):
                self.shards[dst]._send(
                    "pump", {"time": self.sim.now, "segment": segments[dst]}
                )
            for dst in sorted(segments):
                out = self.shards[dst]._recv()
                self._apply_output(self.shards[dst], out)
        else:
            self.bus.last_pump_rounds = MAX_PUMP_ROUNDS
            raise BusPumpDivergenceError(
                MAX_PUMP_ROUNDS, self.bus._divergence_snapshot()
            )
        self.bus.last_pump_rounds = rounds_used
        telemetry = self.telemetry
        if telemetry.enabled:
            telemetry.counter("cluster_pumps_total").increment()
            if delivered:
                telemetry.counter("cluster_bus_messages_total").increment(delivered)
            telemetry.gauge("cluster_bus_bytes").set(self.bus.total_bytes)
            telemetry.gauge("bus_pump_rounds").set(self.bus.last_pump_rounds)
            telemetry.gauge("cluster_handoffs").set(self.handoffs)
            for handle in self.shards:
                label = str(handle.shard_id)
                telemetry.gauge("shard_players", shard=label).set(
                    len(handle.sessions)
                )
                telemetry.gauge("shard_ghosts", shard=label).set(
                    len(handle.ghost_ids)
                )
                telemetry.gauge("shard_handoffs_out", shard=label).set(
                    handle.handoffs_out
                )
        if (
            self._auditor is not None
            and self.pump_count % self._audit_every_n_pumps == 0
        ):
            self.audit_now()
        self._pump_event = self.sim.schedule(self.config.tick_interval_ms, self._pump)

    # ------------------------------------------------------------------
    # Output merge
    # ------------------------------------------------------------------

    def _apply_output(self, handle: _ShardHandle, out: dict) -> None:
        """Replay one worker command's effects into the parent.

        Packet replay cannot disturb determinism: bot handlers mutate
        only client-side state and never schedule events, so the only
        ordering that matters — per-client FIFO and the shard-order
        interleave of bus posts — is preserved by construction.
        """
        for client_id, tag, payload, sent_at, delivered_at in out["packets"]:
            handler = self._client_handlers.get(client_id)
            if handler is None:
                continue
            packet = wire.decode(payload)[0] if tag == "w" else payload
            handler(
                DeliveredPacket(
                    packet=packet, sent_at=sent_at, delivered_at=delivered_at
                )
            )
        handle.world.apply_blocks(out["blocks"])
        handle.world.apply_entities(out["entities"])
        handle.ghost_ids = set(out["ghosts"])
        for event in out["events"]:
            if event[0] == "handoff_started":
                __, client_id, src, dst = event
                handle.sessions.pop(client_id, None)
                handle.handoffs_out += 1
                self.on_handoff_started(client_id, src, dst)
            else:  # handoff_completed
                __, client_id, shard_id, entity_id, name, view_distance = event
                handle.sessions[client_id] = _HandleSession(
                    client_id, entity_id, name, view_distance
                )
                handle.handoffs_in += 1
                self.on_handoff_completed(client_id, shard_id)
        for dst, message in out["posts"]:
            self.bus.post(handle.shard_id, dst, message)

    # ------------------------------------------------------------------
    # Audit
    # ------------------------------------------------------------------

    def audit_now(self) -> None:
        """Cluster-wide invariant audit at the pump barrier.

        Per-shard structural checks run worker-side against the live
        structures (shipped back as violation tuples); the cross-shard
        pairs (I7 unique ownership, I8 subscription mirror) run parent-
        side against the barrier-synced mirrors plus the audit payloads.
        """
        auditor = self._auditor if self._auditor is not None else InvariantAuditor()
        for handle in self.shards:
            handle._send("audit", {"time": self.sim.now})
        payloads = [handle._recv() for handle in self.shards]
        violations: list[Violation] = []
        for handle, payload in zip(self.shards, payloads):
            self._apply_output(handle, payload)
            for invariant, subject, message in payload["violations"]:
                violations.append(
                    Violation(
                        invariant, f"shard {handle.shard_id}: {subject}", message
                    )
                )
            handle.remote_interest = {
                owner: dict.fromkeys(chunks)
                for owner, chunks in payload["remote_interest"].items()
            }
            handle.peer_registry = {
                peer: dict.fromkeys(chunks)
                for peer, chunks in payload["peer_registry"].items()
            }
            handle.dyconits.load_audit_state(
                payload["dyconit_by_chunk"], payload["peer_subscriptions"]
            )
        auditor._check_unique_ownership(self, violations)
        auditor._check_subscription_mirror_cluster(self, violations)
        if self.telemetry.enabled:
            self.telemetry.counter("invariant_checks_total").increment()
            if violations:
                self.telemetry.counter("invariant_violations_total").increment(
                    len(violations)
                )
        if violations:
            raise InvariantViolationError(violations)
