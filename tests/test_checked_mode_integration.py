"""Checked-mode integration: auditing is observational.

Two guarantees worth an end-to-end test:

* **Audit-off ≡ audit-on.** The auditor only *reads* middleware and
  server state, so enabling it must not change a single packet any
  client receives. A full workload run with ``audit_every_n_ticks=1``
  (plus per-link FIFO checking) must be packet-for-packet identical to
  the same run with auditing disabled.

* **Real policies run clean.** A busy workload under each shipped policy
  family — including elastic repartitioning, whose merge/split cycles
  exercise every structure pair the auditor covers — finishes a fully
  audited run with zero violations.
"""

import pytest

from repro.bots.workload import BehaviorMix, Workload, WorkloadSpec
from repro.core.bounds import Bounds
from repro.policies.adaptive import AdaptiveBoundsPolicy
from repro.policies.distance import DistanceBasedPolicy
from repro.policies.elastic import ElasticPartitioningPolicy
from repro.policies.fixed import FixedBoundsPolicy
from repro.server.config import ServerConfig
from repro.server.engine import GameServer
from repro.sim.simulator import Simulation
from repro.world.world import World


def run_capture(policy, audit_every_n_ticks: int, duration_ms: float = 6_000.0):
    """Run a small busy workload; capture per-client packet streams."""
    sim = Simulation()
    server = GameServer(
        sim,
        world=World(seed=99),
        config=ServerConfig(
            seed=99,
            synchronous_delivery=True,
            mob_count=3,
            audit_every_n_ticks=audit_every_n_ticks,
        ),
        policy=policy,
    )
    server.start()
    spec = WorkloadSpec(
        bots=8,
        seed=99,
        movement="hotspot",
        behavior=BehaviorMix(build=0.1, dig=0.05, chat=0.01),
        arrival_stagger_ms=40.0,
    )
    workload = Workload(sim, server, spec)

    captures: dict[str, list] = {}
    original_connect = server.connect

    def tapping_connect(name, handler, **kwargs):
        log = captures.setdefault(name, [])

        def tapped(delivered):
            log.append(delivered.packet)
            handler(delivered)

        return original_connect(name, tapped, **kwargs)

    server.connect = tapping_connect
    workload.start()
    sim.run_until(duration_ms)
    return captures, server


def test_audit_on_is_packet_identical_to_audit_off(monkeypatch):
    # Pin the suite-wide fallback (REPRO_AUDIT_EVERY_N_TICKS) to 0 so the
    # config flag alone decides which side of the differential audits.
    from repro.server import engine

    monkeypatch.setattr(engine, "AUDIT_DEFAULT_EVERY_N_TICKS", 0)
    plain, plain_server = run_capture(
        FixedBoundsPolicy(Bounds(25.0, 500.0)), audit_every_n_ticks=0
    )
    audited, audited_server = run_capture(
        FixedBoundsPolicy(Bounds(25.0, 500.0)), audit_every_n_ticks=1
    )

    assert plain_server._auditor is None  # off means truly off
    assert audited_server._auditor is not None

    assert set(plain) == set(audited)
    for name in plain:
        assert plain[name] == audited[name], f"packet stream diverged for {name}"
    assert plain_server.transport.total_bytes() == audited_server.transport.total_bytes()
    assert (
        plain_server.transport.packets_by_kind()
        == audited_server.transport.packets_by_kind()
    )


@pytest.mark.parametrize(
    "make_policy",
    [
        lambda: FixedBoundsPolicy(Bounds(25.0, 500.0)),
        lambda: DistanceBasedPolicy(),
        lambda: AdaptiveBoundsPolicy(),
        lambda: ElasticPartitioningPolicy(
            inner=DistanceBasedPolicy(),
            region_size=2,
            cold_commits_per_second=2.0,
            hot_commits_per_second=20.0,
            evaluation_period_ms=500.0,
        ),
    ],
    ids=["fixed", "distance", "adaptive", "elastic"],
)
def test_every_policy_family_runs_fully_audited(make_policy):
    __, server = run_capture(make_policy(), audit_every_n_ticks=1)
    server.audit_now()  # final barrier audit on top of the per-tick ones
    assert server.tick_count > 0
    assert not server.transport.fifo_violations
