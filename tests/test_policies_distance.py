"""Unit tests for the distance-based policy."""

import pytest

from repro.core.bounds import Bounds
from repro.core.manager import DyconitSystem
from repro.core.partition import GLOBAL_DYCONIT, ChunkPartitioner
from repro.policies.distance import DistanceBasedPolicy
from repro.world.geometry import Vec3

from tests.conftest import RecordingSubscriber


def build(policy=None, position=Vec3(8.0, 30.0, 8.0)):
    policy = policy if policy is not None else DistanceBasedPolicy()
    system = DyconitSystem(policy, ChunkPartitioner(), time_source=lambda: 0.0)
    rec = RecordingSubscriber(position=position)
    return system, rec, policy


def test_own_chunk_gets_near_zero_bounds():
    system, rec, policy = build()  # avatar stands in chunk (0, 0)
    state = system.subscribe(("chunk", 0, 0), rec.subscriber)
    # The distance floor leaves a tiny bound nearby (staleness under one
    # tick, numerical sized to the rate budget for that window) so an
    # adaptive scale factor has something to loosen under overload.
    floor = policy.bounds_at_distance(policy.min_chunk_distance)
    assert state.bounds == floor
    assert state.bounds.staleness_ms <= 50.0
    assert state.bounds.numerical <= policy.numerical_weight_rate * 0.05


def test_bounds_grow_with_distance():
    system, rec, __ = build()
    near = system.subscribe(("chunk", 1, 0), rec.subscriber).bounds
    far = system.subscribe(("chunk", 4, 0), rec.subscriber).bounds
    assert near.numerical < far.numerical
    assert near.staleness_ms < far.staleness_ms


def test_bound_surface_shape():
    policy = DistanceBasedPolicy(
        numerical_per_chunk=2.0,
        numerical_exponent=2.0,
        staleness_per_chunk_ms=100.0,
        numerical_weight_rate=250.0,
    )
    bounds = policy.bounds_at_distance(3.0)
    # Numerical is the max of the distance surface (2 * 3^2 = 18) and the
    # rate budget (250/s * 0.3 s = 75): the rate budget wins here.
    assert bounds.numerical == pytest.approx(75.0)
    assert bounds.staleness_ms == pytest.approx(300.0)


def test_bound_surface_distance_term_can_dominate():
    policy = DistanceBasedPolicy(
        numerical_per_chunk=2.0,
        numerical_exponent=2.0,
        staleness_per_chunk_ms=100.0,
        numerical_weight_rate=0.0,  # disable the rate budget
    )
    assert policy.bounds_at_distance(3.0).numerical == pytest.approx(18.0)


def test_numerical_bound_still_catches_bursts():
    """A mass block edit (weight >> rate budget) must flush immediately
    rather than wait out the staleness deadline."""
    policy = DistanceBasedPolicy()
    bounds = policy.bounds_at_distance(2.0)
    burst_weight = 500.0  # an explosion editing 500 blocks
    assert bounds.exceeded_by(burst_weight, oldest_age_ms=0.0)


def test_zero_distance_is_zero_bounds():
    assert DistanceBasedPolicy().bounds_at_distance(0.0).is_zero
    assert DistanceBasedPolicy().bounds_at_distance(-1.0).is_zero


def test_global_dyconit_gets_chat_bounds():
    policy = DistanceBasedPolicy(global_bounds=Bounds(5.0, 250.0))
    system, rec, __ = build(policy)
    state = system.subscribe(GLOBAL_DYCONIT, rec.subscriber)
    assert state.bounds == Bounds(5.0, 250.0)


def test_subscriber_without_position_gets_global_bounds():
    policy = DistanceBasedPolicy()
    system = DyconitSystem(policy, ChunkPartitioner(), time_source=lambda: 0.0)
    rec = RecordingSubscriber()  # no position provider
    state = system.subscribe(("chunk", 3, 3), rec.subscriber)
    assert state.bounds == policy.global_bounds


def test_on_subscriber_moved_rederives_bounds():
    system, rec, policy = build()
    state = system.subscribe(("chunk", 4, 0), rec.subscriber)
    far_bounds = state.bounds
    # Teleport the avatar next to the dyconit and notify the policy.
    rec.subscriber.position_provider = lambda: Vec3(4 * 16 + 8.0, 30.0, 8.0)
    policy.on_subscriber_moved(system, rec.subscriber)
    assert state.bounds.numerical < far_bounds.numerical
    assert state.bounds == policy.bounds_at_distance(policy.min_chunk_distance)


def test_rejects_negative_coefficients():
    with pytest.raises(ValueError):
        DistanceBasedPolicy(numerical_per_chunk=-1.0)
    with pytest.raises(ValueError):
        DistanceBasedPolicy(staleness_per_chunk_ms=-1.0)


def test_repr_mentions_surface():
    assert "d^2" in repr(DistanceBasedPolicy(numerical_exponent=2.0))
