"""Serial ≡ parallel differential oracle for the sweep executor.

The ``jobs=1`` in-process path is the ground truth; ``jobs=4`` must
produce a byte-identical serialized store — including when half the
cells are already present in the cache (the resume path must not change
the bytes either).
"""

import json

import pytest

from repro.experiments.configs import ExperimentConfig
from repro.experiments.figures import make_fault_plan
from repro.experiments.parallel import config_digest, load_cell, run_cells, run_sweep


@pytest.fixture(scope="module")
def cells():
    """A tiny E1+E9-shaped grid: policy sweep plus a faulty/churny cell."""
    base = ExperimentConfig(bots=4, duration_ms=2_500.0, warmup_ms=800.0, seed=7)
    return [
        base.with_(name="e1-zero", policy="zero"),
        base.with_(name="e1-fixed", policy="fixed"),
        base.with_(name="e1-adaptive", policy="adaptive"),
        base.with_(
            name="e9-adaptive-loss2",
            policy="adaptive",
            faults=make_fault_plan(0.02),
            seed=11,
        ),
    ]


def run_store_bytes(cells, tmp_path, tag, jobs):
    cache = tmp_path / f"{tag}-cache"
    store = tmp_path / f"{tag}-store.json"
    report = run_sweep(cells, jobs=jobs, cache_dir=cache, store_path=store)
    report.raise_on_failure()
    return store.read_bytes(), report


def test_parallel_store_is_byte_identical_to_serial(cells, tmp_path):
    serial_bytes, serial_report = run_store_bytes(cells, tmp_path, "serial", jobs=1)
    parallel_bytes, parallel_report = run_store_bytes(
        cells, tmp_path, "parallel", jobs=4
    )
    assert serial_report.cells_run == [cell.name for cell in cells]
    assert parallel_report.cells_run == [cell.name for cell in cells]
    assert parallel_bytes == serial_bytes
    # The store is valid JSON keyed by cell name, in input order.
    data = json.loads(serial_bytes)
    assert list(data) == [cell.name for cell in cells]


def test_half_seeded_cache_produces_identical_bytes(cells, tmp_path):
    """Pre-seeding half the cells (resume) must not change the output."""
    serial_bytes, _ = run_store_bytes(cells, tmp_path, "oracle", jobs=1)

    # Compute the first half's payloads once, seed a fresh cache with
    # them, and let the parallel sweep fill in the rest.
    warm = tmp_path / "warm-cache"
    first_half = cells[: len(cells) // 2]
    pre = run_sweep(first_half, jobs=1, cache_dir=warm)
    pre.raise_on_failure()
    assert all(load_cell(warm, config_digest(cell)) is not None for cell in first_half)

    store = tmp_path / "warm-store.json"
    report = run_sweep(cells, jobs=4, cache_dir=warm, store_path=store)
    report.raise_on_failure()
    assert report.cache_hits == [cell.name for cell in first_half]
    assert report.cells_run == [cell.name for cell in cells[len(cells) // 2 :]]
    assert store.read_bytes() == serial_bytes


def test_run_cells_matches_run_experiment_order(cells, tmp_path):
    """run_cells returns results in input order regardless of jobs."""
    serial = run_cells(cells, jobs=1, cache_dir=tmp_path / "a")
    parallel = run_cells(cells, jobs=4, cache_dir=tmp_path / "b")
    assert [r.config.name for r in serial] == [cell.name for cell in cells]
    for left, right in zip(serial, parallel):
        assert left.config.name == right.config.name
        assert left.bytes_total == right.bytes_total
        assert left.packets_total == right.packets_total
