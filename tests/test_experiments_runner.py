"""Tests for the experiment runner (small, fast experiment points)."""

import pytest

from repro.experiments.configs import ExperimentConfig
from repro.experiments.runner import run_experiment


def small(policy="zero", **overrides) -> ExperimentConfig:
    defaults = dict(
        policy=policy,
        bots=6,
        duration_ms=4_000.0,
        warmup_ms=1_000.0,
        seed=11,
    )
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


def test_runner_produces_traffic_and_tick_stats():
    result = run_experiment(small())
    assert result.bytes_total > 0
    assert result.packets_total > 0
    assert result.steady_bytes_per_second > 0
    assert result.tick_duration.count > 0
    assert result.effective_tick_rate_hz == pytest.approx(20.0, rel=0.15)


def test_vanilla_has_no_dyconit_stats():
    result = run_experiment(small(policy="vanilla"))
    assert result.dyconit_stats == {}


def test_dyconit_run_has_middleware_stats():
    result = run_experiment(small(policy="fixed"))
    assert result.dyconit_stats["commits"] > 0
    assert result.dyconit_stats["merge_ratio"] > 0


def test_same_seed_same_result():
    a = run_experiment(small())
    b = run_experiment(small())
    assert a.bytes_total == b.bytes_total
    assert a.packets_total == b.packets_total


def test_different_seeds_differ():
    a = run_experiment(small())
    b = run_experiment(small(seed=12))
    assert a.bytes_total != b.bytes_total


def test_vanilla_equals_zero_bounds_bytes():
    """The headline differential property at experiment level."""
    vanilla = run_experiment(small(policy="vanilla"))
    zero = run_experiment(small(policy="zero"))
    assert vanilla.bytes_total == zero.bytes_total
    assert vanilla.packets_total == zero.packets_total


def test_sharded_run_populates_cluster_metrics():
    result = run_experiment(small(policy="adaptive", shards=2, movement="gathering"))
    assert result.shards == 2
    assert result.intershard_bytes > 0
    assert result.intershard_messages > 0
    assert result.intershard_bytes_per_second > 0
    assert result.intershard_messages_by_kind.get("PeerSnapshot", 0) > 0
    assert len(result.shard_tick_p95_ms) == 2
    assert sum(result.shard_players) == 6
    assert result.bytes_total > 0
    assert result.dyconit_stats["commits"] > 0
    assert result.effective_tick_rate_hz == pytest.approx(20.0, rel=0.15)
    assert result.bandwidth_timeline and result.tick_timeline


def test_single_shard_config_uses_the_legacy_path():
    sharded = run_experiment(small(policy="zero", shards=1))
    legacy = run_experiment(small(policy="zero"))
    assert sharded.shards == 1
    assert sharded.intershard_bytes == 0
    assert sharded.bytes_total == legacy.bytes_total


def test_sharded_run_is_seed_deterministic():
    a = run_experiment(small(policy="adaptive", shards=2, movement="gathering"))
    b = run_experiment(small(policy="adaptive", shards=2, movement="gathering"))
    assert a.bytes_total == b.bytes_total
    assert a.intershard_bytes == b.intershard_bytes
    assert a.handoffs == b.handoffs
    assert a.intershard_messages_by_kind == b.intershard_messages_by_kind


def test_latency_recording_optional():
    without = run_experiment(small())
    assert without.packet_latency.count == 0
    with_latency = run_experiment(small(synchronous_delivery=False, record_latencies=True))
    assert with_latency.packet_latency.count > 0
    assert with_latency.packet_latency.p50 >= 25.0  # link base latency


def test_hooks_fire():
    fired = []

    def hook(server, workload):
        fired.append(server.player_count)
        workload.add_bots(2)

    result = run_experiment(small(), hooks=[(2_000.0, hook)])
    assert fired == [6]
    assert result.player_timeline[-1][1] == 8


def test_bandwidth_timeline_produced():
    result = run_experiment(small())
    assert len(result.bandwidth_timeline) >= 2
    assert all(rate >= 0 for __, rate in result.bandwidth_timeline)


def test_merging_disabled_increases_traffic():
    merged = run_experiment(small(policy="fixed"))
    unmerged = run_experiment(small(policy="fixed", merging_enabled=False))
    assert unmerged.packets_total > merged.packets_total
    assert unmerged.dyconit_stats["merge_ratio"] == 0.0


def test_as_row_keys():
    row = run_experiment(small()).as_row()
    assert {"policy", "bots", "kB/s", "p95 tick ms"} <= set(row)
