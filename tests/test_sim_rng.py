"""Unit tests for seeded RNG derivation."""

from repro.sim.rng import derive_rng, derive_seed


def test_same_path_same_seed():
    assert derive_seed(42, "bot", 7) == derive_seed(42, "bot", 7)


def test_different_paths_differ():
    assert derive_seed(42, "bot", 7) != derive_seed(42, "bot", 8)
    assert derive_seed(42, "bot") != derive_seed(42, "terrain")


def test_different_master_seeds_differ():
    assert derive_seed(1, "x") != derive_seed(2, "x")


def test_derived_rngs_are_reproducible():
    a = derive_rng(99, "movement", 3)
    b = derive_rng(99, "movement", 3)
    assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]


def test_derived_rngs_are_independent():
    a = derive_rng(99, "a")
    b = derive_rng(99, "b")
    # Drawing from one must not affect the other.
    before = b.random()
    a2 = derive_rng(99, "a")
    b2 = derive_rng(99, "b")
    for _ in range(100):
        a2.random()
    assert b2.random() == before


def test_seed_is_64_bit():
    seed = derive_seed(0, "anything")
    assert 0 <= seed < 2**64
