"""Backend protocols: where dyconit state lives, and how flushes fan out.

Two seams (S19) turn the middleware from an in-process library into a
deployable service:

* :class:`StateStore` — the factory and home of per-dyconit subscription
  state. The :class:`~repro.core.manager.DyconitSystem` never constructs
  a :class:`~repro.core.dyconit.Dyconit` directly any more; it asks its
  store for a *dyconit state handle* and talks to that handle through
  the surface documented on :class:`DyconitStateHandle`. The in-memory
  store hands back today's ``Dyconit`` objects unchanged, so the default
  path is byte-identical to the pre-seam tree; the SQLite store hands
  back handles whose queues live in a database, and Redis/Postgres
  adapters slot in the same way.

* :class:`EventBus` — the delivery edge of a flush. The manager's
  ``_deliver`` publishes ``(dyconit id, subscriber, updates)`` to the
  bus instead of invoking the subscriber callback itself. The direct bus
  reproduces the legacy inline call; a buffered bus decouples delivery
  for gateway taps and future networked fan-out.

Both protocols are *synchronous and single-writer by design*: the
simulation owns the only mutating thread, exactly as before. A backend
that wants asynchrony (Redis pub/sub, a network bus) must still present
this synchronous surface to the middleware and do its own pipelining
behind it — the determinism contract (run-to-run bit identity) is part
of the protocol, not an accident of the in-memory implementation.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import TYPE_CHECKING, Hashable, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.core.bounds import Bounds
    from repro.core.subscription import Subscriber
    from repro.core.update import Update


class BackendUnavailable(RuntimeError):
    """Raised when a backend's driver or service is not reachable.

    The conformance suite treats this as a *skip*, not a failure: a
    registered backend may legitimately be absent from a given
    environment (e.g. the Redis adapter without a ``REPRO_REDIS_URL``).
    """


@dataclass
class SubscriptionSnapshot:
    """Backend-neutral record of one (dyconit, subscriber) subscription.

    Captured by :func:`snapshot_subscription` from any backend's
    subscription-state object and replayed into any backend through
    :meth:`DyconitStateHandle.restore_subscription` — the restart
    contract (S20) moves accounting across store instances (and across
    backends) through this one shape. ``pending`` keeps *(merge key,
    update)* pairs in queue order so a restored drain emits the same
    updates in the same order; the float fields are copied verbatim so
    restored accounting is bit-equal, never recomputed (recomputing
    ``accumulated_error`` from the surviving pending updates would lose
    the weight of superseded ones).
    """

    subscriber_id: int
    bounds: "Bounds"
    pending: list[tuple[Hashable, "Update"]]
    accumulated_error: float
    oldest_pending_time: float | None
    enqueued_count: int
    merged_count: int
    merging: bool


def snapshot_subscription(state) -> SubscriptionSnapshot:
    """Capture one subscription state through the common surface.

    Works on every backend's state object (``SubscriptionState``, the
    SQLite/Redis/Postgres row views, columnar flat views) because the
    contract suite already requires all of them to expose these exact
    attributes.
    """
    return SubscriptionSnapshot(
        subscriber_id=state.subscriber.subscriber_id,
        bounds=state.bounds,
        pending=list(state.pending.items()),
        accumulated_error=state.accumulated_error,
        oldest_pending_time=state.oldest_pending_time,
        enqueued_count=state.enqueued_count,
        merged_count=state.merged_count,
        merging=state.merging,
    )


class DyconitStateHandle(abc.ABC):
    """The per-dyconit surface the manager drives.

    This documents (and, for non-memory backends, enforces) the exact
    method set :class:`~repro.core.manager.DyconitSystem` uses on the
    objects it gets from :meth:`StateStore.create_dyconit_state`. The
    in-memory store returns :class:`~repro.core.dyconit.Dyconit`, which
    satisfies this surface structurally (it predates the seam and is not
    re-parented, so existing isinstance checks and pickling stay
    untouched); adapters subclass this ABC so a missing method is a
    loud TypeError at construction, not a silent divergence later.

    Required attributes: ``dyconit_id``, ``total_committed_weight``,
    ``commit_count``, ``default_bounds``, ``merging`` and ``_flat``
    (``None`` unless the handle implements the S17 columnar fast path —
    the manager branches on it in ``_commit_resolved``).

    Subscription-state objects returned by :meth:`get_state` /
    :meth:`subscription_states` / :meth:`subscribe` /
    :meth:`unsubscribe` must be drop-in compatible with
    :class:`~repro.core.dyconit.SubscriptionState`: ``subscriber``,
    ``bounds`` (settable), ``pending``, ``accumulated_error``,
    ``oldest_pending_time``, ``enqueued_count``, ``merged_count``,
    ``has_pending``, ``oldest_age_ms``, ``tripped_dimension``,
    ``exceeds_bounds``, ``enqueue``, ``drain`` and
    ``restore_time_order`` — the contract suite checks every one of
    these against every registered backend.
    """

    dyconit_id: Hashable
    total_committed_weight: float
    commit_count: int
    _flat = None

    @property
    @abc.abstractmethod
    def subscriber_count(self) -> int: ...

    @abc.abstractmethod
    def subscribers(self) -> list["Subscriber"]: ...

    @abc.abstractmethod
    def subscription_states(self) -> list: ...

    @abc.abstractmethod
    def is_subscribed(self, subscriber_id: int) -> bool: ...

    @abc.abstractmethod
    def subscribe(self, subscriber: "Subscriber", bounds=None): ...

    @abc.abstractmethod
    def unsubscribe(self, subscriber_id: int): ...

    @abc.abstractmethod
    def get_state(self, subscriber_id: int): ...

    @abc.abstractmethod
    def set_bounds(self, subscriber_id: int, bounds) -> None: ...

    @abc.abstractmethod
    def commit(self, update: "Update", exclude_subscriber: int | None = None): ...

    def _ensure_private(self) -> None:
        """Drop any columnar fast path back to per-object states.

        Called by the manager before repartitioning moves backlogs
        across queues. Handles without a columnar mode need no work.
        """

    def restore_subscription(self, subscriber: "Subscriber", snap: SubscriptionSnapshot):
        """Recreate a subscription exactly as a snapshot recorded it.

        The restart path (S20): ``subscriber`` is the *fresh runtime*
        callback object (delivery handlers are never persisted) while
        ``snap`` carries the durable half — queue contents, bounds and
        accounting, restored bit-for-bit rather than replayed through
        :meth:`~repro.core.dyconit.SubscriptionState.enqueue` (which
        would recompute ``accumulated_error`` without the superseded
        updates' weights). Must not be called for an already-subscribed
        id; returns the new subscription-state object.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support subscription restore"
        )


class StateStore(abc.ABC):
    """Factory and lifecycle owner of dyconit state handles.

    One store serves one :class:`~repro.core.manager.DyconitSystem`.
    The store decides *where* subscription queues and conit accounting
    live; the manager keeps its own ``dict`` of live handles (a cache,
    not the source of truth for persistent backends) and tells the
    store when a dyconit is gone so persistent rows can be collected.
    """

    #: Registry name (``"memory"``, ``"sqlite"``, ``"redis"``, ...).
    name: str = "abstract"

    @abc.abstractmethod
    def create_dyconit_state(
        self, dyconit_id: Hashable, *, merging: bool, flat: bool
    ) -> DyconitStateHandle:
        """Create (or, for persistent stores, re-attach) a dyconit's state.

        ``flat`` asks for the S17 columnar fast path; a store that has no
        columnar mode may ignore it — the manager falls back to the
        legacy per-update commit path whenever ``handle._flat is None``.
        """

    def drop_dyconit_state(self, dyconit_id: Hashable) -> None:
        """The manager removed this dyconit (or merged it away)."""

    def reset(self) -> None:
        """Delete every dyconit row this store can see (checkpoints stay).

        Persistent/shared backends (a file, a Redis or Postgres server)
        may hold rows from an earlier run under the same namespace; the
        restore path wipes them before replaying a checkpoint so stale
        rows — including rows written *after* the checkpoint by a run
        that was later killed — can never leak into the resumed run.
        The in-memory store starts empty, so the default is a no-op.
        """

    def save_checkpoint(self, key: str, blob: bytes) -> None:
        """Durably store an opaque checkpoint blob under ``key``.

        Overwrites any previous blob with the same key. Persistent
        stores must write this atomically with respect to process death
        (a killed writer leaves either the old or the new blob, never a
        torn one). The default keeps blobs in-process — correct for the
        memory store, whose whole point is no durability.
        """
        self._memory_checkpoints()[key] = bytes(blob)

    def load_checkpoint(self, key: str) -> bytes | None:
        """Return the blob stored under ``key``, or ``None``."""
        return self._memory_checkpoints().get(key)

    def checkpoint_keys(self) -> list[str]:
        """All stored checkpoint keys, oldest first."""
        return list(self._memory_checkpoints())

    def _memory_checkpoints(self) -> dict[str, bytes]:
        store = getattr(self, "_checkpoints", None)
        if store is None:
            store = self._checkpoints = {}
        return store

    def close(self) -> None:
        """Release backend resources (connections, files)."""

    def __enter__(self) -> "StateStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class EventBus(abc.ABC):
    """Fan-out edge: flushed update batches on their way to subscribers."""

    name: str = "abstract"

    @abc.abstractmethod
    def publish(
        self,
        dyconit_id: Hashable,
        subscriber: "Subscriber",
        updates: Sequence["Update"],
    ) -> None:
        """Hand one flushed batch to one subscriber.

        Contract: batches for the same subscriber are delivered in
        publish order, exactly once, with the update sequence unchanged
        (the middleware already merged and time-ordered it).
        """

    def drain(self) -> int:
        """Deliver anything buffered; returns batches delivered.

        The direct bus has nothing to drain and returns 0. Buffered
        buses deliver here — the engine calls this at its tick barrier.
        """
        return 0

    def close(self) -> None:
        """Release bus resources."""
