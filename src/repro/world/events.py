"""World events.

Every mutation of the authoritative world emits exactly one event. Events
are what the server (vanilla path) or the dyconit middleware (bounded
path) turns into network packets, and what replicas apply to converge.

Each event carries:

* ``time`` — simulated time of the mutation;
* a *merge key* — later events with the same key supersede earlier ones
  (the basis of flush-time update merging);
* a *weight* — its contribution to conit-style numerical error.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.world.block import BlockType
from repro.world.entity import EntityKind
from repro.world.geometry import BlockPos, ChunkPos, Vec3


@dataclass(frozen=True, slots=True)
class WorldEvent:
    """Base class for all world events."""

    time: float

    @property
    def merge_key(self) -> tuple:
        """Events sharing a merge key can be superseded by the newest one.

        The default is identity (no merging): each event is its own key.
        """
        return (id(self),)

    @property
    def weight(self) -> float:
        """Numerical-error weight in the conit model."""
        return 1.0

    @property
    def chunk_pos(self) -> ChunkPos | None:
        """Chunk the event belongs to, for spatial routing; None if global."""
        return None


@dataclass(frozen=True, slots=True)
class BlockChangeEvent(WorldEvent):
    """A single block changed state."""

    pos: BlockPos
    old_block: BlockType
    new_block: BlockType
    actor_id: int | None = None

    @property
    def merge_key(self) -> tuple:
        # Later changes to the same block supersede earlier ones.
        return ("block", self.pos.x, self.pos.y, self.pos.z)

    @property
    def weight(self) -> float:
        return 1.0

    @property
    def chunk_pos(self) -> ChunkPos:
        return self.pos.to_chunk_pos()


@dataclass(frozen=True, slots=True)
class EntityMoveEvent(WorldEvent):
    """An entity moved (and/or rotated)."""

    entity_id: int
    old_position: Vec3
    new_position: Vec3
    yaw: float = 0.0
    pitch: float = 0.0

    @property
    def merge_key(self) -> tuple:
        # Only the newest position matters to a replica.
        return ("move", self.entity_id)

    @property
    def weight(self) -> float:
        # Positional error contributed by *not* delivering this move.
        return self.new_position.distance_to(self.old_position)

    @property
    def chunk_pos(self) -> ChunkPos:
        return self.new_position.to_chunk_pos()


@dataclass(frozen=True, slots=True)
class EntitySpawnEvent(WorldEvent):
    """An entity entered the world."""

    entity_id: int
    kind: EntityKind
    position: Vec3
    name: str = ""

    @property
    def merge_key(self) -> tuple:
        return ("spawn", self.entity_id)

    @property
    def weight(self) -> float:
        # Spawns are structurally significant; a large weight makes any
        # finite numerical bound deliver them promptly.
        return 100.0

    @property
    def chunk_pos(self) -> ChunkPos:
        return self.position.to_chunk_pos()


@dataclass(frozen=True, slots=True)
class EntityDespawnEvent(WorldEvent):
    """An entity left the world."""

    entity_id: int
    position: Vec3

    @property
    def merge_key(self) -> tuple:
        # A despawn supersedes any queued spawn/moves of the same entity.
        return ("spawn", self.entity_id)

    @property
    def weight(self) -> float:
        return 100.0

    @property
    def chunk_pos(self) -> ChunkPos:
        return self.position.to_chunk_pos()


@dataclass(frozen=True, slots=True)
class ChatEvent(WorldEvent):
    """A chat message; global, never merged, order-sensitive."""

    sender_id: int
    text: str

    @property
    def merge_key(self) -> tuple:
        return ("chat", self.sender_id, self.time, self.text)

    @property
    def weight(self) -> float:
        return 10.0
