"""View-distance interest management.

Replicates what a vanilla Minecraft-like server does around each player:
stream the square of chunks within the view distance, spawn/destroy
entity replicas as chunks (or entities) enter and leave the view, and —
in dyconit mode — keep the player's dyconit subscriptions in lockstep
with the view.

Interest management is deliberately *identical* across the vanilla and
dyconit paths: the paper's middleware reuses the existing game codebase,
and keeping this layer shared is what makes the zero-bounds
differential test (vanilla ≡ zero-bounds, packet-for-packet) meaningful.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.partition import GLOBAL_DYCONIT
from repro.net.protocol import (
    ChunkDataPacket,
    ChunkUnloadPacket,
    DestroyEntitiesPacket,
    Packet,
)
from repro.world.chunk import CHUNK_SIZE, WORLD_HEIGHT
from repro.world.geometry import ChunkPos, chunks_in_radius
from repro.server.session import PlayerSession

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.server.engine import GameServer


class InterestManager:
    """Maintains per-session view areas and dyconit subscriptions."""

    def __init__(self, server: "GameServer") -> None:
        self.server = server

    # ------------------------------------------------------------------
    # Join / leave
    # ------------------------------------------------------------------

    def sync_on_join(self, session: PlayerSession) -> None:
        """Send the initial view (chunks + entities) and subscribe."""
        center = self._avatar_chunk(session)
        session.anchor_chunk = center
        view = set(chunks_in_radius(center, session.view_distance))
        packets: list[Packet] = []
        for chunk_pos in sorted(view, key=lambda c: (c.cx, c.cz)):
            packets.append(self._chunk_packet(chunk_pos))
            packets.extend(self._entity_snapshots(session, chunk_pos))
        session.view_chunks = view
        self.server.viewers.add_view(session, view)
        self.server.send_packets(session, packets)
        self._subscribe_view(session, set(), view)

    def on_leave(self, session: PlayerSession) -> None:
        self.server.viewers.remove_view(session, session.view_chunks)
        session.view_chunks = set()
        session.known_entities.clear()

    # ------------------------------------------------------------------
    # Player movement
    # ------------------------------------------------------------------

    def refresh(self, session: PlayerSession) -> bool:
        """Re-center the view if the avatar crossed a chunk border.

        Returns True if the view changed (the engine then notifies the
        policy so spatial bounds can be re-derived).
        """
        center = self._avatar_chunk(session)
        if center == session.anchor_chunk:
            return False
        session.anchor_chunk = center
        new_view = set(chunks_in_radius(center, session.view_distance))
        old_view = session.view_chunks
        added = new_view - old_view
        removed = old_view - new_view

        packets: list[Packet] = []
        for chunk_pos in sorted(added, key=lambda c: (c.cx, c.cz)):
            packets.append(self._chunk_packet(chunk_pos))
            packets.extend(self._entity_snapshots(session, chunk_pos))
        for chunk_pos in sorted(removed, key=lambda c: (c.cx, c.cz)):
            packets.append(ChunkUnloadPacket(chunk=chunk_pos))
        # Sweep replicas by *last-sent* position (not current authoritative
        # chunk): an entity may have moved since the client last heard of
        # it, and the client's replica lives where the client believes it.
        destroyed = [
            entity_id
            for entity_id, last_sent in session.known_entities.items()
            if last_sent.to_chunk_pos() not in new_view
        ]
        for entity_id in destroyed:
            session.forget_entity(entity_id)
        if destroyed:
            packets.append(DestroyEntitiesPacket(entity_ids=tuple(destroyed)))

        session.view_chunks = new_view
        self.server.viewers.add_view(session, added)
        self.server.viewers.remove_view(session, removed)
        self.server.send_packets(session, packets)
        self._subscribe_view(session, old_view, new_view)
        return True

    # ------------------------------------------------------------------
    # Entity movement across chunk borders
    # ------------------------------------------------------------------

    def on_entity_crossed(
        self, entity_id: int, old_chunk: ChunkPos, new_chunk: ChunkPos
    ) -> None:
        """Handle an entity moving between chunks.

        Sessions that see the new chunk but not the old get a spawn;
        sessions that see the old but not the new get a destroy. Sessions
        seeing both keep receiving regular move updates.

        Only two groups of sessions can need a packet: viewers of the new
        chunk (spawn side) and sessions whose client holds a replica of
        the entity (destroy side). The viewer index gives both in
        O(viewers + knowers); every other session is provably a no-op in
        the brute-force scan (:meth:`on_entity_crossed_scan`), which is
        kept as the reference implementation for the differential tests
        and the wall-clock benchmark.
        """
        if not self.server.use_viewer_index:
            return self.on_entity_crossed_scan(entity_id, old_chunk, new_chunk)
        index = self.server.viewers
        for session in index.viewers(new_chunk):
            if session.entity_id == entity_id:
                continue
            if entity_id not in session.known_entities:
                packet = self.server.codec.encode_entity_snapshot(session, entity_id)
                if packet is not None:
                    self.server.send_packets(session, [packet])
        for session in index.knowers(entity_id):
            if session.entity_id == entity_id:
                continue
            if not session.sees_chunk(new_chunk):
                # Entity now outside this client's view: drop the replica
                # wherever the client believes it is.
                if session.forget_entity(entity_id):
                    self.server.send_packets(
                        session, [DestroyEntitiesPacket(entity_ids=(entity_id,))]
                    )

    def on_entity_crossed_scan(
        self, entity_id: int, old_chunk: ChunkPos, new_chunk: ChunkPos
    ) -> None:
        """Brute-force reference for :meth:`on_entity_crossed`: visit every
        session. O(players) per crossing; must stay behaviourally
        identical to the indexed path."""
        for session in self.server.sessions.values():
            if session.entity_id == entity_id:
                continue
            sees = session.sees_chunk(new_chunk)
            if not sees:
                if session.forget_entity(entity_id):
                    self.server.send_packets(
                        session, [DestroyEntitiesPacket(entity_ids=(entity_id,))]
                    )
            elif entity_id not in session.known_entities:
                packet = self.server.codec.encode_entity_snapshot(session, entity_id)
                if packet is not None:
                    self.server.send_packets(session, [packet])

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------

    def _avatar_chunk(self, session: PlayerSession) -> ChunkPos:
        entity = self.server.world.get_entity(session.entity_id)
        if entity is None:
            raise KeyError(f"session {session.client_id} has no avatar entity")
        return entity.chunk_pos

    def _chunk_packet(self, chunk_pos: ChunkPos) -> ChunkDataPacket:
        chunk = self.server.world.get_chunk(chunk_pos)
        return ChunkDataPacket(
            chunk=chunk_pos,
            total_blocks=CHUNK_SIZE * CHUNK_SIZE * WORLD_HEIGHT,
            non_air_blocks=chunk.non_air_count,
        )

    def _entity_snapshots(
        self, session: PlayerSession, chunk_pos: ChunkPos
    ) -> list[Packet]:
        packets: list[Packet] = []
        for entity in self.server.world.entities_in_chunk(chunk_pos):
            packet = self.server.codec.encode_entity_snapshot(session, entity.entity_id)
            if packet is not None:
                packets.append(packet)
        return packets

    def _subscribe_view(
        self, session: PlayerSession, old_view: set[ChunkPos], new_view: set[ChunkPos]
    ) -> None:
        dyconits = self.server.dyconits
        if dyconits is None:
            return
        partitioner = dyconits.partitioner
        center = session.anchor_chunk
        if center is None:
            return
        # Resolve through merge aliases *before* diffing: two chunks merged
        # into one dyconit must not be unsubscribed while either is still
        # in view. Both sides are dict-as-ordered-sets so the subscribe /
        # unsubscribe order is deterministic (dyconit ids contain strings,
        # whose set iteration order is randomized per process).
        new_ids = {
            dyconits.resolve(dyconit_id): None
            for dyconit_id in partitioner.dyconits_for_view(center, session.view_distance)
        }
        old_ids: dict = {}
        if old_view:
            for chunk in old_view:
                old_ids[dyconits.resolve(partitioner.dyconit_for_chunk(chunk))] = None
            # The global dyconit (chat) is part of every view; keep it out
            # of the unsubscribe diff.
            old_ids[GLOBAL_DYCONIT] = None
        subscriber = dyconits.subscriber(session.client_id)
        if subscriber is None:
            return
        for dyconit_id in new_ids:
            if dyconit_id not in old_ids:
                dyconits.subscribe(dyconit_id, subscriber)
        for dyconit_id in old_ids:
            if dyconit_id not in new_ids:
                # Updates about an area leaving the view are obsolete: the
                # client is unloading those chunks. Drop, do not flush.
                dyconits.unsubscribe(dyconit_id, session.client_id, flush_pending=False)
