"""Behavioural tests for the bot client and its perceived replica."""

import pytest

from repro.bots.bot import BotClient, PerceivedWorld
from repro.bots.movement import RandomWaypointModel
from repro.net.protocol import (
    BlockChangePacket,
    ChunkDataPacket,
    ChunkUnloadPacket,
    DestroyEntitiesPacket,
    EntityPositionPacket,
    EntityTeleportPacket,
    SpawnEntityPacket,
)
from repro.net.transport import DeliveredPacket
from repro.policies.zero import ZeroBoundsPolicy
from repro.world.block import BlockType
from repro.world.entity import EntityKind
from repro.world.geometry import BlockPos, ChunkPos, Vec3


def delivered(packet, at=0.0):
    return DeliveredPacket(packet=packet, sent_at=at, delivered_at=at)


class TestPerceivedWorld:
    def test_spawn_then_relative_move(self):
        replica = PerceivedWorld()
        replica.apply(delivered(SpawnEntityPacket(7, EntityKind.COW, Vec3(1, 30, 1))))
        replica.apply(delivered(EntityPositionPacket(7, Vec3(0.5, 0.0, 0.5)), at=50.0))
        assert replica.entity_positions[7] == Vec3(1.5, 30.0, 1.5)
        assert replica.entity_last_update[7] == 50.0

    def test_move_for_unknown_entity_ignored(self):
        replica = PerceivedWorld()
        replica.apply(delivered(EntityPositionPacket(9, Vec3(1, 0, 0))))
        assert 9 not in replica.entity_positions

    def test_teleport_overrides(self):
        replica = PerceivedWorld()
        replica.apply(delivered(SpawnEntityPacket(7, EntityKind.COW, Vec3(0, 30, 0))))
        replica.apply(delivered(EntityTeleportPacket(7, Vec3(99, 30, 99))))
        assert replica.entity_positions[7] == Vec3(99, 30, 99)

    def test_destroy_removes(self):
        replica = PerceivedWorld()
        replica.apply(delivered(SpawnEntityPacket(7, EntityKind.COW, Vec3(0, 30, 0))))
        replica.apply(delivered(DestroyEntitiesPacket((7,))))
        assert replica.entity_positions == {}
        assert replica.entity_last_update == {}

    def test_block_overlay(self):
        replica = PerceivedWorld()
        replica.apply(
            delivered(BlockChangePacket(BlockPos(1, 30, 1), BlockType.BRICK))
        )
        assert replica.blocks[BlockPos(1, 30, 1)] == BlockType.BRICK

    def test_chunk_unload_forgets_overlay(self):
        replica = PerceivedWorld()
        replica.apply(delivered(ChunkDataPacket(ChunkPos(0, 0), 16384, 100)))
        replica.apply(delivered(BlockChangePacket(BlockPos(1, 30, 1), BlockType.BRICK)))
        replica.apply(delivered(ChunkUnloadPacket(ChunkPos(0, 0))))
        assert ChunkPos(0, 0) not in replica.loaded_chunks
        assert replica.blocks == {}


class TestBotClient:
    @pytest.fixture
    def server(self, server_factory):
        return server_factory(policy=ZeroBoundsPolicy(), synchronous_delivery=True)

    def make_bot(self, sim, server, name="tester", **kwargs):
        return BotClient(
            sim, server, name=name, seed=5,
            movement=RandomWaypointModel(radius=30.0), **kwargs
        )

    def test_connect_registers_session(self, sim, server):
        bot = self.make_bot(sim, server)
        bot.connect()
        assert bot.connected
        assert bot.client_id in server.sessions
        assert server.world.get_entity(bot.entity_id) is not None

    def test_double_connect_rejected(self, sim, server):
        bot = self.make_bot(sim, server)
        bot.connect()
        with pytest.raises(RuntimeError):
            bot.connect()

    def test_bot_moves_the_avatar(self, sim, server):
        bot = self.make_bot(sim, server)
        bot.connect()
        start = server.world.get_entity(bot.entity_id).position
        sim.run_until(sim.now + 3_000.0)
        end = server.world.get_entity(bot.entity_id).position
        assert start.horizontal_distance_to(end) > 1.0

    def test_bot_speed_is_bounded_by_walk_speed(self, sim, server):
        bot = self.make_bot(sim, server)
        bot.connect()
        start = server.world.get_entity(bot.entity_id).position
        sim.run_until(sim.now + 2_000.0)
        end = server.world.get_entity(bot.entity_id).position
        assert start.horizontal_distance_to(end) <= 4.317 * 2.1

    def test_builder_bot_places_blocks(self, sim, server):
        bot = self.make_bot(sim, server, build_probability=1.0)
        bot.connect()
        sim.run_until(sim.now + 2_000.0)
        assert bot.blocks_placed > 0

    def test_two_bots_see_each_other(self, sim, server):
        a = self.make_bot(sim, server, "a")
        b = self.make_bot(sim, server, "b")
        a.connect(position=server.world.surface_position(8.0, 8.0))
        b.connect(position=server.world.surface_position(12.0, 12.0))
        sim.run_until(sim.now + 1_000.0)
        assert b.entity_id in a.perceived.entity_positions
        assert a.entity_id in b.perceived.entity_positions

    def test_zero_bounds_perception_is_fresh(self, sim, server):
        """Under zero bounds the replica lags only by network latency:
        positional error stays within one act step."""
        a = self.make_bot(sim, server, "a")
        b = self.make_bot(sim, server, "b")
        a.connect(position=server.world.surface_position(8.0, 8.0))
        b.connect(position=server.world.surface_position(12.0, 12.0))
        sim.run_until(sim.now + 5_000.0)
        errors = a.positional_errors()
        assert errors and max(errors) < 2.0

    def test_disconnect_stops_acting(self, sim, server):
        bot = self.make_bot(sim, server)
        bot.connect()
        sim.run_until(sim.now + 500.0)
        bot.disconnect()
        count = server.player_count
        sim.run_until(sim.now + 1_000.0)
        assert server.player_count == count == 0

    def test_decisions_independent_of_traffic(self, sim, server_factory):
        """The same bot seed produces the same walk regardless of policy —
        the workload-equivalence property experiments rely on."""
        from repro.policies.infinite import InfiniteBoundsPolicy
        from repro.sim.simulator import Simulation

        def trajectory(policy):
            local_sim = Simulation()
            from repro.server.config import ServerConfig
            from repro.server.engine import GameServer
            from repro.world.world import World

            server = GameServer(
                local_sim, world=World(seed=1234),
                config=ServerConfig(seed=1234, synchronous_delivery=True),
                policy=policy,
            )
            server.start()
            bot = BotClient(local_sim, server, name="t", seed=5,
                            movement=RandomWaypointModel(radius=30.0))
            bot.connect(position=server.world.surface_position(8.0, 8.0))
            local_sim.run_until(3_000.0)
            entity = server.world.get_entity(bot.entity_id)
            return (entity.position.x, entity.position.z)

        assert trajectory(ZeroBoundsPolicy()) == trajectory(InfiniteBoundsPolicy())
