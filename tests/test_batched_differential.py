"""Differential: S17 batched commit pipeline ≡ legacy per-object path.

The safety contract for the columnar commit engine is the PR 2 playbook:
the legacy per-object path stays in the tree as ground truth, and a run
with ``use_batched_commit=True`` must be *packet-for-packet identical*
to the same seeded run with the toggle off — under a real bounded
policy (so queues actually merge and flush), over 2,000 ticks, on a
single server AND on a 2-shard cluster, with checked-mode audits (which
include the I9 columnar checks) sampling both runs.

Unlike :mod:`tests.test_integration_differential` (zero bounds ≡
vanilla broadcast, the *middleware-is-thin* anchor), these runs keep
nonzero bounds so the flat store's merge/supersede/flush machinery is
exercised on the hot path being compared.
"""

from repro.bots.workload import BehaviorMix, Workload, WorkloadSpec
from repro.cluster import ShardedCluster
from repro.core.bounds import Bounds
from repro.policies.fixed import FixedBoundsPolicy
from repro.server.config import ServerConfig
from repro.server.engine import GameServer
from repro.sim.simulator import Simulation
from repro.world.world import World

SEED = 77
TICKS = 2_000
TICK_MS = 50.0
DURATION_MS = TICKS * TICK_MS
#: Sampled checked mode: a full I1-I9 audit every N ticks keeps the
#: 2k-tick runs affordable while still auditing the columnar store
#: dozens of times per run (set explicitly so the env override used by
#: the per-tick CI job does not stretch this test's runtime).
AUDIT_EVERY = 250

BOUNDS = Bounds(numerical=10.0, staleness_ms=500.0)


def make_spec(movement="hotspot"):
    return WorkloadSpec(
        bots=8,
        seed=SEED,
        movement=movement,
        behavior=BehaviorMix(build=0.1, dig=0.05, chat=0.01),
        arrival_stagger_ms=40.0,
    )


def make_config(use_batched: bool) -> ServerConfig:
    return ServerConfig(
        seed=SEED,
        synchronous_delivery=True,
        mob_count=3,
        use_batched_commit=use_batched,
        audit_every_n_ticks=AUDIT_EVERY,
    )


def tap(server):
    captures: dict[str, list] = {}
    original_connect = server.connect

    def tapping_connect(name, handler, **kwargs):
        log = captures.setdefault(name, [])

        def tapped(delivered):
            log.append(delivered.packet)
            handler(delivered)

        return original_connect(name, tapped, **kwargs)

    server.connect = tapping_connect
    return captures


def run_single(use_batched: bool):
    sim = Simulation()
    server = GameServer(
        sim,
        world=World(seed=SEED),
        config=make_config(use_batched),
        policy=FixedBoundsPolicy(BOUNDS),
    )
    server.start()
    workload = Workload(sim, server, make_spec())
    captures = tap(server)
    workload.start()
    sim.run_until(DURATION_MS)
    return captures, server


def run_cluster(use_batched: bool):
    sim = Simulation()
    cluster = ShardedCluster(
        sim,
        shards=2,
        strip_width=4,
        config=make_config(use_batched),
        policy_factory=lambda: FixedBoundsPolicy(BOUNDS),
    )
    cluster.start()
    workload = Workload(sim, cluster, make_spec("gathering"))
    captures = tap(cluster)
    workload.start()
    sim.run_until(DURATION_MS)
    return captures, cluster


def assert_streams_equal(legacy: dict, batched: dict) -> None:
    assert set(legacy) == set(batched)
    for name in legacy:
        assert legacy[name] == batched[name], f"packet stream diverged for {name}"


def uses_flat_store(system) -> bool:
    return any(dyconit._flat is not None for dyconit in system._dyconits.values())


def test_single_server_2k_ticks_packet_identical():
    legacy, legacy_server = run_single(use_batched=False)
    batched, batched_server = run_single(use_batched=True)

    assert legacy_server.tick_count >= TICKS
    # Non-vacuity: the toggled run really took the columnar path (and
    # the baseline really did not).
    assert uses_flat_store(batched_server.dyconits)
    assert not uses_flat_store(legacy_server.dyconits)

    assert_streams_equal(legacy, batched)
    assert (
        legacy_server.transport.total_bytes()
        == batched_server.transport.total_bytes()
    )
    assert (
        legacy_server.transport.packets_by_kind()
        == batched_server.transport.packets_by_kind()
    )
    # The dyconit machinery was actually on the hot path (bounded, not
    # pass-through), and both paths agree on its aggregate behaviour.
    assert batched_server.dyconits.stats.updates_merged > 0
    assert legacy_server.dyconits.stats == batched_server.dyconits.stats


def test_two_shard_cluster_2k_ticks_packet_identical():
    legacy, legacy_cluster = run_cluster(use_batched=False)
    batched, batched_cluster = run_cluster(use_batched=True)

    assert any(
        uses_flat_store(shard.dyconits) for shard in batched_cluster.shards
    )

    assert_streams_equal(legacy, batched)
    assert legacy_cluster.total_bytes() == batched_cluster.total_bytes()
    assert legacy_cluster.bus.total_bytes == batched_cluster.bus.total_bytes
    assert (
        legacy_cluster.bus.messages_by_kind == batched_cluster.bus.messages_by_kind
    )
    assert legacy_cluster.handoffs == batched_cluster.handoffs
    # The federated run exercised cross-shard machinery, not just two
    # independent servers.
    assert legacy_cluster.bus.total_messages > 0
    assert legacy_cluster.handoffs > 0
