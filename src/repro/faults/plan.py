"""Declarative fault plans.

A :class:`FaultPlan` is a frozen value object: it describes *what* should
go wrong on a link, never *when a specific packet* is hit — that decision
is drawn per packet from a seeded RNG inside
:class:`~repro.faults.link.FaultyLink`, which is what keeps faulty runs
bit-for-bit reproducible per seed.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class DegradedWindow:
    """A time window during which the link's bandwidth is scaled down.

    Models a congested backbone or a mobile client walking out of
    coverage: between ``start_ms`` and ``end_ms`` (simulated time) the
    link serializes packets at ``bandwidth_factor`` times its configured
    rate, so queueing delay builds up exactly as on a real throttled pipe.
    """

    start_ms: float
    end_ms: float
    bandwidth_factor: float

    def __post_init__(self) -> None:
        if self.end_ms <= self.start_ms:
            raise ValueError(
                f"degraded window must end after it starts, got "
                f"[{self.start_ms}, {self.end_ms})"
            )
        if not (0.0 < self.bandwidth_factor <= 1.0):
            raise ValueError(
                f"bandwidth factor must be in (0, 1], got {self.bandwidth_factor}"
            )

    def contains(self, now: float) -> bool:
        return self.start_ms <= now < self.end_ms


@dataclass(frozen=True, slots=True)
class FaultPlan:
    """Per-link fault parameters; all defaults are "no faults".

    Loss has two components that compose:

    * ``loss_rate`` — independent (Bernoulli) per-packet loss;
    * a Gilbert–Elliott two-state chain — each packet first advances the
      GOOD/BAD state (``p_good_to_bad`` / ``p_bad_to_good`` transition
      probabilities), and while the chain is BAD packets are additionally
      dropped with ``burst_loss_rate``. This is the standard model for
      the clustered losses real wireless/congested links exhibit.

    ``spike_probability``/``spike_ms`` add an occasional large one-off
    delay (bufferbloat, Wi-Fi retransmission pause) on top of the link's
    regular jitter; ``degraded_windows`` throttle serialization bandwidth
    during fixed time windows.
    """

    loss_rate: float = 0.0
    burst_loss_rate: float = 0.0
    p_good_to_bad: float = 0.0
    p_bad_to_good: float = 1.0
    spike_probability: float = 0.0
    spike_ms: float = 0.0
    degraded_windows: tuple[DegradedWindow, ...] = ()

    def __post_init__(self) -> None:
        for name in ("loss_rate", "burst_loss_rate", "p_good_to_bad",
                     "p_bad_to_good", "spike_probability"):
            value = getattr(self, name)
            if not (0.0 <= value <= 1.0):
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if self.spike_ms < 0:
            raise ValueError(f"spike_ms must be >= 0, got {self.spike_ms}")
        if self.p_good_to_bad > 0 and self.p_bad_to_good == 0 and self.burst_loss_rate >= 1.0:
            raise ValueError("plan would eventually drop every packet forever "
                             "(absorbing BAD state with certain loss)")

    @property
    def has_burst_model(self) -> bool:
        return self.p_good_to_bad > 0.0 and self.burst_loss_rate > 0.0

    @property
    def has_spikes(self) -> bool:
        return self.spike_probability > 0.0 and self.spike_ms > 0.0

    def is_null(self) -> bool:
        """True when the plan injects nothing at all.

        A null plan still builds a :class:`FaultyLink` when explicitly
        configured — the differential test relies on that link being
        packet-for-packet identical to a plain one.
        """
        return (
            self.loss_rate == 0.0
            and not self.has_burst_model
            and not self.has_spikes
            and not self.degraded_windows
        )


#: Convenience null plan (useful for overhead benchmarks: installs the
#: fault layer with every rate at zero).
NULL_FAULT_PLAN = FaultPlan()
