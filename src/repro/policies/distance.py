"""Distance-based bounds.

Bounds grow with the chunk-grid distance between the subscriber's avatar
and the dyconit's area:

    numerical(d)  = numerical_per_chunk * d ** numerical_exponent
    staleness(d)  = staleness_per_chunk_ms * d

so the player's own surroundings replicate at full fidelity (d = 0 gives
zero bounds) while the periphery of the view tolerates progressively more
drift — where human players cannot perceive it. This is the spatial
inconsistency gradient that interest-management research (Donnybrook
et al.) exploits, recast as conit bounds.
"""

from __future__ import annotations

from typing import Hashable

from repro.core.bounds import Bounds
from repro.core.partition import GLOBAL_DYCONIT, centroid_of
from repro.core.policy import Policy
from repro.core.subscription import Subscriber
from repro.world.geometry import CHUNK_SIZE

#: Bounds for the global (chat) dyconit: chat batches briefly but a chat
#: event's weight (10) exceeds the numerical bound, so messages flush on
#: arrival of the next event or within a quarter second.
GLOBAL_BOUNDS = Bounds(numerical=5.0, staleness_ms=250.0)


class DistanceBasedPolicy(Policy):
    """Bounds proportional to avatar-to-dyconit distance."""

    def __init__(
        self,
        numerical_per_chunk: float = 2.0,
        numerical_exponent: float = 2.0,
        staleness_per_chunk_ms: float = 100.0,
        numerical_weight_rate: float = 250.0,
        min_chunk_distance: float = 0.25,
        global_bounds: Bounds = GLOBAL_BOUNDS,
    ) -> None:
        if numerical_per_chunk < 0 or staleness_per_chunk_ms < 0:
            raise ValueError("distance-policy coefficients must be >= 0")
        if numerical_weight_rate < 0:
            raise ValueError("numerical_weight_rate must be >= 0")
        if min_chunk_distance < 0:
            raise ValueError("min_chunk_distance must be >= 0")
        self.numerical_per_chunk = numerical_per_chunk
        self.numerical_exponent = numerical_exponent
        self.staleness_per_chunk_ms = staleness_per_chunk_ms
        #: Division of labour between the two conit dimensions: staleness
        #: paces *routine* update flow, so the numerical bound must sit
        #: above the weight a normally-busy dyconit accumulates within one
        #: staleness period — otherwise it trips every tick in dense areas
        #: and defeats merging. It is therefore sized as a rate budget
        #: (weight/second × staleness) and exists to catch *bursts*: a
        #: mass block edit or explosion exceeds it instantly and flushes
        #: ahead of the staleness deadline.
        self.numerical_weight_rate = numerical_weight_rate
        #: Distance floor: even the subscriber's own chunk gets this small
        #: (non-zero) distance, so a load-adaptive scale factor can loosen
        #: *all* bounds under overload — in a packed village everyone is in
        #: everyone's chunk, and with a hard zero there would be nothing
        #: left to shed. At factor 1 the resulting nearby bounds are
        #: imperceptible (numerical 2*0.25^2 = 0.125 blocks).
        self.min_chunk_distance = min_chunk_distance
        self.global_bounds = global_bounds

    # ------------------------------------------------------------------
    # Bound surface
    # ------------------------------------------------------------------

    def bounds_at_distance(self, chunk_distance: float) -> Bounds:
        """The bound surface; ``chunk_distance`` in chunk units."""
        if chunk_distance <= 0:
            return Bounds.ZERO
        staleness_ms = self.staleness_per_chunk_ms * chunk_distance
        numerical = max(
            self.numerical_per_chunk * chunk_distance**self.numerical_exponent,
            self.numerical_weight_rate * staleness_ms / 1000.0,
        )
        return Bounds(numerical=numerical, staleness_ms=staleness_ms)

    def bounds_for(
        self, system, dyconit_id: Hashable, subscriber: Subscriber
    ) -> Bounds:
        if dyconit_id == GLOBAL_DYCONIT:
            return self.global_bounds
        centroid = centroid_of(dyconit_id, system.partitioner)
        position = subscriber.position
        if centroid is None or position is None:
            return self.global_bounds
        distance_blocks = position.horizontal_distance_to(centroid)
        chunk_distance = max(
            self.min_chunk_distance, distance_blocks / CHUNK_SIZE - 0.5
        )
        return self.bounds_at_distance(chunk_distance)

    # ------------------------------------------------------------------
    # Policy hooks
    # ------------------------------------------------------------------

    def initial_bounds(
        self, system, dyconit_id: Hashable, subscriber: Subscriber
    ) -> Bounds:
        return self.bounds_for(system, dyconit_id, subscriber)

    def on_subscriber_moved(self, system, subscriber: Subscriber) -> None:
        # Crossing a chunk border shifts every distance; re-derive the
        # subscriber's whole bound set.
        for dyconit_id in system.subscription_ids_of(subscriber.subscriber_id):
            system.set_bounds(
                dyconit_id,
                subscriber.subscriber_id,
                self.bounds_for(system, dyconit_id, subscriber),
            )

    def __repr__(self) -> str:
        return (
            f"DistanceBasedPolicy(numerical={self.numerical_per_chunk}"
            f"*d^{self.numerical_exponent}, staleness={self.staleness_per_chunk_ms}*d ms)"
        )
