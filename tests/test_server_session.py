"""Unit tests for player session state."""

from repro.server.session import PlayerSession
from repro.world.geometry import ChunkPos, Vec3


def make_session() -> PlayerSession:
    return PlayerSession(client_id=1, entity_id=10, name="alice", view_distance=5)


def test_sees_chunk():
    session = make_session()
    session.view_chunks = {ChunkPos(0, 0), ChunkPos(1, 0)}
    assert session.sees_chunk(ChunkPos(0, 0))
    assert not session.sees_chunk(ChunkPos(2, 2))


def test_forget_entity():
    session = make_session()
    session.known_entities[7] = Vec3(0, 0, 0)
    assert session.forget_entity(7)
    assert not session.forget_entity(7)
    assert session.known_entities == {}


def test_defaults():
    session = make_session()
    assert session.anchor_chunk is None
    assert session.packets_sent == 0
    assert session.actions_received == 0
