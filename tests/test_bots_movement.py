"""Unit tests for bot movement models."""

import math
import random

from repro.bots.movement import (
    WALK_SPEED,
    GatheringModel,
    HotspotModel,
    RandomWaypointModel,
    TrekModel,
)
from repro.world.geometry import Vec3


def rng(seed=0):
    return random.Random(seed)


class TestRandomWaypoint:
    def test_waypoints_within_radius(self):
        model = RandomWaypointModel(center=Vec3(10, 0, 10), radius=50.0)
        r = rng()
        for _ in range(200):
            waypoint = model.next_waypoint(r, Vec3(0, 0, 0))
            distance = math.hypot(waypoint.x - 10, waypoint.z - 10)
            assert distance <= 50.0 + 1e-9

    def test_deterministic_given_rng(self):
        model = RandomWaypointModel()
        a = model.next_waypoint(rng(7), Vec3(0, 0, 0))
        b = model.next_waypoint(rng(7), Vec3(0, 0, 0))
        assert a == b

    def test_rejects_bad_radius(self):
        import pytest

        with pytest.raises(ValueError):
            RandomWaypointModel(radius=0.0)


class TestHotspot:
    def test_full_gravity_clusters_near_hotspots(self):
        hotspots = [Vec3(0, 0, 0)]
        model = HotspotModel(hotspots=hotspots, gravity=1.0, hotspot_spread=5.0)
        r = rng()
        distances = [
            math.hypot(w.x, w.z)
            for w in (model.next_waypoint(r, Vec3(500, 0, 500)) for _ in range(300))
        ]
        mean_distance = sum(distances) / len(distances)
        assert mean_distance < 15.0  # ~ Rayleigh mean with sigma 5

    def test_zero_gravity_wanders_locally(self):
        model = HotspotModel(gravity=0.0, wander_radius=10.0)
        r = rng()
        origin = Vec3(100.0, 0.0, 100.0)
        for _ in range(100):
            waypoint = model.next_waypoint(r, origin)
            assert origin.horizontal_distance_to(waypoint) <= 10.0 + 1e-9

    def test_first_hotspot_is_busiest(self):
        hotspots = [Vec3(0, 0, 0), Vec3(1000, 0, 1000)]
        model = HotspotModel(hotspots=hotspots, gravity=1.0, hotspot_spread=1.0)
        r = rng()
        near_first = 0
        trials = 500
        for _ in range(trials):
            w = model.next_waypoint(r, Vec3(0, 0, 0))
            if math.hypot(w.x, w.z) < 500:
                near_first += 1
        assert near_first > trials / 2  # Zipf weights 1 : 1/2

    def test_validation(self):
        import pytest

        with pytest.raises(ValueError):
            HotspotModel(gravity=1.5)
        with pytest.raises(ValueError):
            HotspotModel(hotspots=[])


class TestGathering:
    def test_every_waypoint_lands_within_jitter_of_target(self):
        target = Vec3(37.0, 0.0, -5.0)
        model = GatheringModel(target=target, jitter=10.0)
        r = rng()
        for _ in range(300):
            # Position is irrelevant: the fleet converges no matter how
            # far away it starts.
            w = model.next_waypoint(r, Vec3(5000.0, 0.0, -5000.0))
            assert math.hypot(w.x - target.x, w.z - target.z) <= 10.0 + 1e-9

    def test_default_target_is_the_origin_strip_boundary(self):
        model = GatheringModel()
        assert model.target == Vec3(0.0, 0.0, 0.0)
        # With the default 10-block jitter the crowd straddles x == 0 —
        # the cluster router's strip boundary — from both sides.
        r = rng()
        xs = [model.next_waypoint(r, Vec3(0, 0, 0)).x for _ in range(300)]
        assert any(x < 0 for x in xs) and any(x > 0 for x in xs)

    def test_deterministic_given_rng(self):
        model = GatheringModel()
        assert model.next_waypoint(rng(3), Vec3(1, 0, 1)) == model.next_waypoint(
            rng(3), Vec3(1, 0, 1)
        )

    def test_rejects_bad_jitter(self):
        import pytest

        with pytest.raises(ValueError):
            GatheringModel(jitter=0.0)


class TestTrek:
    def test_progresses_along_heading(self):
        model = TrekModel(heading_degrees=0.0, leg_length=60.0)
        r = rng()
        position = Vec3(0, 0, 0)
        for _ in range(5):
            position = model.next_waypoint(r, position)
        assert position.x > 200.0  # mostly eastward
        assert abs(position.z) < position.x


def test_walk_speed_matches_minecraft():
    assert WALK_SPEED == 4.317
