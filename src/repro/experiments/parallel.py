"""Parallel sweep executor with a content-addressed result cache (S14).

The E1–E9 drivers ultimately reduce to "run this list of
:class:`~repro.experiments.configs.ExperimentConfig` cells and aggregate
the results". This module executes such a list:

* **sharded across processes** — each worker constructs its own
  :class:`~repro.sim.simulator.Simulation`, so per-cell determinism is
  exactly the single-process story; results are merged back in the
  caller's cell order, which makes ``--jobs N`` output byte-identical to
  serial output (the serial≡parallel oracle in
  ``tests/test_parallel_differential.py``);
* **behind a content-addressed cache** — a cell's key is a stable hash
  of its *normalized* config (:func:`config_digest`), so re-running a
  sweep skips completed cells and a crashed or interrupted sweep resumes
  from the cell store instead of restarting;
* **with crash isolation** — a worker that raises or dies only loses its
  own cell; the cell is retried a bounded number of times and then
  reported as failed (never hung). All store writes are atomic
  (tmp + rename), so a kill mid-write leaves either the old state or the
  new state, never a torn file.

``jobs <= 1`` runs every cell in-process with no multiprocessing at all:
that path is the ground truth the parallel path is differential-tested
against, and it shares the same cache/resume semantics.
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import multiprocessing.connection
import os
import sys
import tempfile
import traceback
from dataclasses import dataclass, field
from pathlib import Path
from time import perf_counter

from repro.experiments.configs import ExperimentConfig, config_from_dict, config_to_dict
from repro.experiments.runner import ExperimentResult, run_experiment
from repro.experiments.store import atomic_write_text, result_from_dict, result_to_dict
from repro.telemetry.hub import Telemetry, get_telemetry, set_telemetry

#: Version tag hashed into every cache key; bump when the meaning of a
#: config field (or the result schema) changes so stale cells never
#: masquerade as current ones. /2: configs grew shards/strip_width and
#: results grew the S16 cluster counters. /3: configs grew the S17
#: use_batched_commit toggle. /4: configs grew the S18 parallel_ticks
#: toggle. /5: configs grew the S19 state_store spec.
CACHE_SCHEMA = "sweep-cell/5"


def default_start_method() -> str:
    """``fork`` where the platform offers it, else ``spawn``.

    Fork skips the per-worker interpreter + numpy re-import (significant
    against seconds-long cells); spawn re-imports the parent ``__main__``
    module, which also breaks under stdin/REPL parents. Determinism is
    identical either way — every cell builds a fresh ``Simulation`` from
    its config, never from inherited state.
    """
    return "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"


# ----------------------------------------------------------------------
# Cache keys: stable content hash of a normalized config
# ----------------------------------------------------------------------


def _canonical(value):
    """Recursively normalize a JSON-ish value for hashing.

    * dict keys are sorted (insertion order must not matter);
    * integral numbers hash the same whether they arrive as ``30000``
      or ``30000.0`` (JSON round-trips and hand-written overrides may
      disagree on the type); non-integral floats keep full ``repr``
      precision;
    * tuples and lists are interchangeable.
    """
    if isinstance(value, bool) or value is None or isinstance(value, str):
        return value
    if isinstance(value, (int, float)):
        number = float(value)
        if number != number or number in (float("inf"), float("-inf")):
            return repr(number)
        return int(number) if number.is_integer() else repr(number)
    if isinstance(value, dict):
        return {str(key): _canonical(value[key]) for key in sorted(value, key=str)}
    if isinstance(value, (list, tuple)):
        return [_canonical(item) for item in value]
    raise TypeError(f"cannot canonicalize {type(value).__name__} for hashing")


def normalize_config(config: ExperimentConfig | dict) -> dict:
    """The canonical dict a cell's cache key is computed from."""
    data = config_to_dict(config) if isinstance(config, ExperimentConfig) else config
    return _canonical({"schema": CACHE_SCHEMA, "config": data})


def config_digest(config: ExperimentConfig | dict) -> str:
    """Stable content hash of a config (hex SHA-256).

    Invariant under dict key order, ``with_()`` round-trips, int/float
    representation of integral numbers, and ``PYTHONHASHSEED``.
    """
    normalized = normalize_config(config)
    text = json.dumps(normalized, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
# Cell store: one atomic JSON file per (digest) under a cache directory
# ----------------------------------------------------------------------


def cell_path(cache_dir: str | Path, digest: str) -> Path:
    return Path(cache_dir) / f"{digest}.json"


def _error_path(cache_dir: str | Path, digest: str) -> Path:
    return Path(cache_dir) / f"{digest}.err"


def store_cell(cache_dir: str | Path, digest: str, name: str, payload: dict) -> Path:
    """Atomically persist one finished cell (tmp file + rename)."""
    path = cell_path(cache_dir, digest)
    body = json.dumps(
        {"schema": CACHE_SCHEMA, "digest": digest, "name": name, "result": payload},
        indent=2,
    )
    atomic_write_text(path, body)
    error_file = _error_path(cache_dir, digest)
    if error_file.exists():
        error_file.unlink()
    return path


def load_cell(cache_dir: str | Path, digest: str) -> dict | None:
    """The stored result payload for ``digest``, or None.

    Treats a missing, truncated, or schema-mismatched file as a miss —
    a SIGKILL mid-write (pre-atomic-writes) or a cache from an older
    schema must cause recomputation, not a crash.
    """
    path = cell_path(cache_dir, digest)
    try:
        data = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        return None
    if not isinstance(data, dict) or data.get("schema") != CACHE_SCHEMA:
        return None
    if data.get("digest") != digest or "result" not in data:
        return None
    return data["result"]


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------


def _worker_main(spec: dict) -> None:
    """Run one cell in a fresh process and persist it to the cell store.

    The parent never receives results over a pipe: the atomic cell file
    *is* the hand-off, which is what makes a crashed sweep resumable and
    the parallel store bytes independent of scheduling order.
    """
    cache_dir = spec["cache_dir"]
    digest = spec["digest"]
    try:
        # A forked worker inherits the parent's ambient telemetry hub —
        # including every counter the parent accumulated before the
        # fork, so a worker-side dump would double-count parent history.
        # Install a fresh hub (same enabled-ness) before running a cell.
        set_telemetry(Telemetry(enabled=get_telemetry().enabled))
        config = config_from_dict(spec["config"])
        recomputed = config_digest(config)
        if recomputed != digest:
            raise RuntimeError(
                "config digest changed across the process boundary "
                f"({digest[:12]} -> {recomputed[:12]}); the normalization "
                "is not stable"
            )
        result = run_experiment(config)
        store_cell(cache_dir, digest, config.name, result_to_dict(result))
    except BaseException:
        try:
            atomic_write_text(_error_path(cache_dir, digest), traceback.format_exc())
        except OSError:
            pass
        sys.exit(1)


# ----------------------------------------------------------------------
# Parent side
# ----------------------------------------------------------------------


@dataclass
class CellOutcome:
    """How one cell of the sweep concluded."""

    name: str
    digest: str
    #: "cache" (skipped: already in the store), "run", or "failed".
    source: str
    attempts: int = 0
    wall_s: float = 0.0
    error: str | None = None


@dataclass
class SweepReport:
    """Everything :func:`run_sweep` produced, in input cell order."""

    jobs: int
    cells: list[CellOutcome] = field(default_factory=list)
    #: Successful results by cell name, input order.
    results: dict[str, ExperimentResult] = field(default_factory=dict)
    #: The JSON-safe result payloads the merged store is built from.
    payloads: dict[str, dict] = field(default_factory=dict)
    #: Cell name -> error description for cells that exhausted retries.
    failures: dict[str, str] = field(default_factory=dict)
    store_path: Path | None = None

    @property
    def cache_hits(self) -> list[str]:
        return [cell.name for cell in self.cells if cell.source == "cache"]

    @property
    def cells_run(self) -> list[str]:
        return [cell.name for cell in self.cells if cell.source == "run"]

    def merged_payload(self) -> dict:
        """The merged store dict (deterministic: input cell order)."""
        return {
            cell.name: self.payloads[cell.name]
            for cell in self.cells
            if cell.name in self.payloads
        }

    def raise_on_failure(self) -> "SweepReport":
        if self.failures:
            names = ", ".join(sorted(self.failures))
            first = next(iter(self.failures.values()))
            raise RuntimeError(
                f"{len(self.failures)} sweep cell(s) failed ({names}); "
                f"first error:\n{first}"
            )
        return self


def _record_cell(telemetry: Telemetry, outcome: CellOutcome) -> None:
    telemetry.counter("sweep_cells_total", source=outcome.source).increment()
    if outcome.source != "cache":
        telemetry.histogram("sweep_cell_wall_ms", min_value=0.1).record(
            outcome.wall_s * 1e3
        )
    telemetry.event(
        "sweep.cell",
        name=outcome.name,
        digest=outcome.digest[:12],
        source=outcome.source,
        attempts=outcome.attempts,
        wall_ms=round(outcome.wall_s * 1e3, 3),
    )


def _finish_cell(report: SweepReport, cache_dir, outcome: CellOutcome) -> None:
    payload = load_cell(cache_dir, outcome.digest)
    if payload is None:
        outcome.source = "failed"
        outcome.error = outcome.error or "worker produced no readable cell file"
        report.failures[outcome.name] = outcome.error
        return
    report.payloads[outcome.name] = payload
    report.results[outcome.name] = result_from_dict(payload)


def run_sweep(
    cells,
    *,
    jobs: int = 1,
    cache_dir: str | Path | None = None,
    retries: int = 1,
    store_path: str | Path | None = None,
    telemetry: Telemetry | None = None,
    mp_context: str | None = None,
) -> SweepReport:
    """Execute a list of experiment cells, possibly in parallel.

    Args:
        cells: sequence of :class:`ExperimentConfig`; ``name`` fields
            must be unique (they key the merged store).
        jobs: worker process count. ``<= 1`` runs in-process (the serial
            oracle); ``> 1`` shards cells across ``jobs`` spawned
            workers.
        cache_dir: cell-store directory. Cells whose digest is already
            present are *not* recomputed (resume / warm-cache); omitted,
            a private temp directory is used and discarded, so every
            cell recomputes.
        retries: how many times a failing cell is retried before being
            reported in ``report.failures`` (total attempts =
            ``retries + 1``).
        store_path: when given, the merged ``save_results``-format store
            is atomically written here, in input cell order.
        telemetry: hub for per-cell timing rows (defaults to ambient).
        mp_context: multiprocessing start method for workers; defaults
            to :func:`default_start_method` (``fork`` on POSIX, else
            ``spawn``). Both are equally deterministic — every cell
            builds a fresh ``Simulation`` either way.

    Returns:
        A :class:`SweepReport`; failed cells are absent from
        ``results``/the merged store and listed in ``failures``.
    """
    cells = list(cells)
    names = [cell.name for cell in cells]
    if len(set(names)) != len(names):
        duplicates = sorted({n for n in names if names.count(n) > 1})
        raise ValueError(f"cell names must be unique, duplicated: {duplicates}")
    if telemetry is None:
        telemetry = get_telemetry()

    private_cache = cache_dir is None
    if private_cache:
        cache_dir = tempfile.mkdtemp(prefix="repro-sweep-")
    cache_dir = Path(cache_dir)
    cache_dir.mkdir(parents=True, exist_ok=True)

    report = SweepReport(jobs=max(1, jobs))
    try:
        pending: list[tuple[ExperimentConfig, str]] = []
        by_digest: dict[str, CellOutcome] = {}
        for cell in cells:
            digest = config_digest(cell)
            payload = load_cell(cache_dir, digest)
            if payload is not None:
                outcome = CellOutcome(name=cell.name, digest=digest, source="cache")
                report.payloads[cell.name] = payload
                report.results[cell.name] = result_from_dict(payload)
            else:
                outcome = CellOutcome(name=cell.name, digest=digest, source="pending")
                pending.append((cell, digest))
                by_digest[digest] = outcome
            report.cells.append(outcome)

        if jobs <= 1:
            _run_serial(pending, cache_dir, retries, by_digest)
        else:
            _run_parallel(pending, cache_dir, retries, by_digest, jobs, mp_context)

        for cell, digest in pending:
            outcome = by_digest[digest]
            if outcome.source == "run":
                _finish_cell(report, cache_dir, outcome)
            else:
                report.failures[outcome.name] = outcome.error or "unknown failure"
        for outcome in report.cells:
            _record_cell(telemetry, outcome)

        # Reorder the name-keyed maps to input order (parallel completion
        # order is scheduling-dependent; the report must not be).
        report.results = {
            name: report.results[name] for name in names if name in report.results
        }
        report.payloads = {
            name: report.payloads[name] for name in names if name in report.payloads
        }

        if store_path is not None:
            store_path = Path(store_path)
            atomic_write_text(
                store_path, json.dumps(report.merged_payload(), indent=2)
            )
            report.store_path = store_path
        return report
    finally:
        if private_cache:
            import shutil

            shutil.rmtree(cache_dir, ignore_errors=True)


def _run_serial(pending, cache_dir, retries, by_digest) -> None:
    """The in-process oracle: same cells, same store writes, no workers."""
    for cell, digest in pending:
        outcome = by_digest[digest]
        start = perf_counter()
        for attempt in range(1, retries + 2):
            outcome.attempts = attempt
            try:
                result = run_experiment(cell)
            except Exception:
                outcome.error = traceback.format_exc()
                continue
            store_cell(cache_dir, digest, cell.name, result_to_dict(result))
            outcome.source = "run"
            outcome.error = None
            break
        else:
            outcome.source = "failed"
        outcome.wall_s = perf_counter() - start


def _run_parallel(pending, cache_dir, retries, by_digest, jobs, mp_context) -> None:
    """Shard pending cells over ``jobs`` worker processes.

    Workers hand results back through the cell store only; the parent
    just tracks exit codes, retries crashed/raising cells up to
    ``retries`` times, and never blocks on a single wedged cell slot.
    """
    context = multiprocessing.get_context(mp_context or default_start_method())
    queue: list[tuple[ExperimentConfig, str, int]] = [
        (cell, digest, 1) for cell, digest in pending
    ]
    running: dict = {}  # sentinel -> (process, cell, digest, attempt, started)

    def launch(cell, digest, attempt) -> None:
        spec = {
            "cache_dir": str(cache_dir),
            "digest": digest,
            "name": cell.name,
            "config": config_to_dict(cell),
        }
        process = context.Process(target=_worker_main, args=(spec,), daemon=True)
        process.start()
        running[process.sentinel] = (process, cell, digest, attempt, perf_counter())

    try:
        while queue or running:
            while queue and len(running) < jobs:
                launch(*queue.pop(0))
            ready = multiprocessing.connection.wait(list(running), timeout=1.0)
            for sentinel in ready:
                process, cell, digest, attempt, started = running.pop(sentinel)
                process.join()
                elapsed = perf_counter() - started
                outcome = by_digest[digest]
                outcome.attempts = attempt
                outcome.wall_s += elapsed
                if load_cell(cache_dir, digest) is not None:
                    outcome.source = "run"
                    outcome.error = None
                    continue
                error_file = _error_path(cache_dir, digest)
                if error_file.exists():
                    outcome.error = error_file.read_text()
                else:
                    outcome.error = (
                        f"worker died with exit code {process.exitcode} "
                        "and left no error report (crash/SIGKILL)"
                    )
                if attempt <= retries:
                    queue.append((cell, digest, attempt + 1))
                else:
                    outcome.source = "failed"
    finally:
        for process, *_ in running.values():
            process.terminate()
        for process, *_ in running.values():
            process.join()


# ----------------------------------------------------------------------
# Convenience for the figure drivers
# ----------------------------------------------------------------------


def run_cells(
    cells,
    *,
    jobs: int = 1,
    cache_dir: str | Path | None = None,
    **kwargs,
) -> list[ExperimentResult]:
    """Run cells and return results in input order; raise if any failed.

    ``jobs <= 1`` with no cache dir short-circuits to plain
    :func:`run_experiment` calls — identical objects and allocation
    behaviour to the pre-parallel code path.
    """
    cells = list(cells)
    if jobs <= 1 and cache_dir is None:
        return [run_experiment(cell) for cell in cells]
    report = run_sweep(cells, jobs=jobs, cache_dir=cache_dir, **kwargs)
    report.raise_on_failure()
    return [report.results[cell.name] for cell in cells]


# ----------------------------------------------------------------------
# Wall-clock benchmark (BENCH_sweep.json)
# ----------------------------------------------------------------------


def default_bench_cells(
    bots: int = 8, duration_ms: float = 4_000.0, points: int = 4, seed: int = 42
) -> list[ExperimentConfig]:
    """A small E1+E9-shaped grid for the sweep wall-clock benchmark."""
    from repro.experiments.figures import make_fault_plan

    cells: list[ExperimentConfig] = []
    policies = ("zero", "adaptive")
    for index in range(points):
        policy = policies[index % len(policies)]
        loss = 0.0 if index < points // 2 else 0.02
        cells.append(
            ExperimentConfig(
                name=f"sweep-bench-{index}-{policy}-loss{loss:g}",
                policy=policy,
                bots=bots,
                duration_ms=duration_ms,
                warmup_ms=duration_ms / 4,
                seed=seed + index,
                faults=make_fault_plan(loss),
            )
        )
    return cells


def sweep_benchmark(
    cells=None,
    jobs: int = 4,
    mp_context: str | None = None,
) -> dict:
    """Measure cold-serial vs cold-parallel vs warm-cache sweep times.

    Returns the BENCH_sweep.json payload: wall-clock rows for each mode,
    the parallel speedup, the warm-rerun fraction of cold time, and a
    byte-identity check across all three merged stores (the executor's
    correctness claim, measured where its performance is measured).

    On a single-CPU host ``parallel_speedup`` is ``None``: worker
    processes time-slice one core, so the cold-parallel/cold-serial
    ratio measures scheduler overhead, not a speedup, and publishing it
    as one would be a false claim. The rows are still reported and
    ``cpu_count`` is recorded so the refusal is auditable.
    """
    if cells is None:
        cells = default_bench_cells()
    rows = []
    stores: list[bytes] = []

    def one(mode: str, run_jobs: int, cache: Path, store: Path) -> float:
        start = perf_counter()
        report = run_sweep(
            cells, jobs=run_jobs, cache_dir=cache, store_path=store,
            mp_context=mp_context,
        )
        elapsed = perf_counter() - start
        report.raise_on_failure()
        stores.append(store.read_bytes())
        rows.append(
            {
                "mode": mode,
                "jobs": run_jobs,
                "cells": len(cells),
                "cache_hits": len(report.cache_hits),
                "wall_s": round(elapsed, 4),
            }
        )
        return elapsed

    with tempfile.TemporaryDirectory(prefix="repro-sweep-bench-") as tmp:
        tmp = Path(tmp)
        serial_s = one("cold-serial", 1, tmp / "serial-cache", tmp / "serial.json")
        parallel_s = one(
            "cold-parallel", jobs, tmp / "parallel-cache", tmp / "parallel.json"
        )
        warm_s = one(
            "warm-rerun", jobs, tmp / "parallel-cache", tmp / "warm.json"
        )

    cpu_count = os.cpu_count()
    single_cpu = cpu_count is not None and cpu_count <= 1
    payload = {
        "schema": "bench-sweep/2",
        "params": {
            "cells": [cell.name for cell in cells],
            "jobs": jobs,
            "mp_context": mp_context,
            "cpu_count": cpu_count,
        },
        "rows": rows,
        "parallel_speedup": (
            None
            if single_cpu
            else (round(serial_s / parallel_s, 3) if parallel_s else None)
        ),
        "warm_fraction_of_cold": round(warm_s / serial_s, 4) if serial_s else None,
        "stores_byte_identical": len({s for s in stores}) == 1,
    }
    if single_cpu:
        payload["parallel_speedup_suppressed"] = (
            "os.cpu_count() == 1: workers time-slice a single core, so "
            "parallel wall-clock is not a speedup measurement; re-record "
            "on a multi-core host"
        )
    return payload
