"""Unit tests for statistical summaries."""

import pytest

from repro.metrics.summary import describe, percentile


class TestPercentile:
    def test_single_sample(self):
        assert percentile([42.0], 99) == 42.0

    def test_median_of_odd(self):
        assert percentile([3.0, 1.0, 2.0], 50) == 2.0

    def test_interpolation(self):
        assert percentile([0.0, 10.0], 50) == 5.0
        assert percentile([0.0, 10.0], 25) == 2.5

    def test_extremes(self):
        samples = [5.0, 1.0, 9.0]
        assert percentile(samples, 0) == 1.0
        assert percentile(samples, 100) == 9.0

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_rejects_out_of_range_q(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101)

    def test_does_not_mutate_input(self):
        samples = [3.0, 1.0, 2.0]
        percentile(samples, 50)
        assert samples == [3.0, 1.0, 2.0]


class TestDescribe:
    def test_empty_is_all_zero(self):
        summary = describe([])
        assert summary.count == 0
        assert summary.mean == 0.0
        assert summary.p99 == 0.0

    def test_basic_statistics(self):
        summary = describe([1.0, 2.0, 3.0, 4.0])
        assert summary.count == 4
        assert summary.mean == 2.5
        assert summary.minimum == 1.0
        assert summary.maximum == 4.0
        assert summary.p50 == 2.5

    def test_percentile_ordering(self):
        summary = describe(list(range(100)))
        assert summary.p50 <= summary.p95 <= summary.p99 <= summary.maximum

    def test_as_dict_keys(self):
        assert set(describe([1.0]).as_dict()) == {
            "count", "mean", "min", "p50", "p95", "p99", "max",
        }
