"""Unit tests for the dyconit and its per-subscriber queues."""

import pytest

from repro.core.bounds import Bounds
from repro.core.dyconit import Dyconit, SubscriptionState
from repro.core.subscription import Subscriber
from repro.world.block import BlockType
from repro.world.events import BlockChangeEvent, EntityMoveEvent
from repro.world.geometry import BlockPos, Vec3


def make_subscriber(subscriber_id=1):
    return Subscriber(subscriber_id=subscriber_id, deliver=lambda d, u: None)


def move(entity_id=1, time=0.0, distance=1.0):
    return EntityMoveEvent(
        time=time,
        entity_id=entity_id,
        old_position=Vec3(0, 0, 0),
        new_position=Vec3(distance, 0, 0),
    )


def block(x=0, time=0.0, new=BlockType.STONE):
    return BlockChangeEvent(time, BlockPos(x, 10, 0), BlockType.AIR, new)


class TestSubscriptionState:
    def make_state(self, bounds=Bounds(10.0, 1000.0)) -> SubscriptionState:
        return SubscriptionState(subscriber=make_subscriber(), bounds=bounds)

    def test_enqueue_accumulates_error(self):
        state = self.make_state()
        state.enqueue(move(1, distance=2.0))
        state.enqueue(move(2, distance=3.0))
        assert state.accumulated_error == 5.0

    def test_merging_same_key(self):
        state = self.make_state()
        first = state.enqueue(move(1, time=0.0))
        second = state.enqueue(move(1, time=1.0))
        assert not first.superseded and second.superseded
        assert len(state.pending) == 1
        assert state.merged_count == 1

    def test_merging_keeps_error_conservative(self):
        """Error accumulates over every commit even when queue entries
        merge — the bound must never under-count inconsistency."""
        state = self.make_state()
        state.enqueue(move(1, distance=1.0))
        state.enqueue(move(1, distance=1.0))
        assert state.accumulated_error == 2.0

    def test_became_pending_flag(self):
        state = self.make_state()
        assert state.enqueue(move(1, time=5.0)).became_pending
        assert not state.enqueue(move(2, time=6.0)).became_pending

    def test_oldest_pending_time(self):
        state = self.make_state()
        state.enqueue(move(1, time=5.0))
        state.enqueue(move(2, time=9.0))
        assert state.oldest_pending_time == 5.0
        assert state.oldest_age_ms(now=15.0) == 10.0

    def test_no_merging_mode(self):
        state = self.make_state()
        state.merging = False
        state.enqueue(move(1, time=0.0))
        state.enqueue(move(1, time=1.0))
        assert len(state.pending) == 2
        assert state.merged_count == 0

    def test_drain_returns_commit_order_and_resets(self):
        state = self.make_state()
        state.enqueue(move(1, time=5.0))
        state.enqueue(move(2, time=9.0))
        drained = state.drain()
        assert [update.time for update in drained] == [5.0, 9.0]
        assert not state.has_pending
        assert state.accumulated_error == 0.0
        assert state.oldest_pending_time is None

    def test_merge_moves_survivor_to_commit_position(self):
        """A merged update re-enters the queue at its *new* commit position
        (delete-then-reinsert), so drain stays sorted without sorting."""
        state = self.make_state()
        state.enqueue(move(1, time=1.0))
        state.enqueue(move(2, time=2.0))
        state.enqueue(move(1, time=3.0))  # supersedes the time=1.0 entry
        drained = state.drain()
        assert [update.time for update in drained] == [2.0, 3.0]
        assert [update.entity_id for update in drained] == [2, 1]

    def test_restore_time_order_after_cross_queue_merge(self):
        """A dyconit merge can append a backlog that predates queued
        entries; restore_time_order re-establishes the drain invariant."""
        state = self.make_state()
        state.enqueue(move(1, time=7.0))
        state.enqueue(move(2, time=3.0))  # e.g. moved in from another queue
        state.restore_time_order()
        assert [update.time for update in state.drain()] == [3.0, 7.0]

    def test_exceeds_bounds_numerical(self):
        state = self.make_state(bounds=Bounds(1.5, 10_000.0))
        state.enqueue(move(1, distance=1.0))
        assert not state.exceeds_bounds(now=0.0)
        state.enqueue(move(2, distance=1.0))
        assert state.exceeds_bounds(now=0.0)

    def test_exceeds_bounds_staleness(self):
        state = self.make_state(bounds=Bounds(1000.0, 100.0))
        state.enqueue(move(1, time=0.0))
        assert not state.exceeds_bounds(now=50.0)
        assert state.exceeds_bounds(now=100.0)

    def test_empty_queue_never_exceeds(self):
        state = self.make_state(bounds=Bounds.ZERO)
        assert not state.exceeds_bounds(now=1e9)


class TestDyconit:
    def test_subscribe_and_counts(self):
        dyconit = Dyconit("unit")
        dyconit.subscribe(make_subscriber(1))
        dyconit.subscribe(make_subscriber(2))
        assert dyconit.subscriber_count == 2
        assert dyconit.is_subscribed(1)

    def test_subscribe_is_idempotent_and_keeps_queue(self):
        dyconit = Dyconit("unit", default_bounds=Bounds(10.0, 1000.0))
        subscriber = make_subscriber(1)
        state = dyconit.subscribe(subscriber)
        dyconit.commit(move(1))
        again = dyconit.subscribe(subscriber)
        assert again is state
        assert again.has_pending

    def test_resubscribe_can_update_bounds(self):
        dyconit = Dyconit("unit")
        subscriber = make_subscriber(1)
        dyconit.subscribe(subscriber, Bounds(1.0, 1.0))
        state = dyconit.subscribe(subscriber, Bounds(9.0, 9.0))
        assert state.bounds == Bounds(9.0, 9.0)

    def test_unsubscribe_returns_state(self):
        dyconit = Dyconit("unit", default_bounds=Bounds(10.0, 1000.0))
        dyconit.subscribe(make_subscriber(1))
        dyconit.commit(move(1))
        state = dyconit.unsubscribe(1)
        assert state is not None and state.has_pending
        assert dyconit.unsubscribe(1) is None

    def test_commit_fans_out(self):
        dyconit = Dyconit("unit", default_bounds=Bounds(10.0, 1000.0))
        dyconit.subscribe(make_subscriber(1))
        dyconit.subscribe(make_subscriber(2))
        touched = dyconit.commit(move(1))
        assert len(touched) == 2

    def test_commit_excludes_originator(self):
        dyconit = Dyconit("unit", default_bounds=Bounds(10.0, 1000.0))
        dyconit.subscribe(make_subscriber(1))
        dyconit.subscribe(make_subscriber(2))
        touched = dyconit.commit(move(1), exclude_subscriber=1)
        assert [state.subscriber.subscriber_id for state, __ in touched] == [2]

    def test_commit_tracks_hotness(self):
        dyconit = Dyconit("unit", default_bounds=Bounds(10.0, 1000.0))
        dyconit.subscribe(make_subscriber(1))
        dyconit.commit(move(1, distance=2.0))
        dyconit.commit(block())
        assert dyconit.commit_count == 2
        assert dyconit.total_committed_weight == 3.0

    def test_hotness_ignores_commits_nobody_received(self):
        """A commit with no subscribers (or only the excluded originator)
        changed nobody's inconsistency and must not look hot to the
        policy — and both commit paths must agree on that."""
        dyconit = Dyconit("unit")
        dyconit.commit(move(1, distance=2.0))
        assert dyconit.commit_count == 0
        assert dyconit.total_committed_weight == 0.0
        dyconit.subscribe(make_subscriber(1), Bounds(10.0, 1000.0))
        dyconit.commit(move(1, distance=2.0), exclude_subscriber=1)
        assert dyconit.commit_count == 0
        assert dyconit.total_committed_weight == 0.0
        dyconit.commit(block())
        assert dyconit.commit_count == 1
        assert dyconit.total_committed_weight == 1.0

    def test_set_bounds_requires_subscription(self):
        dyconit = Dyconit("unit")
        with pytest.raises(KeyError):
            dyconit.set_bounds(1, Bounds.ZERO)

    def test_merging_flag_propagates_to_new_states(self):
        dyconit = Dyconit("unit", merging=False)
        state = dyconit.subscribe(make_subscriber(1))
        assert state.merging is False
