"""E4 — latency (paper: "without increasing game latency").

Regenerates the latency comparison: per-packet network latency (p50/p95/
p99) for vanilla vs dyconits, plus the middleware queue delay dyconits
add before a bound flushes. Network latency must be unchanged; queue
delay must stay within the policy's staleness bounds.
"""

import pytest

from repro.experiments.figures import latency_by_policy


@pytest.mark.benchmark(group="e4-latency", min_rounds=1, max_time=1.0, warmup=False)
def test_e4_latency_by_policy(benchmark, scale):
    result = benchmark.pedantic(
        latency_by_policy,
        kwargs=dict(
            bots=max(20, scale["bots"] // 2),
            duration_ms=scale["duration_ms"],
            warmup_ms=scale["warmup_ms"] / 2,
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(result["table"])

    rows = {row["policy"]: row for row in result["rows"]}
    vanilla_p99 = rows["vanilla"]["net p99 ms"]
    # Network latency unchanged (no queue build-up added by the middleware):
    # dyconits actually send *less*, so their packet latency cannot be worse
    # than vanilla's beyond measurement noise.
    assert rows["adaptive"]["net p99 ms"] <= vanilla_p99 * 1.10 + 1.0
    assert rows["zero"]["net p99 ms"] == pytest.approx(vanilla_p99, rel=0.10, abs=1.0)
    # Queue delay exists only for bounded policies and stays sub-second
    # (within the distance policy's staleness surface for a 5-chunk view).
    assert rows["vanilla"]["queue p99 ms"] == 0.0
    assert rows["adaptive"]["queue p99 ms"] < 1_000.0
