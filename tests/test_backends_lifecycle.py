"""Backend connection lifecycle & the drain tail-loss regression (S20).

The bug sweep along the recovery seams:

* ``BufferedEventBus.drain`` used to lose the un-delivered tail of a
  batch when a subscriber raised mid-drain — the regression tests here
  pin the fix (failed batch re-queued ahead of follow-on publishes,
  counters honest, retry delivers the remainder exactly once);
* ``SQLiteStateStore`` used to leak its connection (and, in the
  driver's default implicit-transaction mode, roll back every row at
  interpreter exit) — close is now explicit, idempotent, and threaded
  through ``DyconitSystem`` / ``GameServer`` / ``ShardedCluster``
  teardown, with ownership rules: a store built from a *spec* is
  closed by the system that built it; an *instance* handed in by the
  caller stays open (the recovery path depends on reattaching to it);
* registry specs resolve awkward but legal paths: relative
  ``sqlite:///`` paths and paths with spaces.
"""

import os
import sqlite3

import pytest

from repro.backends import SQLiteStateStore, create_state_store
from repro.backends.memory import BufferedEventBus
from repro.core.bounds import Bounds
from repro.core.manager import DyconitSystem
from repro.core.partition import ChunkPartitioner
from repro.core.policy import Policy
from repro.world.events import EntityMoveEvent
from repro.world.geometry import Vec3

from tests.conftest import RecordingSubscriber

WIDE = Bounds(1e9, 1e9)


class StaticPolicy(Policy):
    def initial_bounds(self, system, dyconit_id, subscriber):
        return WIDE


def move(entity_id=1, time=0.0):
    return EntityMoveEvent(time, entity_id, Vec3(0, 0, 0), Vec3(1, 0, 0))


# ---------------------------------------------------------------------------
# BufferedEventBus.drain: the mid-batch exception regression
# ---------------------------------------------------------------------------


class FlakySubscriber:
    """Delivers fine except on one scheduled delivery, which raises."""

    def __init__(self, subscriber_id, fail_on):
        from repro.core.subscription import Subscriber

        self.deliveries = []
        self.fail_on = fail_on
        self.calls = 0

        def deliver(dyconit_id, updates):
            self.calls += 1
            if self.calls == self.fail_on:
                raise RuntimeError("subscriber died mid-drain")
            self.deliveries.append((dyconit_id, list(updates)))

        self.subscriber = Subscriber(subscriber_id=subscriber_id, deliver=deliver)


class TestBufferedDrainTailLoss:
    def publish_n(self, bus, subscriber, n):
        batches = [[move(i, time=float(i))] for i in range(n)]
        for i, batch in enumerate(batches):
            bus.publish(("d", i), subscriber, batch)
        return batches

    def test_failed_batch_and_tail_survive_the_raise(self):
        bus = BufferedEventBus()
        flaky = FlakySubscriber(1, fail_on=3)
        self.publish_n(bus, flaky.subscriber, 5)
        with pytest.raises(RuntimeError, match="mid-drain"):
            bus.drain()
        # Two delivered before the raise; the failed batch plus the
        # two-batch tail are still queued — nothing was lost.
        assert len(flaky.deliveries) == 2
        assert bus.delivered == 2
        assert bus.pending == 3

    def test_retry_delivers_remainder_exactly_once_in_order(self):
        bus = BufferedEventBus()
        flaky = FlakySubscriber(1, fail_on=3)
        batches = self.publish_n(bus, flaky.subscriber, 5)
        with pytest.raises(RuntimeError):
            bus.drain()
        assert bus.drain() == 3  # the failed batch, retried, then the tail
        assert [updates for __, updates in flaky.deliveries] == batches
        assert bus.delivered == 5
        assert bus.pending == 0

    def test_requeued_tail_precedes_batches_published_during_drain(self):
        """A handler that publishes *during* the failing drain must see
        its batches sequenced after the re-queued tail."""
        from repro.core.subscription import Subscriber

        bus = BufferedEventBus()
        order = []
        calls = {"n": 0}

        def deliver(dyconit_id, updates):
            calls["n"] += 1
            if calls["n"] == 1:
                # Handler commits back into the system mid-drain...
                bus.publish(("late", 0), sub, [move(99, time=99.0)])
                # ...then dies before finishing its own delivery.
                raise RuntimeError("boom")
            order.append(dyconit_id)

        sub = Subscriber(subscriber_id=1, deliver=deliver)
        bus.publish(("a", 0), sub, [move(1, time=1.0)])
        bus.publish(("a", 1), sub, [move(2, time=2.0)])
        with pytest.raises(RuntimeError):
            bus.drain()
        bus.drain()
        # Publish order preserved: failed batch, its tail, then the
        # batch published during the failed drain.
        assert order == [("a", 0), ("a", 1), ("late", 0)]


# ---------------------------------------------------------------------------
# SQLite connection lifecycle
# ---------------------------------------------------------------------------


class TestSQLiteLifecycle:
    def test_close_is_idempotent(self, tmp_path):
        store = SQLiteStateStore(str(tmp_path / "s.db"))
        store.close()
        store.close()  # second close must not raise

    def test_operations_after_close_raise(self, tmp_path):
        store = SQLiteStateStore(str(tmp_path / "s.db"))
        store.close()
        with pytest.raises(sqlite3.ProgrammingError):
            store.checkpoint_keys()

    def test_context_manager_closes(self, tmp_path):
        with SQLiteStateStore(str(tmp_path / "s.db")) as store:
            store.save_checkpoint("k", b"blob")
        with pytest.raises(sqlite3.ProgrammingError):
            store.load_checkpoint("k")

    def test_rows_survive_close_and_reopen(self, tmp_path):
        """The original leak also meant rows were silently rolled back
        at close (implicit-transaction mode); autocommit + explicit
        close makes the file durable."""
        path = str(tmp_path / "durable.db")
        store = SQLiteStateStore(path)
        handle = store.create_dyconit_state(("chunk", 0, 0), merging=True, flat=False)
        recorder = RecordingSubscriber(1)
        state = handle.subscribe(recorder.subscriber, WIDE)
        state.enqueue(move(1, time=1.0))
        store.save_checkpoint("ck", b"snapshot-bytes")
        store.close()

        reopened = SQLiteStateStore(path)
        assert reopened.load_checkpoint("ck") == b"snapshot-bytes"
        assert reopened.checkpoint_keys() == ["ck"]
        # The pending row survived too: sequence counters resume past it.
        assert reopened.next_seq() > 1
        reopened.close()


# ---------------------------------------------------------------------------
# Registry path handling
# ---------------------------------------------------------------------------


class TestRegistryPaths:
    def test_relative_sqlite_path(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        store = create_state_store("sqlite:///relative/../rel.db")
        try:
            store.save_checkpoint("k", b"x")
        finally:
            store.close()
        assert os.path.exists(tmp_path / "rel.db")
        with SQLiteStateStore(str(tmp_path / "rel.db")) as reopened:
            assert reopened.load_checkpoint("k") == b"x"

    def test_path_with_spaces(self, tmp_path):
        path = tmp_path / "dir with spaces" / "state file.db"
        path.parent.mkdir()
        store = create_state_store(f"sqlite:///{path}")
        try:
            assert isinstance(store, SQLiteStateStore)
            store.save_checkpoint("k", b"y")
        finally:
            store.close()
        with SQLiteStateStore(str(path)) as reopened:
            assert reopened.load_checkpoint("k") == b"y"


# ---------------------------------------------------------------------------
# Close threaded through system / server / cluster teardown
# ---------------------------------------------------------------------------


def make_system(store_spec):
    return DyconitSystem(
        StaticPolicy(),
        ChunkPartitioner(),
        time_source=lambda: 0.0,
        state_store=store_spec,
    )


class TestOwnershipAtTeardown:
    def test_system_closes_spec_built_store(self, tmp_path):
        system = make_system(f"sqlite:///{tmp_path}/spec.db")
        store = system.state_store
        system.close()
        with pytest.raises(sqlite3.ProgrammingError):
            store.checkpoint_keys()

    def test_system_leaves_instance_store_open(self, tmp_path):
        store = SQLiteStateStore(str(tmp_path / "inst.db"))
        system = make_system(store)
        system.close()
        assert store.checkpoint_keys() == []  # still usable
        store.close()

    def test_system_context_manager(self, tmp_path):
        with make_system(f"sqlite:///{tmp_path}/cm.db") as system:
            store = system.state_store
        with pytest.raises(sqlite3.ProgrammingError):
            store.checkpoint_keys()

    def test_server_close_reaches_the_store(self, tmp_path):
        from repro.policies.fixed import FixedBoundsPolicy
        from repro.server.config import ServerConfig
        from repro.server.engine import GameServer
        from repro.sim.simulator import Simulation

        sim = Simulation()
        server = GameServer(
            sim,
            config=ServerConfig(
                state_store=f"sqlite:///{tmp_path}/server.db",
                mob_count=0,
                synchronous_delivery=True,
            ),
            policy=FixedBoundsPolicy(Bounds(3.0, 120.0)),
        )
        server.start()
        sim.run_until(200.0)
        store = server.dyconits.state_store
        server.close()
        with pytest.raises(sqlite3.ProgrammingError):
            store.checkpoint_keys()

    def test_cluster_close_reaches_every_shard_store(self, tmp_path):
        from repro.cluster import ShardedCluster
        from repro.policies.fixed import FixedBoundsPolicy
        from repro.server.config import ServerConfig
        from repro.sim.simulator import Simulation

        sim = Simulation()
        cluster = ShardedCluster(
            sim,
            shards=2,
            strip_width=2,
            config=ServerConfig(mob_count=0, synchronous_delivery=True),
            policy_factory=lambda: FixedBoundsPolicy(Bounds(3.0, 120.0)),
            state_stores=[
                SQLiteStateStore(str(tmp_path / f"shard{i}.db")) for i in range(2)
            ],
        )
        cluster.start()
        sim.run_until(200.0)
        stores = [shard.dyconits.state_store for shard in cluster.shards]
        cluster.close()
        # Instance stores stay open (the recovery path reattaches to
        # them); spec-built ones would have been closed.
        for store in stores:
            assert store.checkpoint_keys() == []
            store.close()
