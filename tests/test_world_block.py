"""Unit tests for the block palette."""

from repro.world.block import BUILDING_BLOCKS, BlockType


def test_air_is_zero():
    """Zero-filled chunk storage must mean 'empty'."""
    assert BlockType.AIR == 0


def test_ids_are_stable_and_unique():
    values = [int(block) for block in BlockType]
    assert len(values) == len(set(values))
    # Wire ids are part of the size model; spot-check stability.
    assert int(BlockType.STONE) == 1
    assert int(BlockType.BEDROCK) == 13


def test_solidity():
    assert BlockType.STONE.is_solid
    assert BlockType.PLANKS.is_solid
    assert not BlockType.AIR.is_solid
    assert not BlockType.WATER.is_solid
    assert not BlockType.TORCH.is_solid


def test_breakability():
    assert BlockType.STONE.is_breakable
    assert not BlockType.AIR.is_breakable
    assert not BlockType.BEDROCK.is_breakable


def test_building_blocks_are_placeable():
    assert BUILDING_BLOCKS
    for block in BUILDING_BLOCKS:
        assert block != BlockType.AIR
        assert block.is_breakable  # players can undo their builds
