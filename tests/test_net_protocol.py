"""Unit tests for the packet catalogue's size model."""

from repro.net.protocol import (
    BlockChangePacket,
    ChatMessagePacket,
    ChunkDataPacket,
    ChunkUnloadPacket,
    DestroyEntitiesPacket,
    EntityPositionPacket,
    EntityTeleportPacket,
    JoinGamePacket,
    KeepAlivePacket,
    MultiBlockChangePacket,
    PlayerActionPacket,
    SpawnEntityPacket,
)
from repro.net.serialize import packet_overhead
from repro.world.block import BlockType
from repro.world.entity import EntityKind
from repro.world.geometry import BlockPos, ChunkPos, Vec3


def test_wire_size_includes_framing():
    packet = KeepAlivePacket()
    assert packet.wire_size() == packet.body_size() + packet_overhead()


def test_block_change_size():
    packet = BlockChangePacket(BlockPos(1, 2, 3), BlockType.STONE)
    assert packet.body_size() == 9  # 8-byte position + 1-byte VarInt state


def test_multi_block_change_cheaper_than_singles():
    changes = tuple(
        (BlockPos(x, 10, 0), BlockType.PLANKS) for x in range(10)
    )
    multi = MultiBlockChangePacket(ChunkPos(0, 0), changes)
    singles = sum(
        BlockChangePacket(pos, block).wire_size() for pos, block in changes
    )
    assert multi.wire_size() < singles


def test_relative_move_cheaper_than_teleport():
    relative = EntityPositionPacket(entity_id=5, delta=Vec3(0.5, 0.0, 0.5))
    teleport = EntityTeleportPacket(entity_id=5, position=Vec3(100.0, 30.0, 100.0))
    assert relative.wire_size() < teleport.wire_size()


def test_relative_move_fits_limit():
    assert EntityPositionPacket.fits(Vec3(7.9, 0.0, -7.9))
    assert not EntityPositionPacket.fits(Vec3(8.0, 0.0, 0.0))
    assert not EntityPositionPacket.fits(Vec3(0.0, -9.0, 0.0))


def test_spawn_includes_name():
    anonymous = SpawnEntityPacket(1, EntityKind.ZOMBIE, Vec3(0, 0, 0))
    named = SpawnEntityPacket(1, EntityKind.PLAYER, Vec3(0, 0, 0), name="steve")
    assert named.body_size() == anonymous.body_size() + len("steve")


def test_destroy_entities_scales_with_count():
    one = DestroyEntitiesPacket((1,))
    many = DestroyEntitiesPacket(tuple(range(1, 21)))
    assert many.body_size() > one.body_size()
    # But far cheaper than 20 separate packets.
    assert many.wire_size() < 20 * one.wire_size()


def test_chunk_data_is_by_far_the_biggest():
    chunk = ChunkDataPacket(ChunkPos(0, 0), total_blocks=16 * 16 * 64, non_air_blocks=7000)
    move = EntityPositionPacket(1, Vec3(0.1, 0.0, 0.1))
    assert chunk.wire_size() > 50 * move.wire_size()


def test_chunk_unload_is_tiny():
    assert ChunkUnloadPacket(ChunkPos(0, 0)).body_size() == 8


def test_chat_size_tracks_text():
    short = ChatMessagePacket(1, "hi")
    long = ChatMessagePacket(1, "x" * 100)
    assert long.body_size() - short.body_size() == 98


def test_join_game_is_login_heavy():
    assert JoinGamePacket(entity_id=1).body_size() > 1000


def test_player_action_sizes():
    move = PlayerActionPacket("move", position=Vec3(0, 0, 0))
    place = PlayerActionPacket("place", block_pos=BlockPos(0, 0, 0), block=BlockType.STONE)
    chat = PlayerActionPacket("chat", extra={"text": "hello"})
    assert move.body_size() == 27
    assert place.body_size() == 10
    assert chat.body_size() == 6


def test_packet_kind_is_class_name():
    assert KeepAlivePacket().kind == "KeepAlivePacket"
