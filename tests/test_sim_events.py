"""Unit tests for the deterministic event queue."""

from repro.sim.events import EventQueue


def test_empty_queue():
    queue = EventQueue()
    assert len(queue) == 0
    assert queue.peek_time() is None
    assert queue.pop() is None


def test_orders_by_time():
    queue = EventQueue()
    order = []
    queue.push(20.0, lambda: order.append("b"))
    queue.push(10.0, lambda: order.append("a"))
    queue.push(30.0, lambda: order.append("c"))
    while (event := queue.pop()) is not None:
        event.callback()
    assert order == ["a", "b", "c"]


def test_ties_break_in_scheduling_order():
    queue = EventQueue()
    order = []
    for label in ("first", "second", "third"):
        queue.push(5.0, lambda label=label: order.append(label))
    while (event := queue.pop()) is not None:
        event.callback()
    assert order == ["first", "second", "third"]


def test_peek_returns_next_live_time():
    queue = EventQueue()
    queue.push(15.0, lambda: None)
    queue.push(5.0, lambda: None)
    assert queue.peek_time() == 5.0


def test_cancellation_skips_event():
    queue = EventQueue()
    fired = []
    handle = queue.push(1.0, lambda: fired.append("cancelled"))
    queue.push(2.0, lambda: fired.append("kept"))
    handle.cancel()
    while (event := queue.pop()) is not None:
        event.callback()
    assert fired == ["kept"]


def test_cancelled_events_do_not_count_in_len():
    queue = EventQueue()
    handle = queue.push(1.0, lambda: None)
    queue.push(2.0, lambda: None)
    handle.cancel()
    assert len(queue) == 1


def test_peek_skips_cancelled_head():
    queue = EventQueue()
    head = queue.push(1.0, lambda: None)
    queue.push(9.0, lambda: None)
    head.cancel()
    assert queue.peek_time() == 9.0
