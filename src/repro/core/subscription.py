"""Subscribers.

A subscriber is anything that receives flushed updates — in the game
integration, one subscriber per connected player session. Subscribers
optionally expose a position so spatial policies (distance-based, AOI)
can reason about where the player's avatar is.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Hashable, Sequence

from repro.core.update import Update
from repro.world.geometry import Vec3

#: Called at flush time with (dyconit id, merged updates in time order).
DeliveryHandler = Callable[[Hashable, Sequence[Update]], None]


@dataclass
class Subscriber:
    """A consumer of dyconit updates."""

    subscriber_id: int
    deliver: DeliveryHandler
    #: Lazily evaluated avatar position for spatial policies; ``None`` for
    #: non-spatial subscribers (e.g. a monitoring sink).
    position_provider: Callable[[], Vec3] | None = None
    #: Policies may stash per-subscriber state here (e.g. interest sets).
    attributes: dict = field(default_factory=dict)
    #: What this subscriber *is*. ``"client"`` — a player session, fully
    #: under the local policy's control. ``"peer"`` — another server shard
    #: federating over the same dyconit protocol (S16); its bounds were
    #: chosen by the subscribing shard, so bound-sweeping policies must
    #: leave them alone (delivery, merging and deadline bookkeeping are
    #: identical for both kinds).
    kind: str = "client"

    @property
    def position(self) -> Vec3 | None:
        if self.position_provider is None:
            return None
        return self.position_provider()

    def __hash__(self) -> int:
        return hash(self.subscriber_id)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Subscriber) and other.subscriber_id == self.subscriber_id
