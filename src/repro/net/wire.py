"""Binary wire codec.

The simulation accounts bytes through each packet's ``wire_size()``
*model*; this module provides an actual binary encoding (VarInt framing,
packed positions, fixed-point deltas — the Minecraft-style layouts the
model describes) plus a decoder, so the size model can be *validated*
against real bytes instead of trusted.

The encoder is exact for every fixed-layout packet. For the two packets
whose real-world size depends on compression (chunk data) or JSON
scaffolding (chat), the payload is emitted at the modelled size with a
deterministic filler, keeping ``len(encode(p)) == p.wire_size()`` as an
invariant the property tests enforce.
"""

from __future__ import annotations

import struct

from repro.net.protocol import (
    BlockChangePacket,
    ChatMessagePacket,
    ChunkDataPacket,
    ChunkUnloadPacket,
    DestroyEntitiesPacket,
    EntityPositionPacket,
    EntityTeleportPacket,
    JoinGamePacket,
    KeepAlivePacket,
    MultiBlockChangePacket,
    Packet,
    SpawnEntityPacket,
)
from repro.world.block import BlockType
from repro.world.entity import EntityKind
from repro.world.geometry import BlockPos, ChunkPos, Vec3

#: Stable wire ids (one byte each in the frame's packet-id VarInt).
PACKET_IDS: dict[type, int] = {
    BlockChangePacket: 0x0B,
    MultiBlockChangePacket: 0x0F,
    ChunkDataPacket: 0x20,
    ChunkUnloadPacket: 0x1C,
    SpawnEntityPacket: 0x00,
    DestroyEntitiesPacket: 0x36,
    EntityPositionPacket: 0x27,
    EntityTeleportPacket: 0x56,
    ChatMessagePacket: 0x0E,
    KeepAlivePacket: 0x1F,
    JoinGamePacket: 0x24,
}
_TYPES_BY_ID = {packet_id: cls for cls, packet_id in PACKET_IDS.items()}

_ENTITY_KIND_IDS = {kind: index for index, kind in enumerate(EntityKind)}
_ENTITY_KINDS_BY_ID = {index: kind for kind, index in _ENTITY_KIND_IDS.items()}


class WireError(ValueError):
    """Malformed bytes on decode."""


# Precompiled layouts for the hot codec paths: module-level pack calls
# re-parse the format string (behind a cache lock) on every call, which
# shows up at wire-validation volume. ``Struct.pack``/``unpack_from``
# skip that entirely.
_UINT64 = struct.Struct(">Q")
_CHUNK_XZ = struct.Struct(">ii")
_XYZ_F64 = struct.Struct(">ddd")
_SHORT3 = struct.Struct(">hhh")
_INT64 = struct.Struct(">q")
_INT32 = struct.Struct(">i")


# ----------------------------------------------------------------------
# Primitives
# ----------------------------------------------------------------------


def write_varint(value: int) -> bytes:
    """Protocol VarInt (unsigned, 7 bits per byte, MSB = continuation)."""
    if value < 0:
        raise ValueError(f"VarInt is unsigned, got {value}")
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def read_varint(data: bytes, offset: int) -> tuple[int, int]:
    """Decode a VarInt at ``offset``; returns (value, new offset)."""
    value = 0
    shift = 0
    while True:
        if offset >= len(data):
            raise WireError("truncated VarInt")
        byte = data[offset]
        offset += 1
        value |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return value, offset
        shift += 7
        if shift > 63:
            raise WireError("VarInt too long")


def pack_position(pos: BlockPos) -> bytes:
    """Minecraft packed position: x(26) | z(26) | y(12) in one long."""
    x = pos.x & 0x3FFFFFF
    z = pos.z & 0x3FFFFFF
    y = pos.y & 0xFFF
    return _UINT64.pack((x << 38) | (z << 12) | y)


def unpack_position(data: bytes, offset: int) -> tuple[BlockPos, int]:
    (packed,) = _UINT64.unpack_from(data, offset)
    x = packed >> 38
    z = (packed >> 12) & 0x3FFFFFF
    y = packed & 0xFFF
    # Sign-extend the 26/26/12-bit fields.
    if x >= 1 << 25:
        x -= 1 << 26
    if z >= 1 << 25:
        z -= 1 << 26
    if y >= 1 << 11:
        y -= 1 << 12
    return BlockPos(x, y, z), offset + 8


def _pack_angles(yaw: float, pitch: float) -> bytes:
    # Angles are 1/256ths of a turn, one byte each.
    return bytes([int(yaw / 360.0 * 256) & 0xFF, int(pitch / 360.0 * 256) & 0xFF])


def _unpack_angles(data: bytes, offset: int) -> tuple[float, float, int]:
    yaw = data[offset] * 360.0 / 256.0
    pitch = data[offset + 1] * 360.0 / 256.0
    return yaw, pitch, offset + 2


# ----------------------------------------------------------------------
# Per-packet bodies
# ----------------------------------------------------------------------


def _encode_body(packet: Packet) -> bytes:
    if isinstance(packet, BlockChangePacket):
        return pack_position(packet.pos) + write_varint(int(packet.block))
    if isinstance(packet, MultiBlockChangePacket):
        body = bytearray()
        body += _CHUNK_XZ.pack(packet.chunk.cx, packet.chunk.cz)
        body += write_varint(len(packet.changes))
        for pos, block in packet.changes:
            lx, y, lz = pos.local()
            # Packed 3-byte record: lx(4) | lz(4) | y(8) | block(8).
            body += bytes([(lx << 4) | lz, y & 0xFF, int(block) & 0xFF])
        return bytes(body)
    if isinstance(packet, ChunkDataPacket):
        header = _CHUNK_XZ.pack(packet.chunk.cx, packet.chunk.cz)
        payload_size = packet.body_size() - len(header)
        return header + bytes(payload_size)
    if isinstance(packet, ChunkUnloadPacket):
        return _CHUNK_XZ.pack(packet.chunk.cx, packet.chunk.cz)
    if isinstance(packet, SpawnEntityPacket):
        body = bytearray()
        body += write_varint(packet.entity_id)
        body += bytes(16)  # UUID
        body += bytes([_ENTITY_KIND_IDS[packet.entity_kind]])
        body += _XYZ_F64.pack(packet.position.x, packet.position.y, packet.position.z)
        body += _pack_angles(0.0, 0.0)
        body += _SHORT3.pack(0, 0, 0)  # velocity
        body += packet.name.encode("latin-1", errors="replace")
        return bytes(body)
    if isinstance(packet, DestroyEntitiesPacket):
        body = bytearray(write_varint(len(packet.entity_ids)))
        for entity_id in packet.entity_ids:
            body += write_varint(entity_id)
        return bytes(body)
    if isinstance(packet, EntityPositionPacket):
        body = bytearray(write_varint(packet.entity_id))
        # Fixed-point deltas: blocks * 4096 in a short (protocol layout).
        body += _SHORT3.pack(
            _clamp_short(packet.delta.x * 4096),
            _clamp_short(packet.delta.y * 4096),
            _clamp_short(packet.delta.z * 4096),
        )
        body += _pack_angles(packet.yaw, packet.pitch)
        body += b"\x01"  # on-ground
        return bytes(body)
    if isinstance(packet, EntityTeleportPacket):
        body = bytearray(write_varint(packet.entity_id))
        body += _XYZ_F64.pack(packet.position.x, packet.position.y, packet.position.z)
        body += _pack_angles(packet.yaw, packet.pitch)
        body += b"\x01"
        return bytes(body)
    if isinstance(packet, ChatMessagePacket):
        text = packet.text.encode("utf-8")
        scaffold = b'{"text":"' + b" " * (ChatMessagePacket.JSON_SCAFFOLD_BYTES - 11) + b'"}'
        return write_varint(packet.sender_id & 0x7F) + scaffold + text
    if isinstance(packet, KeepAlivePacket):
        return _INT64.pack(packet.nonce)
    if isinstance(packet, JoinGamePacket):
        header = _INT32.pack(packet.entity_id)
        return header + bytes(packet.body_size() - len(header))
    raise WireError(f"no encoder for {type(packet).__name__}")


def _clamp_short(value: float) -> int:
    return max(-32768, min(32767, int(value)))


# ----------------------------------------------------------------------
# Framing
# ----------------------------------------------------------------------


def encode(packet: Packet) -> bytes:
    """Frame and encode one packet: VarInt length + id byte + body."""
    packet_id = PACKET_IDS.get(type(packet))
    if packet_id is None:
        raise WireError(f"unregistered packet type {type(packet).__name__}")
    body = _encode_body(packet)
    frame = bytes([packet_id]) + body
    # The size model prices the length prefix at a flat 2 bytes; pad the
    # encoding to the same convention so byte accounting matches.
    length = write_varint(len(frame))
    if len(length) == 1:
        length += b"\x00"  # explicit continuation-style pad byte
    return length + frame


def decode(data: bytes) -> tuple[Packet, int]:
    """Decode one framed packet; returns (packet, bytes consumed).

    Fixed-layout packets decode to full fidelity; chunk/join/chat decode
    their identifying header and skip the filler payload.
    """
    length, offset = read_varint(data, 0)
    if offset == 1:
        offset += 1  # the encoder's pad byte
    end = offset + length
    if end > len(data):
        raise WireError("truncated frame")
    packet_id = data[offset]
    offset += 1
    cls = _TYPES_BY_ID.get(packet_id)
    if cls is None:
        raise WireError(f"unknown packet id 0x{packet_id:02x}")
    packet = _decode_body(cls, data, offset, end)
    return packet, end


def _decode_body(cls: type, data: bytes, offset: int, end: int) -> Packet:
    if cls is BlockChangePacket:
        pos, offset = unpack_position(data, offset)
        block, offset = read_varint(data, offset)
        return BlockChangePacket(pos=pos, block=BlockType(block))
    if cls is ChunkUnloadPacket:
        cx, cz = _CHUNK_XZ.unpack_from(data, offset)
        return ChunkUnloadPacket(chunk=ChunkPos(cx, cz))
    if cls is DestroyEntitiesPacket:
        count, offset = read_varint(data, offset)
        ids = []
        for __ in range(count):
            entity_id, offset = read_varint(data, offset)
            ids.append(entity_id)
        return DestroyEntitiesPacket(entity_ids=tuple(ids))
    if cls is EntityPositionPacket:
        entity_id, offset = read_varint(data, offset)
        dx, dy, dz = _SHORT3.unpack_from(data, offset)
        offset += 6
        yaw, pitch, offset = _unpack_angles(data, offset)
        return EntityPositionPacket(
            entity_id=entity_id,
            delta=Vec3(dx / 4096.0, dy / 4096.0, dz / 4096.0),
            yaw=yaw,
            pitch=pitch,
        )
    if cls is EntityTeleportPacket:
        entity_id, offset = read_varint(data, offset)
        x, y, z = _XYZ_F64.unpack_from(data, offset)
        offset += 24
        yaw, pitch, offset = _unpack_angles(data, offset)
        return EntityTeleportPacket(
            entity_id=entity_id, position=Vec3(x, y, z), yaw=yaw, pitch=pitch
        )
    if cls is SpawnEntityPacket:
        entity_id, offset = read_varint(data, offset)
        offset += 16  # UUID
        kind = _ENTITY_KINDS_BY_ID[data[offset]]
        offset += 1
        x, y, z = _XYZ_F64.unpack_from(data, offset)
        offset += 24
        offset += 2 + 6  # angles + velocity
        name = data[offset:end].decode("latin-1")
        return SpawnEntityPacket(
            entity_id=entity_id, entity_kind=kind, position=Vec3(x, y, z), name=name
        )
    if cls is KeepAlivePacket:
        (nonce,) = _INT64.unpack_from(data, offset)
        return KeepAlivePacket(nonce=nonce)
    if cls is ChunkDataPacket:
        cx, cz = _CHUNK_XZ.unpack_from(data, offset)
        # Payload size identifies the original block census only up to
        # the compression model; return a size-equivalent packet.
        payload = end - offset - 8
        return ChunkDataPacket(
            chunk=ChunkPos(cx, cz),
            total_blocks=0,
            non_air_blocks=_invert_chunk_payload(payload),
        )
    if cls is JoinGamePacket:
        (entity_id,) = _INT32.unpack_from(data, offset)
        return JoinGamePacket(entity_id=entity_id)
    if cls is ChatMessagePacket:
        sender, offset = read_varint(data, offset)
        scaffold_end = offset + ChatMessagePacket.JSON_SCAFFOLD_BYTES
        text = data[scaffold_end:end].decode("utf-8")
        return ChatMessagePacket(sender_id=sender, text=text)
    if cls is MultiBlockChangePacket:
        cx, cz = _CHUNK_XZ.unpack_from(data, offset)
        offset += 8
        count, offset = read_varint(data, offset)
        changes = []
        chunk = ChunkPos(cx, cz)
        origin = chunk.block_origin()
        for __ in range(count):
            horizontal, y, block = data[offset], data[offset + 1], data[offset + 2]
            offset += 3
            lx, lz = horizontal >> 4, horizontal & 0x0F
            changes.append(
                (BlockPos(origin.x + lx, y, origin.z + lz), BlockType(block))
            )
        return MultiBlockChangePacket(chunk=chunk, changes=tuple(changes))
    raise WireError(f"no decoder for {cls.__name__}")


def _invert_chunk_payload(payload: int) -> int:
    # Best-effort inverse of compressed_chunk_bytes for decode display.
    from repro.net.serialize import BYTES_PER_BLOCK, CHUNK_COMPRESSION_RATIO, CHUNK_FIXED_BYTES

    solid_bytes = max(0, payload - CHUNK_FIXED_BYTES)
    return int(solid_bytes / (BYTES_PER_BLOCK * CHUNK_COMPRESSION_RATIO))
