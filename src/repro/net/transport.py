"""Transport: routes packets from the server to client links.

The transport owns one :class:`ClientLink` per connected client, delivers
packets through the simulation's event queue, and exposes fleet-wide
accounting. Receivers register a callback invoked at delivery time with a
:class:`DeliveredPacket` carrying the end-to-end latency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.net.link import ClientLink, LinkConfig
from repro.net.protocol import Packet
from repro.sim.rng import derive_rng
from repro.sim.simulator import Simulation
from repro.telemetry.hub import NULL_TELEMETRY, Telemetry


@dataclass(frozen=True, slots=True)
class DeliveredPacket:
    """A packet as seen by the receiving client."""

    packet: Packet
    sent_at: float
    delivered_at: float

    @property
    def latency_ms(self) -> float:
        return self.delivered_at - self.sent_at


PacketHandler = Callable[[DeliveredPacket], None]


class Transport:
    """Server-side packet egress for all connected clients."""

    def __init__(
        self,
        sim: Simulation,
        default_link: LinkConfig | None = None,
        seed: int = 0,
        synchronous_delivery: bool = False,
        telemetry: Telemetry | None = None,
    ) -> None:
        self.sim = sim
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        if self.telemetry.enabled:
            self._tm_sent = self.telemetry.counter("link_packets_sent_total")
            self._tm_latency = self.telemetry.histogram(
                "link_delivery_latency_ms", min_value=0.1
            )
        else:
            self._tm_sent = None
            self._tm_latency = None
        self.default_link = default_link if default_link is not None else LinkConfig()
        self.seed = seed
        #: When True, handlers run at send time (latency is still computed
        #: and recorded) instead of via a scheduled event per packet. Large
        #: capacity sweeps enable this for speed; latency experiments keep
        #: it off. Delivery order is unchanged either way (FIFO per link).
        self.synchronous_delivery = synchronous_delivery
        self._links: dict[int, ClientLink] = {}
        self._handlers: dict[int, PacketHandler] = {}
        #: Stats of links whose clients have disconnected, kept so fleet
        #: totals survive churny workloads (e.g. the E6 player burst).
        self._closed_stats: list = []
        #: Per-packet latencies (ms) observed across all clients; the E4
        #: latency experiment reads this.
        self.latencies_ms: list[float] = []
        self.record_latencies = True

    # ------------------------------------------------------------------
    # Connections
    # ------------------------------------------------------------------

    def connect(
        self,
        client_id: int,
        handler: PacketHandler,
        link: LinkConfig | None = None,
    ) -> ClientLink:
        """Register a client; returns its link."""
        if client_id in self._links:
            raise ValueError(f"client {client_id} is already connected")
        config = link if link is not None else self.default_link
        jitter = None
        if config.jitter_ms > 0:
            rng = derive_rng(self.seed, "link-jitter", client_id)
            jitter_span = config.jitter_ms
            jitter = lambda: rng.random() * jitter_span  # noqa: E731
        client_link = ClientLink(client_id, config, jitter=jitter)
        self._links[client_id] = client_link
        self._handlers[client_id] = handler
        return client_link

    def disconnect(self, client_id: int) -> None:
        link = self._links.pop(client_id, None)
        if link is not None:
            self._closed_stats.append(link.stats)
        self._handlers.pop(client_id, None)

    def is_connected(self, client_id: int) -> bool:
        return client_id in self._links

    @property
    def client_count(self) -> int:
        return len(self._links)

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------

    def send(self, client_id: int, packet: Packet) -> None:
        """Queue ``packet`` for delivery to ``client_id``."""
        link = self._links.get(client_id)
        if link is None:
            return  # client raced a disconnect; drop silently like a closed socket
        now = self.sim.now
        delivery_time = link.transmit(packet, now)
        handler = self._handlers[client_id]
        if self._tm_sent is not None:
            self._tm_sent.increment()

        if self.synchronous_delivery:
            delivered = DeliveredPacket(
                packet=packet, sent_at=now, delivered_at=delivery_time
            )
            if self.record_latencies:
                self.latencies_ms.append(delivered.latency_ms)
            if self._tm_latency is not None:
                self._tm_latency.record(delivered.latency_ms)
            handler(delivered)
            return

        def deliver() -> None:
            if not self.is_connected(client_id):
                return
            delivered = DeliveredPacket(
                packet=packet, sent_at=now, delivered_at=self.sim.now
            )
            if self.record_latencies:
                self.latencies_ms.append(delivered.latency_ms)
            if self._tm_latency is not None:
                self._tm_latency.record(delivered.latency_ms)
            handler(delivered)

        self.sim.schedule_at(delivery_time, deliver)

    def send_many(self, client_id: int, packets: list[Packet]) -> None:
        for packet in packets:
            self.send(client_id, packet)

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------

    def _all_stats(self):
        yield from (link.stats for link in self._links.values())
        yield from self._closed_stats

    def total_bytes(self) -> int:
        return sum(stats.bytes for stats in self._all_stats())

    def total_packets(self) -> int:
        return sum(stats.packets for stats in self._all_stats())

    def bytes_by_kind(self) -> dict[str, int]:
        merged: dict[str, int] = {}
        for stats in self._all_stats():
            for kind, count in stats.bytes_by_kind.items():
                merged[kind] = merged.get(kind, 0) + count
        return merged

    def packets_by_kind(self) -> dict[str, int]:
        merged: dict[str, int] = {}
        for stats in self._all_stats():
            for kind, count in stats.packets_by_kind.items():
                merged[kind] = merged.get(kind, 0) + count
        return merged

    def link(self, client_id: int) -> ClientLink | None:
        return self._links.get(client_id)
