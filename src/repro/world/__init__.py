"""Modifiable Virtual Environment (MVE) substrate (S2).

A Minecraft-like world: a block grid partitioned into 16x16 column chunks,
deterministic procedural terrain, and dynamic entities (players, mobs).
The :class:`~repro.world.world.World` is the authoritative copy of the MVE;
clients hold replicas that the middleware keeps boundedly consistent.
"""

from repro.world.block import BlockType
from repro.world.chunk import CHUNK_SIZE, WORLD_HEIGHT, Chunk
from repro.world.entity import Entity, EntityKind
from repro.world.events import (
    BlockChangeEvent,
    ChatEvent,
    EntityDespawnEvent,
    EntityMoveEvent,
    EntitySpawnEvent,
    WorldEvent,
)
from repro.world.geometry import BlockPos, ChunkPos, Vec3, chunks_in_radius
from repro.world.terrain import TerrainGenerator
from repro.world.world import World

__all__ = [
    "BlockType",
    "Chunk",
    "CHUNK_SIZE",
    "WORLD_HEIGHT",
    "Entity",
    "EntityKind",
    "WorldEvent",
    "BlockChangeEvent",
    "EntityMoveEvent",
    "EntitySpawnEvent",
    "EntityDespawnEvent",
    "ChatEvent",
    "Vec3",
    "BlockPos",
    "ChunkPos",
    "chunks_in_radius",
    "TerrainGenerator",
    "World",
]
