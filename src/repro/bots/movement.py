"""Bot movement models.

All models produce *horizontal* waypoints; bots walk toward the current
waypoint at Minecraft walking speed and snap to the terrain surface. The
models differ in where the waypoints land:

* :class:`RandomWaypointModel` — uniform in a disc; spreads players out.
* :class:`HotspotModel` — waypoints cluster around a few hotspots
  (village centers), producing the high-density areas the paper calls out
  as the hard case for interest management.
* :class:`TrekModel` — a long directed walk; maximizes chunk churn, the
  exploration workload.
* :class:`GatheringModel` — every bot converges on *one* point and mills
  around it; the worst case for interest management (everyone sees
  everyone), and, with the target on a shard border, the hotspot case
  for cross-shard federation.
"""

from __future__ import annotations

import math
import random

from repro.world.geometry import Vec3

#: Minecraft walking speed, blocks per second.
WALK_SPEED = 4.317


class MovementModel:
    """Produces successive waypoints for one bot."""

    def next_waypoint(self, rng: random.Random, position: Vec3) -> Vec3:
        raise NotImplementedError


class RandomWaypointModel(MovementModel):
    """Uniform waypoints within a disc around a fixed center."""

    def __init__(self, center: Vec3 = Vec3(0.0, 0.0, 0.0), radius: float = 80.0) -> None:
        if radius <= 0:
            raise ValueError(f"radius must be positive, got {radius}")
        self.center = center
        self.radius = radius

    def next_waypoint(self, rng: random.Random, position: Vec3) -> Vec3:
        angle = rng.uniform(0.0, 2.0 * math.pi)
        # sqrt for uniform density over the disc area.
        distance = self.radius * math.sqrt(rng.random())
        return Vec3(
            self.center.x + distance * math.cos(angle),
            0.0,
            self.center.z + distance * math.sin(angle),
        )


class HotspotModel(MovementModel):
    """Waypoints gravitate toward hotspots (village centers).

    With probability ``gravity`` the next waypoint lands near a hotspot
    (Gaussian spread ``hotspot_spread``); otherwise it is a uniform
    wander within ``wander_radius`` of the current position. Hotspot
    choice is weighted Zipf-style: the first hotspot is the busiest.
    """

    def __init__(
        self,
        hotspots: list[Vec3] | None = None,
        gravity: float = 0.8,
        hotspot_spread: float = 12.0,
        wander_radius: float = 40.0,
    ) -> None:
        if not (0.0 <= gravity <= 1.0):
            raise ValueError(f"gravity must be in [0, 1], got {gravity}")
        if hotspots is not None and not hotspots:
            raise ValueError("hotspot list must be non-empty when provided")
        self.hotspots = (
            hotspots
            if hotspots is not None
            else [Vec3(0.0, 0.0, 0.0), Vec3(96.0, 0.0, 32.0), Vec3(-64.0, 0.0, -96.0)]
        )
        self.gravity = gravity
        self.hotspot_spread = hotspot_spread
        self.wander_radius = wander_radius
        # Zipf weights: 1, 1/2, 1/3, ...
        self._weights = [1.0 / (rank + 1) for rank in range(len(self.hotspots))]

    def next_waypoint(self, rng: random.Random, position: Vec3) -> Vec3:
        if rng.random() < self.gravity:
            hotspot = rng.choices(self.hotspots, weights=self._weights)[0]
            return Vec3(
                hotspot.x + rng.gauss(0.0, self.hotspot_spread),
                0.0,
                hotspot.z + rng.gauss(0.0, self.hotspot_spread),
            )
        angle = rng.uniform(0.0, 2.0 * math.pi)
        distance = self.wander_radius * math.sqrt(rng.random())
        return Vec3(
            position.x + distance * math.cos(angle),
            0.0,
            position.z + distance * math.sin(angle),
        )


class GatheringModel(MovementModel):
    """A mass gathering: every waypoint lands within ``jitter`` blocks of
    one shared target, so the whole fleet converges there and then mills
    around it.

    Interest management degenerates (all pairs stay mutually visible and
    every update fans out to everyone), and with the default target at
    the world origin — always a strip boundary under the cluster's
    router — the crowd permanently straddles a shard border, maximizing
    cross-shard dyconit traffic and handoff churn.
    """

    def __init__(self, target: Vec3 = Vec3(0.0, 0.0, 0.0), jitter: float = 10.0) -> None:
        if jitter <= 0:
            raise ValueError(f"jitter must be positive, got {jitter}")
        self.target = target
        self.jitter = jitter

    def next_waypoint(self, rng: random.Random, position: Vec3) -> Vec3:
        angle = rng.uniform(0.0, 2.0 * math.pi)
        distance = self.jitter * math.sqrt(rng.random())
        return Vec3(
            self.target.x + distance * math.cos(angle),
            0.0,
            self.target.z + distance * math.sin(angle),
        )


class TrekModel(MovementModel):
    """A mostly straight long-distance walk with small heading noise."""

    def __init__(self, heading_degrees: float = 0.0, leg_length: float = 60.0) -> None:
        self.heading = math.radians(heading_degrees)
        self.leg_length = leg_length

    def next_waypoint(self, rng: random.Random, position: Vec3) -> Vec3:
        heading = self.heading + rng.gauss(0.0, 0.2)
        return Vec3(
            position.x + self.leg_length * math.cos(heading),
            0.0,
            position.z + self.leg_length * math.sin(heading),
        )
