"""Zero-bounds policy: the vanilla-equivalent baseline."""

from __future__ import annotations

from typing import Hashable

from repro.core.bounds import Bounds
from repro.core.policy import Policy
from repro.core.subscription import Subscriber


class ZeroBoundsPolicy(Policy):
    """Every subscription gets zero bounds.

    With zero bounds each committed update immediately exceeds the
    numerical bound and flushes on the spot, so the middleware degenerates
    to vanilla immediate broadcast. The integration test suite verifies
    this equivalence packet-for-packet against the server's direct path.
    """

    def initial_bounds(
        self, system, dyconit_id: Hashable, subscriber: Subscriber
    ) -> Bounds:
        return Bounds.ZERO
