"""Session handoff edge cases: oscillation, cancellation, in-flight races."""

from repro.cluster import ShardedCluster
from repro.core.invariants import InvariantAuditor
from repro.policies.fixed import FixedBoundsPolicy
from repro.policies.zero import ZeroBoundsPolicy
from repro.core.bounds import Bounds
from repro.server.config import ServerConfig
from repro.sim.simulator import Simulation
from repro.world.geometry import Vec3

TICK_MS = 50.0


def make_cluster(policy_factory=ZeroBoundsPolicy, mob_count=0, strip_width=4):
    sim = Simulation()
    cluster = ShardedCluster(
        sim,
        shards=2,
        strip_width=strip_width,
        config=ServerConfig(seed=11, synchronous_delivery=True, mob_count=mob_count),
        policy_factory=policy_factory,
    )
    cluster.start()
    return sim, cluster


def connect_at(cluster, name, x, z=8.0):
    position = cluster.shards[0].world.surface_position(x, z)
    return cluster.connect(name, lambda delivered: None, position=position)


def settle(sim, ticks=2):
    sim.run_until(sim.now + TICK_MS * ticks)


def avatar_owner(cluster, entity_id):
    """The shard holding the authoritative (non-ghost) copy."""
    owners = [
        shard.shard_id
        for shard in cluster.shards
        if shard.world.get_entity(entity_id) is not None
        and entity_id not in shard.ghost_ids
    ]
    assert len(owners) <= 1
    return owners[0] if owners else None


def walk_to(cluster, entity_id, x, z=8.0):
    owner = avatar_owner(cluster, entity_id)
    world = cluster.shards[owner].world
    world.move_entity(entity_id, world.surface_position(x, z))


def assert_clean(cluster):
    violations = InvariantAuditor().check_cluster(cluster)
    assert violations == [], "\n".join(str(v) for v in violations)


def test_border_crossing_hands_session_over():
    sim, cluster = make_cluster()
    session = connect_at(cluster, "alice", x=8.0)  # chunk 0 -> shard 0
    settle(sim)
    assert cluster.shard_of(session.client_id) == 0

    walk_to(cluster, session.entity_id, -8.0)  # chunk -1 -> shard 1
    # Before the pump the session only exists as a bus message.
    assert session.client_id in cluster.in_transit_clients()
    assert cluster.shard_of(session.client_id) is None
    settle(sim)

    assert cluster.handoffs == 1
    assert cluster.shard_of(session.client_id) == 1
    migrated = cluster.sessions[session.client_id]
    # Identity is preserved end-to-end: same client id, same entity id.
    assert migrated.client_id == session.client_id
    assert migrated.entity_id == session.entity_id
    assert avatar_owner(cluster, session.entity_id) == 1
    assert_clean(cluster)


def test_border_oscillation_is_stable():
    sim, cluster = make_cluster()
    session = connect_at(cluster, "bob", x=8.0)
    # A second client stays on shard 0 and watches the oscillator.
    connect_at(cluster, "carol", x=12.0)
    settle(sim)

    for crossing in range(6):
        x = -8.0 if crossing % 2 == 0 else 8.0
        walk_to(cluster, session.entity_id, x)
        settle(sim)
        expected_shard = 1 if crossing % 2 == 0 else 0
        assert cluster.shard_of(session.client_id) == expected_shard
        assert cluster.sessions[session.client_id].entity_id == session.entity_id
        assert_clean(cluster)

    assert cluster.handoffs == 6
    assert cluster.handoffs_cancelled == 0
    assert cluster.player_count == 2


def test_disconnect_mid_handoff_cancels_cleanly():
    sim, cluster = make_cluster()
    session = connect_at(cluster, "dave", x=8.0)
    connect_at(cluster, "erin", x=12.0)  # keeps shard 0 busy
    settle(sim)

    walk_to(cluster, session.entity_id, -8.0)
    assert session.client_id in cluster.in_transit_clients()
    # Churn races the handoff: the client disconnects while its session
    # is a bus message. The facade cancels; the target drops the message.
    cluster.disconnect(session.client_id)
    assert session.client_id not in cluster.in_transit_clients()
    settle(sim)

    assert cluster.handoffs == 0
    assert cluster.handoffs_cancelled == 1
    assert cluster.player_count == 1
    assert session.client_id not in cluster.sessions
    for shard in cluster.shards:
        assert shard.world.get_entity(session.entity_id) is None
    assert_clean(cluster)


def test_handoff_with_in_flight_dyconit_updates():
    """Crossing while bounded flushes are still queued must not corrupt
    state: the source drops its pending updates (full-disconnect
    semantics) and the target resyncs the view from scratch."""
    sim, cluster = make_cluster(
        policy_factory=lambda: FixedBoundsPolicy(
            bounds=Bounds(numerical=64.0, staleness_ms=400.0)
        )
    )
    mover = connect_at(cluster, "frank", x=8.0)
    connect_at(cluster, "grace", x=12.0)
    connect_at(cluster, "heidi", x=-12.0)  # shard 1 observer
    settle(sim, ticks=4)

    # Generate updates that the loose bounds keep queued, then cross.
    walk_to(cluster, mover.entity_id, 4.0)
    walk_to(cluster, mover.entity_id, 1.0)
    walk_to(cluster, mover.entity_id, -8.0)
    settle(sim)

    assert cluster.handoffs == 1
    assert cluster.shard_of(mover.client_id) == 1
    assert avatar_owner(cluster, mover.entity_id) == 1
    assert_clean(cluster)
    # Keep running: queued staleness flushes referencing the emigrated
    # avatar must not resurrect it on shard 0.
    settle(sim, ticks=20)
    assert avatar_owner(cluster, mover.entity_id) == 1
    assert_clean(cluster)


def test_reconnect_after_cancelled_handoff_gets_fresh_state():
    sim, cluster = make_cluster()
    session = connect_at(cluster, "ivan", x=8.0)
    settle(sim)
    walk_to(cluster, session.entity_id, -8.0)
    cluster.disconnect(session.client_id)
    settle(sim)

    fresh = connect_at(cluster, "ivan", x=8.0)
    settle(sim)
    assert fresh.client_id != session.client_id  # ids are never recycled
    assert cluster.shard_of(fresh.client_id) == 0
    assert cluster.player_count == 1
    assert_clean(cluster)


def test_mob_crossing_transfers_ownership():
    sim, cluster = make_cluster(mob_count=0)
    settle(sim)
    # Spawn a server-owned mob on shard 0 and push it across the border.
    from repro.world.entity import EntityKind

    shard0 = cluster.shards[0]
    mob = shard0.world.spawn_entity(
        EntityKind.ZOMBIE, shard0.world.surface_position(8.0, 8.0), name="zombie"
    )
    shard0._mob_ids.append(mob.entity_id)
    settle(sim)
    shard0.world.move_entity(mob.entity_id, shard0.world.surface_position(-8.0, 8.0))
    settle(sim)

    assert cluster.bus.messages_by_kind.get("EntityTransfer", 0) == 1
    assert avatar_owner(cluster, mob.entity_id) == 1
    adopted = cluster.shards[1].world.get_entity(mob.entity_id)
    assert adopted is not None and adopted.name == "zombie"
    assert_clean(cluster)
