"""A :class:`ClientLink` that executes a :class:`FaultPlan`.

The base link already models bandwidth, propagation, jitter, and FIFO
queueing; this subclass plugs into its fault hooks to add seeded packet
loss (independent + Gilbert–Elliott burst), latency spikes, and
bandwidth-degradation windows.

Determinism contract: all randomness comes from the single ``rng`` the
transport derives per client (``derive_rng(seed, "faults", client_id)``),
and draws happen in a fixed per-packet order — burst-state transition,
burst-loss draw, independent-loss draw, then (for surviving packets)
spike draw. Adding a new fault type must append to this order, never
reorder it, or same-seed runs stop being comparable across versions.
"""

from __future__ import annotations

import random

from repro.faults.plan import FaultPlan
from repro.net.link import ClientLink, LinkConfig


class FaultyLink(ClientLink):
    """Downstream pipe with deterministic fault injection."""

    def __init__(
        self,
        client_id: int,
        config: LinkConfig,
        plan: FaultPlan,
        rng: random.Random,
        jitter=None,
    ) -> None:
        super().__init__(client_id, config, jitter=jitter)
        self.plan = plan
        self._rng = rng
        self._burst_bad = False
        self.packets_dropped = 0

    # ------------------------------------------------------------------
    # Hook overrides
    # ------------------------------------------------------------------

    def bandwidth_at(self, now: float) -> float:
        bandwidth = self.config.bandwidth_bps
        for window in self.plan.degraded_windows:
            if window.contains(now):
                bandwidth *= window.bandwidth_factor
        return bandwidth

    def consume_drop(self, now: float) -> bool:
        plan = self.plan
        dropped = False
        if plan.has_burst_model:
            if self._burst_bad:
                if self._rng.random() < plan.p_bad_to_good:
                    self._burst_bad = False
            elif self._rng.random() < plan.p_good_to_bad:
                self._burst_bad = True
            if self._burst_bad and self._rng.random() < plan.burst_loss_rate:
                dropped = True
        # The independent draw happens even when the burst already hit so
        # the RNG stream consumed per packet does not depend on the
        # drop outcome (keeps the packet->draw alignment stable).
        if plan.loss_rate > 0.0 and self._rng.random() < plan.loss_rate:
            dropped = True
        if dropped:
            self.packets_dropped += 1
        return dropped

    def extra_delay_ms(self, now: float) -> float:
        plan = self.plan
        if plan.has_spikes and self._rng.random() < plan.spike_probability:
            return plan.spike_ms
        return 0.0

    @property
    def in_burst(self) -> bool:
        """Whether the Gilbert–Elliott chain is currently in the BAD state."""
        return self._burst_bad
