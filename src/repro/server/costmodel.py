"""Simulated tick-duration cost model.

The paper measures wall-clock tick duration of a Java server on a
testbed; a Python interpreter cannot reproduce those absolute numbers, so
(per the substitution note in DESIGN.md) tick duration is *computed* from
the work the server performed during the tick:

    duration = base
             + per_player  * connected_players
             + per_action  * inbound actions processed
             + per_commit  * middleware commits
             + per_enqueue * per-subscriber enqueues + bound checks
             + per_flush   * queue flushes
             + per_message * packets serialized and sent
             + per_kilobyte* kilobytes sent

The coefficients are stated here, in one place, and the E2 capacity
benchmark sweeps them in a sensitivity check. Their defaults are chosen
so a vanilla configuration saturates its 50 ms budget in the low hundreds
of players — the regime the paper operates in — with per-message send
cost (serialization + syscall) as the dominant term, which is what
profiling of Minecraft-like servers shows.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class CostCoefficients:
    """Milliseconds of simulated server CPU per unit of tick work."""

    base_ms: float = 1.0
    per_player_ms: float = 0.03
    per_action_ms: float = 0.004
    per_commit_ms: float = 0.001
    per_enqueue_ms: float = 0.0008
    per_flush_ms: float = 0.002
    per_message_ms: float = 0.0045
    per_kilobyte_ms: float = 0.012

    def __post_init__(self) -> None:
        for name in self.__dataclass_fields__:
            if getattr(self, name) < 0:
                raise ValueError(f"cost coefficient {name} must be >= 0")


@dataclass(frozen=True, slots=True)
class TickWorkload:
    """What one tick actually did; produced by the engine per tick."""

    players: int = 0
    actions: int = 0
    commits: int = 0
    enqueues: int = 0
    flushes: int = 0
    messages: int = 0
    bytes_sent: int = 0


class TickCostModel:
    """Maps a :class:`TickWorkload` to a simulated tick duration."""

    def __init__(self, coefficients: CostCoefficients | None = None) -> None:
        self.coefficients = coefficients if coefficients is not None else CostCoefficients()

    def tick_duration_ms(self, work: TickWorkload) -> float:
        c = self.coefficients
        return (
            c.base_ms
            + c.per_player_ms * work.players
            + c.per_action_ms * work.actions
            + c.per_commit_ms * work.commits
            + c.per_enqueue_ms * work.enqueues
            + c.per_flush_ms * work.flushes
            + c.per_message_ms * work.messages
            + c.per_kilobyte_ms * (work.bytes_sent / 1024.0)
        )
