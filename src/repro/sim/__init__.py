"""Discrete-event simulation kernel (substrate S1).

The kernel provides simulated time in *milliseconds*, a deterministic
event queue, and seeded random-number derivation so that every experiment
in this repository is exactly reproducible from a single integer seed.
"""

from repro.sim.clock import SimClock
from repro.sim.events import EventQueue, ScheduledEvent
from repro.sim.rng import derive_rng, derive_seed
from repro.sim.simulator import Simulation

__all__ = [
    "SimClock",
    "EventQueue",
    "ScheduledEvent",
    "Simulation",
    "derive_rng",
    "derive_seed",
]
