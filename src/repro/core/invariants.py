"""Checked mode: cross-structure invariant auditing (S15).

The middleware keeps several structures in lockstep — the alias table and
its reverse map, per-subscriber membership and per-dyconit subscription
states, the lazy staleness-deadline heap and the queues it covers, and
the server-side viewer index. Each pair is cheap to maintain but easy to
desynchronize silently: a missed heap push does not crash, it just
flushes late and quietly breaks the staleness promise the whole
evaluation rests on.

:class:`InvariantAuditor` audits every such pair and returns *structured*
violations instead of asserting, so callers choose the failure mode:

* ``auditor.check(system)`` / ``auditor.check_server(server)`` — APIs
  returning a list of :class:`Violation`;
* ``ServerConfig.audit_every_n_ticks`` / ``--audit`` — the engine runs
  the audit every N ticks and raises :class:`InvariantViolationError`
  on the first violation (true no-op when disabled, like telemetry);
* the hypothesis state machine in ``tests/test_invariants_fuzz.py`` —
  drives random commit/subscribe/merge/split/bounds/tick interleavings
  against the auditor plus a naive reference model.

Invariant catalogue (one check* method per entry; DESIGN.md S15 lists
the structure pair each one guards):

I1  alias table acyclicity; ``_aliases`` ↔ ``_alias_sources`` exact
    mirror; no aliased id owns a live dyconit; no empty source bucket.
I2  ``_subscriptions_by_subscriber`` ≡ union of per-dyconit
    ``SubscriptionState`` membership, and both sides only reference
    registered subscribers.
I3  deadline-heap coverage: every pending state with a finite staleness
    bound has a live heap entry under its *current* dyconit id with
    deadline ≤ ``oldest_pending_time + staleness_ms`` (entries under
    merged-away ids are skipped lazily and provide no coverage).
I4  queue accounting: empty queue ⇔ zeroed error and no oldest-pending
    timestamp; ``pending`` in nondecreasing ``update.time`` order;
    ``oldest_pending_time`` ≤ the first pending update's time;
    ``accumulated_error`` ≥ the surviving pending weight (merging only
    ever adds error, never subtracts it).
I5  viewer index ≡ brute-force scan of per-session state (the
    differential ground truth promoted from the viewindex tests).
I6  per-link FIFO monotone delivery (observed at delivery time by the
    transport's checked mode; the auditor reports what it recorded).
I7  unique entity ownership (cluster, S16): every entity id is
    authoritative — present in a shard's world and not in its ghost
    set — on *exactly one* shard; ids riding the bus inside a pending
    SessionHandoff/EntityTransfer are excused (they are mid-transfer by
    construction). Ghost bookkeeping must be backed: every ghost id
    names a live entity in that shard's world.
I8  mirrored border subscriptions (cluster, S16): at the post-pump
    barrier, shard A's ``remote_interest[P]`` equals P's
    ``peer_registry[A]`` chunk for chunk, and every registered chunk's
    dyconit (alias-resolved) carries the peer's subscription in P's
    middleware. Pairs with control messages still in flight are skipped
    — the mirror is only promised at the barrier.
I9  flat columnar store (S17): per slot, a naive replay of the shared
    commit log window reproduces the columns exactly — pending set,
    accumulated error (bit-equal: same float op order), oldest-pending
    time, pending count; slot table ↔ subscriber list mirror;
    ``empty_subs`` ≡ zero-count slots; log bookkeeping (``last_key``,
    back-pointers, per-subscriber exclusion indices) matches a fresh
    scan; the scalar gates are conservative (may fire early, never
    late); no slot pins a dead log prefix longer than the compaction
    period (a stalled or excluded-only subscriber must not hold the
    shared log hostage). Server-side: the engine's commit buffer is
    drained at every audit barrier — a tick never ends with commits
    still deferred.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Hashable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.manager import DyconitSystem


@dataclass(frozen=True, slots=True)
class Violation:
    """One detected invariant breach."""

    invariant: str  # catalogue key, e.g. "I3.heap-coverage"
    subject: str  # the structure member at fault, repr-formatted
    message: str  # what held vs what was expected

    def __str__(self) -> str:
        return f"[{self.invariant}] {self.subject}: {self.message}"


class InvariantViolationError(AssertionError):
    """Raised by the engine's checked mode on a failed audit."""

    def __init__(self, violations: list[Violation]) -> None:
        self.violations = violations
        lines = "\n".join(f"  {violation}" for violation in violations)
        super().__init__(
            f"{len(violations)} middleware invariant violation(s):\n{lines}"
        )


#: Absolute slack for float comparisons. Deadlines and error sums are
#: built from the same additions the middleware performs, so violations
#: are orders of magnitude above this; the slack only absorbs benign
#: last-bit differences from re-association.
_EPS = 1e-9


class InvariantAuditor:
    """Audits a :class:`DyconitSystem` (and optionally its server)."""

    def check(self, system: "DyconitSystem") -> list[Violation]:
        """Run every middleware-level invariant; returns all violations."""
        violations: list[Violation] = []
        self._check_alias_tables(system, violations)
        self._check_subscription_mirror(system, violations)
        self._check_queue_accounting(system, violations)
        self._check_deadline_coverage(system, violations)
        self._check_flat_stores(system, violations)
        return violations

    def check_server(self, server) -> list[Violation]:
        """Middleware invariants plus the server-side structure pairs.

        ``server`` is a :class:`~repro.server.engine.GameServer`; in
        direct mode (no middleware) only the server-side invariants run.
        """
        violations: list[Violation] = []
        if server.dyconits is not None:
            violations.extend(self.check(server.dyconits))
        self._check_viewer_index(server, violations)
        self._check_link_fifo(server, violations)
        self._check_commit_buffer_drained(server, violations)
        return violations

    def check_cluster(self, cluster) -> list[Violation]:
        """Per-shard server invariants plus the cross-shard pairs.

        ``cluster`` is a :class:`~repro.cluster.facade.ShardedCluster`.
        Meant to run at the pump barrier (bus drained); anything
        legitimately in flight on the bus is excused explicitly rather
        than by loosening the checks.
        """
        violations: list[Violation] = []
        for shard in cluster.shards:
            for violation in self.check_server(shard):
                violations.append(
                    Violation(
                        violation.invariant,
                        f"shard {shard.shard_id}: {violation.subject}",
                        violation.message,
                    )
                )
        self._check_unique_ownership(cluster, violations)
        self._check_subscription_mirror_cluster(cluster, violations)
        return violations

    def assert_ok(self, system_or_server) -> None:
        """Raise :class:`InvariantViolationError` if anything is broken."""
        if hasattr(system_or_server, "shards"):
            violations = self.check_cluster(system_or_server)
        elif hasattr(system_or_server, "transport"):
            violations = self.check_server(system_or_server)
        else:
            violations = self.check(system_or_server)
        if violations:
            raise InvariantViolationError(violations)

    # ------------------------------------------------------------------
    # I1 — alias table ↔ reverse map
    # ------------------------------------------------------------------

    def _check_alias_tables(self, system, violations: list[Violation]) -> None:
        aliases: dict[Hashable, Hashable] = system._aliases
        sources: dict[Hashable, dict[Hashable, None]] = system._alias_sources
        for source_id in aliases:
            seen = {source_id}
            cursor = source_id
            while cursor in aliases:
                cursor = aliases[cursor]
                if cursor in seen:
                    violations.append(
                        Violation(
                            "I1.alias-acyclic",
                            repr(source_id),
                            f"alias chain revisits {cursor!r}",
                        )
                    )
                    break
                seen.add(cursor)
        for source_id, target_id in aliases.items():
            if source_id in system._dyconits:
                violations.append(
                    Violation(
                        "I1.alias-no-live-dyconit",
                        repr(source_id),
                        "aliased id still owns a live dyconit",
                    )
                )
            if source_id not in sources.get(target_id, ()):
                violations.append(
                    Violation(
                        "I1.alias-mirror",
                        repr(source_id),
                        f"missing from _alias_sources[{target_id!r}]",
                    )
                )
        for target_id, bucket in sources.items():
            if not bucket:
                violations.append(
                    Violation(
                        "I1.alias-mirror",
                        repr(target_id),
                        "empty _alias_sources bucket left behind",
                    )
                )
            for source_id in bucket:
                if aliases.get(source_id) != target_id:
                    violations.append(
                        Violation(
                            "I1.alias-mirror",
                            repr(source_id),
                            f"_alias_sources[{target_id!r}] entry not mirrored "
                            f"in _aliases (maps to {aliases.get(source_id)!r})",
                        )
                    )

    # ------------------------------------------------------------------
    # I2 — membership ↔ subscription states
    # ------------------------------------------------------------------

    def _check_subscription_mirror(self, system, violations: list[Violation]) -> None:
        membership: dict[int, dict[Hashable, None]] = system._subscriptions_by_subscriber
        registered = set(system._subscribers)
        if set(membership) != registered:
            violations.append(
                Violation(
                    "I2.membership-registry",
                    repr(sorted(set(membership) ^ registered)),
                    "membership keys differ from registered subscribers",
                )
            )
        actual: dict[int, set[Hashable]] = {}
        for dyconit_id, dyconit in system._dyconits.items():
            for state in dyconit.subscription_states():
                subscriber_id = state.subscriber.subscriber_id
                actual.setdefault(subscriber_id, set()).add(dyconit_id)
                if subscriber_id not in registered:
                    violations.append(
                        Violation(
                            "I2.membership-registry",
                            f"subscriber {subscriber_id}",
                            f"subscribed to {dyconit_id!r} but not registered",
                        )
                    )
        for subscriber_id, members in membership.items():
            expected = actual.get(subscriber_id, set())
            if set(members) != expected:
                violations.append(
                    Violation(
                        "I2.membership-mirror",
                        f"subscriber {subscriber_id}",
                        f"membership {sorted(map(repr, members))} != per-dyconit "
                        f"states {sorted(map(repr, expected))}",
                    )
                )

    # ------------------------------------------------------------------
    # I3 — deadline-heap coverage
    # ------------------------------------------------------------------

    def _check_deadline_coverage(self, system, violations: list[Violation]) -> None:
        # Min live deadline per (dyconit, subscriber). Entries under
        # merged-away ids find no dyconit at pop time and are skipped, so
        # they must not count as coverage.
        best: dict[tuple[Hashable, int], float] = {}
        for deadline, __, dyconit_id, subscriber_id in system._deadline_heap:
            if dyconit_id not in system._dyconits:
                continue
            key = (dyconit_id, subscriber_id)
            if deadline < best.get(key, math.inf):
                best[key] = deadline
        for dyconit_id, dyconit in system._dyconits.items():
            for state in dyconit.subscription_states():
                if not state.has_pending or math.isinf(state.bounds.staleness_ms):
                    continue
                required = state.oldest_pending_time + state.bounds.staleness_ms
                covering = best.get((dyconit_id, state.subscriber.subscriber_id))
                if covering is None:
                    violations.append(
                        Violation(
                            "I3.heap-coverage",
                            f"({dyconit_id!r}, subscriber "
                            f"{state.subscriber.subscriber_id})",
                            f"pending with staleness bound "
                            f"{state.bounds.staleness_ms:g} ms but no live heap "
                            f"entry (needs deadline <= {required:g})",
                        )
                    )
                elif covering > required + _EPS:
                    violations.append(
                        Violation(
                            "I3.heap-coverage",
                            f"({dyconit_id!r}, subscriber "
                            f"{state.subscriber.subscriber_id})",
                            f"earliest heap deadline {covering:g} is later than "
                            f"the bound-implied deadline {required:g} — the "
                            f"queue will flush late",
                        )
                    )

    # ------------------------------------------------------------------
    # I4 — per-queue accounting
    # ------------------------------------------------------------------

    def _check_queue_accounting(self, system, violations: list[Violation]) -> None:
        for dyconit_id, dyconit in system._dyconits.items():
            for state in dyconit.subscription_states():
                subject = f"({dyconit_id!r}, subscriber {state.subscriber.subscriber_id})"
                if not state.pending:
                    if state.accumulated_error != 0.0:
                        violations.append(
                            Violation(
                                "I4.queue-zeroed",
                                subject,
                                f"empty queue with accumulated_error "
                                f"{state.accumulated_error:g}",
                            )
                        )
                    if state.oldest_pending_time is not None:
                        violations.append(
                            Violation(
                                "I4.queue-zeroed",
                                subject,
                                f"empty queue with oldest_pending_time "
                                f"{state.oldest_pending_time:g}",
                            )
                        )
                    continue
                if state.oldest_pending_time is None:
                    violations.append(
                        Violation(
                            "I4.queue-zeroed",
                            subject,
                            "pending updates but oldest_pending_time is None",
                        )
                    )
                    continue
                updates = list(state.pending.values())
                times = [update.time for update in updates]
                if any(later < earlier for earlier, later in zip(times, times[1:])):
                    violations.append(
                        Violation(
                            "I4.queue-time-order",
                            subject,
                            f"pending times not nondecreasing: {times}",
                        )
                    )
                if state.oldest_pending_time > times[0] + _EPS:
                    violations.append(
                        Violation(
                            "I4.queue-oldest",
                            subject,
                            f"oldest_pending_time {state.oldest_pending_time:g} is "
                            f"later than the first pending update ({times[0]:g}) — "
                            f"staleness accounting undercounts the backlog's age",
                        )
                    )
                surviving_weight = sum(update.weight for update in updates)
                if state.accumulated_error + _EPS < surviving_weight:
                    violations.append(
                        Violation(
                            "I4.queue-error-floor",
                            subject,
                            f"accumulated_error {state.accumulated_error:g} below "
                            f"surviving pending weight {surviving_weight:g}",
                        )
                    )

    # ------------------------------------------------------------------
    # I5 — viewer index ≡ brute-force scan
    # ------------------------------------------------------------------

    def _check_viewer_index(self, server, violations: list[Violation]) -> None:
        for message in server.viewers.violations(server.sessions.values()):
            violations.append(Violation("I5.viewer-index", "ViewerIndex", message))

    # ------------------------------------------------------------------
    # I6 — per-link FIFO monotone delivery
    # ------------------------------------------------------------------

    def _check_link_fifo(self, server, violations: list[Violation]) -> None:
        for message in getattr(server.transport, "fifo_violations", ()):
            violations.append(Violation("I6.link-fifo", "Transport", message))

    # ------------------------------------------------------------------
    # I7 — unique entity ownership across shards
    # ------------------------------------------------------------------

    def _check_unique_ownership(self, cluster, violations: list[Violation]) -> None:
        # Ids inside pending transfer messages are mid-flight between
        # owners by construction; everything else must resolve to exactly
        # one authoritative copy *right now*.
        in_flight: set[int] = set()
        #: (dst shard, entity id) with a despawn record still on the bus:
        #: the owner already dropped the entity, the ghost dies at the
        #: next pump — excusable exactly on that shard.
        pending_despawns: set[tuple[int, int]] = set()
        for edge, messages in cluster.bus.pending_by_edge().items():
            for message in messages:
                entity_id = getattr(message, "entity_id", None)
                if entity_id is not None and hasattr(message, "client_id"):
                    in_flight.add(entity_id)  # SessionHandoff
                elif entity_id is not None and hasattr(message, "kind_value"):
                    in_flight.add(entity_id)  # EntityTransfer
                for record in getattr(message, "records", ()):
                    if type(record).__name__ == "GhostDespawn":
                        pending_despawns.add((edge[1], record.entity_id))
        owners: dict[int, list[int]] = {}
        for shard in cluster.shards:
            for entity in shard.world.entities():
                if entity.entity_id not in shard.ghost_ids:
                    owners.setdefault(entity.entity_id, []).append(shard.shard_id)
        for entity_id in sorted(owners):
            shard_ids = owners[entity_id]
            if len(shard_ids) > 1 and entity_id not in in_flight:
                violations.append(
                    Violation(
                        "I7.unique-ownership",
                        f"entity {entity_id}",
                        f"authoritative on shards {shard_ids} simultaneously",
                    )
                )
        for shard in cluster.shards:
            for ghost_id in sorted(shard.ghost_ids):
                if shard.world.get_entity(ghost_id) is None:
                    violations.append(
                        Violation(
                            "I7.ghost-backed",
                            f"shard {shard.shard_id}: entity {ghost_id}",
                            "ghost bookkeeping without a live entity",
                        )
                    )
                elif (
                    ghost_id not in owners
                    and ghost_id not in in_flight
                    and (shard.shard_id, ghost_id) not in pending_despawns
                ):
                    violations.append(
                        Violation(
                            "I7.ghost-of-nobody",
                            f"shard {shard.shard_id}: entity {ghost_id}",
                            "ghost replica of an entity no shard owns",
                        )
                    )

    # ------------------------------------------------------------------
    # I9 — flat columnar store ≡ naive log replay (S17)
    # ------------------------------------------------------------------

    def _check_flat_stores(self, system, violations: list[Violation]) -> None:
        for dyconit_id, dyconit in system._dyconits.items():
            flat = getattr(dyconit, "_flat", None)
            if flat is not None:
                self._check_flat_store(dyconit_id, flat, violations)

    def _check_flat_store(self, dyconit_id, flat, violations: list[Violation]) -> None:
        base = flat.base

        # Slot table <-> subscriber list mirror (the columnar analogue of
        # the I2 membership check).
        if len(flat.subscriber_by_slot) != flat.n or len(flat.slots) != flat.n:
            violations.append(
                Violation(
                    "I9.slot-mirror",
                    repr(dyconit_id),
                    f"n={flat.n} but {len(flat.subscriber_by_slot)} slot "
                    f"subscribers / {len(flat.slots)} slot ids",
                )
            )
            return
        for subscriber_id, slot in flat.slots.items():
            if (
                not 0 <= slot < flat.n
                or flat.subscriber_by_slot[slot].subscriber_id != subscriber_id
            ):
                violations.append(
                    Violation(
                        "I9.slot-mirror",
                        f"({dyconit_id!r}, subscriber {subscriber_id})",
                        f"slots[{subscriber_id}]={slot} does not round-trip "
                        f"through subscriber_by_slot",
                    )
                )
                return
        if set(flat._views) != set(flat.slots):
            violations.append(
                Violation(
                    "I9.slot-mirror",
                    repr(dyconit_id),
                    f"view registry {sorted(flat._views)} != slot table "
                    f"{sorted(flat.slots)}",
                )
            )

        # Log bookkeeping: last-key map, merge back-pointers and the
        # per-subscriber exclusion indices must all match a fresh scan.
        seen_last: dict = {}
        for i, update in enumerate(flat.log):
            key = update.merge_key
            expected_prev = seen_last.get(key)
            prev = flat.log_prev[i]
            if expected_prev is None:
                if prev >= base:
                    violations.append(
                        Violation(
                            "I9.log-chain",
                            f"({dyconit_id!r}, log entry {base + i})",
                            f"back-pointer {prev} names a retained entry but the "
                            f"key has no earlier retained occurrence",
                        )
                    )
            elif prev != expected_prev:
                violations.append(
                    Violation(
                        "I9.log-chain",
                        f"({dyconit_id!r}, log entry {base + i})",
                        f"back-pointer {prev} != previous same-key entry "
                        f"{expected_prev}",
                    )
                )
            seen_last[key] = base + i
        if flat.merging and flat.last_key != seen_last:
            violations.append(
                Violation(
                    "I9.log-chain",
                    repr(dyconit_id),
                    "last_key map differs from a fresh scan of the log",
                )
            )
        excl_expected: dict[int, list[int]] = {}
        for i, excluded in enumerate(flat.log_excl):
            if excluded is not None:
                excl_expected.setdefault(excluded, []).append(base + i)
        if excl_expected != flat.excl_by_sub:
            violations.append(
                Violation(
                    "I9.log-chain",
                    repr(dyconit_id),
                    "excl_by_sub index differs from a fresh scan of the log",
                )
            )

        # Per-slot naive replay of the cursor window, independent of
        # materialize_pairs: the columns must match exactly (the error
        # sum is the same float op sequence, so bit-equal).
        counts: list[int] = []
        for slot in range(flat.n):
            subscriber_id = flat.subscriber_by_slot[slot].subscriber_id
            subject = f"({dyconit_id!r}, subscriber {subscriber_id})"
            start = max(int(flat.cursor[slot]), base)
            err = 0.0
            oldest: float | None = None
            n_items = 0
            pending: dict = {}
            for i in range(start - base, len(flat.log)):
                if flat.log_excl[i] == subscriber_id:
                    continue
                update = flat.log[i]
                err += update.weight
                n_items += 1
                if oldest is None:
                    oldest = update.time
                if flat.merging:
                    key = update.merge_key
                    if key in pending:
                        del pending[key]
                    pending[key] = update
            count_expected = len(pending) if flat.merging else n_items
            count_actual = int(flat.count[slot]) + flat.count_shared
            counts.append(count_actual)
            if count_actual != count_expected:
                violations.append(
                    Violation(
                        "I9.replay",
                        subject,
                        f"pending count column {count_actual} != replayed "
                        f"{count_expected}",
                    )
                )
            if float(flat.err[slot]) != err:
                violations.append(
                    Violation(
                        "I9.replay",
                        subject,
                        f"error column {float(flat.err[slot])!r} != replayed "
                        f"{err!r} (must be bit-equal)",
                    )
                )
            col_oldest = float(flat.oldest[slot])
            if oldest is None:
                if not math.isinf(col_oldest):
                    violations.append(
                        Violation(
                            "I9.replay",
                            subject,
                            f"empty window but oldest column holds {col_oldest:g}",
                        )
                    )
            elif col_oldest != oldest:
                violations.append(
                    Violation(
                        "I9.replay",
                        subject,
                        f"oldest column {col_oldest!r} != first windowed "
                        f"update time {oldest!r}",
                    )
                )
            if flat.merging:
                view_pending = flat._views[subscriber_id].pending
                if list(view_pending.items()) != list(pending.items()):
                    violations.append(
                        Violation(
                            "I9.replay",
                            subject,
                            "materialized pending differs from naive replay",
                        )
                    )
            if (count_actual == 0) != (subscriber_id in flat.empty_subs):
                violations.append(
                    Violation(
                        "I9.empty-set",
                        subject,
                        f"count {count_actual} inconsistent with empty_subs "
                        f"membership {subscriber_id in flat.empty_subs}",
                    )
                )

        # Log-pinning bound: a slot must never hold the shared log back
        # by more than one compaction period of entries that are dead to
        # it. `_advance_excluded_cursors` runs every `_COMPACT_CHECK`
        # appends, so at any audit barrier an empty slot's cursor lags
        # the log end by at most that many entries, and a non-empty
        # slot's window starts with at most that many excluded-for-it
        # entries. A larger dead prefix means the stalled-subscriber
        # compaction regressed and the log is growing without bound.
        from repro.core.flatstate import _COMPACT_CHECK

        log_end = base + len(flat.log)
        for slot in range(flat.n):
            subscriber_id = flat.subscriber_by_slot[slot].subscriber_id
            subject = f"({dyconit_id!r}, subscriber {subscriber_id})"
            start = max(int(flat.cursor[slot]), base)
            if int(flat.count[slot]) + flat.count_shared == 0:
                lag = log_end - start
                if lag > _COMPACT_CHECK:
                    violations.append(
                        Violation(
                            "I9.log-pinned",
                            subject,
                            f"empty slot pins {lag} log entries "
                            f"(> compaction period {_COMPACT_CHECK})",
                        )
                    )
            else:
                prefix = 0
                for i in range(start - base, len(flat.log)):
                    if flat.log_excl[i] != subscriber_id:
                        break
                    prefix += 1
                if prefix > _COMPACT_CHECK:
                    violations.append(
                        Violation(
                            "I9.log-pinned",
                            subject,
                            f"window opens with {prefix} excluded-only "
                            f"entries (> compaction period {_COMPACT_CHECK})",
                        )
                    )

        # Scalar gates: exact where claimed exact, conservative otherwise
        # (a gate that can fire late silently breaks a bound promise).
        if flat.n:
            cursors = [int(flat.cursor[slot]) for slot in range(flat.n)]
            if flat.max_cursor != max(cursors):
                violations.append(
                    Violation(
                        "I9.gates",
                        repr(dyconit_id),
                        f"max_cursor {flat.max_cursor} != exact {max(cursors)}",
                    )
                )
            if flat.min_cursor_lb > min(cursors):
                violations.append(
                    Violation(
                        "I9.gates",
                        repr(dyconit_id),
                        f"min_cursor_lb {flat.min_cursor_lb} above the true "
                        f"minimum {min(cursors)} — windows could be clipped",
                    )
                )
            bnum = [float(flat.b_num[slot]) for slot in range(flat.n)]
            if flat.n_finite_bnum != sum(1 for b in bnum if math.isfinite(b)):
                violations.append(
                    Violation(
                        "I9.gates",
                        repr(dyconit_id),
                        f"n_finite_bnum {flat.n_finite_bnum} != exact count",
                    )
                )
            bstale = [float(flat.b_stale[slot]) for slot in range(flat.n)]
            if flat.any_finite_stale != any(math.isfinite(b) for b in bstale):
                violations.append(
                    Violation(
                        "I9.gates", repr(dyconit_id), "any_finite_stale is wrong"
                    )
                )
            if flat.min_bstale != min(bstale):
                violations.append(
                    Violation(
                        "I9.gates",
                        repr(dyconit_id),
                        f"min_bstale {flat.min_bstale:g} != exact {min(bstale):g}",
                    )
                )
            true_deadline = min(
                float(flat.oldest[slot]) + bstale[slot] for slot in range(flat.n)
            )
            if flat.min_deadline > true_deadline + 1e-6:
                violations.append(
                    Violation(
                        "I9.gates",
                        repr(dyconit_id),
                        f"staleness gate {flat.min_deadline:g} later than the "
                        f"earliest true deadline {true_deadline:g} — a queue "
                        f"would flush late",
                    )
                )
            border = [float(flat.b_order[slot]) for slot in range(flat.n)]
            if flat.min_border != min(border):
                violations.append(
                    Violation(
                        "I9.gates",
                        repr(dyconit_id),
                        f"min_border {flat.min_border:g} != exact {min(border):g}",
                    )
                )
            if flat.count_ub < max(counts):
                violations.append(
                    Violation(
                        "I9.gates",
                        repr(dyconit_id),
                        f"count_ub {flat.count_ub} below the true max pending "
                        f"count {max(counts)} — the order gate could fire late",
                    )
                )

    def _check_commit_buffer_drained(self, server, violations: list[Violation]) -> None:
        buffer = getattr(server, "_commit_buffer", None)
        if buffer:
            violations.append(
                Violation(
                    "I9.commit-buffer",
                    "GameServer",
                    f"{len(buffer)} commits still buffered at the audit "
                    f"barrier — a tick must end with the buffer drained",
                )
            )

    # ------------------------------------------------------------------
    # I8 — mirrored cross-shard subscriptions
    # ------------------------------------------------------------------

    def _check_subscription_mirror_cluster(
        self, cluster, violations: list[Violation]
    ) -> None:
        from repro.cluster.messages import PeerSubscribe, PeerUnsubscribe
        from repro.cluster.shard import peer_subscriber_id

        pending = cluster.bus.pending_by_edge()
        for subscriber in cluster.shards:
            for publisher in cluster.shards:
                if subscriber.shard_id == publisher.shard_id:
                    continue
                edge = (subscriber.shard_id, publisher.shard_id)
                if any(
                    isinstance(message, (PeerSubscribe, PeerUnsubscribe))
                    for message in pending.get(edge, ())
                ):
                    continue  # mirror promised only at the barrier
                wanted = set(
                    subscriber.remote_interest.get(publisher.shard_id, ())
                )
                registered = set(
                    publisher.peer_registry.get(subscriber.shard_id, ())
                )
                for chunk in sorted(wanted - registered, key=lambda c: (c.cx, c.cz)):
                    violations.append(
                        Violation(
                            "I8.mirror",
                            f"shard {subscriber.shard_id}->"
                            f"{publisher.shard_id} {chunk}",
                            "subscriber holds interest the publisher never "
                            "registered",
                        )
                    )
                for chunk in sorted(registered - wanted, key=lambda c: (c.cx, c.cz)):
                    violations.append(
                        Violation(
                            "I8.mirror",
                            f"shard {subscriber.shard_id}->"
                            f"{publisher.shard_id} {chunk}",
                            "publisher still registers a chunk the subscriber "
                            "dropped",
                        )
                    )
                if not registered or publisher.dyconits is None:
                    continue
                peer_id = peer_subscriber_id(subscriber.shard_id)
                subscribed = set(publisher.dyconits.subscription_ids_of(peer_id))
                for chunk in sorted(registered & wanted, key=lambda c: (c.cx, c.cz)):
                    dyconit_id = publisher.dyconits.resolve(
                        publisher.dyconits.partitioner.dyconit_for_chunk(chunk)
                    )
                    if dyconit_id not in subscribed:
                        violations.append(
                            Violation(
                                "I8.dyconit-backing",
                                f"shard {publisher.shard_id} {chunk}",
                                f"registered for peer {subscriber.shard_id} but "
                                f"dyconit {dyconit_id!r} has no peer "
                                "subscription",
                            )
                        )
