"""Experiment execution."""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass, field

from repro.bots.workload import ChurnWorkload, Workload
from repro.cluster import ParallelShardRunner, ShardedCluster
from repro.experiments.configs import ExperimentConfig, make_partitioner
from repro.metrics.summary import Summary, describe
from repro.server.engine import GameServer
from repro.sim.simulator import Simulation
from repro.telemetry.bridge import install_tracer
from repro.telemetry.hub import Telemetry, get_telemetry
from repro.world.world import World


@dataclass
class ExperimentResult:
    """Everything measured in one experiment point."""

    config: ExperimentConfig

    # Traffic (whole run and steady-state window).
    bytes_total: int = 0
    packets_total: int = 0
    steady_bytes_per_second: float = 0.0
    steady_packets_per_second: float = 0.0
    steady_bytes_per_player_per_second: float = 0.0
    bytes_by_kind: dict[str, int] = field(default_factory=dict)
    packets_by_kind: dict[str, int] = field(default_factory=dict)

    # Server health over the steady window.
    tick_duration: Summary = field(default_factory=lambda: describe([]))
    effective_tick_rate_hz: float = 0.0

    # Middleware behaviour.
    dyconit_stats: dict[str, float] = field(default_factory=dict)
    update_queue_delay_p50_ms: float = 0.0
    update_queue_delay_p99_ms: float = 0.0

    # Client-observed inconsistency.
    positional_error_mean: float = 0.0
    positional_error_p95: float = 0.0
    positional_error_p99: float = 0.0
    positional_error_max: float = 0.0
    staleness_p50_ms: float = 0.0
    staleness_p99_ms: float = 0.0

    # Network latency (exact when config.record_latencies, reservoir-
    # sampled otherwise).
    packet_latency: Summary = field(default_factory=lambda: describe([]))

    # Fault layer & churn (E9).
    packets_dropped: int = 0
    reconnects: int = 0
    churn_crashes: int = 0
    churn_rejoins: int = 0

    # Sharded cluster (E11); all zero on single-server runs.
    shards: int = 1
    handoffs: int = 0
    handoffs_cancelled: int = 0
    entity_transfers: int = 0
    intershard_bytes: int = 0
    intershard_messages: int = 0
    intershard_bytes_per_second: float = 0.0
    intershard_messages_by_kind: dict[str, int] = field(default_factory=dict)
    shard_tick_p95_ms: list[float] = field(default_factory=list)
    shard_players: list[int] = field(default_factory=list)

    # Timelines for the dynamics figure.
    bandwidth_timeline: list[tuple[float, float]] = field(default_factory=list)
    player_timeline: list[tuple[float, float]] = field(default_factory=list)
    tick_timeline: list[tuple[float, float]] = field(default_factory=list)
    factor_timeline: list[tuple[float, float]] = field(default_factory=list)

    def as_row(self) -> dict[str, object]:
        """Flat row used by the table-producing figures."""
        return {
            "policy": self.config.policy,
            "bots": self.config.bots,
            "kB/s": self.steady_bytes_per_second / 1e3,
            "pkts/s": self.steady_packets_per_second,
            "p95 tick ms": self.tick_duration.p95,
            "merge %": 100.0 * self.dyconit_stats.get("merge_ratio", 0.0),
            "err p99": self.positional_error_p99,
            "stale p99 ms": self.staleness_p99_ms,
        }


def run_experiment(
    config: ExperimentConfig,
    hooks=None,
    telemetry: Telemetry | None = None,
) -> ExperimentResult:
    """Run one experiment point in a fresh simulation.

    ``hooks`` is an optional list of ``(time_ms, callable(server, workload))``
    pairs the dynamics experiment uses to inject load bursts.

    ``telemetry`` defaults to the ambient hub (installed by the CLI's
    ``--telemetry`` flag); when enabled, the run is instrumented
    end-to-end — tick-phase spans, middleware counters, a tracer bridging
    middleware decisions onto the same timeline — and the whole run is
    wrapped in an ``experiment.run`` span labeled with the config.
    """
    if telemetry is None:
        telemetry = get_telemetry()
    sim = Simulation(telemetry=telemetry)
    if telemetry.enabled:
        telemetry.set_time_source(lambda: sim.now)
    if config.shards > 1:
        # Sharded world (S16): each shard is a full GameServer; the
        # facade keeps the single-server surface the workload expects.
        use_parallel = config.parallel_ticks
        if use_parallel and multiprocessing.current_process().daemon:
            # A daemonic process (an S14 sweep worker) cannot have
            # children, so the parallel runtime cannot spawn its shard
            # workers here. Fall back to the serial cluster: the S18
            # contract makes the result byte-identical either way, so
            # the cell's output — and hence its cached payload and the
            # merged store — does not depend on where it ran.
            use_parallel = False
            telemetry.counter("cluster_parallel_ticks_degraded_total").increment()
        if use_parallel:
            # S18: shard ticks run in worker processes. Merging and
            # latency recording travel in the worker spec (the parent
            # holds mirrors, not live shards), and the dyconit tracer
            # cannot bridge process boundaries, so it stays off.
            cluster = ParallelShardRunner(
                sim,
                shards=config.shards,
                strip_width=config.strip_width,
                config=config.build_server_config(),
                policy_factory=config.build_policy,
                partitioner_factory=lambda: make_partitioner(config.partitioner),
                telemetry=telemetry,
                merging_enabled=config.merging_enabled,
                record_latencies=config.record_latencies,
            )
        else:
            cluster = ShardedCluster(
                sim,
                shards=config.shards,
                strip_width=config.strip_width,
                config=config.build_server_config(),
                policy_factory=config.build_policy,
                partitioner_factory=lambda: make_partitioner(config.partitioner),
                telemetry=telemetry,
            )
            for shard in cluster.shards:
                shard.dyconits.merging_enabled = config.merging_enabled
                shard.transport.record_latencies = config.record_latencies
                if telemetry.enabled:
                    install_tracer(shard.dyconits, telemetry)
        cluster.start()
        server = cluster
        policy = None
    else:
        cluster = None
        world = World(seed=config.seed)
        policy = config.build_policy()
        server = GameServer(
            sim,
            world=world,
            config=config.build_server_config(),
            policy=policy,
            partitioner=None if policy is None else make_partitioner(config.partitioner),
            direct_mode=policy is None,
            telemetry=telemetry,
        )
        if server.dyconits is not None:
            server.dyconits.merging_enabled = config.merging_enabled
            if telemetry.enabled:
                install_tracer(server.dyconits, telemetry)
        server.transport.record_latencies = config.record_latencies
        server.start()

    if config.churn is not None:
        workload: Workload = ChurnWorkload(
            sim, server, config.build_workload_spec(), churn=config.churn
        )
    else:
        workload = Workload(sim, server, config.build_workload_spec())
    workload.start()

    if hooks:
        for time_ms, hook in hooks:
            sim.schedule_at(time_ms, _bind_hook(hook, server, workload))

    with telemetry.span(
        "experiment.run", name=config.name, policy=config.policy, bots=config.bots
    ):
        sim.run_until(config.duration_ms)

    if cluster is not None:
        if isinstance(cluster, ParallelShardRunner):
            # Pull transport/metrics/dyconit state out of the workers
            # and shut them down before reading the handles.
            cluster.finalize()
        return collect_cluster_result(config, cluster, workload)
    return collect_result(config, server, workload, policy)


def _bind_hook(hook, server, workload):
    def fire() -> None:
        hook(server, workload)

    return fire


def collect_result(
    config: ExperimentConfig, server: GameServer, workload: Workload, policy
) -> ExperimentResult:
    """Assemble an :class:`ExperimentResult` from a finished run."""
    result = ExperimentResult(config=config)
    transport = server.transport
    result.bytes_total = transport.total_bytes()
    result.packets_total = transport.total_packets()
    result.bytes_by_kind = transport.bytes_by_kind()
    result.packets_by_kind = transport.packets_by_kind()

    window_s = (config.duration_ms - config.warmup_ms) / 1000.0
    bytes_series = server.metrics.series("bytes_total")
    steady_bytes = _series_growth(bytes_series, config.warmup_ms, config.duration_ms)
    result.steady_bytes_per_second = steady_bytes / window_s if window_s > 0 else 0.0
    players = max(1, config.bots)
    result.steady_bytes_per_player_per_second = result.steady_bytes_per_second / players

    tick_series = server.metrics.series("tick_duration_ms")
    steady_ticks = tick_series.window(config.warmup_ms, config.duration_ms)
    result.tick_duration = describe(steady_ticks)
    if steady_ticks:
        # Effective rate: ticks per second of the steady window.
        result.effective_tick_rate_hz = len(steady_ticks) / window_s
    result.steady_packets_per_second = _estimate_packet_rate(server, config, window_s)

    if server.dyconits is not None:
        result.dyconit_stats = server.dyconits.stats.as_dict()
        delay_hist = server.metrics.histogram("update_queue_delay_ms", min_value=0.1)
        result.update_queue_delay_p50_ms = delay_hist.quantile(0.50)
        result.update_queue_delay_p99_ms = delay_hist.quantile(0.99)

    result.positional_error_mean = workload.error_histogram.mean
    result.positional_error_p95 = workload.error_histogram.quantile(0.95)
    result.positional_error_p99 = workload.error_histogram.quantile(0.99)
    result.positional_error_max = max(0.0, workload.error_histogram.max_value)
    result.staleness_p50_ms = workload.staleness_histogram.quantile(0.50)
    result.staleness_p99_ms = workload.staleness_histogram.quantile(0.99)

    if config.record_latencies:
        result.packet_latency = describe(transport.latencies_ms)

    result.packets_dropped = transport.packets_dropped
    result.reconnects = transport.reconnect_count
    if isinstance(workload, ChurnWorkload):
        result.churn_crashes = workload.crashes
        result.churn_rejoins = workload.rejoins

    result.bandwidth_timeline = _rate_timeline(bytes_series)
    player_series = server.metrics.series("player_count")
    result.player_timeline = list(zip(player_series.times, player_series.values))
    result.tick_timeline = list(zip(tick_series.times, tick_series.values))
    if policy is not None and hasattr(policy, "factor_history"):
        result.factor_timeline = list(policy.factor_history)
    return result


def collect_cluster_result(
    config: ExperimentConfig, cluster: ShardedCluster, workload: Workload
) -> ExperimentResult:
    """Assemble an :class:`ExperimentResult` from a sharded run.

    Traffic and middleware counters aggregate across shards; tick health
    keeps both a cluster-wide summary (all shards' steady ticks pooled)
    and the per-shard p95 list E11 reports. Client-observed consistency
    comes from the workload, which already measures against the
    authoritative cross-shard world view.
    """
    result = ExperimentResult(config=config)
    result.shards = len(cluster.shards)
    result.bytes_total = cluster.total_bytes()
    result.packets_total = cluster.total_packets()
    for shard in cluster.shards:
        for kind, count in shard.transport.bytes_by_kind().items():
            result.bytes_by_kind[kind] = result.bytes_by_kind.get(kind, 0) + count
        for kind, count in shard.transport.packets_by_kind().items():
            result.packets_by_kind[kind] = result.packets_by_kind.get(kind, 0) + count

    window_s = (config.duration_ms - config.warmup_ms) / 1000.0
    steady_bytes = sum(
        _series_growth(
            shard.metrics.series("bytes_total"), config.warmup_ms, config.duration_ms
        )
        for shard in cluster.shards
    )
    result.steady_bytes_per_second = steady_bytes / window_s if window_s > 0 else 0.0
    players = max(1, config.bots)
    result.steady_bytes_per_player_per_second = result.steady_bytes_per_second / players

    pooled_ticks: list[float] = []
    for shard in cluster.shards:
        ticks = shard.metrics.series("tick_duration_ms").window(
            config.warmup_ms, config.duration_ms
        )
        pooled_ticks.extend(ticks)
        result.shard_tick_p95_ms.append(describe(ticks).p95)
        result.shard_players.append(len(shard.sessions))
    result.tick_duration = describe(pooled_ticks)
    if pooled_ticks and window_s > 0:
        # Per-shard tick rate: every shard ticks on its own schedule.
        result.effective_tick_rate_hz = len(pooled_ticks) / len(cluster.shards) / window_s
    total_s = config.duration_ms / 1000.0
    if total_s > 0:
        result.steady_packets_per_second = result.packets_total / total_s

    result.dyconit_stats = _merge_dyconit_stats(
        [shard.dyconits.stats for shard in cluster.shards]
    )
    result.update_queue_delay_p50_ms = max(
        shard.metrics.histogram("update_queue_delay_ms", min_value=0.1).quantile(0.50)
        for shard in cluster.shards
    )
    result.update_queue_delay_p99_ms = max(
        shard.metrics.histogram("update_queue_delay_ms", min_value=0.1).quantile(0.99)
        for shard in cluster.shards
    )

    result.positional_error_mean = workload.error_histogram.mean
    result.positional_error_p95 = workload.error_histogram.quantile(0.95)
    result.positional_error_p99 = workload.error_histogram.quantile(0.99)
    result.positional_error_max = max(0.0, workload.error_histogram.max_value)
    result.staleness_p50_ms = workload.staleness_histogram.quantile(0.50)
    result.staleness_p99_ms = workload.staleness_histogram.quantile(0.99)

    if config.record_latencies:
        latencies: list[float] = []
        for shard in cluster.shards:
            latencies.extend(shard.transport.latencies_ms)
        result.packet_latency = describe(latencies)

    result.packets_dropped = sum(
        shard.transport.packets_dropped for shard in cluster.shards
    )
    result.reconnects = sum(
        shard.transport.reconnect_count for shard in cluster.shards
    )
    if isinstance(workload, ChurnWorkload):
        result.churn_crashes = workload.crashes
        result.churn_rejoins = workload.rejoins

    result.handoffs = cluster.handoffs
    result.handoffs_cancelled = cluster.handoffs_cancelled
    result.intershard_bytes = cluster.bus.total_bytes
    result.intershard_messages = cluster.bus.total_messages
    result.intershard_messages_by_kind = dict(cluster.bus.messages_by_kind)
    result.entity_transfers = cluster.bus.messages_by_kind.get("EntityTransfer", 0)
    if total_s > 0:
        result.intershard_bytes_per_second = cluster.bus.total_bytes / total_s

    # Timelines: shards tick on the same cadence, so merge pointwise —
    # bandwidth and players sum, per-tick time takes the slowest shard
    # (the cluster's critical path).
    bytes_view = _merge_series(
        [shard.metrics.series("bytes_total") for shard in cluster.shards], sum
    )
    result.bandwidth_timeline = _rate_timeline(bytes_view)
    player_view = _merge_series(
        [shard.metrics.series("player_count") for shard in cluster.shards], sum
    )
    result.player_timeline = list(zip(player_view.times, player_view.values))
    tick_view = _merge_series(
        [shard.metrics.series("tick_duration_ms") for shard in cluster.shards], max
    )
    result.tick_timeline = list(zip(tick_view.times, tick_view.values))
    return result


def _merge_dyconit_stats(stats_list) -> dict[str, float]:
    """Cluster-wide middleware counters: sums, with the derived ratios
    recomputed from the summed raw counts."""
    merged: dict[str, float] = {}
    for stats in stats_list:
        for key, value in stats.as_dict().items():
            merged[key] = merged.get(key, 0.0) + value
    enqueued = sum(stats.updates_enqueued for stats in stats_list)
    merged["merge_ratio"] = (
        sum(stats.updates_merged for stats in stats_list) / enqueued
        if enqueued
        else 0.0
    )
    delay_samples = sum(stats.queue_delay_samples for stats in stats_list)
    merged["mean_queue_delay_ms"] = (
        sum(stats.queue_delay_total_ms for stats in stats_list) / delay_samples
        if delay_samples
        else 0.0
    )
    return merged


class _SeriesView:
    """Read-only (times, values) pair quacking like a metrics series."""

    def __init__(self, times: list[float], values: list[float]) -> None:
        self.times = times
        self.values = values

    def __len__(self) -> int:
        return len(self.times)


def _merge_series(series_list, combine) -> _SeriesView:
    """Combine same-cadence cumulative/gauge series pointwise by time."""
    by_time: dict[float, list[float]] = {}
    for series in series_list:
        for time, value in zip(series.times, series.values):
            by_time.setdefault(time, []).append(value)
    times = sorted(by_time)
    return _SeriesView(times, [combine(by_time[time]) for time in times])


def _series_growth(series, start: float, end: float) -> float:
    """Growth of a cumulative series across [start, end)."""
    value_at_start = None
    value_at_end = None
    for time, value in zip(series.times, series.values):
        if time < start:
            value_at_start = value
        if time < end:
            value_at_end = value
    if value_at_end is None:
        return 0.0
    if value_at_start is None:
        value_at_start = 0.0
    return value_at_end - value_at_start


def _estimate_packet_rate(server: GameServer, config: ExperimentConfig, window_s: float) -> float:
    # messages_sent counts every packet the engine sent; approximate the
    # steady rate by scaling total packets by the window share of sends.
    # (Exact per-window packet counts would need a packet series; bytes
    # are the primary bandwidth metric, packets are a secondary view.)
    total_s = config.duration_ms / 1000.0
    if total_s <= 0 or window_s <= 0:
        return 0.0
    return server.transport.total_packets() / total_s


def _rate_timeline(series, bucket_ms: float = 1000.0) -> list[tuple[float, float]]:
    """Convert a cumulative byte series to per-second rates per bucket."""
    if len(series) < 2:
        return []
    timeline: list[tuple[float, float]] = []
    bucket_start = series.times[0]
    bucket_value = series.values[0]
    for time, value in zip(series.times, series.values):
        while time >= bucket_start + bucket_ms:
            elapsed_s = bucket_ms / 1000.0
            timeline.append(((bucket_start + bucket_ms), (value - bucket_value) / elapsed_s))
            bucket_start += bucket_ms
            bucket_value = value
    return timeline
