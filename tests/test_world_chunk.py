"""Unit tests for chunk storage."""

import numpy as np
import pytest

from repro.world.block import BlockType
from repro.world.chunk import CHUNK_SIZE, WORLD_HEIGHT, Chunk
from repro.world.geometry import BlockPos, ChunkPos


@pytest.fixture
def chunk() -> Chunk:
    return Chunk(ChunkPos(0, 0))


def test_new_chunk_is_all_air(chunk):
    assert chunk.non_air_count == 0
    assert chunk.get_block(BlockPos(0, 0, 0)) == BlockType.AIR


def test_set_and_get_block(chunk):
    pos = BlockPos(5, 10, 7)
    old = chunk.set_block(pos, BlockType.STONE)
    assert old == BlockType.AIR
    assert chunk.get_block(pos) == BlockType.STONE


def test_set_block_returns_previous(chunk):
    pos = BlockPos(1, 1, 1)
    chunk.set_block(pos, BlockType.DIRT)
    assert chunk.set_block(pos, BlockType.GRASS) == BlockType.DIRT


def test_non_air_count_tracks_changes(chunk):
    pos = BlockPos(0, 5, 0)
    chunk.set_block(pos, BlockType.STONE)
    assert chunk.non_air_count == 1
    chunk.set_block(pos, BlockType.DIRT)  # replace: still 1 non-air
    assert chunk.non_air_count == 1
    chunk.set_block(pos, BlockType.AIR)
    assert chunk.non_air_count == 0


def test_noop_set_does_not_count_as_modification(chunk):
    pos = BlockPos(2, 2, 2)
    chunk.set_block(pos, BlockType.STONE)
    count = chunk.modified_count
    chunk.set_block(pos, BlockType.STONE)
    assert chunk.modified_count == count


def test_modified_count_increments(chunk):
    chunk.set_block(BlockPos(0, 1, 0), BlockType.STONE)
    chunk.set_block(BlockPos(0, 2, 0), BlockType.STONE)
    assert chunk.modified_count == 2


def test_rejects_out_of_height_blocks(chunk):
    with pytest.raises(ValueError):
        chunk.get_block(BlockPos(0, WORLD_HEIGHT, 0))
    with pytest.raises(ValueError):
        chunk.set_block(BlockPos(0, -1, 0), BlockType.STONE)


def test_rejects_blocks_of_other_chunks(chunk):
    with pytest.raises(ValueError):
        chunk.set_block(BlockPos(16, 0, 0), BlockType.STONE)


def test_negative_chunk_local_mapping():
    chunk = Chunk(ChunkPos(-1, -1))
    pos = BlockPos(-1, 3, -16)  # local (15, 3, 0)
    chunk.set_block(pos, BlockType.SAND)
    assert chunk.get_block(pos) == BlockType.SAND
    assert chunk.blocks[15, 3, 0] == int(BlockType.SAND)


def test_surface_height(chunk):
    assert chunk.surface_height(3, 3) == -1
    chunk.set_block(BlockPos(3, 0, 3), BlockType.BEDROCK)
    chunk.set_block(BlockPos(3, 20, 3), BlockType.STONE)
    assert chunk.surface_height(3, 3) == 20


def test_rejects_wrong_array_shape():
    with pytest.raises(ValueError):
        Chunk(ChunkPos(0, 0), blocks=np.zeros((4, 4, 4), dtype=np.uint16))


def test_contains(chunk):
    assert chunk.contains(BlockPos(0, 0, 0))
    assert chunk.contains(BlockPos(15, WORLD_HEIGHT - 1, 15))
    assert not chunk.contains(BlockPos(16, 0, 0))
    assert not chunk.contains(BlockPos(0, WORLD_HEIGHT, 0))


def test_chunk_dimensions():
    assert CHUNK_SIZE == 16
    chunk = Chunk(ChunkPos(2, 3))
    assert chunk.blocks.shape == (CHUNK_SIZE, WORLD_HEIGHT, CHUNK_SIZE)
