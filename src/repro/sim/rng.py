"""Seeded random-number derivation.

Every stochastic component (terrain, bot movement, arrival process, link
jitter) gets its own :class:`random.Random` derived from the experiment's
master seed and a stable string path, e.g. ``derive_rng(42, "bot", 17)``.
Components therefore never share generator state, so adding a new random
draw in one component cannot perturb another — a property the experiment
harness relies on when comparing policies under *identical* workloads.
"""

from __future__ import annotations

import hashlib
import random


def derive_seed(master_seed: int, *path: object) -> int:
    """Derive a stable 64-bit seed from ``master_seed`` and a label path."""
    label = ":".join(str(part) for part in (master_seed, *path))
    digest = hashlib.sha256(label.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def derive_rng(master_seed: int, *path: object) -> random.Random:
    """Return a fresh :class:`random.Random` for the given label path."""
    return random.Random(derive_seed(master_seed, *path))
