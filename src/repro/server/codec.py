"""Update-batch to packet conversion.

The codec turns a batch of world events (either a single vanilla
broadcast or a merged dyconit flush) into the packets a Minecraft-like
client expects, maintaining the per-session replica bookkeeping that
makes relative-move packets valid:

* block changes within one chunk batch into a multi-block-change packet;
* entity moves become relative moves when the client knows the entity and
  the delta fits, teleports otherwise;
* moves of entities the client has never seen synthesize a spawn first
  (this happens when bound-merging collapsed the original spawn away);
* despawns batch into one destroy-entities packet.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from repro.net.protocol import (
    BlockChangePacket,
    ChatMessagePacket,
    DestroyEntitiesPacket,
    EntityPositionPacket,
    EntityTeleportPacket,
    MultiBlockChangePacket,
    Packet,
    SpawnEntityPacket,
)
from repro.world.entity import EntityKind
from repro.world.events import (
    BlockChangeEvent,
    ChatEvent,
    EntityDespawnEvent,
    EntityMoveEvent,
    EntitySpawnEvent,
    WorldEvent,
)
from repro.server.session import PlayerSession

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.world.world import World


class SessionCodec:
    """Stateless converter; all per-client state lives in the session."""

    def __init__(self, world: "World") -> None:
        self.world = world

    def encode(
        self, session: PlayerSession, updates: Sequence[WorldEvent]
    ) -> list[Packet]:
        """Convert ``updates`` (in commit-time order) into packets."""
        packets: list[Packet] = []
        block_changes: dict = {}  # chunk -> {pos: block}
        despawned: list[int] = []

        for update in updates:
            if isinstance(update, BlockChangeEvent):
                chunk = update.pos.to_chunk_pos()
                if not session.sees_chunk(chunk):
                    # The client has not loaded that chunk; it would
                    # discard the change anyway (and re-receives the block
                    # inside the chunk payload if it ever walks there).
                    continue
                chunk_changes = block_changes.setdefault(chunk, {})
                chunk_changes[update.pos] = update.new_block
            elif isinstance(update, EntityMoveEvent):
                packet = self._encode_move(session, update)
                if packet is not None:
                    packets.append(packet)
            elif isinstance(update, EntitySpawnEvent):
                if update.entity_id == session.entity_id:
                    continue  # the client spawns its own avatar locally
                if not session.sees_chunk(update.position.to_chunk_pos()):
                    continue  # stale queued spawn for an area now out of view
                last_time = session.entity_update_times.get(update.entity_id)
                if last_time is not None and update.time < last_time:
                    continue  # superseded by a newer update already applied
                if update.entity_id not in session.known_entities:
                    session.entity_update_times[update.entity_id] = update.time
                    session.known_entities[update.entity_id] = update.position
                    packets.append(
                        SpawnEntityPacket(
                            entity_id=update.entity_id,
                            entity_kind=update.kind,
                            position=update.position,
                            name=update.name,
                        )
                    )
            elif isinstance(update, EntityDespawnEvent):
                if session.forget_entity(update.entity_id):
                    despawned.append(update.entity_id)
            elif isinstance(update, ChatEvent):
                packets.append(
                    ChatMessagePacket(sender_id=update.sender_id, text=update.text)
                )

        for chunk, changes in block_changes.items():
            if len(changes) == 1:
                pos, block = next(iter(changes.items()))
                packets.append(BlockChangePacket(pos=pos, block=block))
            else:
                packets.append(
                    MultiBlockChangePacket(
                        chunk=chunk, changes=tuple(sorted(changes.items(), key=str))
                    )
                )

        if despawned:
            packets.append(DestroyEntitiesPacket(entity_ids=tuple(despawned)))
        return packets

    def _encode_move(
        self, session: PlayerSession, update: EntityMoveEvent
    ) -> Packet | None:
        if update.entity_id == session.entity_id:
            return None  # never echo a player's own movement back
        last_time = session.entity_update_times.get(update.entity_id)
        if last_time is not None and update.time < last_time:
            # A flush from another dyconit already applied a newer state
            # for this entity; applying this one would regress the replica.
            return None
        session.entity_update_times[update.entity_id] = update.time
        if not session.sees_chunk(update.new_position.to_chunk_pos()):
            # The entity ended up outside this client's view (e.g. a
            # merged move that crossed several chunks while queued).
            # Keep the invariant known ⊆ view: destroy the replica.
            if session.forget_entity(update.entity_id):
                return DestroyEntitiesPacket(entity_ids=(update.entity_id,))
            return None
        last_sent = session.known_entities.get(update.entity_id)
        if last_sent is None:
            # The spawn was merged away (or the entity walked into view):
            # synthesize it so the client has a replica to move.
            entity = self.world.get_entity(update.entity_id)
            if entity is None:
                session.entity_update_times.pop(update.entity_id, None)
                return None  # already despawned; the despawn will follow
            session.known_entities[update.entity_id] = update.new_position
            return SpawnEntityPacket(
                entity_id=update.entity_id,
                entity_kind=entity.kind,
                position=update.new_position,
                name=entity.name,
            )
        delta = update.new_position - last_sent
        session.known_entities[update.entity_id] = update.new_position
        if EntityPositionPacket.fits(delta):
            return EntityPositionPacket(
                entity_id=update.entity_id,
                delta=delta,
                yaw=update.yaw,
                pitch=update.pitch,
            )
        return EntityTeleportPacket(
            entity_id=update.entity_id,
            position=update.new_position,
            yaw=update.yaw,
            pitch=update.pitch,
        )

    def encode_entity_snapshot(
        self, session: PlayerSession, entity_id: int
    ) -> Packet | None:
        """Spawn packet for one live entity (initial view sync)."""
        entity = self.world.get_entity(entity_id)
        if entity is None or entity_id == session.entity_id:
            return None
        if entity_id in session.known_entities:
            return None
        session.known_entities[entity_id] = entity.position
        # The snapshot reflects the authoritative present: any update still
        # queued in a dyconit is older than this and must not regress it.
        session.entity_update_times[entity_id] = self.world.time
        return SpawnEntityPacket(
            entity_id=entity.entity_id,
            entity_kind=entity.kind,
            position=entity.position,
            name=entity.name,
        )


def entity_kind_or_unknown(kind: EntityKind | None) -> EntityKind:
    return kind if kind is not None else EntityKind.ITEM
