"""Unit tests for the per-client link model."""

import pytest

from repro.net.link import ClientLink, LinkConfig
from repro.net.protocol import KeepAlivePacket


def make_link(bandwidth_bps=8000.0, latency_ms=10.0) -> ClientLink:
    return ClientLink(1, LinkConfig(bandwidth_bps=bandwidth_bps, latency_ms=latency_ms))


def test_config_validation():
    with pytest.raises(ValueError):
        LinkConfig(bandwidth_bps=0)
    with pytest.raises(ValueError):
        LinkConfig(latency_ms=-1)
    with pytest.raises(ValueError):
        LinkConfig(jitter_ms=-0.1)


def test_delivery_time_includes_latency_and_serialization():
    link = make_link(bandwidth_bps=8000.0, latency_ms=10.0)  # 1 byte/ms
    packet = KeepAlivePacket()  # 11 bytes on the wire
    delivery = link.transmit(packet, now=0.0)
    assert delivery == pytest.approx(10.0 + packet.wire_size())


def test_fifo_queueing_under_backlog():
    link = make_link(bandwidth_bps=8000.0, latency_ms=0.0)
    packet = KeepAlivePacket()
    first = link.transmit(packet, now=0.0)
    second = link.transmit(packet, now=0.0)
    assert second == pytest.approx(first + packet.wire_size())
    assert link.queueing_delay(0.0) == pytest.approx(2 * packet.wire_size())


def test_idle_link_has_no_queueing():
    link = make_link(bandwidth_bps=1e9)
    assert link.queueing_delay(0.0) == 0.0
    link.transmit(KeepAlivePacket(), now=0.0)
    assert link.queueing_delay(100.0) == 0.0


def test_stats_accumulate():
    link = make_link()
    packet = KeepAlivePacket()
    link.transmit(packet, now=0.0)
    link.transmit(packet, now=1.0)
    assert link.stats.packets == 2
    assert link.stats.bytes == 2 * packet.wire_size()
    assert link.stats.packets_by_kind["KeepAlivePacket"] == 2
    assert link.stats.bytes_by_kind["KeepAlivePacket"] == 2 * packet.wire_size()


def test_jitter_adds_bounded_delay():
    values = iter([3.0, 0.0])
    link = ClientLink(1, LinkConfig(latency_ms=10.0, jitter_ms=5.0), jitter=lambda: next(values))
    packet = KeepAlivePacket()
    with_jitter = link.transmit(packet, now=0.0)
    base = link.transmit(packet, now=1000.0)
    assert with_jitter > base - 1000.0  # jittered delivery is later
