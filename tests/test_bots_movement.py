"""Unit tests for bot movement models."""

import math
import random

from repro.bots.movement import (
    WALK_SPEED,
    HotspotModel,
    RandomWaypointModel,
    TrekModel,
)
from repro.world.geometry import Vec3


def rng(seed=0):
    return random.Random(seed)


class TestRandomWaypoint:
    def test_waypoints_within_radius(self):
        model = RandomWaypointModel(center=Vec3(10, 0, 10), radius=50.0)
        r = rng()
        for _ in range(200):
            waypoint = model.next_waypoint(r, Vec3(0, 0, 0))
            distance = math.hypot(waypoint.x - 10, waypoint.z - 10)
            assert distance <= 50.0 + 1e-9

    def test_deterministic_given_rng(self):
        model = RandomWaypointModel()
        a = model.next_waypoint(rng(7), Vec3(0, 0, 0))
        b = model.next_waypoint(rng(7), Vec3(0, 0, 0))
        assert a == b

    def test_rejects_bad_radius(self):
        import pytest

        with pytest.raises(ValueError):
            RandomWaypointModel(radius=0.0)


class TestHotspot:
    def test_full_gravity_clusters_near_hotspots(self):
        hotspots = [Vec3(0, 0, 0)]
        model = HotspotModel(hotspots=hotspots, gravity=1.0, hotspot_spread=5.0)
        r = rng()
        distances = [
            math.hypot(w.x, w.z)
            for w in (model.next_waypoint(r, Vec3(500, 0, 500)) for _ in range(300))
        ]
        mean_distance = sum(distances) / len(distances)
        assert mean_distance < 15.0  # ~ Rayleigh mean with sigma 5

    def test_zero_gravity_wanders_locally(self):
        model = HotspotModel(gravity=0.0, wander_radius=10.0)
        r = rng()
        origin = Vec3(100.0, 0.0, 100.0)
        for _ in range(100):
            waypoint = model.next_waypoint(r, origin)
            assert origin.horizontal_distance_to(waypoint) <= 10.0 + 1e-9

    def test_first_hotspot_is_busiest(self):
        hotspots = [Vec3(0, 0, 0), Vec3(1000, 0, 1000)]
        model = HotspotModel(hotspots=hotspots, gravity=1.0, hotspot_spread=1.0)
        r = rng()
        near_first = 0
        trials = 500
        for _ in range(trials):
            w = model.next_waypoint(r, Vec3(0, 0, 0))
            if math.hypot(w.x, w.z) < 500:
                near_first += 1
        assert near_first > trials / 2  # Zipf weights 1 : 1/2

    def test_validation(self):
        import pytest

        with pytest.raises(ValueError):
            HotspotModel(gravity=1.5)
        with pytest.raises(ValueError):
            HotspotModel(hotspots=[])


class TestTrek:
    def test_progresses_along_heading(self):
        model = TrekModel(heading_degrees=0.0, leg_length=60.0)
        r = rng()
        position = Vec3(0, 0, 0)
        for _ in range(5):
            position = model.next_waypoint(r, position)
        assert position.x > 200.0  # mostly eastward
        assert abs(position.z) < position.x


def test_walk_speed_matches_minecraft():
    assert WALK_SPEED == 4.317
