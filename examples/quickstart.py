#!/usr/bin/env python3
"""Quickstart: a Minecraft-like server with dyconits in ~40 lines.

Starts a simulated 20 Hz game server with the adaptive dyconit policy,
connects a small fleet of bots that walk around a village hotspot and
build, runs 30 simulated seconds, and prints what the middleware did.

Run:  python examples/quickstart.py
"""

from repro import (
    AdaptiveBoundsPolicy,
    GameServer,
    ServerConfig,
    Simulation,
    Workload,
    WorkloadSpec,
)


def main() -> None:
    sim = Simulation()

    server = GameServer(
        sim,
        config=ServerConfig(seed=7, synchronous_delivery=True),
        policy=AdaptiveBoundsPolicy(),
    )
    server.start()

    workload = Workload(sim, server, WorkloadSpec(bots=30, seed=7, movement="hotspot"))
    workload.start()

    sim.run_until(30_000)  # 30 simulated seconds

    stats = server.dyconits.stats
    transport = server.transport
    print(f"simulated 30 s with {server.player_count} players")
    print(f"  server ticks        : {server.tick_count}")
    print(f"  bytes sent          : {transport.total_bytes():,}")
    print(f"  packets sent        : {transport.total_packets():,}")
    print(f"  middleware commits  : {stats.commits:,}")
    print(f"  updates merged away : {stats.updates_merged:,} "
          f"({100 * stats.merge_ratio:.1f}% of enqueued)")
    print(f"  flushes             : {stats.flushes:,} "
          f"(numerical {stats.flushes_numerical:,}, staleness {stats.flushes_staleness:,})")
    errors = [e for bot in workload.bots for e in bot.positional_errors()]
    if errors:
        print(f"  worst replica error : {max(errors):.2f} blocks")


if __name__ == "__main__":
    main()
