"""Stateful fuzzing of the middleware against the invariant auditor.

Two hypothesis state machines:

* :class:`DyconitMachine` drives random interleavings of
  commit / subscribe / unsubscribe / set_bounds / merge / split / tick
  against a :class:`DyconitSystem`, and after **every** step checks

  - the full :class:`InvariantAuditor` catalogue (I1–I4), and
  - a naive reference model that mirrors each subscription queue's
    contents and its *exact* accumulated error (same float additions in
    the same order), so ``accumulated_error ≡ sum of committed weights
    since the last drain`` is checked to the last bit;

  plus, after every tick, that no backlog is past its staleness bound
  (the behavioural consequence of a lost deadline).

* :class:`ElasticRateMachine` drives commit bursts and policy
  evaluations through merge/split cycles and checks the elastic policy's
  per-window commit rates against an independent count of the commits
  actually made in the window.

* :class:`ClusterMachine` (S16) drives a live 2-shard cluster — churny
  connects/disconnects, entity strides that cross the shard border, and
  real simulation time — and checks the full cluster catalogue
  (per-shard I1–I6 plus cross-shard I7/I8) after every step. Handoffs,
  mob transfers and interest subscribe/unsubscribe storms all happen
  "for real" through the bus.

On the unfixed tree these machines reproduce the S15 repartitioning
bugs: the merge/re-subscribe deadline bugs surface as ``I3.heap-coverage``
violations (and overdue backlogs surviving ticks), and the baseline
accounting bug surfaces as a merged region reporting its entire commit
history as one window of traffic.
"""

import math

import pytest
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.cluster import ShardedCluster
from repro.core.bounds import Bounds
from repro.core.invariants import InvariantAuditor
from repro.core.manager import DyconitSystem
from repro.core.partition import ChunkPartitioner
from repro.core.policy import LoadSignals, Policy
from repro.core.subscription import Subscriber
from repro.policies.elastic import ElasticPartitioningPolicy
from repro.policies.fixed import FixedBoundsPolicy
from repro.policies.zero import ZeroBoundsPolicy
from repro.server.config import ServerConfig
from repro.sim.simulator import Simulation
from repro.world.events import EntityMoveEvent
from repro.world.geometry import Vec3


class StaticPolicy(Policy):
    def __init__(self, bounds):
        self.bounds = bounds

    def initial_bounds(self, system, dyconit_id, subscriber):
        return self.bounds


def move(entity_id: int, time: float, dx: float) -> EntityMoveEvent:
    return EntityMoveEvent(time, entity_id, Vec3(0, 0, 0), Vec3(dx, 0, 0))


#: Two regions' worth of chunks under the region_size=4 merge targets.
REGIONS = ((0, 0), (1, 0))
CHUNKS = [("chunk", 0, 0), ("chunk", 1, 0), ("chunk", 4, 0), ("chunk", 5, 0)]

chunk_ids = st.sampled_from(CHUNKS)
subscriber_ids = st.integers(min_value=1, max_value=3)
bounds_strategy = st.sampled_from(
    [
        Bounds(5.0, 100.0),
        Bounds(50.0, 1000.0),
        Bounds(math.inf, 100.0),
        Bounds(math.inf, 5000.0),
        Bounds(math.inf, math.inf),
        Bounds(math.inf, math.inf, order=3),
        Bounds(2.0, math.inf),
    ]
)


class DyconitMachine(RuleBasedStateMachine):
    """Random middleware op interleavings vs auditor + reference model."""

    #: S17 toggle — the default machine fuzzes the flat columnar commit
    #: path (including the I9 replay audit after every step); the legacy
    #: twin below pins the per-object ground truth with the same rules.
    USE_BATCHED_COMMIT = True
    #: S19 backend seam — the spec handed to the StateStore registry.
    #: Twins below drive the same rules through the SQLite adapter, so
    #: every observable (auditor catalogue, bit-exact reference model,
    #: staleness liveness) is enforced on the protocol surface rather
    #: than on any concrete class.
    STATE_STORE = "memory"

    def __init__(self):
        super().__init__()
        self.now = 0.0
        self.auditor = InvariantAuditor()
        self.system = DyconitSystem(
            StaticPolicy(Bounds(50.0, 1000.0)),
            ChunkPartitioner(),
            time_source=lambda: self.now,
            use_batched_commit=self.USE_BATCHED_COMMIT,
            state_store=self.STATE_STORE,
        )
        self.subscribers: dict[int, Subscriber] = {}
        #: Reference model: (dyconit_id, subscriber_id) -> merge_key ->
        #: update, maintained with the same supersede-and-append
        #: semantics the middleware promises.
        self.queues: dict[tuple, dict] = {}
        #: Exact error mirror: same weights added in the same order.
        self.errors: dict[tuple, float] = {}

    # -- reference model plumbing --------------------------------------

    def _subscriber(self, sub_id: int) -> Subscriber:
        if sub_id not in self.subscribers:
            self.subscribers[sub_id] = Subscriber(
                subscriber_id=sub_id,
                deliver=lambda d, u, sid=sub_id: self._on_deliver(sid, d, u),
            )
        return self.subscribers[sub_id]

    def _on_deliver(self, sub_id, dyconit_id, updates) -> None:
        key = (dyconit_id, sub_id)
        expected = list(self.queues.get(key, {}).values())
        assert list(updates) == expected, (
            f"flush for {key} delivered {len(updates)} updates, "
            f"reference model expected {len(expected)}"
        )
        self.queues.pop(key, None)
        self.errors.pop(key, None)

    def _model_drop(self, key) -> None:
        self.queues.pop(key, None)
        self.errors.pop(key, None)

    # -- rules ----------------------------------------------------------

    @rule(chunk=chunk_ids, sub_id=subscriber_ids,
          bounds=st.one_of(st.none(), bounds_strategy))
    def subscribe(self, chunk, sub_id, bounds):
        # A bounds change on an existing subscription may flush; the
        # delivery callback validates against the model, which needs no
        # pre-update (the queue itself is untouched by a re-subscribe).
        self.system.subscribe(chunk, self._subscriber(sub_id), bounds=bounds)

    @rule(chunk=chunk_ids, sub_id=subscriber_ids)
    def unsubscribe(self, chunk, sub_id):
        resolved = self.system.resolve(chunk)
        self.system.unsubscribe(chunk, sub_id)  # flushes pending via callback
        self._model_drop((resolved, sub_id))  # clears an empty leftover entry

    @rule(chunk=chunk_ids, entity=st.integers(min_value=1, max_value=5),
          dx=st.sampled_from([0.5, 1.0, 2.5]))
    def commit(self, chunk, entity, dx):
        resolved = self.system.resolve(chunk)
        update = move(entity, time=self.now, dx=dx)
        # Mirror the enqueue fan-out *before* committing: a tripped bound
        # flushes inside commit_to and the callback compares immediately.
        dyconit = self.system.get(resolved)
        if dyconit is not None:
            for state in dyconit.subscription_states():
                key = (resolved, state.subscriber.subscriber_id)
                queue = self.queues.setdefault(key, {})
                queue.pop(update.merge_key, None)  # supersede-and-append
                queue[update.merge_key] = update
                self.errors[key] = self.errors.get(key, 0.0) + update.weight
        self.system.commit_to(chunk, update)

    @rule(chunk=chunk_ids, sub_id=subscriber_ids, bounds=bounds_strategy)
    def set_bounds(self, chunk, sub_id, bounds):
        self.system.set_bounds(chunk, sub_id, bounds)  # may flush via callback

    @rule(region_index=st.sampled_from([0, 1]))
    def merge_region(self, region_index):
        region = REGIONS[region_index]
        members = [c for c in CHUNKS if (c[1] // 4, c[2] // 4) == region]
        target = ("region", 4, *region)
        resolved_target = self.system.resolve(target)
        resolved_members = []
        for member in members:
            resolved = self.system.resolve(member)
            if resolved != resolved_target and resolved not in resolved_members:
                resolved_members.append(resolved)
        self.system.merge_dyconits(members, target)
        # Mirror the move: per source, supersede-and-append every update
        # into the target queue (same order as the manager's drain), then
        # restore time order; the error mirror gains exactly the moved
        # survivors' weights, matching the real re-enqueue.
        for source in resolved_members:
            for (dyconit_id, sub_id), queue in list(self.queues.items()):
                if dyconit_id != source or not queue:
                    continue
                target_key = (resolved_target, sub_id)
                target_queue = self.queues.setdefault(target_key, {})
                error = self.errors.get(target_key, 0.0)
                for merge_key, update in queue.items():
                    target_queue.pop(merge_key, None)
                    target_queue[merge_key] = update
                    error += update.weight
                self.errors[target_key] = error
                items = sorted(target_queue.items(), key=lambda kv: kv[1].time)
                target_queue.clear()
                target_queue.update(items)
                self._model_drop((source, sub_id))

    @rule(region_index=st.sampled_from([0, 1]))
    def split_region(self, region_index):
        target = ("region", 4, *REGIONS[region_index])
        self.system.split_dyconit(target)  # flushes target backlog via callback
        for key in [k for k, q in self.queues.items() if k[0] == target and not q]:
            self._model_drop(key)

    @rule(delta=st.sampled_from([30.0, 150.0, 700.0]))
    def advance_and_tick(self, delta):
        self.now += delta
        self.system.tick()
        # Behavioural staleness check: after a tick nothing may still be
        # older than its staleness bound — a backlog that survives here
        # lost its deadline-heap entry (the merge/re-subscribe bugs).
        for dyconit in self.system.dyconits():
            for state in dyconit.subscription_states():
                if state.has_pending and not math.isinf(state.bounds.staleness_ms):
                    age = self.now - state.oldest_pending_time
                    assert age < state.bounds.staleness_ms, (
                        f"({dyconit.dyconit_id!r}, subscriber "
                        f"{state.subscriber.subscriber_id}) is {age:g} ms stale "
                        f"after a tick, bound {state.bounds.staleness_ms:g} ms"
                    )

    # -- checked after every rule ---------------------------------------

    @invariant()
    def auditor_is_clean(self):
        violations = self.auditor.check(self.system)
        assert violations == [], "\n".join(str(v) for v in violations)

    @invariant()
    def middleware_matches_reference_model(self):
        live = {}
        for dyconit in self.system.dyconits():
            for state in dyconit.subscription_states():
                if state.has_pending:
                    live[(dyconit.dyconit_id, state.subscriber.subscriber_id)] = state
        model_keys = {key for key, queue in self.queues.items() if queue}
        assert set(live) == model_keys
        for key, state in live.items():
            assert list(state.pending.values()) == list(self.queues[key].values())
            # Exact: both sides added the same weights in the same order.
            assert state.accumulated_error == self.errors[key]


def signals(now: float) -> LoadSignals:
    return LoadSignals(
        now=now, player_count=4, last_tick_duration_ms=10.0,
        smoothed_tick_duration_ms=10.0, tick_budget_ms=50.0,
        outgoing_bytes_per_second=0.0,
    )


#: region_size=2: two regions of two chunks each.
ELASTIC_CHUNKS = [("chunk", 0, 0), ("chunk", 1, 0), ("chunk", 2, 0), ("chunk", 3, 0)]


class ElasticRateMachine(RuleBasedStateMachine):
    """Elastic policy commit-rate accounting across merge/split cycles."""

    def __init__(self):
        super().__init__()
        self.now = 0.0
        self.policy = ElasticPartitioningPolicy(
            inner=FixedBoundsPolicy(Bounds(1000.0, 60_000.0)),
            region_size=2,
            cold_commits_per_second=1.0,
            hot_commits_per_second=8.0,
        )
        self.system = DyconitSystem(
            self.policy, ChunkPartitioner(), time_source=lambda: self.now
        )
        sink = Subscriber(subscriber_id=1, deliver=lambda d, u: None)
        for chunk in ELASTIC_CHUNKS:
            self.system.subscribe(chunk, sink)
        #: Commits this window, keyed by the id they resolved to at
        #: commit time — the ground truth the policy's rates must match.
        self.window_counts: dict = {}
        self.policy.evaluate(self.system, signals(0.0))  # baseline snapshot

    @rule(chunk=st.sampled_from(ELASTIC_CHUNKS), n=st.integers(min_value=1, max_value=10))
    def commit_burst(self, chunk, n):
        resolved = self.system.resolve(chunk)
        for i in range(n):
            self.system.commit_to(chunk, move(chunk[1], time=self.now, dx=1.0))
            self.window_counts[resolved] = self.window_counts.get(resolved, 0) + 1

    def _merged_regions(self) -> dict:
        regions: dict = {}
        for chunk in ELASTIC_CHUNKS:
            resolved = self.system.resolve(chunk)
            if resolved != chunk:
                regions.setdefault(resolved, []).append(chunk)
        return regions

    @rule(dt=st.sampled_from([500.0, 1000.0, 2000.0]))
    def advance_and_evaluate(self, dt):
        merged_before = self._merged_regions()
        self.now += dt
        self.policy.evaluate(self.system, signals(self.now))
        window_s = dt / 1000.0
        # Thrash check: a merged region that genuinely saw less than the
        # hot rate this window must stay merged. With the baseline bug, a
        # merged region's first evaluation counts its members' *entire*
        # commit history as one window of traffic and splits right back.
        for region, members in merged_before.items():
            actual_rate = self.window_counts.get(region, 0) / window_s
            if actual_rate < self.policy.hot_commits_per_second:
                for member in members:
                    assert self.system.resolve(member) == region, (
                        f"{region!r} saw only {actual_rate:g} commits/s this "
                        f"window (hot threshold "
                        f"{self.policy.hot_commits_per_second:g}) yet was split"
                    )
        # getattr: lets the behavioural check above carry the repro on
        # trees that predate the rate-introspection attribute.
        rates = getattr(self.policy, "last_window_rates", None)
        for dyconit_id, rate in (rates or {}).items():
            expected = self.window_counts.get(dyconit_id, 0) / window_s
            # A stale (uncarried) baseline also skews rates: whole-history
            # spikes after a merge, negative rates after a split.
            assert rate == pytest.approx(expected), (
                f"{dyconit_id!r}: policy saw {rate:g} commits/s this window, "
                f"but {expected:g}/s were actually committed"
            )
        self.window_counts.clear()


class ClusterMachine(RuleBasedStateMachine):
    """Random churn + border strides on a real 2-shard cluster (I7/I8).

    Every rule leaves the cluster at an arbitrary point of its
    simulation, including mid-handoff; the auditor's in-flight excusals
    must make the catalogue hold at *every* such point, not just the
    pump barrier.
    """

    MAX_CLIENTS = 5

    def __init__(self):
        super().__init__()
        self.sim = Simulation()
        self.auditor = InvariantAuditor()
        self.cluster = ShardedCluster(
            self.sim,
            shards=2,
            strip_width=2,
            config=ServerConfig(seed=11, synchronous_delivery=True, mob_count=2),
            policy_factory=ZeroBoundsPolicy,
        )
        self.cluster.start()
        self.names = 0

    def _live_clients(self) -> list:
        return sorted(self.cluster.sessions)

    @rule(x=st.sampled_from([-40.0, -12.0, 4.0, 12.0, 40.0]))
    def connect(self, x):
        if self.cluster.player_count >= self.MAX_CLIENTS:
            return
        self.names += 1
        position = self.cluster.world.surface_position(x, 8.0)
        self.cluster.connect(f"fuzz{self.names}", lambda delivered: None,
                             position=position)

    @rule(data=st.data())
    def disconnect(self, data):
        # Includes clients currently mid-handoff: the cancellation path.
        candidates = sorted(
            set(self._live_clients()) | set(self.cluster.in_transit_clients())
        )
        if not candidates:
            return
        self.cluster.disconnect(data.draw(st.sampled_from(candidates)))

    @rule(data=st.data(), dx=st.sampled_from([-33.0, -9.0, 9.0, 33.0]))
    def stride(self, data, dx):
        """Walk one authoritative entity sideways — the larger strides
        cross the 2-chunk strips and trigger handoffs/transfers."""
        owned = []
        for shard in self.cluster.shards:
            for entity in shard.world.entities():
                if entity.entity_id not in shard.ghost_ids:
                    owned.append((shard, entity.entity_id))
        if not owned:
            return
        shard, entity_id = owned[data.draw(st.integers(0, len(owned) - 1))]
        entity = shard.world.get_entity(entity_id)
        position = entity.position
        shard.world.move_entity(
            entity_id,
            Vec3(position.x + dx, position.y, position.z),
        )

    @rule(steps=st.integers(min_value=1, max_value=4))
    def advance(self, steps):
        self.sim.run_until(self.sim.now + 50.0 * steps)

    @invariant()
    def cluster_catalogue_is_clean(self):
        violations = self.auditor.check_cluster(self.cluster)
        assert violations == [], "\n".join(str(v) for v in violations)


#: CI smoke: 30 examples x up to 30 steps (and 15 x 25) comfortably
#: clears the >= 200 stateful steps the roadmap asks of checked mode.
class LegacyDyconitMachine(DyconitMachine):
    """Same rules against the per-object commit path (S17 toggle off)."""

    USE_BATCHED_COMMIT = False


class SQLiteDyconitMachine(DyconitMachine):
    """Same rules with every queue resident in SQLite (S19).

    ``use_batched_commit`` stays on at the config level, but the SQLite
    handles expose no columnar mode (``_flat is None``) so the manager
    drives them through the legacy commit walk — exactly how a real
    server configured with ``state_store="sqlite"`` runs. The bit-exact
    reference model makes this a float-for-float conformance fuzz of
    the adapter's accounting.
    """

    STATE_STORE = "sqlite"


TestDyconitFuzz = DyconitMachine.TestCase
TestDyconitFuzz.settings = settings(
    max_examples=30, stateful_step_count=30, deadline=None
)

TestLegacyDyconitFuzz = LegacyDyconitMachine.TestCase
TestLegacyDyconitFuzz.settings = settings(
    max_examples=15, stateful_step_count=30, deadline=None
)

TestSQLiteDyconitFuzz = SQLiteDyconitMachine.TestCase
TestSQLiteDyconitFuzz.settings = settings(
    max_examples=15, stateful_step_count=30, deadline=None
)

TestElasticRates = ElasticRateMachine.TestCase
TestElasticRates.settings = settings(
    max_examples=15, stateful_step_count=25, deadline=None
)

TestClusterFuzz = ClusterMachine.TestCase
TestClusterFuzz.settings = settings(
    max_examples=12, stateful_step_count=20, deadline=None
)
