"""Out-of-process delivery pipeline over a durable spool (S20).

``BufferedEventBus`` proved the bus contract in-process; this module
promotes it to a real delivery spine. A :class:`SpoolEventBus` tees
every published flush into a SQLite-backed **spool** — an append-only
log of ``(seq, dyconit, subscriber, updates)`` rows — while an inner
bus (direct by default) keeps in-process delivery semantics unchanged,
so the simulation stays packet-identical whether or not the spool is
attached. A :class:`SpoolConsumer`, typically a **separate process**
(``python -m repro.backends.pipeline``), drains the spool into an
output journal and advances a durable per-consumer watermark.

Recovery contract: the consumer may die at any point. On restart it
resumes from its acked watermark and re-reads the tail of its own
output to skip sequence numbers already written, so the journal holds
every spooled batch **exactly once, in spool order**, across any number
of crashes — the pipeline twin of the engine's kill-and-resume
differential. ``--crash-after N`` exists so tests can kill the consumer
mid-stream deterministically.
"""

from __future__ import annotations

import argparse
import json
import os
import pickle
import sqlite3
import sys
import time
from typing import Hashable, Sequence

from repro.backends.base import EventBus
from repro.backends.memory import DirectEventBus
from repro.core.subscription import Subscriber
from repro.core.update import Update

_SPOOL_SCHEMA = """
CREATE TABLE IF NOT EXISTS spool (
    seq INTEGER PRIMARY KEY,
    dyconit BLOB NOT NULL,
    sub_id INTEGER NOT NULL,
    blob BLOB NOT NULL
);
CREATE TABLE IF NOT EXISTS consumers (
    name TEXT PRIMARY KEY,
    acked INTEGER NOT NULL
);
"""


def _open_spool(path: str) -> sqlite3.Connection:
    # Autocommit: rows must hit the file as they are written — a spool
    # that loses its tail on process death defeats its purpose.
    conn = sqlite3.connect(path, isolation_level=None)
    conn.execute("PRAGMA synchronous=OFF")
    conn.executescript(_SPOOL_SCHEMA)
    return conn


class SpoolEventBus(EventBus):
    """Tee published flushes into a durable spool file.

    In-process delivery is delegated to ``inner`` (direct by default),
    so attaching a spool never changes what subscribers see or when —
    it only adds the durable feed an external consumer drains.
    """

    name = "spool"

    def __init__(self, path: str, inner: EventBus | None = None) -> None:
        self.path = path
        self._inner = inner if inner is not None else DirectEventBus()
        self._conn = _open_spool(path)
        self._closed = False
        self.published = 0

    def publish(
        self, dyconit_id: Hashable, subscriber: Subscriber, updates: Sequence[Update]
    ) -> None:
        self._conn.execute(
            "INSERT INTO spool (dyconit, sub_id, blob) VALUES (?, ?, ?)",
            (
                pickle.dumps(dyconit_id, protocol=4),
                subscriber.subscriber_id,
                pickle.dumps(list(updates), protocol=4),
            ),
        )
        self.published += 1
        self._inner.publish(dyconit_id, subscriber, updates)

    def drain(self) -> int:
        return self._inner.drain()

    @property
    def spooled(self) -> int:
        (count,) = self._conn.execute("SELECT COUNT(*) FROM spool").fetchone()
        return count

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._conn.close()
        self._inner.close()


class SpoolConsumer:
    """Drain a spool into a JSONL journal, exactly once per batch.

    The watermark (``consumers.acked``) is advanced only after the
    journal lines are flushed to disk; a crash between write and ack
    makes the next run re-read those rows, and the journal-tail scan in
    :meth:`__init__` is what de-duplicates them.
    """

    def __init__(self, spool_path: str, out_path: str, name: str = "consumer") -> None:
        self._conn = _open_spool(spool_path)
        self._name = name
        self._out_path = out_path
        self._written_through = self._scan_journal_tail()

    def _scan_journal_tail(self) -> int:
        """Highest seq already present in the output journal (0 if none)."""
        top = 0
        if os.path.exists(self._out_path):
            with open(self._out_path, "r", encoding="utf-8") as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    top = max(top, json.loads(line)["seq"])
        return top

    @property
    def acked(self) -> int:
        row = self._conn.execute(
            "SELECT acked FROM consumers WHERE name = ?", (self._name,)
        ).fetchone()
        return 0 if row is None else row[0]

    def pending(self) -> int:
        (count,) = self._conn.execute(
            "SELECT COUNT(*) FROM spool WHERE seq > ?", (self.acked,)
        ).fetchone()
        return count

    def process_once(self, crash_after: int | None = None) -> int:
        """Process every unacked row; returns journal lines written.

        ``crash_after`` kills the process (``os._exit``) after that many
        lines, *before* acking — the deterministic mid-batch death the
        recovery tests replay from.
        """
        acked = self.acked
        rows = self._conn.execute(
            "SELECT seq, dyconit, sub_id, blob FROM spool WHERE seq > ? "
            "ORDER BY seq",
            (acked,),
        ).fetchall()
        if not rows:
            return 0
        written = 0
        with open(self._out_path, "a", encoding="utf-8") as out:
            for seq, dyconit, sub_id, blob in rows:
                if seq <= self._written_through:
                    continue  # journaled by a run that died before acking
                updates = pickle.loads(blob)
                record = {
                    "seq": seq,
                    "dyconit": repr(pickle.loads(dyconit)),
                    "subscriber": sub_id,
                    "updates": len(updates),
                    "times": [update.time for update in updates],
                }
                out.write(json.dumps(record, sort_keys=True) + "\n")
                out.flush()
                os.fsync(out.fileno())
                self._written_through = seq
                written += 1
                if crash_after is not None and written >= crash_after:
                    os._exit(17)  # simulated consumer death: no ack
        self._conn.execute(
            "INSERT INTO consumers (name, acked) VALUES (?, ?) "
            "ON CONFLICT (name) DO UPDATE SET acked = excluded.acked",
            (self._name, rows[-1][0]),
        )
        return written

    def close(self) -> None:
        self._conn.close()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Drain a dyconit delivery spool into a JSONL journal."
    )
    parser.add_argument("--spool", required=True, help="spool database path")
    parser.add_argument("--out", required=True, help="output journal (JSONL)")
    parser.add_argument("--name", default="consumer", help="consumer watermark name")
    parser.add_argument(
        "--once", action="store_true",
        help="process the current backlog and exit (default: poll forever)",
    )
    parser.add_argument(
        "--crash-after", type=int, default=None, metavar="N",
        help="exit(17) after N journal lines without acking (recovery tests)",
    )
    parser.add_argument(
        "--poll-ms", type=int, default=50, help="idle poll interval (ms)"
    )
    args = parser.parse_args(argv)
    consumer = SpoolConsumer(args.spool, args.out, name=args.name)
    try:
        while True:
            written = consumer.process_once(crash_after=args.crash_after)
            if args.crash_after is not None:
                args.crash_after -= written
            if args.once:
                return 0
            if not written:
                time.sleep(args.poll_ms / 1000.0)
    finally:
        consumer.close()


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
