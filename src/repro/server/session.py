"""Per-player session state."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.world.geometry import ChunkPos, Vec3


@dataclass
class PlayerSession:
    """Server-side state for one connected player.

    ``known_entities`` mirrors what the *client* currently knows: the last
    position sent for every entity in view. The codec uses it to choose
    relative-move vs teleport packets and to decide when a spawn packet
    must precede a movement update.
    """

    client_id: int
    entity_id: int
    name: str
    view_distance: int
    #: Chunks currently streamed to this client.
    view_chunks: set[ChunkPos] = field(default_factory=set)
    #: entity id -> last position sent to this client.
    known_entities: dict[int, Vec3] = field(default_factory=dict)
    #: entity id -> event time of the newest update applied for it. Used
    #: to drop stale updates when flushes from different dyconits arrive
    #: out of cross-dyconit order (per-entity last-writer-wins).
    entity_update_times: dict[int, float] = field(default_factory=dict)
    #: Chunk the player's avatar occupied at the last interest refresh.
    anchor_chunk: ChunkPos | None = None
    connected_at: float = 0.0
    actions_received: int = 0
    packets_sent: int = 0

    def sees_chunk(self, chunk: ChunkPos) -> bool:
        return chunk in self.view_chunks

    def forget_entity(self, entity_id: int) -> bool:
        """Drop an entity from the client's known set; True if it was known."""
        self.entity_update_times.pop(entity_id, None)
        return self.known_entities.pop(entity_id, None) is not None
