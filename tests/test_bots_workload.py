"""Behavioural tests for workload orchestration."""

import pytest

from repro.bots.workload import BehaviorMix, Workload, WorkloadSpec
from repro.policies.zero import ZeroBoundsPolicy


@pytest.fixture
def server(server_factory):
    return server_factory(policy=ZeroBoundsPolicy(), synchronous_delivery=True)


def test_behavior_mix_validation():
    with pytest.raises(ValueError):
        BehaviorMix(build=0.6, dig=0.6)
    with pytest.raises(ValueError):
        BehaviorMix(build=-0.1)


def test_spec_validation():
    with pytest.raises(ValueError):
        WorkloadSpec(bots=-1)
    with pytest.raises(ValueError):
        WorkloadSpec(movement="flying")


def test_fleet_connects_with_stagger(sim, server):
    spec = WorkloadSpec(bots=5, seed=3, arrival_stagger_ms=100.0)
    workload = Workload(sim, server, spec)
    workload.start()
    sim.run_until(150.0)
    assert workload.connected_count == 2  # t=0 and t=100 connected
    sim.run_until(1_000.0)
    assert workload.connected_count == 5


def test_bots_generate_traffic(sim, server):
    workload = Workload(sim, server, WorkloadSpec(bots=5, seed=3, arrival_stagger_ms=0.0))
    workload.start()
    sim.run_until(3_000.0)
    assert server.transport.total_bytes() > 0
    assert server.dyconits.stats.commits > 0


def test_add_and_remove_bots(sim, server):
    workload = Workload(sim, server, WorkloadSpec(bots=3, seed=3, arrival_stagger_ms=0.0))
    workload.start()
    sim.run_until(500.0)
    workload.add_bots(4, stagger_ms=0.0)
    assert workload.connected_count == 7
    removed = workload.remove_bots(5)
    assert removed == 5
    assert workload.connected_count == 2
    assert server.player_count == 2


def test_staggered_burst_joins_over_time(sim, server):
    workload = Workload(sim, server, WorkloadSpec(bots=2, seed=3, arrival_stagger_ms=0.0))
    workload.start()
    sim.run_until(200.0)
    workload.add_bots(4, stagger_ms=100.0)
    assert workload.connected_count == 3  # offset 0 connects immediately
    sim.run_until(sim.now + 350.0)
    assert workload.connected_count == 6


def test_remove_cancels_pending_burst_joins(sim, server):
    workload = Workload(sim, server, WorkloadSpec(bots=2, seed=3, arrival_stagger_ms=0.0))
    workload.start()
    sim.run_until(200.0)
    workload.add_bots(3, stagger_ms=10_000.0)  # far in the future
    removed = workload.remove_bots(3)
    assert removed == 3
    sim.run_until(sim.now + 25_000.0)
    assert workload.connected_count == 2  # cancelled joins never fire


def test_measurement_histograms_fill(sim, server):
    spec = WorkloadSpec(bots=4, seed=3, arrival_stagger_ms=0.0, measure_interval_ms=200.0)
    workload = Workload(sim, server, spec)
    workload.start()
    sim.run_until(3_000.0)
    assert workload.error_histogram.count > 0


def test_measurement_can_be_disabled(sim, server):
    spec = WorkloadSpec(bots=2, seed=3, measure_interval_ms=0.0)
    workload = Workload(sim, server, spec)
    workload.start()
    sim.run_until(2_000.0)
    assert workload.error_histogram.count == 0


def test_stop_disconnects_everyone(sim, server):
    workload = Workload(sim, server, WorkloadSpec(bots=3, seed=3, arrival_stagger_ms=0.0))
    workload.start()
    sim.run_until(500.0)
    workload.stop()
    assert workload.connected_count == 0
    assert server.player_count == 0


def test_movement_models_per_spec(sim, server):
    for movement in ("hotspot", "uniform", "trek"):
        workload = Workload(sim, server, WorkloadSpec(bots=1, seed=3, movement=movement))
        bot_model = workload._movement_for(0)
        assert bot_model is not None
