"""E6 — dynamic policy over time (player burst).

Regenerates the policy-dynamics figure: a base population plays, a burst
of extra players joins mid-run and leaves later. The adaptive policy's
looseness factor must rise while the burst is in (shedding load) and fall
back after it leaves (reclaiming consistency).
"""

import pytest

from repro.experiments.figures import dynamics_timeline
from repro.metrics.plot import line_plot


@pytest.mark.benchmark(group="e6-dynamics", min_rounds=1, max_time=1.0, warmup=False)
def test_e6_adaptive_dynamics(benchmark, scale):
    duration = scale["dynamics_duration_ms"]
    result = benchmark.pedantic(
        dynamics_timeline,
        kwargs=dict(
            base_bots=max(30, scale["bots"] // 2),
            # The burst must push the server decisively past the adaptive
            # policy's high watermark, or there is nothing to observe.
            burst_bots=2 * scale["bots"] + 40,
            duration_ms=duration,
            burst_at_ms=duration / 3,
            burst_end_ms=2 * duration / 3,
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(result["table"])
    timeline = result["result"]
    print()
    print(line_plot(
        {
            "players": timeline.player_timeline,
            "looseness factor (x10)": [
                (t, 10 * f) for t, f in timeline.factor_timeline
            ],
        },
        title="E6: player burst and the adaptive policy's response",
        x_label="sim time [ms]",
    ))

    # The servo reacts: looser during the burst than before it...
    assert result["factor_during"] > result["factor_before"]
    # ...and reclaims consistency after the burst leaves.
    assert result["factor_after"] < result["factor_during"]
