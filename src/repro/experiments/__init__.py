"""Experiment harness (S9).

One :class:`ExperimentConfig` describes a complete run (server, policy,
partitioner, workload, measurement window); :func:`run_experiment`
executes it inside a fresh simulation and returns an
:class:`ExperimentResult` with every quantity the paper's tables and
figures report. The per-figure drivers live in
:mod:`repro.experiments.figures` and are invoked by the ``benchmarks/``
targets listed in DESIGN.md.
"""

from repro.experiments.configs import (
    ExperimentConfig,
    config_from_dict,
    config_to_dict,
    make_partitioner,
    make_policy,
)
from repro.experiments.figures import (
    ablation_granularity,
    ablation_merging,
    ablation_policy_period,
    bandwidth_by_policy,
    capacity_sweep,
    dynamics_timeline,
    fault_churn_sweep,
    inconsistency_by_policy,
    latency_by_policy,
    make_fault_plan,
    policy_summary_table,
)
from repro.experiments.parallel import (
    SweepReport,
    config_digest,
    run_cells,
    run_sweep,
)
from repro.experiments.runner import ExperimentResult, run_experiment

__all__ = [
    "ExperimentConfig",
    "ExperimentResult",
    "run_experiment",
    "run_sweep",
    "run_cells",
    "SweepReport",
    "config_digest",
    "config_to_dict",
    "config_from_dict",
    "make_policy",
    "make_partitioner",
    "bandwidth_by_policy",
    "capacity_sweep",
    "inconsistency_by_policy",
    "latency_by_policy",
    "policy_summary_table",
    "dynamics_timeline",
    "ablation_merging",
    "ablation_granularity",
    "ablation_policy_period",
    "fault_churn_sweep",
    "make_fault_plan",
]
