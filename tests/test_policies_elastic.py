"""Unit tests for the elastic repartitioning policy."""

import pytest

from repro.core.bounds import Bounds
from repro.core.manager import DyconitSystem
from repro.core.partition import ChunkPartitioner
from repro.core.policy import LoadSignals
from repro.policies.elastic import ElasticPartitioningPolicy
from repro.policies.fixed import FixedBoundsPolicy
from repro.world.events import EntityMoveEvent
from repro.world.geometry import Vec3

from tests.conftest import RecordingSubscriber


def signals(now: float):
    return LoadSignals(
        now=now, player_count=5, last_tick_duration_ms=10.0,
        smoothed_tick_duration_ms=10.0, tick_budget_ms=50.0,
        outgoing_bytes_per_second=0.0,
    )


def move(entity_id=1, time=0.0, x=0.0):
    return EntityMoveEvent(time, entity_id, Vec3(x, 0, 0), Vec3(x + 0.5, 0, 0))


@pytest.fixture
def setup():
    policy = ElasticPartitioningPolicy(
        inner=FixedBoundsPolicy(Bounds(100.0, 10_000.0)),
        region_size=4,
        cold_commits_per_second=1.0,
        hot_commits_per_second=8.0,
    )
    system = DyconitSystem(policy, ChunkPartitioner(), time_source=lambda: 0.0)
    rec = RecordingSubscriber()
    for cx in range(4):
        for cz in range(4):
            system.subscribe(("chunk", cx, cz), rec.subscriber)
    return system, policy, rec


def test_validation():
    with pytest.raises(ValueError):
        ElasticPartitioningPolicy(region_size=1)
    with pytest.raises(ValueError):
        ElasticPartitioningPolicy(cold_commits_per_second=5.0, hot_commits_per_second=5.0)


def test_cold_region_merges(setup):
    system, policy, __ = setup
    policy.evaluate(system, signals(0.0))  # baseline snapshot
    # One quiet second: a trickle of commits, well under the cold rate.
    system.commit(move(1, time=500.0, x=0.0))
    policy.evaluate(system, signals(1000.0))
    assert policy.merges >= 1
    assert system.is_merged(("chunk", 0, 0))
    assert system.get(("region", 4, 0, 0)) is not None


def test_busy_region_does_not_merge(setup):
    system, policy, __ = setup
    policy.evaluate(system, signals(0.0))
    for step in range(40):  # 40 commits in 1 s >> cold threshold
        system.commit(move(step % 5 + 1, time=step * 25.0, x=0.0))
    policy.evaluate(system, signals(1000.0))
    assert not system.is_merged(("chunk", 0, 0))


def test_hot_merged_region_splits(setup):
    system, policy, __ = setup
    policy.evaluate(system, signals(0.0))
    policy.evaluate(system, signals(1000.0))  # merges the idle region
    assert system.is_merged(("chunk", 0, 0))
    # Heat it up: many commits route to the merged dyconit.
    for step in range(40):
        system.commit(move(step % 5 + 1, time=1000.0 + step * 25.0, x=0.0))
    policy.evaluate(system, signals(2000.0))
    assert policy.splits >= 1
    assert not system.is_merged(("chunk", 0, 0))


def test_no_update_loss_across_merge_and_split(setup):
    system, policy, rec = setup
    policy.evaluate(system, signals(0.0))
    policy.evaluate(system, signals(1000.0))  # merge
    system.commit(move(1, time=1500.0, x=0.0))
    for step in range(40):
        system.commit(move(step % 5 + 1, time=1600.0 + step, x=0.0))
    policy.evaluate(system, signals(2000.0))  # split flushes the backlog
    # Everything committed was either delivered or is pending in the
    # released chunk dyconits; nothing vanished.
    pending = sum(
        len(state.pending)
        for dyconit in system.dyconits()
        for state in dyconit.subscription_states()
    )
    delivered = len(rec.delivered_updates)
    assert delivered + pending > 0
    assert delivered >= 1  # split force-flushed


def test_bounds_delegate_to_inner(setup):
    system, policy, rec = setup
    state = system.get(("chunk", 0, 0)).get_state(rec.subscriber.subscriber_id)
    assert state.bounds == Bounds(100.0, 10_000.0)


def test_repr_reports_activity(setup):
    __, policy, __ = setup
    assert "merges=0" in repr(policy)
