"""Inconsistency bounds.

A bound caps how much inconsistency one subscriber may observe for one
dyconit. ``Bounds.ZERO`` reproduces vanilla immediate broadcast;
``Bounds.INFINITE`` suppresses delivery entirely (the upper bound on
bandwidth savings, used as the strawman in the evaluation).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import ClassVar


@dataclass(frozen=True, slots=True)
class Bounds:
    """Per-(dyconit, subscriber) inconsistency bound.

    Attributes:
        numerical: maximum accumulated update weight before a flush is
            forced. Zero means every update flushes immediately.
        staleness_ms: maximum age of the oldest queued update before a
            flush is forced. Zero means no update may wait for the next
            tick.
        order: maximum number of *distinct* pending updates (queue
            length) — TACT's order-error dimension. Bounding it caps how
            much batching/reordering a subscriber can observe in one
            flush. Defaults to unbounded, matching the paper's use of the
            numerical and staleness dimensions only.
    """

    numerical: float
    staleness_ms: float
    order: float = math.inf

    ZERO: ClassVar["Bounds"]
    INFINITE: ClassVar["Bounds"]

    def __post_init__(self) -> None:
        if self.numerical < 0:
            raise ValueError(f"numerical bound must be >= 0, got {self.numerical}")
        if self.staleness_ms < 0:
            raise ValueError(f"staleness bound must be >= 0, got {self.staleness_ms}")
        if self.order < 0:
            raise ValueError(f"order bound must be >= 0, got {self.order}")

    @property
    def is_zero(self) -> bool:
        return self.numerical == 0.0 and self.staleness_ms == 0.0

    @property
    def is_infinite(self) -> bool:
        return (
            math.isinf(self.numerical)
            and math.isinf(self.staleness_ms)
            and math.isinf(self.order)
        )

    def tripped_dimension(
        self, accumulated_error: float, oldest_age_ms: float, pending_count: int = 0
    ) -> str | None:
        """The first dimension the queued state violates, or ``None``.

        The comparison is strict-greater for the numerical and order
        dimensions so a zero bound trips on the first queued update, and
        greater-or-equal for staleness only when the bound is finite.
        Precedence (numerical, then staleness, then order) is what flush
        accounting reports as the flush reason, so it must stay stable.
        """
        if accumulated_error > self.numerical:
            return "numerical"
        if not math.isinf(self.staleness_ms) and oldest_age_ms >= self.staleness_ms:
            return "staleness"
        if pending_count > self.order:
            return "order"
        return None

    def exceeded_by(
        self, accumulated_error: float, oldest_age_ms: float, pending_count: int = 0
    ) -> bool:
        """True if queued state violates this bound and must flush."""
        return (
            self.tripped_dimension(accumulated_error, oldest_age_ms, pending_count)
            is not None
        )

    def scaled(self, factor: float) -> "Bounds":
        """A bound loosened/tightened multiplicatively (used by adaptive
        policies). The order dimension scales too; an infinite order bound
        stays infinite."""
        if factor < 0:
            raise ValueError(f"scale factor must be >= 0, got {factor}")
        return Bounds(
            self.numerical * factor,
            self.staleness_ms * factor,
            self.order if math.isinf(self.order) else self.order * factor,
        )

    def clamped(self, low: "Bounds", high: "Bounds") -> "Bounds":
        """Component-wise clamp of this bound into [low, high]."""
        return Bounds(
            min(max(self.numerical, low.numerical), high.numerical),
            min(max(self.staleness_ms, low.staleness_ms), high.staleness_ms),
            min(max(self.order, low.order), high.order),
        )


Bounds.ZERO = Bounds(0.0, 0.0)
Bounds.INFINITE = Bounds(math.inf, math.inf)
