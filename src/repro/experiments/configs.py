"""Experiment configuration and factories."""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, replace

from repro.bots.workload import BUILDER_MIX, BehaviorMix, ChurnSpec, WorkloadSpec
from repro.core.bounds import Bounds
from repro.faults.plan import DegradedWindow, FaultPlan
from repro.core.partition import (
    ChunkPartitioner,
    DyconitPartitioner,
    GlobalPartitioner,
    RegionPartitioner,
)
from repro.core.policy import Policy
from repro.policies import (
    AdaptiveBoundsPolicy,
    DistanceBasedPolicy,
    ElasticPartitioningPolicy,
    FixedBoundsPolicy,
    InfiniteBoundsPolicy,
    InterestCutoffPolicy,
    ZeroBoundsPolicy,
)
from repro.server.config import ServerConfig
from repro.server.costmodel import CostCoefficients

#: Policy names accepted by :func:`make_policy`, in presentation order.
POLICY_NAMES = (
    "vanilla", "zero", "infinite", "fixed", "aoi", "distance", "adaptive", "elastic",
)


def make_policy(name: str, **kwargs) -> Policy | None:
    """Instantiate a policy by its experiment name.

    ``"vanilla"`` returns ``None``: the runner then puts the server in
    direct mode (no middleware at all).
    """
    factories = {
        "zero": ZeroBoundsPolicy,
        "infinite": InfiniteBoundsPolicy,
        "fixed": FixedBoundsPolicy,
        "aoi": InterestCutoffPolicy,
        "distance": DistanceBasedPolicy,
        "adaptive": AdaptiveBoundsPolicy,
        "elastic": ElasticPartitioningPolicy,
    }
    if name == "vanilla":
        return None
    if name not in factories:
        raise ValueError(f"unknown policy {name!r}; expected one of {POLICY_NAMES}")
    return factories[name](**kwargs)


def make_partitioner(name: str) -> DyconitPartitioner:
    """``"chunk"``, ``"region:N"``, or ``"global"``."""
    if name == "chunk":
        return ChunkPartitioner()
    if name == "global":
        return GlobalPartitioner()
    if name.startswith("region:"):
        return RegionPartitioner(region_size=int(name.split(":", 1)[1]))
    raise ValueError(f"unknown partitioner {name!r}")


@dataclass(frozen=True)
class ExperimentConfig:
    """Everything needed to run one experiment point."""

    name: str = "experiment"
    policy: str = "adaptive"
    policy_kwargs: dict = field(default_factory=dict)
    partitioner: str = "chunk"
    merging_enabled: bool = True

    bots: int = 50
    movement: str = "hotspot"
    behavior: BehaviorMix = field(default_factory=lambda: BUILDER_MIX)
    act_interval_ms: float = 100.0
    mob_count: int = 0

    duration_ms: float = 30_000.0
    #: Measurements (bandwidth rate, tick percentiles) use the window
    #: [warmup_ms, duration_ms); the join burst and policy settling are
    #: excluded, matching how the paper reports steady-state numbers.
    warmup_ms: float = 10_000.0
    seed: int = 42
    view_distance: int = 5
    synchronous_delivery: bool = True
    record_latencies: bool = False
    cost: CostCoefficients = field(default_factory=CostCoefficients)
    fixed_bounds: Bounds | None = None
    #: Fleet-wide network fault plan (None = no fault layer at all).
    faults: FaultPlan | None = None
    #: Session churn schedule (None = stable population).
    churn: ChurnSpec | None = None
    #: Checked mode (S15): audit middleware invariants every N ticks
    #: during the run (0 = off); any violation aborts the experiment.
    audit_every_n_ticks: int = 0
    #: S17 batched commit pipeline (flat columnar subscription state +
    #: per-tick ``commit_many`` bursts). Off = the legacy per-object
    #: commit path, kept as packet-identical differential ground truth.
    use_batched_commit: bool = True
    #: S19 storage backend spec for dyconit subscription state
    #: ("memory", "sqlite", "sqlite:///path", "redis://...").
    state_store: str = "memory"
    #: Sharded world (S16): number of logical shards. 1 = the classic
    #: single-server path; N > 1 runs a :class:`ShardedCluster` with
    #: cross-shard dyconit federation (requires a dyconit policy).
    shards: int = 1
    #: Width, in chunks, of the vertical ownership strips the cluster
    #: router hands to shards round-robin.
    strip_width: int = 4
    #: S18: run each shard's tick phase in a persistent worker process
    #: (:class:`~repro.cluster.runner.ParallelShardRunner`). Packet
    #: streams are byte-identical to the serial sharded run; only
    #: wall-clock behaviour changes.
    parallel_ticks: bool = False

    def __post_init__(self) -> None:
        if self.warmup_ms >= self.duration_ms:
            raise ValueError(
                f"warmup ({self.warmup_ms}) must be shorter than the run "
                f"({self.duration_ms})"
            )
        if self.shards < 1:
            raise ValueError(f"shard count must be >= 1, got {self.shards}")
        if self.shards > 1 and self.policy == "vanilla":
            raise ValueError(
                "a multi-shard cluster federates through inter-server "
                "dyconits; policy='vanilla' (direct mode) only supports "
                "shards=1"
            )
        if self.parallel_ticks and self.shards < 2:
            raise ValueError(
                "parallel_ticks parallelizes across shards; it needs "
                "shards >= 2"
            )
        if self.parallel_ticks and not self.synchronous_delivery:
            raise ValueError(
                "parallel_ticks requires synchronous_delivery: scheduled "
                "packet deliveries would land in the parent simulation, "
                "not the shard's worker process"
            )

    def with_(self, **overrides) -> "ExperimentConfig":
        """A copy with fields replaced (sweep helper)."""
        return replace(self, **overrides)

    def build_policy(self) -> Policy | None:
        kwargs = dict(self.policy_kwargs)
        if self.policy == "fixed" and self.fixed_bounds is not None:
            kwargs.setdefault("bounds", self.fixed_bounds)
        return make_policy(self.policy, **kwargs)

    def build_server_config(self) -> ServerConfig:
        return ServerConfig(
            view_distance=self.view_distance,
            mob_count=self.mob_count,
            synchronous_delivery=self.synchronous_delivery,
            cost=self.cost,
            faults=self.faults,
            audit_every_n_ticks=self.audit_every_n_ticks,
            use_batched_commit=self.use_batched_commit,
            state_store=self.state_store,
            seed=self.seed,
        )

    def build_workload_spec(self) -> WorkloadSpec:
        return WorkloadSpec(
            bots=self.bots,
            seed=self.seed,
            movement=self.movement,
            behavior=self.behavior,
            act_interval_ms=self.act_interval_ms,
        )


def config_to_dict(config: ExperimentConfig) -> dict:
    """JSON-safe dictionary of a config (inverse of :func:`config_from_dict`).

    Nested value objects (behavior mix, cost model, bounds, fault plan,
    churn spec) become plain dicts via :func:`dataclasses.asdict`.
    """
    return asdict(config)


def config_from_dict(data: dict) -> ExperimentConfig:
    """Rebuild an :class:`ExperimentConfig` from its dict form.

    Restores every nested value object to its real type — including the
    fault plan and churn spec, which a plain ``ExperimentConfig(**data)``
    would silently leave as dicts (frozen dataclasses don't type-check
    their fields).
    """
    data = dict(data)
    behavior = BehaviorMix(**data.pop("behavior"))
    cost = CostCoefficients(**data.pop("cost"))
    fixed_bounds = data.pop("fixed_bounds", None)
    faults = data.pop("faults", None)
    churn = data.pop("churn", None)
    if faults is not None and not isinstance(faults, FaultPlan):
        faults = dict(faults)
        windows = tuple(
            window if isinstance(window, DegradedWindow) else DegradedWindow(**window)
            for window in faults.pop("degraded_windows", ())
        )
        faults = FaultPlan(degraded_windows=windows, **faults)
    if churn is not None and not isinstance(churn, ChurnSpec):
        churn = ChurnSpec(**churn)
    if fixed_bounds is not None and not isinstance(fixed_bounds, Bounds):
        fixed_bounds = Bounds(**fixed_bounds)
    return ExperimentConfig(
        behavior=behavior,
        cost=cost,
        fixed_bounds=fixed_bounds,
        faults=faults,
        churn=churn,
        **data,
    )
