"""Unit tests for entities."""

from repro.world.entity import Entity, EntityKind
from repro.world.geometry import ChunkPos, Vec3


def test_kinds():
    assert EntityKind.PLAYER.is_mob is False
    assert EntityKind.ZOMBIE.is_mob
    assert EntityKind.COW.is_mob
    assert EntityKind.ITEM.is_mob is False


def test_entity_chunk_follows_position():
    entity = Entity(entity_id=1, kind=EntityKind.PLAYER, position=Vec3(17.0, 30.0, -1.0))
    assert entity.chunk_pos == ChunkPos(1, -1)
    entity.position = Vec3(0.0, 30.0, 0.0)
    assert entity.chunk_pos == ChunkPos(0, 0)


def test_is_player():
    player = Entity(1, EntityKind.PLAYER, Vec3.zero())
    cow = Entity(2, EntityKind.COW, Vec3.zero())
    assert player.is_player
    assert not cow.is_player


def test_defaults():
    entity = Entity(1, EntityKind.SHEEP, Vec3.zero())
    assert entity.velocity == Vec3.zero()
    assert entity.yaw == 0.0
    assert entity.name == ""


def test_repr_is_compact():
    entity = Entity(5, EntityKind.ZOMBIE, Vec3(1.234, 30.0, 5.678))
    text = repr(entity)
    assert "zombie" in text and "id=5" in text
