"""Unit tests for world-to-dyconit partitioning."""

from repro.core.partition import (
    GLOBAL_DYCONIT,
    ChunkPartitioner,
    GlobalPartitioner,
    RegionPartitioner,
    centroid_of,
)
from repro.world.block import BlockType
from repro.world.events import BlockChangeEvent, ChatEvent, EntityMoveEvent
from repro.world.geometry import BlockPos, ChunkPos, Vec3

import pytest


def block_event(x=0, z=0):
    return BlockChangeEvent(0.0, BlockPos(x, 10, z), BlockType.AIR, BlockType.STONE)


def move_event(x=0.0, z=0.0):
    return EntityMoveEvent(0.0, 1, Vec3(0, 0, 0), Vec3(x, 0, z))


class TestChunkPartitioner:
    def setup_method(self):
        self.partitioner = ChunkPartitioner()

    def test_block_events_route_to_their_chunk(self):
        assert self.partitioner.dyconit_for_event(block_event(17, -1)) == ("chunk", 1, -1)

    def test_moves_route_to_destination_chunk(self):
        assert self.partitioner.dyconit_for_event(move_event(33.0, 0.0)) == ("chunk", 2, 0)

    def test_chat_routes_to_global(self):
        assert self.partitioner.dyconit_for_event(ChatEvent(0.0, 1, "hi")) == GLOBAL_DYCONIT

    def test_view_covers_square_plus_global(self):
        ids = self.partitioner.dyconits_for_view(ChunkPos(0, 0), radius=2)
        assert len(ids) == 25 + 1
        assert GLOBAL_DYCONIT in ids
        assert ("chunk", 2, 2) in ids
        assert ("chunk", 3, 0) not in ids

    def test_view_order_is_deterministic_scan_order(self):
        """Subscribe order must not depend on string-hash randomization:
        ids come back in view-scan order with the global dyconit last."""
        ids = list(self.partitioner.dyconits_for_view(ChunkPos(0, 0), radius=1))
        assert ids == [
            ("chunk", -1, -1), ("chunk", -1, 0), ("chunk", -1, 1),
            ("chunk", 0, -1), ("chunk", 0, 0), ("chunk", 0, 1),
            ("chunk", 1, -1), ("chunk", 1, 0), ("chunk", 1, 1),
            GLOBAL_DYCONIT,
        ]

    def test_chunk_of_roundtrip(self):
        dyconit_id = self.partitioner.dyconit_for_chunk(ChunkPos(4, -7))
        assert self.partitioner.chunk_of(dyconit_id) == ChunkPos(4, -7)
        assert self.partitioner.chunk_of(GLOBAL_DYCONIT) is None

    def test_centroid(self):
        centroid = centroid_of(("chunk", 1, 1), self.partitioner)
        assert (centroid.x, centroid.z) == (24.0, 24.0)


class TestRegionPartitioner:
    def test_groups_chunks_into_regions(self):
        partitioner = RegionPartitioner(region_size=4)
        a = partitioner.dyconit_for_chunk(ChunkPos(0, 0))
        b = partitioner.dyconit_for_chunk(ChunkPos(3, 3))
        c = partitioner.dyconit_for_chunk(ChunkPos(4, 0))
        assert a == b != c

    def test_negative_chunks_group_contiguously(self):
        partitioner = RegionPartitioner(region_size=4)
        a = partitioner.dyconit_for_chunk(ChunkPos(-1, -1))
        b = partitioner.dyconit_for_chunk(ChunkPos(-4, -4))
        c = partitioner.dyconit_for_chunk(ChunkPos(-5, -1))
        assert a == b != c

    def test_view_produces_fewer_dyconits_than_chunks(self):
        partitioner = RegionPartitioner(region_size=4)
        ids = partitioner.dyconits_for_view(ChunkPos(0, 0), radius=4)
        assert len(ids) < 81

    def test_event_routing_matches_chunk_mapping(self):
        partitioner = RegionPartitioner(region_size=2)
        event = block_event(35, 2)  # chunk (2, 0) -> region (1, 0)
        assert partitioner.dyconit_for_event(event) == partitioner.dyconit_for_chunk(
            ChunkPos(2, 0)
        )

    def test_chunk_of_returns_region_center(self):
        partitioner = RegionPartitioner(region_size=4)
        dyconit_id = partitioner.dyconit_for_chunk(ChunkPos(0, 0))
        center = partitioner.chunk_of(dyconit_id)
        assert center == ChunkPos(2, 2)

    def test_rejects_bad_size(self):
        with pytest.raises(ValueError):
            RegionPartitioner(region_size=0)


class TestGlobalPartitioner:
    def test_everything_routes_to_global(self):
        partitioner = GlobalPartitioner()
        assert partitioner.dyconit_for_event(block_event()) == GLOBAL_DYCONIT
        assert partitioner.dyconit_for_event(move_event()) == GLOBAL_DYCONIT
        assert list(partitioner.dyconits_for_view(ChunkPos(9, 9), 5)) == [GLOBAL_DYCONIT]
        assert partitioner.chunk_of(GLOBAL_DYCONIT) is None
