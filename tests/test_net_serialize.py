"""Unit tests for the wire-size model helpers."""

import pytest

from repro.net.serialize import (
    CHUNK_FIXED_BYTES,
    compressed_chunk_bytes,
    packet_overhead,
    varint_size,
)


class TestVarint:
    def test_single_byte_values(self):
        assert varint_size(0) == 1
        assert varint_size(127) == 1

    def test_two_byte_values(self):
        assert varint_size(128) == 2
        assert varint_size(16383) == 2

    def test_larger_values(self):
        assert varint_size(16384) == 3
        assert varint_size(2097152) == 4
        assert varint_size(2**31) == 5

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            varint_size(-1)

    def test_monotone(self):
        sizes = [varint_size(v) for v in (0, 100, 1000, 100_000, 10_000_000)]
        assert sizes == sorted(sizes)


class TestChunkBytes:
    def test_empty_chunk_is_nearly_fixed_cost(self):
        size = compressed_chunk_bytes(16 * 16 * 64, 0)
        assert CHUNK_FIXED_BYTES <= size <= CHUNK_FIXED_BYTES + 100

    def test_solid_blocks_dominate(self):
        total = 16 * 16 * 64
        empty = compressed_chunk_bytes(total, 0)
        half = compressed_chunk_bytes(total, total // 2)
        full = compressed_chunk_bytes(total, total)
        assert empty < half < full

    def test_realistic_chunk_is_kilobyte_scale(self):
        # A generated chunk is roughly half solid; real servers see
        # 0.5-2 KiB compressed per chunk at this world height.
        size = compressed_chunk_bytes(16 * 16 * 64, 7500)
        assert 500 <= size <= 2500

    def test_rejects_more_solid_than_total(self):
        with pytest.raises(ValueError):
            compressed_chunk_bytes(100, 101)


def test_packet_overhead_is_small_and_positive():
    assert 1 <= packet_overhead() <= 10
