"""Behavioural tests for workload orchestration."""

import pytest

from repro.bots.workload import BehaviorMix, Workload, WorkloadSpec
from repro.policies.zero import ZeroBoundsPolicy


@pytest.fixture
def server(server_factory):
    return server_factory(policy=ZeroBoundsPolicy(), synchronous_delivery=True)


def test_behavior_mix_validation():
    with pytest.raises(ValueError):
        BehaviorMix(build=0.6, dig=0.6)
    with pytest.raises(ValueError):
        BehaviorMix(build=-0.1)


def test_spec_validation():
    with pytest.raises(ValueError):
        WorkloadSpec(bots=-1)
    with pytest.raises(ValueError):
        WorkloadSpec(movement="flying")


def test_fleet_connects_with_stagger(sim, server):
    spec = WorkloadSpec(bots=5, seed=3, arrival_stagger_ms=100.0)
    workload = Workload(sim, server, spec)
    workload.start()
    sim.run_until(150.0)
    assert workload.connected_count == 2  # t=0 and t=100 connected
    sim.run_until(1_000.0)
    assert workload.connected_count == 5


def test_bots_generate_traffic(sim, server):
    workload = Workload(sim, server, WorkloadSpec(bots=5, seed=3, arrival_stagger_ms=0.0))
    workload.start()
    sim.run_until(3_000.0)
    assert server.transport.total_bytes() > 0
    assert server.dyconits.stats.commits > 0


def test_add_and_remove_bots(sim, server):
    workload = Workload(sim, server, WorkloadSpec(bots=3, seed=3, arrival_stagger_ms=0.0))
    workload.start()
    sim.run_until(500.0)
    workload.add_bots(4, stagger_ms=0.0)
    assert workload.connected_count == 7
    removed = workload.remove_bots(5)
    assert removed == 5
    assert workload.connected_count == 2
    assert server.player_count == 2


def test_staggered_burst_joins_over_time(sim, server):
    workload = Workload(sim, server, WorkloadSpec(bots=2, seed=3, arrival_stagger_ms=0.0))
    workload.start()
    sim.run_until(200.0)
    workload.add_bots(4, stagger_ms=100.0)
    assert workload.connected_count == 3  # offset 0 connects immediately
    sim.run_until(sim.now + 350.0)
    assert workload.connected_count == 6


def test_remove_cancels_pending_burst_joins(sim, server):
    workload = Workload(sim, server, WorkloadSpec(bots=2, seed=3, arrival_stagger_ms=0.0))
    workload.start()
    sim.run_until(200.0)
    workload.add_bots(3, stagger_ms=10_000.0)  # far in the future
    removed = workload.remove_bots(3)
    assert removed == 3
    sim.run_until(sim.now + 25_000.0)
    assert workload.connected_count == 2  # cancelled joins never fire


def test_measurement_histograms_fill(sim, server):
    spec = WorkloadSpec(bots=4, seed=3, arrival_stagger_ms=0.0, measure_interval_ms=200.0)
    workload = Workload(sim, server, spec)
    workload.start()
    sim.run_until(3_000.0)
    assert workload.error_histogram.count > 0


def test_measurement_can_be_disabled(sim, server):
    spec = WorkloadSpec(bots=2, seed=3, measure_interval_ms=0.0)
    workload = Workload(sim, server, spec)
    workload.start()
    sim.run_until(2_000.0)
    assert workload.error_histogram.count == 0


def test_stop_disconnects_everyone(sim, server):
    workload = Workload(sim, server, WorkloadSpec(bots=3, seed=3, arrival_stagger_ms=0.0))
    workload.start()
    sim.run_until(500.0)
    workload.stop()
    assert workload.connected_count == 0
    assert server.player_count == 0


def test_movement_models_per_spec(sim, server):
    for movement in ("hotspot", "uniform", "trek", "gathering"):
        workload = Workload(sim, server, WorkloadSpec(bots=1, seed=3, movement=movement))
        bot_model = workload._movement_for(0)
        assert bot_model is not None


def test_gathering_workload_converges_on_the_origin(sim, server):
    from repro.bots.movement import GatheringModel

    spec = WorkloadSpec(bots=6, seed=3, movement="gathering", arrival_stagger_ms=0.0)
    workload = Workload(sim, server, spec)
    assert isinstance(workload._movement_for(0), GatheringModel)
    workload.start()
    sim.run_until(20_000.0)
    # The whole fleet ends up milling within the gathering jitter of the
    # origin: every pair mutually visible, one hot chunk neighbourhood.
    positions = [
        server.world.get_entity(bot.entity_id).position for bot in workload.bots
    ]
    assert len(positions) == 6
    for position in positions:
        assert abs(position.x) <= 25.0 and abs(position.z) <= 25.0


def test_gathering_workload_is_seed_deterministic(sim, server):
    spec = WorkloadSpec(bots=3, seed=9, movement="gathering", arrival_stagger_ms=0.0)
    workload = Workload(sim, server, spec)
    import random

    from repro.world.geometry import Vec3

    origin = Vec3(0.0, 0.0, 0.0)
    a = workload._movement_for(1).next_waypoint(random.Random(9), origin)
    workload2 = Workload(sim, server, spec)
    b = workload2._movement_for(1).next_waypoint(random.Random(9), origin)
    assert a == b
