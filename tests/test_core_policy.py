"""Unit tests for the policy base class and load signals."""

from repro.core.bounds import Bounds
from repro.core.manager import DyconitSystem
from repro.core.policy import LoadSignals, Policy

from tests.conftest import RecordingSubscriber


def make_signals(**overrides):
    defaults = dict(
        now=0.0,
        player_count=10,
        last_tick_duration_ms=25.0,
        smoothed_tick_duration_ms=25.0,
        tick_budget_ms=50.0,
        outgoing_bytes_per_second=1000.0,
    )
    defaults.update(overrides)
    return LoadSignals(**defaults)


def test_tick_utilization():
    assert make_signals().tick_utilization == 0.5
    assert make_signals(smoothed_tick_duration_ms=100.0).tick_utilization == 2.0
    assert make_signals(tick_budget_ms=0.0).tick_utilization == 0.0


def test_default_policy_fails_safe_to_zero_bounds():
    """A policy that forgets to override initial_bounds behaves like
    vanilla — it can never silently introduce inconsistency."""
    system = DyconitSystem(Policy(), time_source=lambda: 0.0)
    rec = RecordingSubscriber()
    state = system.subscribe("unit", rec.subscriber)
    assert state.bounds == Bounds.ZERO


def test_default_hooks_are_noops():
    policy = Policy()
    system = DyconitSystem(policy, time_source=lambda: 0.0)
    rec = RecordingSubscriber()
    system.register_subscriber(rec.subscriber)
    # None of these should raise.
    policy.evaluate(system, make_signals())
    policy.on_subscriber_moved(system, rec.subscriber)


def test_policy_name():
    class MyPolicy(Policy):
        pass

    assert MyPolicy().name == "MyPolicy"
    assert "MyPolicy" in repr(MyPolicy())


def test_on_attach_called_by_system():
    class Attaching(Policy):
        def __init__(self):
            self.attached_to = None

        def on_attach(self, system):
            self.attached_to = system

    policy = Attaching()
    system = DyconitSystem(policy, time_source=lambda: 0.0)
    assert policy.attached_to is system
