"""World-to-dyconit partitioning.

The paper lets games "partition offline the game-world and its objects
into units". A partitioner maps world events to dyconit ids and player
view areas to dyconit-id sets. Three granularities are provided — they
are the subject of the E8(b) granularity ablation:

* :class:`ChunkPartitioner` — one dyconit per 16x16 chunk (default);
* :class:`RegionPartitioner` — one dyconit per NxN block of chunks;
* :class:`GlobalPartitioner` — a single dyconit for the whole world.

Chat is global under every partitioner.
"""

from __future__ import annotations

from typing import Hashable, Iterable

from repro.world.events import ChatEvent, WorldEvent
from repro.world.geometry import ChunkPos, chunks_in_radius

GLOBAL_DYCONIT: Hashable = ("global",)


class DyconitPartitioner:
    """Strategy interface mapping world structure onto dyconits."""

    def dyconit_for_event(self, event: WorldEvent) -> Hashable:
        """The dyconit an event must be committed to."""
        raise NotImplementedError

    def dyconit_for_chunk(self, chunk: ChunkPos) -> Hashable:
        """The dyconit owning a chunk."""
        raise NotImplementedError

    def dyconits_for_view(self, center: ChunkPos, radius: int) -> dict[Hashable, None]:
        """Dyconits a player with the given view area must subscribe to,
        as a dict-as-ordered-set in deterministic view-scan order.

        The ids are tuples containing strings, so a plain ``set`` would
        iterate in randomized hash order and the subscribe order (hence
        flush order) would differ run to run.

        Always includes the global dyconit (chat and other world-wide
        updates flow through it).
        """
        ids = {
            self.dyconit_for_chunk(chunk): None
            for chunk in chunks_in_radius(center, radius)
        }
        ids[GLOBAL_DYCONIT] = None
        return ids

    def chunk_of(self, dyconit_id: Hashable) -> ChunkPos | None:
        """Representative chunk for spatial policies; None for global."""
        raise NotImplementedError


class ChunkPartitioner(DyconitPartitioner):
    """One dyconit per chunk — the finest spatial granularity."""

    def dyconit_for_event(self, event: WorldEvent) -> Hashable:
        if isinstance(event, ChatEvent):
            return GLOBAL_DYCONIT
        chunk = event.chunk_pos
        if chunk is None:
            return GLOBAL_DYCONIT
        return ("chunk", chunk.cx, chunk.cz)

    def dyconit_for_chunk(self, chunk: ChunkPos) -> Hashable:
        return ("chunk", chunk.cx, chunk.cz)

    def chunk_of(self, dyconit_id: Hashable) -> ChunkPos | None:
        if isinstance(dyconit_id, tuple) and dyconit_id and dyconit_id[0] == "chunk":
            return ChunkPos(dyconit_id[1], dyconit_id[2])
        return None


class RegionPartitioner(DyconitPartitioner):
    """One dyconit per ``region_size`` x ``region_size`` chunk block."""

    def __init__(self, region_size: int = 4) -> None:
        if region_size < 1:
            raise ValueError(f"region size must be >= 1, got {region_size}")
        self.region_size = region_size

    def _region(self, chunk: ChunkPos) -> tuple[int, int]:
        # Floor division keeps negative coordinates in contiguous regions.
        return (chunk.cx // self.region_size, chunk.cz // self.region_size)

    def dyconit_for_event(self, event: WorldEvent) -> Hashable:
        if isinstance(event, ChatEvent):
            return GLOBAL_DYCONIT
        chunk = event.chunk_pos
        if chunk is None:
            return GLOBAL_DYCONIT
        rx, rz = self._region(chunk)
        return ("region", self.region_size, rx, rz)

    def dyconit_for_chunk(self, chunk: ChunkPos) -> Hashable:
        rx, rz = self._region(chunk)
        return ("region", self.region_size, rx, rz)

    def chunk_of(self, dyconit_id: Hashable) -> ChunkPos | None:
        if isinstance(dyconit_id, tuple) and dyconit_id and dyconit_id[0] == "region":
            __, size, rx, rz = dyconit_id
            # Center chunk of the region.
            return ChunkPos(rx * size + size // 2, rz * size + size // 2)
        return None


class GlobalPartitioner(DyconitPartitioner):
    """Everything in a single dyconit — the coarsest granularity."""

    def dyconit_for_event(self, event: WorldEvent) -> Hashable:
        return GLOBAL_DYCONIT

    def dyconit_for_chunk(self, chunk: ChunkPos) -> Hashable:
        return GLOBAL_DYCONIT

    def dyconits_for_view(self, center: ChunkPos, radius: int) -> dict[Hashable, None]:
        return {GLOBAL_DYCONIT: None}

    def chunk_of(self, dyconit_id: Hashable) -> ChunkPos | None:
        return None


def parse_spatial_id(dyconit_id: Hashable) -> ChunkPos | None:
    """Representative chunk of a standard spatial id, or None.

    Understands the two spatial id shapes used across partitioners and
    runtime merging — ``("chunk", cx, cz)`` and ``("region", size, rx,
    rz)`` — so spatial policies can locate a merged dyconit even when the
    installed partitioner would never produce its id itself.
    """
    if not (isinstance(dyconit_id, tuple) and dyconit_id):
        return None
    if dyconit_id[0] == "chunk" and len(dyconit_id) == 3:
        return ChunkPos(dyconit_id[1], dyconit_id[2])
    if dyconit_id[0] == "region" and len(dyconit_id) == 4:
        __, size, rx, rz = dyconit_id
        return ChunkPos(rx * size + size // 2, rz * size + size // 2)
    return None


def centroid_of(dyconit_id: Hashable, partitioner: DyconitPartitioner):
    """Continuous world position representing a dyconit, or None."""
    chunk = parse_spatial_id(dyconit_id)
    if chunk is None:
        chunk = partitioner.chunk_of(dyconit_id)
    if chunk is None:
        return None
    return chunk.center()


def view_dyconits(
    partitioner: DyconitPartitioner, center: ChunkPos, radius: int
) -> Iterable[Hashable]:
    return partitioner.dyconits_for_view(center, radius)
