"""The dyconit: one consistency unit with per-subscriber queues.

Each subscriber of a dyconit has a :class:`SubscriptionState` holding

* its current :class:`~repro.core.bounds.Bounds`,
* a pending-update map keyed by merge key (newest update wins; the
  superseded one is counted as *merged* — a message saved), and
* conit accounting: accumulated numerical error and the timestamp of the
  oldest pending update.

Numerical error accumulates over *every* committed update's weight, not
just the surviving merged ones: merging reduces bytes, never the
inconsistency the subscriber is charged for. This keeps the bound
conservative (optimistic delivery can only be *more* consistent than the
bound promises), matching the conit model the paper builds on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, NamedTuple

from repro.core.bounds import Bounds
from repro.core.subscription import Subscriber
from repro.core.update import Update


class EnqueueResult(NamedTuple):
    """What happened when an update was queued for one subscriber."""

    superseded: bool  # replaced an older update with the same merge key
    became_pending: bool  # queue transitioned empty -> non-empty


@dataclass
class SubscriptionState:
    """Per-(dyconit, subscriber) queue and error accounting."""

    subscriber: Subscriber
    bounds: Bounds
    pending: dict[tuple, Update] = field(default_factory=dict)
    accumulated_error: float = 0.0
    oldest_pending_time: float | None = None
    enqueued_count: int = 0
    merged_count: int = 0
    #: E8(a) ablation switch: with merging off, every queued update keeps a
    #: unique key so nothing is ever superseded.
    merging: bool = True

    @property
    def has_pending(self) -> bool:
        return bool(self.pending)

    def oldest_age_ms(self, now: float) -> float:
        if self.oldest_pending_time is None:
            return 0.0
        return now - self.oldest_pending_time

    def enqueue(self, update: Update) -> EnqueueResult:
        """Queue ``update``, merging over any older same-key update.

        A merge deletes the superseded entry before reinserting so the
        survivor moves to the *end* of the dict: insertion order stays
        commit-time order, which is what lets :meth:`drain` skip sorting.
        """
        key = update.merge_key if self.merging else (self.enqueued_count, update.merge_key)
        superseded = key in self.pending
        if superseded:
            del self.pending[key]
            self.merged_count += 1
        self.pending[key] = update
        self.accumulated_error += update.weight
        self.enqueued_count += 1
        became_pending = self.oldest_pending_time is None
        if became_pending:
            self.oldest_pending_time = update.time
        return EnqueueResult(superseded=superseded, became_pending=became_pending)

    def exceeds_bounds(self, now: float) -> bool:
        return self.tripped_dimension(now) is not None

    def tripped_dimension(self, now: float) -> str | None:
        """Which bound dimension the queue currently violates, if any.

        The flush paths use this both as the flush predicate and as the
        recorded flush reason, so reason accounting can never disagree
        with the decision to flush.
        """
        if not self.pending:
            return None
        return self.bounds.tripped_dimension(
            self.accumulated_error, self.oldest_age_ms(now), len(self.pending)
        )

    def drain(self) -> list[Update]:
        """Remove and return pending updates in commit-time order.

        Sort-free: :meth:`enqueue` keeps dict insertion order equal to
        commit order (merges delete-then-reinsert), and commits arrive
        with nondecreasing sim time, so a flush is O(n) instead of
        O(n log n). The one writer that can break the order — a
        cross-queue dyconit merge — calls :meth:`restore_time_order`.
        """
        updates = list(self.pending.values())
        self.pending.clear()
        self.accumulated_error = 0.0
        self.oldest_pending_time = None
        return updates

    def restore_time_order(self) -> None:
        """Re-sort pending into commit-time order after a cross-queue merge.

        Moving another subscription's backlog into this one appends
        updates that may predate entries already queued here; one stable
        sort restores the invariant :meth:`drain` relies on. Only the
        (rare, policy-driven) repartitioning path pays this cost.
        """
        items = sorted(self.pending.items(), key=lambda item: item[1].time)
        self.pending.clear()
        self.pending.update(items)
        if items:
            # The moved backlog may be older than this queue's previous
            # head; staleness accounting must age from the true oldest.
            # (Only ever moved earlier: a superseded update's time may
            # legitimately predate every surviving entry.)
            first_time = items[0][1].time
            if self.oldest_pending_time is None or first_time < self.oldest_pending_time:
                self.oldest_pending_time = first_time


class Dyconit:
    """One consistency unit covering a partition of the game world.

    With ``flat=True`` the per-subscription state lives in a columnar
    :class:`~repro.core.flatstate.FlatDyconitState` (S17): subscription
    accessors return :class:`~repro.core.flatstate.FlatSubscriptionView`
    objects that are drop-in compatible with :class:`SubscriptionState`,
    and the manager commits through :meth:`commit_flat` (one vectorized
    add + gated threshold scan) instead of the per-object walk.
    """

    def __init__(
        self,
        dyconit_id: Hashable,
        default_bounds: Bounds = Bounds.ZERO,
        merging: bool = True,
        flat: bool = False,
    ) -> None:
        self.dyconit_id = dyconit_id
        self.default_bounds = default_bounds
        self.merging = merging
        self._subscriptions: dict[int, SubscriptionState] = {}
        self._flat = None
        if flat:
            # Deferred import: flatstate imports SubscriptionState from
            # this module.
            from repro.core.flatstate import FlatDyconitState

            self._flat = FlatDyconitState(merging=merging)
        #: Total weight ever committed; a measure of how "hot" this unit
        #: is, used by workload-aware policies.
        self.total_committed_weight = 0.0
        self.commit_count = 0

    def _ensure_private(self) -> None:
        """Convert the columnar store back to per-object states.

        Repartitioning (merge/split) mutates subscription queues in ways
        the columnar store does not model (cross-queue backlog moves), so
        the manager privatizes a dyconit before merging into or out of
        it. Merge targets are cold by policy design; they stay private
        for the rest of their life (a split removes the target and
        replacement dyconits start columnar again).
        """
        flat = self._flat
        if flat is None:
            return
        self._subscriptions = {
            sub.subscriber_id: flat.materialize_state(slot)
            for slot, sub in enumerate(flat.subscriber_by_slot)
        }
        self._flat = None

    # ------------------------------------------------------------------
    # Subscription management
    # ------------------------------------------------------------------

    @property
    def subscriber_count(self) -> int:
        if self._flat is not None:
            return self._flat.n
        return len(self._subscriptions)

    def subscribers(self) -> list[Subscriber]:
        if self._flat is not None:
            return list(self._flat.subscriber_by_slot)
        return [state.subscriber for state in self._subscriptions.values()]

    def subscription_states(self) -> list[SubscriptionState]:
        if self._flat is not None:
            return self._flat.views()
        return list(self._subscriptions.values())

    def is_subscribed(self, subscriber_id: int) -> bool:
        if self._flat is not None:
            return subscriber_id in self._flat.slots
        return subscriber_id in self._subscriptions

    def subscribe(self, subscriber: Subscriber, bounds: Bounds | None = None) -> SubscriptionState:
        """Add ``subscriber``; idempotent (re-subscribing keeps the queue)."""
        if self._flat is not None:
            flat = self._flat
            existing = flat.view(subscriber.subscriber_id)
            if existing is not None:
                if bounds is not None:
                    existing.bounds = bounds
                return existing
            return flat.subscribe(
                subscriber, bounds if bounds is not None else self.default_bounds
            )
        state = self._subscriptions.get(subscriber.subscriber_id)
        if state is not None:
            if bounds is not None:
                state.bounds = bounds
            return state
        state = SubscriptionState(
            subscriber=subscriber,
            bounds=bounds if bounds is not None else self.default_bounds,
            merging=self.merging,
        )
        self._subscriptions[subscriber.subscriber_id] = state
        return state

    def unsubscribe(self, subscriber_id: int) -> SubscriptionState | None:
        """Remove the subscription; returns its final state (with any
        still-pending updates) so the caller can decide to flush or drop."""
        if self._flat is not None:
            return self._flat.unsubscribe(subscriber_id)
        return self._subscriptions.pop(subscriber_id, None)

    def get_state(self, subscriber_id: int) -> SubscriptionState | None:
        if self._flat is not None:
            return self._flat.view(subscriber_id)
        return self._subscriptions.get(subscriber_id)

    def restore_subscription(self, subscriber: Subscriber, snap) -> SubscriptionState:
        """Recreate a subscription from a restart snapshot (S20).

        Fields are copied verbatim — replaying through :meth:`enqueue`
        would recompute ``accumulated_error`` without the superseded
        updates' weights. A columnar dyconit is privatized first; the
        manager's legacy commit path is packet-identical (S17), so a
        restored run stays bit-compatible.
        """
        if self.is_subscribed(subscriber.subscriber_id):
            raise ValueError(
                f"subscriber {subscriber.subscriber_id} already subscribed "
                f"to {self.dyconit_id!r}"
            )
        self._ensure_private()
        state = SubscriptionState(
            subscriber=subscriber,
            bounds=snap.bounds,
            pending=dict(snap.pending),
            accumulated_error=snap.accumulated_error,
            oldest_pending_time=snap.oldest_pending_time,
            enqueued_count=snap.enqueued_count,
            merged_count=snap.merged_count,
            merging=snap.merging,
        )
        self._subscriptions[subscriber.subscriber_id] = state
        return state

    def set_bounds(self, subscriber_id: int, bounds: Bounds) -> None:
        if self._flat is not None:
            slot = self._flat.slots.get(subscriber_id)
            if slot is None:
                raise KeyError(
                    f"subscriber {subscriber_id} is not subscribed to {self.dyconit_id}"
                )
            self._flat.set_bounds_slot(slot, bounds)
            return
        state = self._subscriptions.get(subscriber_id)
        if state is None:
            raise KeyError(
                f"subscriber {subscriber_id} is not subscribed to {self.dyconit_id}"
            )
        state.bounds = bounds

    # ------------------------------------------------------------------
    # Commit path
    # ------------------------------------------------------------------

    def commit(
        self, update: Update, exclude_subscriber: int | None = None
    ) -> list[tuple[SubscriptionState, EnqueueResult]]:
        """Enqueue ``update`` for every subscriber.

        ``exclude_subscriber`` skips the update's originator (a player
        does not need its own action echoed back). Returns the touched
        states with their enqueue outcomes so the manager can run bound
        checks and merge accounting without a second lookup.
        """
        if self._flat is not None:
            # Direct callers (tests, benchmarks) on a columnar dyconit:
            # fall back to per-object states so the legacy return shape
            # holds. The manager never takes this path — it commits
            # through :meth:`commit_flat`.
            self._ensure_private()
        touched: list[tuple[SubscriptionState, EnqueueResult]] = []
        for subscriber_id, state in self._subscriptions.items():
            if subscriber_id == exclude_subscriber:
                continue
            result = state.enqueue(update)
            touched.append((state, result))
        if touched:
            # Hotness accounting counts commits that actually enqueued
            # for someone: a commit with no subscribers (or only the
            # excluded originator) changed nobody's inconsistency and
            # must not make the unit look hot to the policy.
            self.total_committed_weight += update.weight
            self.commit_count += 1
        return touched

    def commit_flat(
        self, update: Update, exclude_subscriber: int | None, now: float
    ):
        """Columnar commit (S17): vectorized enqueue + gated bound scan.

        Returns ``(n_enqueued, n_merged, events)`` — see
        :meth:`FlatDyconitState.commit
        <repro.core.flatstate.FlatDyconitState.commit>`.
        """
        result = self._flat.commit(update, exclude_subscriber, now)
        if result[0]:
            self.total_committed_weight += update.weight
            self.commit_count += 1
        return result

    def __repr__(self) -> str:
        return (
            f"Dyconit({self.dyconit_id!r}, subscribers={self.subscriber_count}, "
            f"commits={self.commit_count})"
        )
