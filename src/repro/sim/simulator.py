"""Simulation driver: clock + event queue + run loop."""

from __future__ import annotations

from typing import Callable

from repro.sim.clock import SimClock
from repro.sim.events import EventQueue, ScheduledEvent
from repro.telemetry.hub import NULL_TELEMETRY, Telemetry


class Simulation:
    """Owns the clock and the event queue and runs them to completion.

    Components schedule work with :meth:`schedule` (relative delay) or
    :meth:`schedule_at` (absolute time). The driver pops events in
    deterministic order and advances the clock to each event's timestamp
    before dispatching it.
    """

    def __init__(self, start: float = 0.0, telemetry: Telemetry | None = None) -> None:
        self.clock = SimClock(start)
        self.queue = EventQueue()
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self._running = False

    @property
    def now(self) -> float:
        """Current simulated time in milliseconds."""
        return self.clock.now

    def schedule(self, delay_ms: float, callback: Callable[[], None]) -> ScheduledEvent:
        """Schedule ``callback`` to run ``delay_ms`` from now."""
        if delay_ms < 0:
            raise ValueError(f"cannot schedule in the past: delay={delay_ms}")
        return self.queue.push(self.clock.now + delay_ms, callback)

    def schedule_at(self, time_ms: float, callback: Callable[[], None]) -> ScheduledEvent:
        """Schedule ``callback`` at absolute simulated time ``time_ms``."""
        if time_ms < self.clock.now:
            raise ValueError(
                f"cannot schedule in the past: now={self.clock.now}, requested={time_ms}"
            )
        return self.queue.push(time_ms, callback)

    def run_until(self, end_ms: float) -> None:
        """Dispatch events until simulated time reaches ``end_ms``.

        The clock lands exactly on ``end_ms`` when the run completes, so
        follow-up phases (e.g. a measurement epoch) start from a known
        instant. Events scheduled exactly at ``end_ms`` are dispatched.
        """
        # The dispatch counter is resolved once per run, not per event:
        # this loop is the hottest code in the repository.
        dispatched = (
            self.telemetry.counter("sim_events_dispatched_total")
            if self.telemetry.enabled
            else None
        )
        self._running = True
        try:
            while self._running:
                next_time = self.queue.peek_time()
                if next_time is None or next_time > end_ms:
                    break
                event = self.queue.pop()
                if event is None:
                    break
                self.clock.advance_to(event.time)
                event.callback()
                if dispatched is not None:
                    dispatched.increment()
        finally:
            self._running = False
        if self.clock.now < end_ms:
            self.clock.advance_to(end_ms)

    def run(self) -> None:
        """Dispatch events until the queue is exhausted."""
        dispatched = (
            self.telemetry.counter("sim_events_dispatched_total")
            if self.telemetry.enabled
            else None
        )
        self._running = True
        try:
            while self._running:
                event = self.queue.pop()
                if event is None:
                    break
                self.clock.advance_to(event.time)
                event.callback()
                if dispatched is not None:
                    dispatched.increment()
        finally:
            self._running = False

    def stop(self) -> None:
        """Stop the run loop after the current event finishes."""
        self._running = False
