"""Benchmark configuration.

Each benchmark regenerates one table/figure of the paper's evaluation
(see DESIGN.md's experiment index) and prints the same rows/series the
paper reports. Benchmarks are sized to finish in minutes on a laptop;
pass ``--paper-scale`` to run the full-size versions used for
EXPERIMENTS.md.
"""

from __future__ import annotations

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--paper-scale",
        action="store_true",
        default=False,
        help="run experiments at the full scale recorded in EXPERIMENTS.md "
        "(several minutes per benchmark) instead of the quick CI scale",
    )
    parser.addoption(
        "--jobs",
        type=int,
        default=1,
        help="shard each benchmark's experiment cells across N worker "
        "processes (results are byte-identical to --jobs 1; see "
        "repro.experiments.parallel)",
    )


@pytest.fixture(scope="session")
def jobs(request) -> int:
    """Worker-process count for sweep-shaped benchmarks."""
    return request.config.getoption("--jobs")


@pytest.fixture(scope="session")
def scale(request):
    """Experiment sizing knobs, small by default."""
    if request.config.getoption("--paper-scale"):
        return {
            "bots": 100,
            "duration_ms": 30_000.0,
            "warmup_ms": 10_000.0,
            "capacity_counts": (50, 75, 100, 125, 150, 175, 200),
            "capacity_duration_ms": 20_000.0,
            #: Minimum capacity ratio (adaptive / vanilla) asserted by E2.
            "capacity_min_gain": 1.25,
            "dynamics_duration_ms": 60_000.0,
        }
    return {
        "bots": 40,
        "duration_ms": 12_000.0,
        "warmup_ms": 5_000.0,
        # The sweep must extend past the adaptive policy's capacity or the
        # measured gain is clipped at the top of the range.
        "capacity_counts": (40, 70, 100, 130, 160),
        "capacity_duration_ms": 12_000.0,
        # Short measurement windows compress the measured gain: the
        # vanilla death spiral has not fully developed at the crossing
        # and the adaptive servo has had few evaluation periods. The
        # full gain (~+35%, see EXPERIMENTS.md) appears at --paper-scale.
        "capacity_min_gain": 1.08,
        "dynamics_duration_ms": 42_000.0,
    }
