"""Unit tests for the order-error (queue length) bound dimension."""

import math

import pytest

from repro.core.bounds import Bounds
from repro.core.manager import DyconitSystem
from repro.core.policy import Policy
from repro.world.events import EntityMoveEvent
from repro.world.geometry import Vec3

from tests.conftest import RecordingSubscriber


class OrderPolicy(Policy):
    def __init__(self, bounds):
        self.bounds = bounds

    def initial_bounds(self, system, dyconit_id, subscriber):
        return self.bounds


def move(entity_id, time=0.0):
    return EntityMoveEvent(time, entity_id, Vec3(0, 0, 0), Vec3(0.1, 0, 0))


def test_order_defaults_to_unbounded():
    assert math.isinf(Bounds(1.0, 1.0).order)
    assert Bounds.INFINITE.is_infinite


def test_order_bound_validation():
    with pytest.raises(ValueError):
        Bounds(1.0, 1.0, order=-1)


def test_exceeded_by_order_dimension():
    bounds = Bounds(math.inf, math.inf, order=3)
    assert not bounds.exceeded_by(0.0, 0.0, pending_count=3)
    assert bounds.exceeded_by(0.0, 0.0, pending_count=4)


def test_order_scales():
    assert Bounds(1.0, 1.0, order=4).scaled(2.0).order == 8.0
    assert math.isinf(Bounds(1.0, 1.0).scaled(2.0).order)


def test_order_bound_flushes_on_distinct_updates():
    system = DyconitSystem(
        OrderPolicy(Bounds(math.inf, math.inf, order=2)), time_source=lambda: 0.0
    )
    rec = RecordingSubscriber()
    system.subscribe(("chunk", 0, 0), rec.subscriber)
    system.commit(move(1))
    system.commit(move(2))
    assert rec.delivered_updates == []  # 2 distinct pending == bound
    system.commit(move(3))
    assert len(rec.delivered_updates) == 3


def test_merged_updates_do_not_count_against_order():
    """Order error counts *distinct* pending updates: repeated moves of
    one entity merge into a single queue entry."""
    system = DyconitSystem(
        OrderPolicy(Bounds(math.inf, math.inf, order=2)), time_source=lambda: 0.0
    )
    rec = RecordingSubscriber()
    system.subscribe(("chunk", 0, 0), rec.subscriber)
    for step in range(10):
        system.commit(move(1, time=float(step)))
    assert rec.delivered_updates == []


def test_clamp_includes_order():
    low = Bounds(0.0, 0.0, order=2)
    high = Bounds(10.0, 10.0, order=8)
    assert Bounds(5.0, 5.0, order=100).clamped(low, high).order == 8
    assert Bounds(5.0, 5.0, order=0).clamped(low, high).order == 2
