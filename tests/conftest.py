"""Shared fixtures for the test suite."""

from __future__ import annotations

import os

import pytest

from repro.core.subscription import Subscriber
from repro.server.config import ServerConfig
from repro.server.engine import GameServer
from repro.sim.simulator import Simulation
from repro.world.world import World


@pytest.fixture(autouse=True)
def _checked_mode_from_env(monkeypatch):
    """Run the whole suite under checked mode (S15) on demand.

    ``REPRO_AUDIT_EVERY_N_TICKS=N`` makes every server the suite builds
    audit its invariants every N ticks, without touching a single test:
    it overrides the engine's fallback period, which only applies when a
    test did not ask for auditing itself. CI runs the suite once plain
    and once with this set to 1.
    """
    period = int(os.environ.get("REPRO_AUDIT_EVERY_N_TICKS", "0"))
    if period > 0:
        from repro.server import engine

        monkeypatch.setattr(engine, "AUDIT_DEFAULT_EVERY_N_TICKS", period)


@pytest.fixture
def sim() -> Simulation:
    return Simulation()


@pytest.fixture
def world() -> World:
    return World(seed=1234)


@pytest.fixture
def server_factory(sim):
    """Factory building a started server inside the shared simulation."""

    def build(policy=None, direct_mode=False, **config_kwargs) -> GameServer:
        config = ServerConfig(seed=1234, **config_kwargs)
        server = GameServer(
            sim,
            world=World(seed=1234),
            config=config,
            policy=policy,
            direct_mode=direct_mode,
        )
        server.start()
        return server

    return build


class RecordingSubscriber:
    """A subscriber that records everything delivered to it."""

    def __init__(self, subscriber_id: int = 1, position=None):
        self.deliveries: list[tuple[object, list]] = []
        self.subscriber = Subscriber(
            subscriber_id=subscriber_id,
            deliver=lambda dyconit_id, updates: self.deliveries.append(
                (dyconit_id, list(updates))
            ),
            position_provider=(lambda: position) if position is not None else None,
        )

    @property
    def delivered_updates(self) -> list:
        return [update for __, updates in self.deliveries for update in updates]


@pytest.fixture
def recording_subscriber() -> RecordingSubscriber:
    return RecordingSubscriber()
