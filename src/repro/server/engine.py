"""The game server engine.

Runs the 20 Hz tick loop over the authoritative world, processes inbound
player actions, and broadcasts world events through one of two paths:

* ``direct_mode=True`` — vanilla: each event is encoded and sent to every
  viewing session immediately;
* ``direct_mode=False`` — events are committed to the dyconit middleware,
  which queues, merges, and flushes per the installed policy.

Every tick's work is folded into a :class:`TickWorkload` and priced by
the :class:`TickCostModel`; when the priced duration exceeds the tick
interval the next tick is delayed accordingly, so an overloaded server
visibly drops below 20 Hz — exactly the saturation behaviour the paper's
capacity experiment measures.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Hashable, Sequence

from repro.core.invariants import InvariantAuditor, InvariantViolationError
from repro.core.manager import DyconitSystem
from repro.faults.plan import FaultPlan
from repro.core.partition import ChunkPartitioner, DyconitPartitioner
from repro.core.policy import LoadSignals, Policy
from repro.core.subscription import Subscriber
from repro.metrics.collector import MetricsRegistry
from repro.net.link import LinkConfig
from repro.net.protocol import (
    JoinGamePacket,
    KeepAlivePacket,
    Packet,
    PlayerActionPacket,
)
from repro.net.transport import Transport
from repro.sim.rng import derive_rng
from repro.sim.simulator import Simulation
from repro.telemetry.hub import NULL_TELEMETRY, Telemetry
from repro.world.block import BlockType
from repro.world.entity import EntityKind
from repro.world.events import (
    BlockChangeEvent,
    ChatEvent,
    EntityMoveEvent,
    WorldEvent,
)
from repro.world.geometry import Vec3
from repro.world.world import World
from repro.server.codec import SessionCodec
from repro.server.config import ServerConfig
from repro.server.costmodel import TickCostModel, TickWorkload
from repro.server.interest import InterestManager
from repro.server.session import PlayerSession
from repro.server.viewindex import ViewerIndex

#: EWMA smoothing factor for tick duration (signal the adaptive policy uses).
TICK_EWMA_ALPHA = 0.2

#: Fallback audit period applied when ``ServerConfig.audit_every_n_ticks``
#: is 0. The test suite's autouse fixture sets this from the
#: ``REPRO_AUDIT_EVERY_N_TICKS`` environment variable so the *entire*
#: existing suite can run under checked mode without touching each test.
AUDIT_DEFAULT_EVERY_N_TICKS = 0


class GameServer:
    """A Minecraft-like server instance inside the simulation."""

    def __init__(
        self,
        sim: Simulation,
        world: World | None = None,
        config: ServerConfig | None = None,
        policy: Policy | None = None,
        partitioner: DyconitPartitioner | None = None,
        direct_mode: bool = False,
        telemetry: Telemetry | None = None,
    ) -> None:
        self.sim = sim
        self.config = config if config is not None else ServerConfig()
        self.world = world if world is not None else World(seed=self.config.seed)
        self.direct_mode = direct_mode
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        if self.telemetry.enabled:
            # Stamp spans/events with this server's simulated clock.
            self.telemetry.set_time_source(lambda: sim.now)
        self.transport = Transport(
            sim,
            self.config.link,
            seed=self.config.seed,
            synchronous_delivery=self.config.synchronous_delivery,
            telemetry=self.telemetry,
            faults=self.config.faults,
        )
        self.codec = SessionCodec(self.world)
        self.interest = InterestManager(self)
        #: Reverse chunk→viewers / entity→knowers maps; always maintained
        #: (the upkeep is O(view diff)), consulted by the fan-out paths
        #: unless ``config.use_viewer_index`` is off (differential tests
        #: and the wall-clock benchmark run the brute-force scans).
        self.viewers = ViewerIndex()
        self.use_viewer_index = self.config.use_viewer_index
        self.cost_model = TickCostModel(self.config.cost)
        self.metrics = MetricsRegistry()
        #: Checked mode (S15): audit the cross-structure invariants every
        #: N ticks; a violation aborts the run with a precise report. A
        #: disabled audit is a true no-op (auditor stays None; the tick
        #: path pays one attribute check).
        self._audit_every_n_ticks = (
            self.config.audit_every_n_ticks or AUDIT_DEFAULT_EVERY_N_TICKS
        )
        if self._audit_every_n_ticks > 0:
            self._auditor = InvariantAuditor()
            self.transport.enable_fifo_checking()
        else:
            self._auditor = None

        #: S17: columnar dyconit state + per-burst commit batching.
        self.use_batched_commit = self.config.use_batched_commit
        #: Non-None only inside a commit-batching scope: pending
        #: ``(dyconit_id, update, exclude)`` triples for ``commit_many``.
        self._commit_buffer: list | None = None
        self.dyconits: DyconitSystem | None = None
        if not direct_mode:
            if policy is None:
                raise ValueError("a Policy is required unless direct_mode=True")
            self.dyconits = DyconitSystem(
                policy,
                partitioner if partitioner is not None else ChunkPartitioner(),
                time_source=lambda: sim.now,
                telemetry=self.telemetry,
                use_batched_commit=self.use_batched_commit,
                state_store=self.config.state_store,
            )
        #: S19 control plane: when attached, queued retune ops are applied
        #: atomically at the top of each tick (the tick barrier).
        self.control_plane = None

        self.sessions: dict[int, PlayerSession] = {}
        self._client_by_entity: dict[int, int] = {}
        self._next_client_id = 1
        self._inbound: list[tuple[int, PlayerActionPacket]] = []
        self._mob_ids: list[int] = []
        self._mob_rng = derive_rng(self.config.seed, "server", "mobs")

        self.messages_sent = 0
        self.tick_count = 0
        self.smoothed_tick_ms = 0.0
        self._smoothed_bytes_per_s = 0.0
        self._last_keepalive = 0.0
        self._running = False
        self._tick_event = None

        self.world.time_source = lambda: sim.now
        self.world.add_listener(self._on_world_event)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self, schedule_ticks: bool = True) -> None:
        """Spawn ambient mobs and schedule the first tick.

        Restart-safe: mobs are only spawned once per server, and any tick
        still scheduled from a previous start/stop cycle is superseded so
        a restarted server never ticks at double speed.

        ``schedule_ticks=False`` starts the server without entering the
        self-scheduling tick loop: an external driver (the S18 parallel
        shard runner's worker loop) calls :meth:`tick_once` itself and
        owns the cadence.
        """
        if self._running:
            raise RuntimeError("server already started")
        self._running = True
        if not self._mob_ids:
            self._spawn_mobs()
        if self._tick_event is not None:
            self._tick_event.cancel()
        if schedule_ticks:
            self._tick_event = self.sim.schedule(self.config.tick_interval_ms, self._tick)

    def stop(self) -> None:
        self._running = False
        if self._tick_event is not None:
            self._tick_event.cancel()
            self._tick_event = None

    def close(self) -> None:
        """Stop the server and release middleware backend resources.

        Idempotent. A store the caller passed in as an *instance* (the
        restart harness keeping one file-backed store across server
        generations) is left open — only spec-built backends are closed;
        see :meth:`DyconitSystem.close`.
        """
        self.stop()
        if self.dyconits is not None:
            self.dyconits.close()

    def __enter__(self) -> "GameServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Connections
    # ------------------------------------------------------------------

    def connect(
        self,
        name: str,
        handler,
        position: Vec3 | None = None,
        link: LinkConfig | None = None,
        view_distance: int | None = None,
        client_id: int | None = None,
        faults: FaultPlan | None = None,
        entity_id: int | None = None,
    ) -> PlayerSession:
        """Connect a new player; returns its session.

        ``handler`` receives every delivered packet (the bot client's
        inbound side). ``client_id`` lets a *rejoining* client reuse its
        previous id (a fresh session is still built from scratch —
        ``known_entities``, ``view_chunks`` and dyconit subscriptions all
        start empty; the transport's generation tag keeps in-flight
        packets from the old connection away from the new one). ``faults``
        installs a per-client fault plan on the new link. ``entity_id``
        preserves an avatar identity minted elsewhere — a cross-shard
        session handoff (S16) respawns the avatar here under the id every
        other replica in the cluster already knows it by.
        """
        if client_id is None:
            client_id = self._next_client_id
            self._next_client_id += 1
        else:
            if client_id in self.sessions:
                raise ValueError(f"client {client_id} is already connected")
            self._next_client_id = max(self._next_client_id, client_id + 1)
        self.transport.connect(client_id, handler, link, faults=faults)

        if position is None:
            position = self.world.surface_position(8.0, 8.0)
        # Spawning the avatar emits an EntitySpawnEvent that reaches every
        # *existing* viewer through the normal broadcast path.
        entity = self.world.spawn_entity(
            EntityKind.PLAYER, position, name=name, entity_id=entity_id
        )

        session = PlayerSession(
            client_id=client_id,
            entity_id=entity.entity_id,
            name=name,
            view_distance=(
                view_distance if view_distance is not None else self.config.view_distance
            ),
            connected_at=self.sim.now,
        )
        self.sessions[client_id] = session
        self._client_by_entity[entity.entity_id] = client_id
        session.known_entities.bind(session, self.viewers)

        if self.dyconits is not None:
            subscriber = Subscriber(
                subscriber_id=client_id,
                deliver=self._make_delivery_handler(session),
                position_provider=self._make_position_provider(entity.entity_id),
            )
            self.dyconits.register_subscriber(subscriber)

        self.send_packets(session, [JoinGamePacket(entity_id=entity.entity_id)])
        self.interest.sync_on_join(session)
        return session

    def disconnect(self, client_id: int) -> None:
        session = self.sessions.pop(client_id, None)
        if session is None:
            return
        # A disconnect inside a commit-batching burst despawns the avatar
        # below; anything buffered must be committed (and encoded) while
        # the entity still exists.
        if self._commit_buffer:
            self._flush_commits()
        if self.dyconits is not None:
            self.dyconits.remove_subscriber(client_id, flush_pending=False)
        self.interest.on_leave(session)
        self._client_by_entity.pop(session.entity_id, None)
        if self.world.get_entity(session.entity_id) is not None:
            self.world.despawn_entity(session.entity_id)
        self.transport.disconnect(client_id)

    @property
    def player_count(self) -> int:
        return len(self.sessions)

    # ------------------------------------------------------------------
    # Inbound actions
    # ------------------------------------------------------------------

    def submit_action(self, client_id: int, action: PlayerActionPacket) -> None:
        """Queue a client action for processing at the next tick."""
        if client_id not in self.sessions:
            return  # raced a disconnect
        self._inbound.append((client_id, action))

    def _apply_action(self, client_id: int, action: PlayerActionPacket) -> None:
        session = self.sessions.get(client_id)
        if session is None:
            return
        session.actions_received += 1
        if action.action == "move" and action.position is not None:
            self.world.move_entity(session.entity_id, action.position)
        elif action.action == "place" and action.block_pos is not None:
            block = action.block if action.block is not None else BlockType.COBBLESTONE
            self.world.set_block(action.block_pos, block, actor_id=session.entity_id)
        elif action.action == "dig" and action.block_pos is not None:
            self.world.set_block(
                action.block_pos, BlockType.AIR, actor_id=session.entity_id
            )
        elif action.action == "chat":
            self.world.chat(session.entity_id, str(action.extra.get("text", "")))

    # ------------------------------------------------------------------
    # Broadcast paths
    # ------------------------------------------------------------------

    # -- S17 commit batching -------------------------------------------

    @contextmanager
    def _commit_batching(self):
        """Buffer bufferable commits for one burst (action loop, mob
        step, remote-record apply) and release them through
        ``commit_many`` at scope exit.

        The buffered triples were classified and partitioned at event
        time, so the replayed ``commit_to`` sequence is exactly the one
        the unbuffered path would have issued — only the per-commit
        resolve/lookup overhead is amortized. Reentrant scopes no-op.
        """
        if (
            self.dyconits is None
            or not self.use_batched_commit
            or self._commit_buffer is not None
        ):
            yield
            return
        self._commit_buffer = []
        try:
            yield
        finally:
            buffer, self._commit_buffer = self._commit_buffer, None
            if buffer:
                self.dyconits.commit_many(buffer)

    def _flush_commits(self) -> None:
        """Release buffered commits now, keeping the batching scope open.

        Called at ordering boundaries inside a burst: before an interest
        change, before a spawn/despawn commit, and (in the sharded
        server) before anything that posts to the cluster bus or mutates
        entity existence — buffered updates must be committed while the
        world state they will be encoded against is still current.
        """
        buffer = self._commit_buffer
        if buffer:
            self._commit_buffer = []
            self.dyconits.commit_many(buffer)

    @staticmethod
    def _bufferable(event: WorldEvent) -> bool:
        """Events safe to hold until the end of the burst: they neither
        change entity existence nor interest membership, so delayed
        delivery encodes identical packets. Spawns/despawns are not."""
        return isinstance(event, (EntityMoveEvent, BlockChangeEvent, ChatEvent))

    def _on_world_event(self, event: WorldEvent) -> None:
        # Stamp world time so event timestamps match simulation time.
        exclude = self._originating_client(event)
        buffering = self._commit_buffer is not None
        crossed = False
        if isinstance(event, EntityMoveEvent):
            old_chunk = event.old_position.to_chunk_pos()
            new_chunk = event.new_position.to_chunk_pos()
            if old_chunk != new_chunk:
                crossed = True
                # Interest changes (un)subscribe dyconits; buffered
                # commits must land under the *old* subscriptions.
                if buffering:
                    self._flush_commits()
                with self.telemetry.span("tick.interest"):
                    self.interest.on_entity_crossed(
                        event.entity_id, old_chunk, new_chunk
                    )

        if self.direct_mode or self.dyconits is None:
            self._broadcast_direct(event, exclude)
        elif buffering:
            if self._bufferable(event):
                self._commit_buffer.append(
                    (self.dyconits.partitioner.dyconit_for_event(event), event, exclude)
                )
            else:
                self._flush_commits()
                self.dyconits.commit(event, exclude_subscriber=exclude)
        else:
            self.dyconits.commit(event, exclude_subscriber=exclude)

        if isinstance(event, EntityMoveEvent):
            client_id = self._client_by_entity.get(event.entity_id)
            if client_id is not None:
                session = self.sessions.get(client_id)
                if session is not None:
                    # A crossing refresh re-centers the view: it sends
                    # packets and (un)subscribes dyconits, so the
                    # buffered commit appended above must go out first
                    # (legacy order is commit-then-refresh). A
                    # non-crossing refresh is a no-op and keeps the
                    # batch open.
                    if buffering and crossed:
                        self._flush_commits()
                    with self.telemetry.span("tick.interest"):
                        refreshed = self.interest.refresh(session)
                    if refreshed and self.dyconits is not None:
                        self.dyconits.notify_subscriber_moved(client_id)

    def _broadcast_direct(self, event: WorldEvent, exclude: int | None) -> None:
        """Vanilla broadcast: encode and send ``event`` to each viewer.

        Chunk-anchored events consult the viewer index and touch only the
        sessions that actually view the event's chunk — O(viewers), not
        O(players). Chunk-less events (chat) keep the full-broadcast path.
        """
        if not self.use_viewer_index:
            return self._broadcast_direct_scan(event, exclude)
        chunk = event.chunk_pos
        sessions = (
            self.sessions.values() if chunk is None else self.viewers.viewers(chunk)
        )
        for session in sessions:
            if session.client_id == exclude:
                continue
            packets = self.codec.encode(session, [event])
            if packets:
                self.send_packets(session, packets)

    def _broadcast_direct_scan(self, event: WorldEvent, exclude: int | None) -> None:
        """Brute-force reference for :meth:`_broadcast_direct`: scan every
        session and filter by ``sees_chunk``. Kept (and differentially
        tested) as the ground truth the indexed path must match
        packet-for-packet."""
        chunk = event.chunk_pos
        for session in self.sessions.values():
            if session.client_id == exclude:
                continue
            if chunk is not None and not session.sees_chunk(chunk):
                continue
            packets = self.codec.encode(session, [event])
            if packets:
                self.send_packets(session, packets)

    def _originating_client(self, event: WorldEvent) -> int | None:
        actor_id = getattr(event, "actor_id", None)
        if actor_id is None:
            actor_id = getattr(event, "sender_id", None)
        if actor_id is None and isinstance(event, EntityMoveEvent):
            actor_id = event.entity_id
        if actor_id is None:
            return None
        return self._client_by_entity.get(actor_id)

    def _make_delivery_handler(self, session: PlayerSession):
        delay_histogram = self.metrics.histogram("update_queue_delay_ms", min_value=0.1)

        def deliver(dyconit_id: Hashable, updates: Sequence[WorldEvent]) -> None:
            now = self.sim.now
            for update in updates:
                delay_histogram.record(max(0.0, now - update.time))
            with self.telemetry.span("tick.serialize"):
                packets = self.codec.encode(session, updates)
            if packets:
                self.send_packets(session, packets)

        return deliver

    def _make_position_provider(self, entity_id: int):
        def position() -> Vec3:
            entity = self.world.get_entity(entity_id)
            return entity.position if entity is not None else Vec3.zero()

        return position

    def send_packets(self, session: PlayerSession, packets: Sequence[Packet]) -> None:
        for packet in packets:
            self.transport.send(session.client_id, packet)
        session.packets_sent += len(packets)
        self.messages_sent += len(packets)

    # ------------------------------------------------------------------
    # Tick loop
    # ------------------------------------------------------------------

    def _tick(self) -> None:
        if not self._running:
            return
        duration = self.tick_once()

        # 8. Schedule the next tick. An overloaded tick pushes the next
        #    one out, dropping the effective tick rate below 20 Hz.
        delay = max(self.config.tick_interval_ms, duration)
        self._tick_event = self.sim.schedule(delay, self._tick)

    def tick_once(self) -> float:
        """Run one tick's phases (input, simulate, flush, keepalive,
        pricing, policy, audit) and return the priced duration in ms.

        This is the whole tick *except* scheduling the next one — the
        seam the parallel shard runner drives from a worker process,
        where the parent owns the tick cadence and the worker only
        executes phases. The self-scheduling loop (:meth:`_tick`) calls
        it too, so both drivers run byte-identical phase sequences.
        """
        self.tick_count += 1

        # 0. Control plane (S19): apply queued retune ops atomically at
        #    the tick barrier, before any phase observes bounds/policy.
        if self.control_plane is not None:
            self.control_plane.apply(self, self.tick_count)

        bytes_before = self.transport.total_bytes()
        messages_before = self.messages_sent
        if self.dyconits is not None:
            commits_before = self.dyconits.stats.commits
            enqueues_before = self.dyconits.stats.updates_enqueued
            flushes_before = self.dyconits.stats.flushes
        else:
            commits_before = enqueues_before = flushes_before = 0

        telemetry = self.telemetry

        # 1. Inbound actions (commit-batched: the burst's bufferable
        #    events go through commit_many at scope exit).
        inbound, self._inbound = self._inbound, []
        with telemetry.span("tick.input"), self._commit_batching():
            for client_id, action in inbound:
                self._apply_action(client_id, action)

        # 2. Ambient mobs.
        if self._mob_ids and self.tick_count % self.config.mob_step_ticks == 0:
            with telemetry.span("tick.simulate"), self._commit_batching():
                self._step_mobs()

        # 3. Middleware staleness flushes.
        if self.dyconits is not None:
            with telemetry.span("tick.flush"):
                self.dyconits.tick()

        # 4. Keepalives.
        if self.sim.now - self._last_keepalive >= self.config.keepalive_interval_ms:
            self._last_keepalive = self.sim.now
            with telemetry.span("tick.keepalive"):
                for session in self.sessions.values():
                    self.send_packets(session, [KeepAlivePacket(nonce=self.tick_count)])

        # 5. Price the tick.
        if self.dyconits is not None:
            commits = self.dyconits.stats.commits - commits_before
            enqueues = self.dyconits.stats.updates_enqueued - enqueues_before
            flushes = self.dyconits.stats.flushes - flushes_before
        else:
            commits = enqueues = flushes = 0
        work = TickWorkload(
            players=len(self.sessions),
            actions=len(inbound),
            commits=commits,
            enqueues=enqueues,
            flushes=flushes,
            messages=self.messages_sent - messages_before,
            bytes_sent=self.transport.total_bytes() - bytes_before,
        )
        duration = self.cost_model.tick_duration_ms(work)
        self.smoothed_tick_ms = (
            TICK_EWMA_ALPHA * duration + (1 - TICK_EWMA_ALPHA) * self.smoothed_tick_ms
        )
        tick_bytes_per_s = work.bytes_sent / (self.config.tick_interval_ms / 1000.0)
        self._smoothed_bytes_per_s = (
            TICK_EWMA_ALPHA * tick_bytes_per_s
            + (1 - TICK_EWMA_ALPHA) * self._smoothed_bytes_per_s
        )
        self.metrics.series("tick_duration_ms").record(self.sim.now, duration)
        self.metrics.series("player_count").record(self.sim.now, len(self.sessions))
        self.metrics.series("bytes_total").record(
            self.sim.now, self.transport.total_bytes()
        )
        self.metrics.histogram("tick_duration_ms").record(duration)
        if telemetry.enabled:
            telemetry.counter("server_ticks_total").increment()
            telemetry.gauge("server_players").set(len(self.sessions))
            telemetry.gauge("viewer_index_size").set(self.viewers.pair_count)
            telemetry.histogram("server_tick_priced_ms", min_value=0.1).record(duration)

        # 6. Policy evaluation (rate-limited inside the system).
        if self.dyconits is not None:
            with telemetry.span("tick.policy"):
                self.dyconits.evaluate_policy(self.load_signals(duration))

        # 7. Checked mode: audit the middleware + server structure pairs.
        if self._auditor is not None and self.tick_count % self._audit_every_n_ticks == 0:
            self.audit_now()

        return duration

    def audit_now(self) -> None:
        """Run one invariant audit; raises on any violation.

        Called by the tick loop every ``audit_every_n_ticks`` ticks, and
        directly by tests that want a final barrier audit.
        """
        auditor = self._auditor if self._auditor is not None else InvariantAuditor()
        with self.telemetry.span("tick.audit"):
            violations = auditor.check_server(self)
        if self.telemetry.enabled:
            self.telemetry.counter("invariant_checks_total").increment()
            if violations:
                self.telemetry.counter("invariant_violations_total").increment(
                    len(violations)
                )
        if violations:
            raise InvariantViolationError(violations)

    def load_signals(self, last_tick_duration_ms: float | None = None) -> LoadSignals:
        return LoadSignals(
            now=self.sim.now,
            player_count=len(self.sessions),
            last_tick_duration_ms=(
                last_tick_duration_ms
                if last_tick_duration_ms is not None
                else self.smoothed_tick_ms
            ),
            smoothed_tick_duration_ms=self.smoothed_tick_ms,
            tick_budget_ms=self.config.tick_interval_ms,
            outgoing_bytes_per_second=self._smoothed_bytes_per_s,
        )

    # ------------------------------------------------------------------
    # Ambient mobs
    # ------------------------------------------------------------------

    def _spawn_mobs(self) -> None:
        kinds = (EntityKind.COW, EntityKind.SHEEP, EntityKind.ZOMBIE)
        for index in range(self.config.mob_count):
            x = self._mob_rng.uniform(-40.0, 40.0)
            z = self._mob_rng.uniform(-40.0, 40.0)
            position = self.world.surface_position(x, z)
            kind = kinds[index % len(kinds)]
            mob = self.world.spawn_entity(kind, position)
            self._mob_ids.append(mob.entity_id)

    def _step_mobs(self) -> None:
        for mob_id in self._mob_ids:
            entity = self.world.get_entity(mob_id)
            if entity is None:
                continue
            dx = self._mob_rng.uniform(-0.4, 0.4)
            dz = self._mob_rng.uniform(-0.4, 0.4)
            target = self.world.surface_position(
                entity.position.x + dx, entity.position.z + dz
            )
            self.world.move_entity(mob_id, target)
