"""Unit tests for middleware decision tracing."""

import pytest

from repro.core.bounds import Bounds
from repro.core.manager import DyconitSystem
from repro.core.policy import Policy
from repro.core.trace import DyconitTracer, TraceEvent
from repro.world.events import EntityMoveEvent
from repro.world.geometry import Vec3

from tests.conftest import RecordingSubscriber


class P(Policy):
    def initial_bounds(self, system, dyconit_id, subscriber):
        return Bounds(0.5, 1e9)


def move(entity_id=1, time=0.0):
    return EntityMoveEvent(time, entity_id, Vec3(0, 0, 0), Vec3(1, 0, 0))


def make_traced_system():
    system = DyconitSystem(P(), time_source=lambda: 0.0)
    system.tracer = DyconitTracer(capacity=100)
    return system


def test_flush_is_traced_with_reason():
    system = make_traced_system()
    rec = RecordingSubscriber()
    system.subscribe(("chunk", 0, 0), rec.subscriber)
    system.commit(move())
    flushes = system.tracer.events(kind="flush")
    assert len(flushes) == 1
    assert "reason=numerical" in flushes[0].detail
    assert flushes[0].subscriber_id == rec.subscriber.subscriber_id


def test_bounds_change_is_traced():
    system = make_traced_system()
    rec = RecordingSubscriber()
    system.subscribe(("chunk", 0, 0), rec.subscriber)
    system.set_bounds(("chunk", 0, 0), rec.subscriber.subscriber_id, Bounds(9.0, 90.0))
    events = system.tracer.events(kind="bounds")
    assert len(events) == 1
    assert "numerical=9" in events[0].detail


def test_merge_and_split_are_traced():
    system = make_traced_system()
    system.merge_dyconits([("chunk", 0, 0), ("chunk", 1, 0)], ("region", 4, 0, 0))
    system.split_dyconit(("region", 4, 0, 0))
    assert system.tracer.counts["merge"] == 2
    assert system.tracer.counts["split"] == 2


def test_ring_buffer_caps_memory():
    tracer = DyconitTracer(capacity=5)
    for index in range(20):
        tracer.record(float(index), "flush", "d")
    assert len(tracer) == 5
    assert tracer.counts["flush"] == 20  # counters keep the full total
    assert [event.time for event in tracer] == [15.0, 16.0, 17.0, 18.0, 19.0]


def test_ring_buffer_wraparound_interleaved_kinds():
    """Eviction is strictly oldest-first even when kinds interleave, and
    the per-kind counters keep full totals after overflow."""
    tracer = DyconitTracer(capacity=4)
    kinds = ["flush", "bounds", "flush", "merge", "flush", "split", "bounds"]
    for index, kind in enumerate(kinds):
        tracer.record(float(index), kind, "d")
    # Only the newest 4 survive, in arrival order.
    assert [(event.time, event.kind) for event in tracer] == [
        (3.0, "merge"),
        (4.0, "flush"),
        (5.0, "split"),
        (6.0, "bounds"),
    ]
    # Counters are not decremented by eviction: they count all 7 records.
    assert tracer.counts == {"flush": 3, "bounds": 2, "merge": 1, "split": 1}
    # Filtered views only see retained events.
    assert len(tracer.events(kind="flush")) == 1
    assert len(tracer.events(kind="bounds")) == 1


def test_ring_buffer_wraparound_multiple_times():
    tracer = DyconitTracer(capacity=3)
    for index in range(10):
        tracer.record(float(index), "flush" if index % 2 == 0 else "bounds", "d")
    assert len(tracer) == 3
    assert tracer.counts["flush"] == 5
    assert tracer.counts["bounds"] == 5
    assert [event.time for event in tracer] == [7.0, 8.0, 9.0]


def test_format_tail_after_overflow_shows_newest():
    tracer = DyconitTracer(capacity=2)
    for index in range(5):
        tracer.record(float(index), "flush", "d", detail=f"n={index}")
    text = tracer.format_tail(count=10)
    assert "n=4" in text and "n=3" in text
    assert "n=0" not in text


def test_filtering_by_dyconit():
    tracer = DyconitTracer()
    tracer.record(0.0, "flush", "a")
    tracer.record(1.0, "flush", "b")
    assert len(tracer.events(dyconit_id="a")) == 1


def test_format_tail():
    tracer = DyconitTracer()
    tracer.record(5.0, "flush", ("chunk", 0, 0), 7, "reason=staleness updates=3")
    text = tracer.format_tail()
    assert "flush" in text and "reason=staleness" in text


def test_event_str():
    event = TraceEvent(1.0, "merge", "x", None, "into y")
    assert "merge" in str(event)


def test_capacity_validation():
    with pytest.raises(ValueError):
        DyconitTracer(capacity=0)


def test_untraced_system_pays_nothing():
    system = DyconitSystem(P(), time_source=lambda: 0.0)
    rec = RecordingSubscriber()
    system.subscribe(("chunk", 0, 0), rec.subscriber)
    system.commit(move())  # no tracer attached; must not raise
    assert system.tracer is None
