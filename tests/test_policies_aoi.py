"""Unit tests for the AOI cutoff policy."""

import pytest

from repro.core.manager import DyconitSystem
from repro.core.partition import GLOBAL_DYCONIT, ChunkPartitioner
from repro.policies.aoi import InterestCutoffPolicy
from repro.world.events import EntityMoveEvent
from repro.world.geometry import Vec3

from tests.conftest import RecordingSubscriber


def build(radius=2.0, position=Vec3(8.0, 30.0, 8.0)):
    policy = InterestCutoffPolicy(aoi_radius_chunks=radius)
    system = DyconitSystem(policy, ChunkPartitioner(), time_source=lambda: 0.0)
    rec = RecordingSubscriber(position=position)
    return system, rec, policy


def test_inside_aoi_is_zero_bounds():
    system, rec, __ = build()
    state = system.subscribe(("chunk", 1, 0), rec.subscriber)
    assert state.bounds.is_zero


def test_outside_aoi_is_infinite():
    system, rec, __ = build()
    state = system.subscribe(("chunk", 5, 0), rec.subscriber)
    assert state.bounds.is_infinite


def test_chat_always_delivered():
    system, rec, __ = build()
    state = system.subscribe(GLOBAL_DYCONIT, rec.subscriber)
    assert state.bounds.is_zero


def test_updates_outside_aoi_are_suppressed():
    system, rec, __ = build()
    system.subscribe(("chunk", 5, 0), rec.subscriber)
    system.commit(
        EntityMoveEvent(0.0, 9, Vec3(5 * 16, 30, 0), Vec3(5 * 16 + 1, 30, 0))
    )
    assert rec.delivered_updates == []


def test_approach_flushes_backlog():
    """Walking toward a suppressed area catches the player up."""
    system, rec, policy = build()
    system.subscribe(("chunk", 5, 0), rec.subscriber)
    system.commit(
        EntityMoveEvent(0.0, 9, Vec3(5 * 16, 30, 0), Vec3(5 * 16 + 1, 30, 0))
    )
    rec.subscriber.position_provider = lambda: Vec3(5 * 16 + 8.0, 30.0, 8.0)
    policy.on_subscriber_moved(system, rec.subscriber)
    assert len(rec.delivered_updates) == 1


def test_rejects_negative_radius():
    with pytest.raises(ValueError):
        InterestCutoffPolicy(aoi_radius_chunks=-1.0)


def test_repr_mentions_radius():
    assert "2.0" in repr(InterestCutoffPolicy(2.0))
