"""Block palette.

A compact set of block types sufficient for the paper's workloads:
terrain generation, player building (planks/cobblestone), and mining.
Values are stable wire ids used by the serializer's size model.
"""

from __future__ import annotations

from enum import IntEnum


class BlockType(IntEnum):
    """Block type ids. AIR is 0 so zero-filled chunk storage means empty."""

    AIR = 0
    STONE = 1
    DIRT = 2
    GRASS = 3
    SAND = 4
    WATER = 5
    WOOD = 6
    LEAVES = 7
    COBBLESTONE = 8
    PLANKS = 9
    GLASS = 10
    TORCH = 11
    BRICK = 12
    BEDROCK = 13

    @property
    def is_solid(self) -> bool:
        return self not in (BlockType.AIR, BlockType.WATER, BlockType.TORCH)

    @property
    def is_breakable(self) -> bool:
        return self not in (BlockType.AIR, BlockType.BEDROCK)


#: Block types bots choose from when building structures.
BUILDING_BLOCKS = (
    BlockType.COBBLESTONE,
    BlockType.PLANKS,
    BlockType.GLASS,
    BlockType.BRICK,
    BlockType.TORCH,
)
