"""Area-of-interest cutoff: what existing games do.

Inside a small radius around the player everything replicates at full
fidelity (zero bounds); outside it nothing is delivered at all (infinite
bounds). This is the abstract of the classic interest-management
technique the paper contrasts against: it saves bandwidth, but the
inconsistency beyond the cutoff is *unbounded* — exactly the failure mode
the E3 inconsistency experiment makes visible.
"""

from __future__ import annotations

from typing import Hashable

from repro.core.bounds import Bounds
from repro.core.partition import GLOBAL_DYCONIT, centroid_of
from repro.core.policy import Policy
from repro.core.subscription import Subscriber
from repro.world.geometry import CHUNK_SIZE


class InterestCutoffPolicy(Policy):
    """Zero bounds within ``aoi_radius_chunks``, infinite outside."""

    def __init__(self, aoi_radius_chunks: float = 2.0) -> None:
        if aoi_radius_chunks < 0:
            raise ValueError(f"AOI radius must be >= 0, got {aoi_radius_chunks}")
        self.aoi_radius_chunks = aoi_radius_chunks

    def bounds_for(
        self, system, dyconit_id: Hashable, subscriber: Subscriber
    ) -> Bounds:
        if dyconit_id == GLOBAL_DYCONIT:
            return Bounds.ZERO  # chat is always delivered
        centroid = centroid_of(dyconit_id, system.partitioner)
        position = subscriber.position
        if centroid is None or position is None:
            return Bounds.ZERO
        distance_chunks = position.horizontal_distance_to(centroid) / CHUNK_SIZE
        if distance_chunks <= self.aoi_radius_chunks + 0.5:
            return Bounds.ZERO
        return Bounds.INFINITE

    def initial_bounds(
        self, system, dyconit_id: Hashable, subscriber: Subscriber
    ) -> Bounds:
        return self.bounds_for(system, dyconit_id, subscriber)

    def on_subscriber_moved(self, system, subscriber: Subscriber) -> None:
        for dyconit_id in system.subscription_ids_of(subscriber.subscriber_id):
            system.set_bounds(
                dyconit_id,
                subscriber.subscriber_id,
                self.bounds_for(system, dyconit_id, subscriber),
            )

    def __repr__(self) -> str:
        return f"InterestCutoffPolicy(radius={self.aoi_radius_chunks} chunks)"
