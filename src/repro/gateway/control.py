"""Control plane: retune operations applied at the tick barrier (S19).

HTTP handlers (or tests) **submit** operations from any thread; the
engine **applies** them at exactly one point — the top of
:meth:`GameServer.tick_once` (or the cluster pump) — so a retune can
never interleave with a half-finished tick phase. That is what keeps
runs deterministic and lets the invariant auditor keep its guarantees
while bounds and policies change live.

Two operation kinds:

* ``{"kind": "set_policy", "policy": <name>, "kwargs": {...}}`` —
  swap the dyconit policy for a freshly built one
  (:func:`repro.experiments.configs.make_policy` names).
* ``{"kind": "set_bounds", "numerical": x, "staleness_ms": y,
  "order": z?, "dyconit": [...]?, "subscriber_id": n?}`` — retune
  live subscriptions through :meth:`DyconitSystem.set_bounds` (which
  flushes immediately when a bound tightens past the backlog, so
  auditor invariants hold at the very next check). When the active
  policy carries a ``bounds`` attribute (e.g. fixed), it is updated
  too so *future* subscriptions inherit the new bound.

Three operation kinds, in fact — S20 adds:

* ``{"kind": "checkpoint", "key": <name>}`` — capture a durable
  restart snapshot (:mod:`repro.server.snapshot`) into the dyconit
  state store's checkpoint table, exactly at the barrier. The capture
  is observably read-only: a run that checkpoints and a run that does
  not are packet-identical.
"""

from __future__ import annotations

import math
import threading
from typing import Any

from repro.core.bounds import Bounds

#: Operation kinds :meth:`ControlPlane.submit` accepts.
OP_KINDS = ("set_policy", "set_bounds", "checkpoint")


def _bounds_from_op(op: dict) -> Bounds:
    try:
        return Bounds(
            numerical=float(op["numerical"]),
            staleness_ms=float(op["staleness_ms"]),
            order=float(op.get("order", math.inf)),
        )
    except KeyError as exc:
        raise ValueError(f"set_bounds needs a {exc.args[0]} value") from exc


class ControlPlane:
    """Thread-safe queue of retune ops, drained at the tick barrier.

    ``submit`` validates eagerly (bad ops are rejected at the HTTP
    boundary, not mid-tick); ``apply`` drains the queue and records an
    audit log entry per op with the tick it took effect on.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._queue: list[dict] = []
        self._next_id = 1
        #: Applied-op audit log: op dict + ``applied_tick`` + ``status``.
        self.log: list[dict] = []

    # -- submission (any thread) ---------------------------------------

    def submit(self, op: dict) -> int:
        """Validate and enqueue *op*; returns its id."""
        kind = op.get("kind")
        if kind not in OP_KINDS:
            raise ValueError(f"unknown op kind {kind!r}; expected one of {OP_KINDS}")
        if kind == "set_policy":
            # Build once to validate name/kwargs; the apply step builds a
            # fresh instance so no policy state leaks across submission.
            from repro.experiments.configs import make_policy

            policy = make_policy(op.get("policy", ""), **op.get("kwargs", {}))
            if policy is None:
                raise ValueError(
                    "policy 'vanilla' means no middleware; a running dyconit "
                    "server cannot be retuned to it"
                )
        elif kind == "checkpoint":
            key = op.get("key")
            if not isinstance(key, str) or not key:
                raise ValueError("checkpoint needs a non-empty string 'key'")
        else:
            _bounds_from_op(op)  # raises on missing/negative values
        with self._lock:
            op = dict(op, id=self._next_id)
            self._next_id += 1
            self._queue.append(op)
            return op["id"]

    def pending_count(self) -> int:
        with self._lock:
            return len(self._queue)

    # -- application (engine thread, at the barrier) -------------------

    def apply(self, target, tick: int) -> int:
        """Apply every queued op to *target* (server or cluster) at *tick*.

        Returns the number of ops applied. Application errors are
        recorded in the log, never raised: a bad retune must not take
        the tick loop down.
        """
        with self._lock:
            if not self._queue:
                return 0
            batch, self._queue = self._queue, []
        servers = list(target.shards) if hasattr(target, "shards") else [target]
        for op in batch:
            status = "ok"
            try:
                if op["kind"] == "checkpoint":
                    # One snapshot of the whole target: a cluster is
                    # captured cluster-wide (bus and all), not per shard.
                    from repro.server.snapshot import checkpoint_target

                    checkpoint_target(target, op["key"])
                else:
                    for server in servers:
                        self._apply_one(server, op)
            except Exception as exc:  # noqa: BLE001 — logged, not fatal
                status = f"error: {exc}"
            self.log.append(dict(op, applied_tick=tick, status=status))
        return len(batch)

    def _apply_one(self, server, op: dict) -> None:
        system = server.dyconits
        if system is None:
            raise ValueError("server runs in direct mode; nothing to retune")
        if op["kind"] == "set_policy":
            from repro.experiments.configs import make_policy

            system.policy = make_policy(op["policy"], **op.get("kwargs", {}))
            return
        bounds = _bounds_from_op(op)
        only_dyconit = op.get("dyconit")
        if isinstance(only_dyconit, list):
            only_dyconit = tuple(only_dyconit)
        only_subscriber = op.get("subscriber_id")
        policy = system.policy
        if only_dyconit is None and only_subscriber is None and hasattr(policy, "bounds"):
            policy.bounds = bounds
        for dyconit in list(system.dyconits()):
            if only_dyconit is not None and dyconit.dyconit_id != only_dyconit:
                continue
            for state in list(dyconit.subscription_states()):
                subscriber_id = state.subscriber.subscriber_id
                if only_subscriber is not None and subscriber_id != only_subscriber:
                    continue
                system.set_bounds(dyconit.dyconit_id, subscriber_id, bounds)
