"""repro — a full reproduction of *Dyconits: Scaling Minecraft-like
Services through Dynamically Managed Inconsistency* (ICDCS 2021).

Quickstart::

    from repro import (
        Simulation, GameServer, ServerConfig, Workload, WorkloadSpec,
        AdaptiveBoundsPolicy,
    )

    sim = Simulation()
    server = GameServer(sim, policy=AdaptiveBoundsPolicy())
    server.start()
    workload = Workload(sim, server, WorkloadSpec(bots=50, seed=1))
    workload.start()
    sim.run_until(30_000)  # 30 simulated seconds
    print(server.transport.total_bytes(), "bytes sent")

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-reproduction results.
"""

from repro.core import (
    Bounds,
    ChunkPartitioner,
    Dyconit,
    DyconitSystem,
    GlobalPartitioner,
    LoadSignals,
    Policy,
    RegionPartitioner,
    Subscriber,
)
from repro.bots import (
    BehaviorMix,
    BotClient,
    HotspotModel,
    RandomWaypointModel,
    TrekModel,
    Workload,
    WorkloadSpec,
)
from repro.net import LinkConfig, Transport
from repro.policies import (
    AdaptiveBoundsPolicy,
    DistanceBasedPolicy,
    ElasticPartitioningPolicy,
    FixedBoundsPolicy,
    InfiniteBoundsPolicy,
    InterestCutoffPolicy,
    ZeroBoundsPolicy,
)
from repro.server import CostCoefficients, GameServer, ServerConfig
from repro.sim import Simulation
from repro.world import BlockPos, BlockType, ChunkPos, EntityKind, Vec3, World

__version__ = "1.0.0"

__all__ = [
    "Simulation",
    "World",
    "Vec3",
    "BlockPos",
    "ChunkPos",
    "BlockType",
    "EntityKind",
    "GameServer",
    "ServerConfig",
    "CostCoefficients",
    "LinkConfig",
    "Transport",
    "Bounds",
    "Dyconit",
    "DyconitSystem",
    "Subscriber",
    "Policy",
    "LoadSignals",
    "ChunkPartitioner",
    "RegionPartitioner",
    "GlobalPartitioner",
    "ZeroBoundsPolicy",
    "InfiniteBoundsPolicy",
    "FixedBoundsPolicy",
    "DistanceBasedPolicy",
    "InterestCutoffPolicy",
    "AdaptiveBoundsPolicy",
    "ElasticPartitioningPolicy",
    "BotClient",
    "Workload",
    "WorkloadSpec",
    "BehaviorMix",
    "HotspotModel",
    "RandomWaypointModel",
    "TrekModel",
    "__version__",
]
