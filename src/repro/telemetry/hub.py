"""The telemetry hub: labeled metrics + hierarchical spans on one timeline.

One :class:`Telemetry` instance is the single place every layer reports
into — the server engine, the dyconit middleware, the policies, the
simulation kernel, and the experiment runner all share it, so a span for
``tick.flush`` and a ``trace.flush`` event from the middleware land on
the same (sim time, wall time) timeline and can be correlated.

Design constraints, in priority order:

1. **Free when off.** The default hub is disabled; hot paths pay exactly
   one attribute check (``telemetry.enabled``) and, for spans, one call
   returning a shared no-op singleton — no allocation per span. The E5
   microbenchmark tracks this.
2. **Two clocks.** Every span/event records *wall* time (what the
   implementation costs, via ``perf_counter``) and *sim* time (when in
   the experiment it happened, via an injected time source), because the
   two answer different questions ("is commit slow?" vs "did flushes
   cluster at the burst?").
3. **Bounded memory.** Raw span/event records are kept in bounded
   buffers (drops are counted, never silent); per-span-name duration
   histograms retain full-percentile fidelity regardless of drops.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable

from repro.metrics.collector import Counter, Gauge, Histogram

#: Labels as stored on records and metric keys: sorted (key, value) pairs.
LabelSet = tuple[tuple[str, str], ...]


def _labelset(labels: dict[str, object]) -> LabelSet:
    return tuple(sorted((key, str(value)) for key, value in labels.items()))


@dataclass(frozen=True, slots=True)
class SpanRecord:
    """One finished span on the timeline."""

    name: str
    span_id: int
    parent_id: int | None
    sim_time: float  #: sim ms at span start
    wall_start: float  #: perf_counter seconds at start (monotonic, run-relative)
    duration_ms: float  #: wall-clock duration in milliseconds
    labels: LabelSet = ()


@dataclass(frozen=True, slots=True)
class EventRecord:
    """One point event on the timeline (e.g. a middleware decision)."""

    kind: str
    sim_time: float
    wall_time: float
    fields: LabelSet = ()


class _NullSpan:
    """Shared no-op span handed out by a disabled hub (zero allocation)."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        return None


NULL_SPAN = _NullSpan()


class _Span:
    """A live span; records itself into the hub on exit."""

    __slots__ = ("hub", "name", "labels", "span_id", "parent_id", "sim_time", "wall_start")

    def __init__(self, hub: "Telemetry", name: str, labels: LabelSet) -> None:
        self.hub = hub
        self.name = name
        self.labels = labels

    def __enter__(self) -> "_Span":
        hub = self.hub
        hub._span_seq += 1
        self.span_id = hub._span_seq
        stack = hub._span_stack
        self.parent_id = stack[-1] if stack else None
        stack.append(self.span_id)
        self.sim_time = hub.time_source()
        self.wall_start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        duration_ms = (time.perf_counter() - self.wall_start) * 1000.0
        hub = self.hub
        stack = hub._span_stack
        if stack and stack[-1] == self.span_id:
            stack.pop()
        hub._finish_span(self, duration_ms)


class Telemetry:
    """Hub for labeled counters/gauges/histograms, spans, and events."""

    def __init__(
        self,
        enabled: bool = True,
        time_source: Callable[[], float] | None = None,
        max_spans: int = 100_000,
        max_events: int = 100_000,
    ) -> None:
        self.enabled = enabled
        self.time_source = time_source if time_source is not None else (lambda: 0.0)
        self.max_spans = max_spans
        self.max_events = max_events
        self.spans: list[SpanRecord] = []
        self.events: list[EventRecord] = []
        self.dropped_spans = 0
        self.dropped_events = 0
        self._counters: dict[tuple[str, LabelSet], Counter] = {}
        self._gauges: dict[tuple[str, LabelSet], Gauge] = {}
        self._histograms: dict[tuple[str, LabelSet], Histogram] = {}
        #: Wall-clock duration histogram per span name (survives drops).
        self._span_durations: dict[str, Histogram] = {}
        self._span_counts: dict[str, int] = {}
        self._span_stack: list[int] = []
        self._span_seq = 0

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------

    def set_time_source(self, time_source: Callable[[], float]) -> None:
        """Point sim-time stamping at a simulation clock (``lambda: sim.now``)."""
        self.time_source = time_source

    # ------------------------------------------------------------------
    # Spans
    # ------------------------------------------------------------------

    def span(self, name: str, /, **labels):
        """A context manager timing one section of work.

        Disabled hubs return a shared no-op singleton: the call costs one
        attribute check and allocates nothing.
        """
        if not self.enabled:
            return NULL_SPAN
        return _Span(self, name, _labelset(labels) if labels else ())

    def _finish_span(self, span: _Span, duration_ms: float) -> None:
        histogram = self._span_durations.get(span.name)
        if histogram is None:
            histogram = self._span_durations[span.name] = Histogram(
                span.name, min_value=1e-4
            )
        histogram.record(duration_ms)
        self._span_counts[span.name] = self._span_counts.get(span.name, 0) + 1
        if len(self.spans) >= self.max_spans:
            self.dropped_spans += 1
            return
        self.spans.append(
            SpanRecord(
                name=span.name,
                span_id=span.span_id,
                parent_id=span.parent_id,
                sim_time=span.sim_time,
                wall_start=span.wall_start,
                duration_ms=duration_ms,
                labels=span.labels,
            )
        )

    def span_names(self) -> list[str]:
        return sorted(self._span_counts)

    def span_stats(self, name: str) -> Histogram | None:
        """Wall-clock duration histogram for one span name."""
        return self._span_durations.get(name)

    def span_summary(self) -> list[dict[str, float | str]]:
        """Per-span-name rows: count, total/mean/p50/p95/p99 wall ms."""
        rows: list[dict[str, float | str]] = []
        for name in self.span_names():
            histogram = self._span_durations[name]
            rows.append(
                {
                    "span": name,
                    "count": histogram.count,
                    "total_ms": histogram.total,
                    "mean_ms": histogram.mean,
                    "p50_ms": histogram.quantile(0.50),
                    "p95_ms": histogram.quantile(0.95),
                    "p99_ms": histogram.quantile(0.99),
                }
            )
        return rows

    # ------------------------------------------------------------------
    # Events
    # ------------------------------------------------------------------

    def event(self, kind: str, /, **fields) -> None:
        """Record a point event (middleware decision, policy change, ...)."""
        if not self.enabled:
            return
        if len(self.events) >= self.max_events:
            self.dropped_events += 1
            return
        self.events.append(
            EventRecord(
                kind=kind,
                sim_time=self.time_source(),
                wall_time=time.perf_counter(),
                fields=_labelset(fields) if fields else (),
            )
        )

    # ------------------------------------------------------------------
    # Labeled metrics
    # ------------------------------------------------------------------

    def counter(self, name: str, /, **labels) -> Counter:
        key = (name, _labelset(labels) if labels else ())
        counter = self._counters.get(key)
        if counter is None:
            counter = self._counters[key] = Counter(name)
        return counter

    def gauge(self, name: str, /, **labels) -> Gauge:
        key = (name, _labelset(labels) if labels else ())
        gauge = self._gauges.get(key)
        if gauge is None:
            gauge = self._gauges[key] = Gauge(name)
        return gauge

    def histogram(self, name: str, /, min_value: float = 0.01, **labels) -> Histogram:
        key = (name, _labelset(labels) if labels else ())
        histogram = self._histograms.get(key)
        if histogram is None:
            histogram = self._histograms[key] = Histogram(name, min_value=min_value)
        return histogram

    def counters(self) -> dict[tuple[str, LabelSet], Counter]:
        return dict(self._counters)

    def gauges(self) -> dict[tuple[str, LabelSet], Gauge]:
        return dict(self._gauges)

    def histograms(self) -> dict[tuple[str, LabelSet], Histogram]:
        return dict(self._histograms)

    def snapshot(self) -> dict[str, float]:
        """Flat scalar view; labels render as ``name{k=v,...}``."""
        values: dict[str, float] = {}
        for (name, labels), counter in self._counters.items():
            values[_flat_name(name, labels)] = counter.value
        for (name, labels), gauge in self._gauges.items():
            values[_flat_name(name, labels)] = gauge.value
        return values

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def reset(self) -> None:
        """Drop all recorded data but keep configuration and time source."""
        self.spans.clear()
        self.events.clear()
        self.dropped_spans = 0
        self.dropped_events = 0
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()
        self._span_durations.clear()
        self._span_counts.clear()
        self._span_stack.clear()
        self._span_seq = 0


def _flat_name(name: str, labels: LabelSet) -> str:
    if not labels:
        return name
    rendered = ",".join(f"{key}={value}" for key, value in labels)
    return f"{name}{{{rendered}}}"


#: Shared disabled hub: the default wired into every component, so hot
#: paths can unconditionally hold a ``telemetry`` attribute and pay only
#: the ``enabled`` check when observability is off.
NULL_TELEMETRY = Telemetry(enabled=False)

#: Ambient hub used when no explicit one is passed (set by the CLI's
#: ``--telemetry`` flag so figure helpers don't need threading changes).
_default_hub: Telemetry = NULL_TELEMETRY


def get_telemetry() -> Telemetry:
    """The ambient hub (``NULL_TELEMETRY`` unless one was installed)."""
    return _default_hub


def set_telemetry(hub: Telemetry | None) -> Telemetry:
    """Install ``hub`` as the ambient default; ``None`` restores the null hub.

    Returns the previously installed hub so callers can restore it.
    """
    global _default_hub
    previous = _default_hub
    _default_hub = hub if hub is not None else NULL_TELEMETRY
    return previous
