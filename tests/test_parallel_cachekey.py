"""Property tests for the sweep cache key (``config_digest``).

The cache key must be a pure function of the experiment's *content*:
invariant under dict key order, ``with_()`` round-trips, and int/float
representation of integral numbers — and it must *change* whenever any
semantically meaningful field changes, or the cache would serve the
wrong result.
"""

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bots.workload import BehaviorMix, ChurnSpec
from repro.core.bounds import Bounds
from repro.experiments.configs import (
    POLICY_NAMES,
    ExperimentConfig,
    config_from_dict,
    config_to_dict,
)
from repro.experiments.parallel import config_digest, normalize_config
from repro.faults.plan import DegradedWindow, FaultPlan

probabilities = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)


@st.composite
def fault_plans(draw):
    windows = draw(
        st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=5_000.0, allow_nan=False),
                st.floats(min_value=1.0, max_value=5_000.0, allow_nan=False),
                st.floats(min_value=0.01, max_value=1.0, allow_nan=False),
            ),
            max_size=2,
        )
    )
    return FaultPlan(
        loss_rate=draw(st.floats(min_value=0.0, max_value=0.5, allow_nan=False)),
        burst_loss_rate=draw(probabilities),
        p_good_to_bad=draw(st.floats(min_value=0.0, max_value=0.9, allow_nan=False)),
        p_bad_to_good=draw(st.floats(min_value=0.1, max_value=1.0, allow_nan=False)),
        spike_probability=draw(probabilities),
        spike_ms=draw(st.floats(min_value=0.0, max_value=500.0, allow_nan=False)),
        degraded_windows=tuple(
            DegradedWindow(start, start + length, factor)
            for start, length, factor in windows
        ),
    )


@st.composite
def churn_specs(draw):
    return ChurnSpec(
        interval_ms=draw(st.floats(min_value=100.0, max_value=5_000.0, allow_nan=False)),
        crash_probability=draw(probabilities),
        rejoin_delay_ms=draw(st.floats(min_value=0.0, max_value=5_000.0, allow_nan=False)),
        min_connected=draw(st.integers(min_value=0, max_value=4)),
        reuse_client_ids=draw(st.booleans()),
        start_after_ms=draw(st.floats(min_value=0.0, max_value=2_000.0, allow_nan=False)),
    )


@st.composite
def behavior_mixes(draw):
    build = draw(st.floats(min_value=0.0, max_value=0.4, allow_nan=False))
    dig = draw(st.floats(min_value=0.0, max_value=0.3, allow_nan=False))
    chat = draw(st.floats(min_value=0.0, max_value=0.2, allow_nan=False))
    return BehaviorMix(build=build, dig=dig, chat=chat)


@st.composite
def bounds_values(draw):
    return Bounds(
        numerical=draw(st.floats(min_value=0.0, max_value=100.0, allow_nan=False)),
        staleness_ms=draw(st.floats(min_value=0.0, max_value=2_000.0, allow_nan=False)),
    )


@st.composite
def experiment_configs(draw):
    duration = draw(st.floats(min_value=2_000.0, max_value=60_000.0, allow_nan=False))
    return ExperimentConfig(
        name=draw(st.text(min_size=1, max_size=12)),
        policy=draw(st.sampled_from(POLICY_NAMES)),
        partitioner=draw(st.sampled_from(("chunk", "global", "region:4"))),
        merging_enabled=draw(st.booleans()),
        bots=draw(st.integers(min_value=1, max_value=200)),
        movement=draw(st.sampled_from(("hotspot", "random"))),
        behavior=draw(behavior_mixes()),
        duration_ms=duration,
        warmup_ms=draw(st.floats(min_value=0.0, max_value=duration / 2, allow_nan=False)),
        seed=draw(st.integers(min_value=0, max_value=2**31)),
        view_distance=draw(st.integers(min_value=1, max_value=10)),
        fixed_bounds=draw(st.none() | bounds_values()),
        faults=draw(st.none() | fault_plans()),
        churn=draw(st.none() | churn_specs()),
    )


def _permuted(data: dict, seed: int) -> dict:
    """The same dict with a different (deterministic) key insertion order."""
    keys = sorted(data, key=lambda k: hash((seed, k)))
    return {
        key: _permuted(data[key], seed + 1) if isinstance(data[key], dict)
        else data[key]
        for key in keys
    }


@settings(max_examples=150, deadline=None)
@given(experiment_configs(), st.integers(min_value=0, max_value=1_000))
def test_digest_invariant_under_key_order(config, seed):
    data = config_to_dict(config)
    assert config_digest(_permuted(data, seed)) == config_digest(config)


@settings(max_examples=150, deadline=None)
@given(experiment_configs())
def test_digest_invariant_under_roundtrips(config):
    digest = config_digest(config)
    # with_() with no overrides is the identity.
    assert config_digest(config.with_()) == digest
    # with_() re-stating an existing value is the identity.
    assert config_digest(config.with_(seed=config.seed, bots=config.bots)) == digest
    # dict round-trip (what crosses the worker process boundary).
    assert config_digest(config_from_dict(config_to_dict(config))) == digest


@settings(max_examples=150, deadline=None)
@given(experiment_configs())
def test_digest_changes_when_content_changes(config):
    digest = config_digest(config)
    assert config_digest(config.with_(seed=config.seed + 1)) != digest
    assert config_digest(config.with_(bots=config.bots + 1)) != digest


def test_digest_changes_with_shard_topology():
    base = ExperimentConfig(policy="adaptive")
    digests = {
        config_digest(base),
        config_digest(base.with_(shards=2)),
        config_digest(base.with_(shards=4)),
        config_digest(base.with_(shards=2, strip_width=2)),
    }
    assert len(digests) == 4


@given(st.integers(min_value=-(2**31), max_value=2**31))
def test_integral_numbers_hash_like_their_floats(value):
    base = config_to_dict(ExperimentConfig())
    as_int, as_float = dict(base), dict(base)
    as_int["seed"], as_float["seed"] = value, float(value)
    assert config_digest(as_int) == config_digest(as_float)


def test_normalized_form_is_json_stable():
    """Normalization is idempotent and survives a JSON round-trip."""
    import json

    normalized = normalize_config(ExperimentConfig(faults=FaultPlan(loss_rate=0.05)))
    assert json.loads(json.dumps(normalized)) == normalized


def test_ten_thousand_distinct_configs_never_collide():
    """Deterministic grid: >10k distinct cells, all digests unique.

    Axes cover everything the sweep drivers actually vary: seed, policy,
    bot count, bounds, fault plan, churn, merging. Any collision would
    silently serve one cell's result for another.
    """
    seeds = range(60)
    policies = POLICY_NAMES  # 8
    bots = (10, 50)
    durations = (30_000.0, 20_000.0)
    variants = (
        {},
        {"fixed_bounds": Bounds(5.0, 400.0)},
        {"faults": FaultPlan(loss_rate=0.02)},
        {"faults": FaultPlan(loss_rate=0.02, burst_loss_rate=0.5, p_good_to_bad=0.1)},
        {"churn": ChurnSpec(interval_ms=500.0)},
        {"merging_enabled": False},
    )
    digests = set()
    count = 0
    # 60 seeds * 8 policies * 2 fleets * 2 durations * 6 variants = 11520.
    for seed, policy, bot_count, duration, variant in itertools.product(
        seeds, policies, bots, durations, variants
    ):
        config = ExperimentConfig(
            seed=seed, policy=policy, bots=bot_count, duration_ms=duration, **variant
        )
        digests.add(config_digest(config))
        count += 1
    assert count > 10_000
    assert len(digests) == count
