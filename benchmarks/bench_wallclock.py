"""Fan-out wall-clock benchmarks (pytest wrapper).

Thin pytest-benchmark shims over :mod:`repro.experiments.wallclock` so the
hot-path timings show up in ``pytest benchmarks/`` runs alongside E5, plus
a crash-only smoke test of the full suite at a reduced scale. CI runs the
smoke test: it asserts shape and sanity of the payload, never timing, so a
slow shared runner cannot flake the build.

Regenerate the committed trajectory file with::

    PYTHONPATH=src python scripts/bench_trajectory.py
"""

import pytest

from repro.experiments import wallclock
from repro.world.geometry import Vec3


@pytest.mark.benchmark(group="fanout")
def test_broadcast_scan_50(benchmark):
    server, movers = wallclock.build_fanout_scenario(50)
    batch = wallclock._steady_move_events(server, movers, 500)

    def run():
        for event in batch:
            server._broadcast_direct_scan(event, None)

    benchmark(run)


@pytest.mark.benchmark(group="fanout")
def test_broadcast_indexed_50(benchmark):
    server, movers = wallclock.build_fanout_scenario(50)
    batch = wallclock._steady_move_events(server, movers, 500)

    def run():
        for event in batch:
            server._broadcast_direct(event, None)

    benchmark(run)


@pytest.mark.benchmark(group="fanout")
def test_interest_refresh_50(benchmark):
    server, __ = wallclock.build_fanout_scenario(50)
    session = next(iter(server.sessions.values()))
    entity = server.world.get_entity(session.entity_id)
    origin = entity.position
    across = Vec3(origin.x + 16.0, origin.y, origin.z)
    toggle = [False]

    def run():
        toggle[0] = not toggle[0]
        entity.position = across if toggle[0] else origin
        server.interest.refresh(session)

    benchmark(run)


def test_suite_smoke():
    """The whole suite runs end to end at toy scale and produces a
    well-formed payload. No timing assertions: CI fails on crash only."""
    payload = wallclock.run_suite(
        bot_counts=(10,), events=120, crossings=60, refreshes=20, commits=500
    )
    assert payload["schema"] == "bench-fanout/2"
    benches = {(row["bench"], row["impl"]) for row in payload["rows"]}
    assert ("direct_broadcast", "scan") in benches
    assert ("direct_broadcast", "indexed") in benches
    assert ("entity_crossing", "scan") in benches
    assert ("entity_crossing", "indexed") in benches
    assert ("interest_refresh", "shared") in benches
    # S17: the middleware benches report the legacy/batched pair.
    assert ("dyconit_commit", "legacy") in benches
    assert ("dyconit_commit", "batched") in benches
    assert ("dyconit_flush", "legacy") in benches
    assert ("dyconit_flush", "batched") in benches
    assert ("commit_batch", "legacy") in benches
    assert ("commit_batch", "batched") in benches
    for row in payload["rows"]:
        assert row["ops_per_sec"] > 0
        assert row["elapsed_s"] >= 0
    assert "direct_broadcast@10" in payload["speedups"]
    assert "dyconit_commit@50" in payload["speedups"]
    assert "commit_batch@50" in payload["speedups"]
