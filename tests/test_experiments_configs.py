"""Unit tests for experiment configuration factories."""

import pytest

from repro.core.partition import ChunkPartitioner, GlobalPartitioner, RegionPartitioner
from repro.experiments.configs import ExperimentConfig, make_partitioner, make_policy
from repro.policies import (
    AdaptiveBoundsPolicy,
    DistanceBasedPolicy,
    FixedBoundsPolicy,
    InfiniteBoundsPolicy,
    InterestCutoffPolicy,
    ZeroBoundsPolicy,
)


class TestMakePolicy:
    def test_vanilla_is_none(self):
        assert make_policy("vanilla") is None

    def test_known_policies(self):
        assert isinstance(make_policy("zero"), ZeroBoundsPolicy)
        assert isinstance(make_policy("infinite"), InfiniteBoundsPolicy)
        assert isinstance(make_policy("fixed"), FixedBoundsPolicy)
        assert isinstance(make_policy("aoi"), InterestCutoffPolicy)
        assert isinstance(make_policy("distance"), DistanceBasedPolicy)
        assert isinstance(make_policy("adaptive"), AdaptiveBoundsPolicy)

    def test_kwargs_forwarded(self):
        policy = make_policy("adaptive", evaluation_period_ms=123.0)
        assert policy.evaluation_period_ms == 123.0

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            make_policy("telepathy")


class TestMakePartitioner:
    def test_chunk(self):
        assert isinstance(make_partitioner("chunk"), ChunkPartitioner)

    def test_region_with_size(self):
        partitioner = make_partitioner("region:8")
        assert isinstance(partitioner, RegionPartitioner)
        assert partitioner.region_size == 8

    def test_global(self):
        assert isinstance(make_partitioner("global"), GlobalPartitioner)

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            make_partitioner("octree")


class TestExperimentConfig:
    def test_warmup_must_precede_end(self):
        with pytest.raises(ValueError):
            ExperimentConfig(duration_ms=1000.0, warmup_ms=1000.0)

    def test_with_override(self):
        config = ExperimentConfig(bots=10)
        other = config.with_(bots=99)
        assert other.bots == 99
        assert config.bots == 10

    def test_build_policy_vanilla(self):
        assert ExperimentConfig(policy="vanilla").build_policy() is None

    def test_build_server_config_carries_seed_and_view(self):
        config = ExperimentConfig(seed=7, view_distance=3)
        server_config = config.build_server_config()
        assert server_config.seed == 7
        assert server_config.view_distance == 3

    def test_build_workload_spec(self):
        spec = ExperimentConfig(bots=12, movement="uniform").build_workload_spec()
        assert spec.bots == 12
        assert spec.movement == "uniform"

    def test_shards_default_to_single_server(self):
        config = ExperimentConfig()
        assert config.shards == 1
        assert config.strip_width == 4

    def test_shard_count_must_be_positive(self):
        with pytest.raises(ValueError):
            ExperimentConfig(shards=0)

    def test_vanilla_cannot_shard(self):
        # Cross-shard federation runs on inter-server dyconits: direct
        # mode has nothing to federate with.
        with pytest.raises(ValueError, match="vanilla"):
            ExperimentConfig(policy="vanilla", shards=2)
        # shards=1 vanilla stays legal (the legacy path).
        assert ExperimentConfig(policy="vanilla", shards=1).shards == 1

    def test_sharded_config_roundtrips(self):
        from repro.experiments.configs import config_from_dict, config_to_dict

        config = ExperimentConfig(policy="adaptive", shards=4, strip_width=2)
        rebuilt = config_from_dict(config_to_dict(config))
        assert rebuilt == config
        assert rebuilt.shards == 4
        assert rebuilt.strip_width == 2
