"""Chunk storage.

A chunk is a 16x16 column of blocks, ``WORLD_HEIGHT`` blocks tall, stored
as a dense ``numpy`` array of block ids. The world height is 64 rather
than Minecraft's 256 to keep hundreds of simulated chunks cheap in memory;
the serializer's size model accounts for the real per-section encoding so
byte counts remain representative.
"""

from __future__ import annotations

import numpy as np

from repro.world.block import BlockType
from repro.world.geometry import CHUNK_SIZE, BlockPos, ChunkPos

WORLD_HEIGHT = 64


class Chunk:
    """Dense block storage for one 16x16 column of the world."""

    __slots__ = ("pos", "blocks", "_non_air", "modified_count")

    def __init__(self, pos: ChunkPos, blocks: np.ndarray | None = None) -> None:
        self.pos = pos
        if blocks is None:
            blocks = np.zeros((CHUNK_SIZE, WORLD_HEIGHT, CHUNK_SIZE), dtype=np.uint16)
        if blocks.shape != (CHUNK_SIZE, WORLD_HEIGHT, CHUNK_SIZE):
            raise ValueError(
                f"chunk array must be {(CHUNK_SIZE, WORLD_HEIGHT, CHUNK_SIZE)}, "
                f"got {blocks.shape}"
            )
        self.blocks = blocks
        self._non_air = int(np.count_nonzero(blocks))
        #: Number of block mutations applied after generation; a proxy for
        #: how "modified" (player-built) this part of the MVE is.
        self.modified_count = 0

    @property
    def non_air_count(self) -> int:
        """Number of non-air blocks; drives the chunk-data packet size model."""
        return self._non_air

    def contains(self, pos: BlockPos) -> bool:
        return pos.to_chunk_pos() == self.pos and 0 <= pos.y < WORLD_HEIGHT

    def get_block(self, pos: BlockPos) -> BlockType:
        lx, y, lz = self._local(pos)
        return BlockType(int(self.blocks[lx, y, lz]))

    def set_block(self, pos: BlockPos, block: BlockType) -> BlockType:
        """Set the block at ``pos``; returns the previous block type."""
        lx, y, lz = self._local(pos)
        old = BlockType(int(self.blocks[lx, y, lz]))
        if old == block:
            return old
        self.blocks[lx, y, lz] = int(block)
        if old == BlockType.AIR and block != BlockType.AIR:
            self._non_air += 1
        elif old != BlockType.AIR and block == BlockType.AIR:
            self._non_air -= 1
        self.modified_count += 1
        return old

    def surface_height(self, x: int, z: int) -> int:
        """Y of the highest non-air block in the (x, z) column, or -1."""
        lx = x & (CHUNK_SIZE - 1)
        lz = z & (CHUNK_SIZE - 1)
        column = self.blocks[lx, :, lz]
        nonzero = np.nonzero(column)[0]
        if nonzero.size == 0:
            return -1
        return int(nonzero[-1])

    def _local(self, pos: BlockPos) -> tuple[int, int, int]:
        if not (0 <= pos.y < WORLD_HEIGHT):
            raise ValueError(f"y={pos.y} outside world height [0, {WORLD_HEIGHT})")
        if pos.to_chunk_pos() != self.pos:
            raise ValueError(f"block {pos} is not inside chunk {self.pos}")
        return pos.local()

    def __repr__(self) -> str:
        return f"Chunk({self.pos}, non_air={self._non_air}, modified={self.modified_count})"
