"""Unit tests for the chunk->shard router (vertical ownership strips)."""

import pytest

from repro.cluster.router import ShardRouter
from repro.world.geometry import ChunkPos, Vec3


def test_single_shard_owns_everything():
    router = ShardRouter(1, 4)
    for cx in range(-20, 20, 3):
        for cz in range(-20, 20, 7):
            assert router.shard_for_chunk(ChunkPos(cx, cz)) == 0


def test_strips_alternate_round_robin():
    router = ShardRouter(2, 4)
    # Strip of width 4 starting at cx=0 belongs to shard 0, next to 1, ...
    assert router.shard_for_chunk(ChunkPos(0, 0)) == 0
    assert router.shard_for_chunk(ChunkPos(3, 5)) == 0
    assert router.shard_for_chunk(ChunkPos(4, 0)) == 1
    assert router.shard_for_chunk(ChunkPos(7, -9)) == 1
    assert router.shard_for_chunk(ChunkPos(8, 0)) == 0


def test_negative_chunks_use_floor_division():
    router = ShardRouter(2, 4)
    # Python's floor division keeps strips contiguous through zero:
    # cx in [-4, -1] is strip -1 -> shard (-1) % 2 == 1.
    for cx in (-4, -3, -2, -1):
        assert router.shard_for_chunk(ChunkPos(cx, 0)) == 1
    for cx in (-8, -7, -6, -5):
        assert router.shard_for_chunk(ChunkPos(cx, 0)) == 0


def test_ownership_is_z_independent():
    router = ShardRouter(4, 2)
    for cz in (-100, -1, 0, 1, 57):
        assert router.shard_for_chunk(ChunkPos(6, cz)) == router.shard_for_chunk(
            ChunkPos(6, 0)
        )


def test_every_shard_owns_some_strip():
    shards = 4
    router = ShardRouter(shards, 3)
    owners = {router.shard_for_chunk(ChunkPos(cx, 0)) for cx in range(-24, 24)}
    assert owners == set(range(shards))


def test_shard_for_position_matches_chunk_of_position():
    router = ShardRouter(2, 4)
    position = Vec3(65.0, 10.0, -3.0)  # chunk (4, -1) -> strip 1 -> shard 1
    assert router.shard_for_position(position) == router.shard_for_chunk(
        position.to_chunk_pos()
    )
    assert router.shard_for_position(position) == 1


def test_owns_agrees_with_shard_for_chunk():
    router = ShardRouter(3, 2)
    for cx in range(-10, 10):
        chunk = ChunkPos(cx, 0)
        owner = router.shard_for_chunk(chunk)
        for shard in range(3):
            assert router.owns(shard, chunk) == (shard == owner)


def test_border_chunks_touch_foreign_strips():
    router = ShardRouter(2, 4)
    # Interior of a width-4 strip: neighbours all same owner.
    assert not router.is_border_chunk(ChunkPos(1, 0))
    assert not router.is_border_chunk(ChunkPos(2, 5))
    # Strip edges: an 8-neighbourhood crosses into the next strip.
    assert router.is_border_chunk(ChunkPos(0, 0))
    assert router.is_border_chunk(ChunkPos(3, 0))
    assert router.is_border_chunk(ChunkPos(4, -7))


def test_single_shard_has_no_borders():
    router = ShardRouter(1, 4)
    assert not router.is_border_chunk(ChunkPos(0, 0))
    assert not router.is_border_chunk(ChunkPos(3, 9))


@pytest.mark.parametrize("shards,strip_width", [(0, 4), (-1, 4), (2, 0), (2, -3)])
def test_invalid_construction_rejected(shards, strip_width):
    with pytest.raises(ValueError):
        ShardRouter(shards, strip_width)
