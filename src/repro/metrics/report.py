"""Plain-text table rendering for benchmark output.

The benchmarks print the same rows/series the paper's tables and figures
report; this module renders them legibly on a terminal.
"""

from __future__ import annotations

from typing import Sequence


def _format_cell(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)


def render_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: str | None = None
) -> str:
    """Render an ASCII table with right-aligned numeric columns."""
    formatted = [[_format_cell(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in formatted:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} headers"
            )
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def render_row(cells: Sequence[str]) -> str:
        return " | ".join(cell.rjust(width) for cell, width in zip(cells, widths))

    lines = []
    if title:
        lines.append(title)
    lines.append(render_row(list(headers)))
    lines.append("-+-".join("-" * width for width in widths))
    lines.extend(render_row(row) for row in formatted)
    return "\n".join(lines)
