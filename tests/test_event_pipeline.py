"""Out-of-process delivery pipeline: durable spool + crash replay (S20).

``SpoolEventBus`` tees every published flush into a SQLite spool; a
``SpoolConsumer`` — run both in-process and as a real subprocess
(``python -m repro.backends.pipeline``) — drains it into a JSONL
journal. The recovery contract under test: kill the consumer at any
point (``--crash-after`` exits ``os._exit(17)`` *before* acking),
relaunch it, and the journal ends up with every spooled batch exactly
once, in spool order.
"""

import json
import os
import subprocess
import sys

import pytest

from repro.backends import create_event_bus
from repro.backends.pipeline import SpoolConsumer, SpoolEventBus
from repro.core.subscription import Subscriber
from repro.world.events import EntityMoveEvent
from repro.world.geometry import Vec3

REPO_SRC = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")


def move(entity_id=1, time=0.0):
    return EntityMoveEvent(time, entity_id, Vec3(0, 0, 0), Vec3(1, 0, 0))


def recorder(subscriber_id=1):
    deliveries = []
    sub = Subscriber(
        subscriber_id=subscriber_id,
        deliver=lambda d, u: deliveries.append((d, list(u))),
    )
    return sub, deliveries


def fill_spool(path, n=10):
    bus = SpoolEventBus(str(path))
    sub, deliveries = recorder()
    for i in range(n):
        bus.publish(("chunk", i % 3, 0), sub, [move(i, time=float(i))])
    bus.close()
    return deliveries


def journal_seqs(out_path):
    if not os.path.exists(out_path):
        return []
    with open(out_path, encoding="utf-8") as handle:
        return [json.loads(line)["seq"] for line in handle if line.strip()]


class TestSpoolEventBus:
    def test_inner_delivery_is_unchanged_by_the_tee(self, tmp_path):
        bus = SpoolEventBus(str(tmp_path / "spool.db"))
        sub, deliveries = recorder()
        batches = [[move(i, time=float(i))] for i in range(4)]
        for i, batch in enumerate(batches):
            bus.publish(("d", i), sub, batch)
        # Direct inner bus: delivered inline, nothing pending at drain.
        assert [u for __, u in deliveries] == batches
        assert bus.drain() == 0
        assert bus.spooled == 4
        bus.close()

    def test_spool_spec_resolves_via_registry(self, tmp_path):
        bus = create_event_bus(f"spool:///{tmp_path}/spec spool.db")
        assert isinstance(bus, SpoolEventBus)
        sub, deliveries = recorder()
        bus.publish(("d", 0), sub, [move(1, time=1.0)])
        assert bus.spooled == 1
        assert len(deliveries) == 1
        bus.close()

    def test_spool_survives_close_and_reopen(self, tmp_path):
        path = tmp_path / "spool.db"
        fill_spool(path, n=6)
        consumer = SpoolConsumer(str(path), str(tmp_path / "out.jsonl"))
        assert consumer.pending() == 6
        consumer.close()

    def test_close_is_idempotent(self, tmp_path):
        bus = SpoolEventBus(str(tmp_path / "spool.db"))
        bus.close()
        bus.close()


class TestSpoolConsumerInProcess:
    def test_exactly_once_in_order(self, tmp_path):
        spool, out = str(tmp_path / "s.db"), str(tmp_path / "o.jsonl")
        fill_spool(spool, n=8)
        consumer = SpoolConsumer(spool, out)
        assert consumer.process_once() == 8
        assert consumer.process_once() == 0  # acked: nothing re-emitted
        consumer.close()
        assert journal_seqs(out) == list(range(1, 9))

    def test_new_consumer_resumes_from_watermark(self, tmp_path):
        spool, out = str(tmp_path / "s.db"), str(tmp_path / "o.jsonl")
        fill_spool(spool, n=5)
        first = SpoolConsumer(spool, out)
        first.process_once()
        first.close()
        # More traffic lands after the first consumer is gone.
        bus = SpoolEventBus(spool)
        sub, __ = recorder()
        bus.publish(("late", 0), sub, [move(9, time=9.0)])
        bus.close()
        second = SpoolConsumer(spool, out)
        assert second.process_once() == 1
        second.close()
        assert journal_seqs(out) == list(range(1, 7))

    def test_independent_watermarks_per_name(self, tmp_path):
        spool = str(tmp_path / "s.db")
        fill_spool(spool, n=3)
        a = SpoolConsumer(spool, str(tmp_path / "a.jsonl"), name="a")
        b = SpoolConsumer(spool, str(tmp_path / "b.jsonl"), name="b")
        assert a.process_once() == 3
        assert b.process_once() == 3
        a.close()
        b.close()


def run_consumer(spool, out, *extra):
    env = dict(os.environ, PYTHONPATH=REPO_SRC)
    return subprocess.run(
        [
            sys.executable, "-m", "repro.backends.pipeline",
            "--spool", spool, "--out", out, "--once", *extra,
        ],
        env=env,
        capture_output=True,
        text=True,
        timeout=60,
    )


class TestSubprocessCrashReplay:
    def test_clean_run_journals_everything(self, tmp_path):
        spool, out = str(tmp_path / "s.db"), str(tmp_path / "o.jsonl")
        fill_spool(spool, n=10)
        proc = run_consumer(spool, out)
        assert proc.returncode == 0, proc.stderr
        assert journal_seqs(out) == list(range(1, 11))

    @pytest.mark.parametrize("crash_after", [1, 4, 9])
    def test_crash_and_relaunch_is_exactly_once(self, tmp_path, crash_after):
        """The differential: kill mid-stream (exit 17, nothing acked),
        relaunch, and the journal matches a never-crashed run."""
        spool, out = str(tmp_path / "s.db"), str(tmp_path / "o.jsonl")
        fill_spool(spool, n=10)

        crashed = run_consumer(spool, out, "--crash-after", str(crash_after))
        assert crashed.returncode == 17
        assert journal_seqs(out) == list(range(1, crash_after + 1))
        # The watermark was NOT advanced: the relaunch re-reads from 0
        # and the journal-tail scan is what must dedupe.
        resumed = run_consumer(spool, out)
        assert resumed.returncode == 0, resumed.stderr
        assert journal_seqs(out) == list(range(1, 11))

    def test_double_crash_still_exactly_once(self, tmp_path):
        spool, out = str(tmp_path / "s.db"), str(tmp_path / "o.jsonl")
        fill_spool(spool, n=10)
        assert run_consumer(spool, out, "--crash-after", "2").returncode == 17
        assert run_consumer(spool, out, "--crash-after", "5").returncode == 17
        assert journal_seqs(out) == list(range(1, 8))
        assert run_consumer(spool, out).returncode == 0
        assert journal_seqs(out) == list(range(1, 11))

    def test_journal_content_matches_in_process_deliveries(self, tmp_path):
        """The journal is a faithful record of what the inner bus
        delivered: same batch count, same update times, same order."""
        spool, out = str(tmp_path / "s.db"), str(tmp_path / "o.jsonl")
        deliveries = fill_spool(spool, n=10)
        assert run_consumer(spool, out, "--crash-after", "6").returncode == 17
        assert run_consumer(spool, out).returncode == 0
        with open(out, encoding="utf-8") as handle:
            records = [json.loads(line) for line in handle if line.strip()]
        assert [r["times"] for r in records] == [
            [u.time for u in updates] for __, updates in deliveries
        ]
        assert [r["dyconit"] for r in records] == [
            repr(d) for d, __ in deliveries
        ]
