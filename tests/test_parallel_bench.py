"""Tests for the sweep benchmark payload, especially the single-CPU refusal.

A parallel "speedup" measured on one core is scheduler noise, not a
speedup; the benchmark must refuse to publish one and must leave an
auditable trail (cpu_count + suppression reason) instead.
"""

import pytest

from repro.experiments import parallel
from repro.experiments.configs import ExperimentConfig
from repro.experiments.parallel import sweep_benchmark


@pytest.fixture()
def tiny_cells():
    base = ExperimentConfig(bots=3, duration_ms=1_500.0, warmup_ms=500.0, seed=3)
    return [
        base.with_(name="bench-a", policy="zero"),
        base.with_(name="bench-b", policy="fixed"),
    ]


def test_single_cpu_host_suppresses_the_speedup_claim(tiny_cells, monkeypatch):
    monkeypatch.setattr(parallel.os, "cpu_count", lambda: 1)
    payload = sweep_benchmark(cells=tiny_cells, jobs=2)
    assert payload["schema"] == "bench-sweep/2"
    assert payload["params"]["cpu_count"] == 1
    assert payload["parallel_speedup"] is None
    assert "single core" in payload["parallel_speedup_suppressed"]
    # The raw wall-clock rows are still reported for auditing.
    assert [row["mode"] for row in payload["rows"]] == [
        "cold-serial", "cold-parallel", "warm-rerun",
    ]
    assert payload["stores_byte_identical"] is True


def test_multi_core_host_reports_a_numeric_speedup(tiny_cells, monkeypatch):
    monkeypatch.setattr(parallel.os, "cpu_count", lambda: 8)
    payload = sweep_benchmark(cells=tiny_cells, jobs=2)
    assert payload["params"]["cpu_count"] == 8
    assert isinstance(payload["parallel_speedup"], float)
    assert "parallel_speedup_suppressed" not in payload
    warm_row = payload["rows"][2]
    assert warm_row["cache_hits"] == len(tiny_cells)


def test_unknown_cpu_count_is_not_treated_as_single_core(tiny_cells, monkeypatch):
    # os.cpu_count() may return None; the refusal only fires on a
    # *known* single-core host.
    monkeypatch.setattr(parallel.os, "cpu_count", lambda: None)
    payload = sweep_benchmark(cells=tiny_cells, jobs=2)
    assert payload["params"]["cpu_count"] is None
    assert isinstance(payload["parallel_speedup"], float)
