"""Cluster invariants I7/I8: corrupted-state unit tests + a long audited run.

The unit tests inject each corruption the catalogue describes and assert
the auditor names it; the integration test runs a 2000-tick 2-shard
gathering (border-hotspot) workload with continuous auditing enabled —
the checked-mode acceptance gate for the sharded world.
"""

import pytest

from repro.bots.workload import BehaviorMix, Workload, WorkloadSpec
from repro.cluster import ShardedCluster
from repro.cluster.shard import peer_subscriber_id
from repro.core.invariants import InvariantAuditor, InvariantViolationError
from repro.policies.adaptive import AdaptiveBoundsPolicy
from repro.policies.zero import ZeroBoundsPolicy
from repro.server.config import ServerConfig
from repro.sim.simulator import Simulation
from repro.world.entity import EntityKind
from repro.world.geometry import ChunkPos, Vec3


def make_cluster(**config_overrides):
    defaults = dict(seed=11, synchronous_delivery=True, mob_count=0)
    defaults.update(config_overrides)
    sim = Simulation()
    cluster = ShardedCluster(
        sim,
        shards=2,
        strip_width=4,
        config=ServerConfig(**defaults),
        policy_factory=ZeroBoundsPolicy,
    )
    cluster.start()
    return sim, cluster


def run_settled(sim, cluster, bots=4, ms=2_000.0):
    workload = Workload(
        sim,
        cluster,
        WorkloadSpec(bots=bots, seed=11, movement="gathering"),
    )
    workload.start()
    sim.run_until(sim.now + ms)
    return workload


def names(violations):
    return {violation.invariant for violation in violations}


def test_clean_cluster_passes_all_invariants():
    sim, cluster = make_cluster(mob_count=2)
    run_settled(sim, cluster)
    assert InvariantAuditor().check_cluster(cluster) == []


def test_assert_ok_dispatches_on_cluster():
    sim, cluster = make_cluster()
    run_settled(sim, cluster)
    InvariantAuditor().assert_ok(cluster)  # must not raise


def test_duplicate_authority_is_flagged():
    sim, cluster = make_cluster()
    run_settled(sim, cluster)
    # The same entity id authoritative on both shards at once: promote a
    # ghost replica to authoritative, or materialize a twin.
    victim = next(iter(cluster.shards[0].world.entities()))
    shard1 = cluster.shards[1]
    if shard1.world.get_entity(victim.entity_id) is not None:
        shard1.ghost_ids.discard(victim.entity_id)
    else:
        shard1.world.spawn_entity(
            victim.kind, victim.position, name=victim.name, entity_id=victim.entity_id
        )
    violations = InvariantAuditor().check_cluster(cluster)
    assert "I7.unique-ownership" in names(violations)
    with pytest.raises(InvariantViolationError):
        InvariantAuditor().assert_ok(cluster)


def test_ghost_without_entity_is_flagged():
    sim, cluster = make_cluster()
    run_settled(sim, cluster)
    cluster.shards[1].ghost_ids.add(424242)
    violations = InvariantAuditor().check_cluster(cluster)
    assert "I7.ghost-backed" in names(violations)


def test_ghost_of_nobody_is_flagged():
    sim, cluster = make_cluster()
    run_settled(sim, cluster)
    shard1 = cluster.shards[1]
    orphan = shard1.world.spawn_entity(
        EntityKind.ZOMBIE, shard1.world.surface_position(-8.0, 8.0), entity_id=424243
    )
    shard1.ghost_ids.add(orphan.entity_id)
    violations = InvariantAuditor().check_cluster(cluster)
    assert "I7.ghost-of-nobody" in names(violations)


def test_one_sided_interest_is_flagged():
    sim, cluster = make_cluster()
    run_settled(sim, cluster)
    # Subscriber wants a chunk the publisher never registered.
    chunk = ChunkPos(40, 40)
    cluster.shards[1].remote_interest.setdefault(0, {})[chunk] = None
    violations = InvariantAuditor().check_cluster(cluster)
    mirror = [v for v in violations if v.invariant == "I8.mirror"]
    assert mirror and "never registered" in mirror[0].message


def test_dangling_registration_is_flagged():
    sim, cluster = make_cluster()
    run_settled(sim, cluster)
    # Publisher still registers a chunk the subscriber dropped.
    chunk = ChunkPos(41, 41)
    cluster.shards[0].peer_registry.setdefault(1, {})[chunk] = None
    violations = InvariantAuditor().check_cluster(cluster)
    mirror = [v for v in violations if v.invariant == "I8.mirror"]
    assert mirror and "dropped" in mirror[0].message


def test_registration_without_dyconit_backing_is_flagged():
    sim, cluster = make_cluster()
    run_settled(sim, cluster)
    # Both sides agree on the chunk, but the publisher's dyconit system
    # has no peer subscription feeding it.
    chunk = ChunkPos(42, 0)
    cluster.shards[1].remote_interest.setdefault(0, {})[chunk] = None
    cluster.shards[0].peer_registry.setdefault(1, {})[chunk] = None
    violations = InvariantAuditor().check_cluster(cluster)
    assert "I8.dyconit-backing" in names(violations)


def test_in_flight_control_messages_excuse_the_mirror():
    sim, cluster = make_cluster()
    run_settled(sim, cluster)
    # The same one-sided interest as above, but with a matching
    # PeerSubscribe still on the wire: not a violation until the barrier.
    from repro.cluster.messages import PeerSubscribe
    from repro.core.bounds import Bounds

    chunk = ChunkPos(40, 40)
    cluster.shards[1].remote_interest.setdefault(0, {})[chunk] = None
    cluster.bus.post(1, 0, PeerSubscribe(chunk=chunk, bounds=Bounds.ZERO))
    violations = InvariantAuditor().check_cluster(cluster)
    assert "I8.mirror" not in names(violations)
    # After the pump the mirror is real and the excusal is gone.
    sim.run_until(sim.now + 100.0)
    assert "I8.mirror" not in names(InvariantAuditor().check_cluster(cluster))


def test_shard_local_violations_are_prefixed():
    sim, cluster = make_cluster()
    run_settled(sim, cluster)
    # Corrupt a *single-server* invariant inside shard 1: a session
    # viewing a chunk with no subscriber entry has I2 broken.
    shard = cluster.shards[1]
    session = next(iter(shard.sessions.values()), None)
    if session is None:
        shard = cluster.shards[0]
        session = next(iter(shard.sessions.values()))
    session.view_chunks.add(ChunkPos(60, 60))
    violations = InvariantAuditor().check_cluster(cluster)
    assert violations, "expected the per-shard catalogue to fire"
    assert any(v.subject.startswith(f"shard {shard.shard_id}:") for v in violations)


def test_peer_subscriber_ids_never_collide_with_clients():
    assert peer_subscriber_id(0) == -1
    assert peer_subscriber_id(3) == -4
    assert all(peer_subscriber_id(shard) < 0 for shard in range(8))


def test_two_thousand_tick_audited_gathering_run_stays_clean():
    """The S16 checked-mode gate: 2k ticks, 2 shards, the border-hotspot
    workload, invariants I1-I8 audited every 10 pumps. Any violation
    raises InvariantViolationError from inside the run."""
    sim = Simulation()
    cluster = ShardedCluster(
        sim,
        shards=2,
        strip_width=4,
        config=ServerConfig(
            seed=5, synchronous_delivery=True, mob_count=3, audit_every_n_ticks=10
        ),
        policy_factory=AdaptiveBoundsPolicy,
    )
    cluster.start()
    workload = Workload(
        sim,
        cluster,
        WorkloadSpec(
            bots=6,
            seed=5,
            movement="gathering",
            behavior=BehaviorMix(build=0.05, dig=0.02, chat=0.01),
        ),
    )
    workload.start()
    sim.run_until(100_000.0)  # 2000 ticks at 50 ms
    assert cluster.pump_count == 2000
    # The run must have actually exercised federation, not idled.
    assert cluster.handoffs > 0
    assert cluster.bus.messages_by_kind.get("PeerUpdates", 0) > 0
    # And one final audit at the end for good measure.
    assert InvariantAuditor().check_cluster(cluster) == []
