"""End-to-end test of elastic repartitioning under the full server."""

from repro.bots.workload import Workload, WorkloadSpec
from repro.policies.elastic import ElasticPartitioningPolicy
from repro.server.config import ServerConfig
from repro.server.engine import GameServer
from repro.sim.simulator import Simulation
from repro.world.world import World


def test_elastic_policy_merges_cold_view_periphery():
    """A stationary-ish fleet makes its view periphery cold; the elastic
    policy must merge those chunk dyconits into region dyconits, shrink
    bookkeeping, and keep the game fully functional."""
    sim = Simulation()
    policy = ElasticPartitioningPolicy(
        region_size=4, cold_commits_per_second=0.5, evaluation_period_ms=2_000.0
    )
    server = GameServer(
        sim,
        world=World(seed=21),
        config=ServerConfig(seed=21, synchronous_delivery=True),
        policy=policy,
    )
    server.start()
    workload = Workload(
        sim, server, WorkloadSpec(bots=8, seed=21, movement="village", spawn_radius=16.0)
    )
    workload.start()
    sim.run_until(12_000.0)

    assert policy.merges > 0, "cold periphery chunks should have merged"
    assert server.dyconits.alias_count > 0
    # Bots still receive each other's movement: replicas stay bounded.
    errors = [e for bot in workload.bots for e in bot.positional_errors()]
    assert errors, "bots should still perceive each other"
    assert max(errors) < 20.0

    # The world keeps working after merges: block changes still propagate.
    from repro.net.protocol import PlayerActionPacket
    from repro.world.block import BlockType
    from repro.world.geometry import BlockPos

    actor = workload.bots[0]
    target = BlockPos(2, 40, 2)
    server.submit_action(
        actor.client_id, PlayerActionPacket("place", block_pos=target, block=BlockType.BRICK)
    )
    sim.run_until(sim.now + 1_000.0)
    assert server.world.get_block(target) == BlockType.BRICK
    other = workload.bots[1]
    assert other.perceived.blocks.get(target) == BlockType.BRICK
