"""Durable restart & crash recovery (S20): the kill-at-tick-K contract.

The tentpole test: a run that is checkpointed at the tick-K barrier,
SIGKILL-simulated a few ticks later (objects abandoned, never stopped
or closed), and restored from the surviving file-backed store must be
**packet-identical from the resume point** to a run that was never
killed — per client, with the invariant auditor enabled throughout.

Structure:

* parametrized kill ticks on the sqlite file store (the anchor cases);
* a hypothesis-sampled kill-point schedule over the same differential;
* checkpoint capture is observably read-only (checkpointed run ==
  un-checkpointed run, byte for byte);
* the same contract for a 2-shard cluster with per-shard sqlite
  stores — in-flight bus messages are part of the snapshot;
* error surfaces (missing key, server/cluster blob confusion).

Action traffic is scripted at off-barrier times (``step*25 + 13``) so
"actions at t <= T_K are inside the snapshot, actions after are
re-driven by the resumed client" is unambiguous.
"""

import os

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.backends import SQLiteStateStore
from repro.core.bounds import Bounds
from repro.gateway.control import ControlPlane
from repro.net.protocol import PlayerActionPacket
from repro.policies.fixed import FixedBoundsPolicy
from repro.server.config import ServerConfig
from repro.server.engine import GameServer
from repro.server.snapshot import (
    load_snapshot,
    restore_cluster,
    restore_server_from_store,
)
from repro.sim.simulator import Simulation
from repro.world.geometry import Vec3

TICK = 50.0
TOTAL_TICKS = 30
N_CLIENTS = 3


def make_policy():
    # Tight enough that merges, flushes and staleness deadlines all fire
    # during the run — recovery must restore mid-flight queue state, not
    # an empty system.
    return FixedBoundsPolicy(Bounds(numerical=3.0, staleness_ms=120.0))


def make_handler(log):
    return lambda delivered: log.append(repr(delivered.packet))


def _find_session(target, client_id):
    if hasattr(target, "shards"):
        shard_id = target._shard_by_client.get(client_id)
        if shard_id is None:
            return None, None
        shard = target.shards[shard_id]
        return shard, shard.sessions.get(client_id)
    return target, target.sessions.get(client_id)


def drive_tape(target, sim, client_ids, *, from_ms):
    """Schedule deterministic off-barrier move actions for every client.

    Only actions strictly after *from_ms* are scheduled: everything at or
    before the capture barrier is already inside the snapshot's inbound
    queue and must not be double-submitted by a resumed client.
    """
    for step in range(1, TOTAL_TICKS * 2):
        t = step * (TICK / 2.0) + 13.0  # off-barrier on purpose
        if t <= from_ms:
            continue
        for cid in client_ids:

            def submit(cid=cid, step=step):
                server, session = _find_session(target, cid)
                if session is None:
                    return
                entity = server.world.get_entity(session.entity_id)
                if entity is None:
                    return
                pos = Vec3(
                    entity.position.x + 0.4,
                    entity.position.y,
                    entity.position.z + (0.2 if step % 2 else -0.2),
                )
                target.submit_action(
                    cid, PlayerActionPacket(action="move", position=pos)
                )

            sim.schedule_at(t, submit)


def run_server(store, *, kill_tick=None, checkpoint_at=None, key="ck"):
    """Run the scripted scenario; returns (server, sim, logs-by-client)."""
    sim = Simulation()
    config = ServerConfig(
        state_store=store,
        mob_count=4,
        synchronous_delivery=True,
        audit_every_n_ticks=7,
        seed=3,
    )
    server = GameServer(sim, config=config, policy=make_policy())
    control = ControlPlane()
    server.control_plane = control
    logs = {}
    for i in range(N_CLIENTS):
        cid = i + 1
        logs[cid] = []
        server.connect(
            f"bot-{i}",
            make_handler(logs[cid]),
            position=server.world.surface_position(4.0 + 9 * i, 6.0),
        )
    server.start()
    drive_tape(server, sim, list(logs), from_ms=-1.0)
    if checkpoint_at is not None:
        sim.schedule_at(
            checkpoint_at * TICK - 1.0,
            lambda: control.submit({"kind": "checkpoint", "key": key}),
        )
    if kill_tick is None:
        sim.run_until(TOTAL_TICKS * TICK + TICK - 1.0)
    else:
        # Run a few ticks PAST the checkpoint: the killed process keeps
        # writing store rows after the snapshot, and recovery must
        # reset that garbage away.
        sim.run_until((kill_tick + 4) * TICK)
    return server, sim, logs


def resume_from(path, *, key="ck"):
    """SIGKILL semantics: reattach a fresh store handle to the file."""
    store = SQLiteStateStore(path)
    logs = {cid: [] for cid in range(1, N_CLIENTS + 1)}
    handlers = {cid: make_handler(log) for cid, log in logs.items()}
    server = restore_server_from_store(store, key, handlers=handlers)
    sim = server.sim
    drive_tape(server, sim, list(logs), from_ms=sim.now)
    sim.run_until(TOTAL_TICKS * TICK + TICK - 1.0)
    return server, logs


def assert_tails_match(baseline_logs, resumed_logs):
    for cid, baseline in baseline_logs.items():
        resumed = resumed_logs[cid]
        assert resumed, f"client {cid} received nothing after resume"
        tail = baseline[-len(resumed):]
        assert resumed == tail, (
            f"client {cid} diverged: resumed {len(resumed)} packets do not "
            f"match the baseline tail (first diff at index "
            f"{next(i for i, (a, b) in enumerate(zip(tail, resumed)) if a != b)})"
        )


def kill_and_resume_differential(tmp_path, kill_tick):
    baseline_store = SQLiteStateStore(os.path.join(tmp_path, "baseline.db"))
    server_a, _, baseline_logs = run_server(
        baseline_store, checkpoint_at=kill_tick
    )
    assert server_a.tick_count == TOTAL_TICKS

    path = os.path.join(tmp_path, "killed.db")
    server_b, _, _ = run_server(
        SQLiteStateStore(path), kill_tick=kill_tick, checkpoint_at=kill_tick
    )
    assert server_b.tick_count == kill_tick + 4
    del server_b  # abandoned, never stopped/closed: SIGKILL semantics

    server_c, resumed_logs = resume_from(path)
    assert server_c.tick_count == TOTAL_TICKS
    assert_tails_match(baseline_logs, resumed_logs)
    server_a.close()
    server_c.close()


# ---------------------------------------------------------------------------
# Single-server kill/resume
# ---------------------------------------------------------------------------


class TestServerKillResume:
    @pytest.mark.parametrize("kill_tick", [5, 14, 23])
    def test_kill_and_resume_is_packet_identical(self, tmp_path, kill_tick):
        kill_and_resume_differential(str(tmp_path), kill_tick)

    def test_restored_server_resumes_from_checkpoint_tick(self, tmp_path):
        path = os.path.join(str(tmp_path), "run.db")
        server, _, _ = run_server(
            SQLiteStateStore(path), kill_tick=10, checkpoint_at=10
        )
        del server
        store = SQLiteStateStore(path)
        handlers = {
            cid: make_handler([]) for cid in range(1, N_CLIENTS + 1)
        }
        restored = restore_server_from_store(store, "ck", handlers=handlers)
        # The checkpoint captured at the top of tick 10, before any phase
        # ran; the restored server re-runs tick 10 itself.
        assert restored.tick_count == 9
        assert restored.sim.now == 10 * TICK
        restored.sim.run_until(restored.sim.now)
        assert restored.tick_count == 10
        restored.close()


@settings(
    max_examples=4,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(kill_tick=st.integers(min_value=3, max_value=TOTAL_TICKS - 4))
def test_kill_point_schedule_property(tmp_path_factory, kill_tick):
    """Hypothesis-sampled kill points: the contract holds at ANY barrier."""
    tmp = tmp_path_factory.mktemp(f"kill{kill_tick}")
    kill_and_resume_differential(str(tmp), kill_tick)


# ---------------------------------------------------------------------------
# Checkpointing must not perturb the run
# ---------------------------------------------------------------------------


class TestCheckpointIsReadOnly:
    def test_checkpointed_run_matches_unobserved_run(self, tmp_path):
        plain_store = SQLiteStateStore(os.path.join(str(tmp_path), "plain.db"))
        _, _, plain_logs = run_server(plain_store)
        ck_store = SQLiteStateStore(os.path.join(str(tmp_path), "ck.db"))
        _, _, ck_logs = run_server(ck_store, checkpoint_at=11)
        assert ck_logs == plain_logs
        assert ck_store.load_checkpoint("ck") is not None
        assert plain_store.load_checkpoint("ck") is None

    def test_checkpoint_survives_reset(self, tmp_path):
        store = SQLiteStateStore(os.path.join(str(tmp_path), "run.db"))
        run_server(store, checkpoint_at=8)
        blob = store.load_checkpoint("ck")
        store.reset()
        assert store.load_checkpoint("ck") == blob


# ---------------------------------------------------------------------------
# Error surfaces
# ---------------------------------------------------------------------------


class TestRecoveryErrors:
    def test_missing_checkpoint_raises_key_error(self, tmp_path):
        store = SQLiteStateStore(os.path.join(str(tmp_path), "empty.db"))
        with pytest.raises(KeyError, match="no checkpoint"):
            load_snapshot(store, "nope")

    def test_cluster_blob_rejected_by_server_restore(self, tmp_path):
        stores = cluster_stores(str(tmp_path))
        cluster, _, _ = run_cluster(stores, checkpoint_at=6, kill_pump=6)
        del cluster
        store = SQLiteStateStore(stores[0])
        with pytest.raises(TypeError, match="ClusterSnapshot"):
            restore_server_from_store(store, "ck", handlers={})


# ---------------------------------------------------------------------------
# Cluster kill/resume: per-shard stores, in-flight bus traffic included
# ---------------------------------------------------------------------------

CLUSTER_SHARDS = 2
CLUSTER_CLIENTS = 4


def cluster_stores(tmp_path):
    return [
        os.path.join(tmp_path, f"shard{i}.db") for i in range(CLUSTER_SHARDS)
    ]


def run_cluster(store_paths, *, kill_pump=None, checkpoint_at=None, key="ck"):
    from repro.cluster import ShardedCluster

    sim = Simulation()
    config = ServerConfig(
        mob_count=2,
        synchronous_delivery=True,
        audit_every_n_ticks=7,
        seed=3,
    )
    cluster = ShardedCluster(
        sim,
        shards=CLUSTER_SHARDS,
        strip_width=2,
        config=config,
        policy_factory=make_policy,
        state_stores=[SQLiteStateStore(p) for p in store_paths],
    )
    control = ControlPlane()
    cluster.control_plane = control
    logs = {}
    for i in range(CLUSTER_CLIENTS):
        cid = i + 1
        logs[cid] = []
        # Spread clients across both strips so cross-shard interest (and
        # therefore bus traffic) exists at every barrier.
        x = 8.0 + 24.0 * i
        cluster.connect(f"bot-{i}", make_handler(logs[cid]), position=Vec3(x, 8.0, 6.0))
    cluster.start()
    drive_tape(cluster, sim, list(logs), from_ms=-1.0)
    if checkpoint_at is not None:
        sim.schedule_at(
            checkpoint_at * TICK - 1.0,
            lambda: control.submit({"kind": "checkpoint", "key": key}),
        )
    if kill_pump is None:
        sim.run_until(TOTAL_TICKS * TICK + TICK - 1.0)
    else:
        sim.run_until((kill_pump + 4) * TICK)
    return cluster, sim, logs


@pytest.mark.parametrize("kill_pump", [6, 15])
def test_cluster_kill_and_resume_is_packet_identical(tmp_path, kill_pump):
    tmp = str(tmp_path)
    baseline_paths = [
        os.path.join(tmp, f"base{i}.db") for i in range(CLUSTER_SHARDS)
    ]
    cluster_a, _, baseline_logs = run_cluster(
        baseline_paths, checkpoint_at=kill_pump
    )
    assert cluster_a.pump_count == TOTAL_TICKS

    killed_paths = cluster_stores(tmp)
    cluster_b, _, _ = run_cluster(
        killed_paths, kill_pump=kill_pump, checkpoint_at=kill_pump
    )
    assert cluster_b.pump_count == kill_pump + 4
    del cluster_b  # abandoned: SIGKILL semantics

    fresh_stores = [SQLiteStateStore(p) for p in killed_paths]
    snap = load_snapshot(fresh_stores[0], "ck")
    logs = {cid: [] for cid in range(1, CLUSTER_CLIENTS + 1)}
    handlers = {cid: make_handler(log) for cid, log in logs.items()}
    cluster_c = restore_cluster(snap, state_stores=fresh_stores, handlers=handlers)
    sim_c = cluster_c.sim
    assert cluster_c.pump_count == kill_pump - 1
    drive_tape(cluster_c, sim_c, list(logs), from_ms=sim_c.now)
    sim_c.run_until(TOTAL_TICKS * TICK + TICK - 1.0)
    assert cluster_c.pump_count == TOTAL_TICKS
    assert_tails_match(baseline_logs, logs)
    cluster_a.close()
    cluster_c.close()
