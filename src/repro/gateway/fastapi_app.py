"""Optional FastAPI wrapper around :class:`GatewayCore` (S19).

The repo's CI image ships without FastAPI, so this module import-gates
it behind :class:`~repro.backends.base.BackendUnavailable` — the same
convention as the Redis store. With FastAPI installed::

    from repro.gateway.fastapi_app import create_app
    app = create_app(GatewayCore(server))   # uvicorn repro...:app

Route behaviour is byte-identical to the stdlib app: both shovel
through :meth:`GatewayCore.handle`.
"""

from __future__ import annotations

from repro.backends.base import BackendUnavailable
from repro.gateway.core import GatewayCore


def create_app(core: GatewayCore):
    """Build a FastAPI app over *core*; raises BackendUnavailable without it."""
    try:
        from fastapi import FastAPI, Request, Response
    except ImportError as exc:  # pragma: no cover — CI image has no fastapi
        raise BackendUnavailable(
            "fastapi is not installed; use repro.gateway.app (stdlib) instead"
        ) from exc

    app = FastAPI(title="repro gateway")

    @app.get("/{path:path}")
    async def get(path: str):  # pragma: no cover — exercised only with fastapi
        status, content_type, body = core.handle("GET", "/" + path)
        return Response(content=body, status_code=status, media_type=content_type)

    @app.put("/{path:path}")
    async def put(path: str, request: Request):  # pragma: no cover
        body = await request.body()
        status, content_type, payload = core.handle("PUT", "/" + path, body)
        return Response(content=payload, status_code=status, media_type=content_type)

    return app
