"""Wall-clock micro-benchmarks for the event fan-out hot paths.

Everything else in the experiment harness measures *simulated* quantities
(bytes, ticks, staleness); this module measures what the implementation
itself costs in real time — the quantity the ROADMAP's "as fast as the
hardware allows" goal and the BENCH_fanout.json perf trajectory track.

Four benches, each returning ops/sec over a steady-state scenario:

* ``direct_broadcast`` — the vanilla per-event broadcast, scan vs
  indexed. The scan visits every session per event (O(players²) per
  movement tick); the indexed path only the viewers of the event's chunk.
* ``entity_crossing`` — the interest manager's chunk-border handler,
  scan vs indexed (viewers of the new chunk + knowers of the entity).
* ``interest_refresh`` — re-centering one player's view across a chunk
  border (shared by both paths; tracked so index upkeep stays honest).
* ``dyconit_commit`` / ``dyconit_flush`` — middleware enqueue and the
  (now sort-free) drain, legacy per-object path vs the S17 batched
  columnar pipeline.
* ``commit_batch`` — a per-tick burst spread over many dyconits, the
  shape the engine's commit buffer produces (legacy vs batched).

Scenarios are deterministic (seeded), sized by (bots, events), and use
synchronous delivery with no-op handlers so the timed region is the
server-side fan-out work only.
"""

from __future__ import annotations

import math
import random
from dataclasses import asdict, dataclass
from time import perf_counter

from repro.core.bounds import Bounds
from repro.core.manager import DyconitSystem
from repro.core.policy import Policy
from repro.core.subscription import Subscriber
from repro.faults.plan import FaultPlan
from repro.server.config import ServerConfig
from repro.server.engine import GameServer
from repro.sim.simulator import Simulation
from repro.world.entity import EntityKind
from repro.world.events import EntityMoveEvent
from repro.world.geometry import Vec3
from repro.world.world import World

#: Players/movers are spread uniformly over a disc of this radius
#: (blocks) — an exploration-spread fleet (~100 chunks across vs an
#: 11×11-chunk view), so any one chunk is viewed by a small handful of
#: players. This is the regime the paper's trek/exploration workloads
#: live in and where an O(players) scan per event hurts most.
SPREAD_RADIUS = 800.0

#: Default mover-entity count (ambient mobs emitting the move events).
MOVERS = 24


@dataclass(frozen=True, slots=True)
class BenchRow:
    """One (bench, impl, fleet size) measurement."""

    bench: str
    impl: str  # "scan" | "indexed" | "shared"
    bots: int
    ops: int
    elapsed_s: float
    ops_per_sec: float
    us_per_op: float
    #: Wall ms of fan-out work per simulated tick, modelling one move
    #: event per connected player per tick (None where a "tick" has no
    #: meaning, e.g. the middleware microbenches).
    per_tick_ms: float | None = None

    def to_dict(self) -> dict:
        return asdict(self)


def _make_row(
    bench: str, impl: str, bots: int, ops: int, elapsed_s: float,
    events_per_tick: int | None = None,
) -> BenchRow:
    per_op_s = elapsed_s / ops if ops else 0.0
    return BenchRow(
        bench=bench,
        impl=impl,
        bots=bots,
        ops=ops,
        elapsed_s=round(elapsed_s, 6),
        ops_per_sec=round(ops / elapsed_s, 2) if elapsed_s > 0 else float("inf"),
        us_per_op=round(per_op_s * 1e6, 3),
        per_tick_ms=(
            round(per_op_s * events_per_tick * 1e3, 4)
            if events_per_tick is not None
            else None
        ),
    )


# ----------------------------------------------------------------------
# Scenario construction
# ----------------------------------------------------------------------


def _disc_position(rng: random.Random, world: World, radius: float) -> Vec3:
    angle = rng.uniform(0.0, 2.0 * math.pi)
    distance = radius * math.sqrt(rng.random())
    return world.surface_position(
        distance * math.cos(angle), distance * math.sin(angle)
    )


def build_fanout_scenario(
    bots: int, seed: int = 7, movers: int = MOVERS,
    faults: FaultPlan | None = None,
):
    """A steady-state direct-mode server: ``bots`` sessions and ``movers``
    mob entities spread over the same disc. Returns (server, movers).

    ``faults`` installs the fault layer on every link (a null
    :class:`FaultPlan` exercises the layer's dispatch with zero rates —
    the configuration the "zero overhead when disabled" trajectory
    numbers compare against)."""
    sim = Simulation()
    server = GameServer(
        sim,
        world=World(seed=seed),
        config=ServerConfig(
            seed=seed, synchronous_delivery=True, mob_count=0, faults=faults
        ),
        direct_mode=True,
    )
    server.start()
    server.transport.record_latencies = False
    rng = random.Random(seed)
    world = server.world
    mover_entities = [
        world.spawn_entity(EntityKind.COW, _disc_position(rng, world, SPREAD_RADIUS))
        for __ in range(movers)
    ]
    for index in range(bots):
        server.connect(
            f"wc-{index:04d}",
            lambda delivered: None,
            position=_disc_position(rng, world, SPREAD_RADIUS),
        )
    return server, mover_entities


def _steady_move_events(server: GameServer, mover_entities, count: int):
    """``count`` move events cycling the movers inside their own chunks
    (no border crossings: pure broadcast work, stable session state)."""
    events = []
    for index in range(count):
        entity = mover_entities[index % len(mover_entities)]
        # Wiggle around the block center; stays inside the chunk.
        offset = 0.25 if (index // len(mover_entities)) % 2 == 0 else -0.25
        position = Vec3(
            entity.position.x + offset, entity.position.y, entity.position.z
        )
        events.append(
            EntityMoveEvent(
                time=server.sim.now,
                entity_id=entity.entity_id,
                old_position=entity.position,
                new_position=position,
            )
        )
    return events


# ----------------------------------------------------------------------
# Benches
# ----------------------------------------------------------------------


def bench_direct_broadcast(
    bots: int, events: int = 2_000, seed: int = 7,
    faults: FaultPlan | None = None,
):
    """Scan vs indexed rows for the vanilla broadcast path."""
    server, movers = build_fanout_scenario(bots, seed=seed, faults=faults)
    batch = _steady_move_events(server, movers, events)
    rows = []
    for impl, broadcast in (
        ("scan", server._broadcast_direct_scan),
        ("indexed", server._broadcast_direct),
    ):
        for event in batch[: len(movers)]:  # warmup: settle replica state
            broadcast(event, None)
        start = perf_counter()
        for event in batch:
            broadcast(event, None)
        elapsed = perf_counter() - start
        rows.append(
            _make_row("direct_broadcast", impl, bots, events, elapsed,
                      events_per_tick=bots)
        )
    return rows


def bench_entity_crossing(
    bots: int, crossings: int = 1_000, seed: int = 7,
    faults: FaultPlan | None = None,
):
    """Scan vs indexed rows for the chunk-border interest handler.

    Alternates a synthetic crossing of each mover between its own chunk
    and the next one over; replica state cycles, so both impls do the
    same spawn/destroy work every round.
    """
    server, movers = build_fanout_scenario(bots, seed=seed, faults=faults)
    interest = server.interest
    plans = []
    for entity in movers:
        home = entity.position.to_chunk_pos()
        away = type(home)(home.cx + 1, home.cz)
        plans.append((entity.entity_id, home, away))
    rows = []
    for impl, handler in (
        ("scan", interest.on_entity_crossed_scan),
        ("indexed", interest.on_entity_crossed),
    ):
        start = perf_counter()
        for index in range(crossings):
            entity_id, home, away = plans[index % len(plans)]
            if (index // len(plans)) % 2 == 0:
                handler(entity_id, home, away)
            else:
                handler(entity_id, away, home)
        elapsed = perf_counter() - start
        rows.append(_make_row("entity_crossing", impl, bots, crossings, elapsed))
    return rows


def bench_interest_refresh(
    bots: int, refreshes: int = 400, seed: int = 7,
    faults: FaultPlan | None = None,
):
    """One player ping-pongs across a chunk border; each refresh restreams
    the view edge and updates the viewer index. Shared by both impls."""
    server, __ = build_fanout_scenario(bots, seed=seed, faults=faults)
    session = next(iter(server.sessions.values()))
    entity = server.world.get_entity(session.entity_id)
    origin = entity.position
    across = Vec3(origin.x + 16.0, origin.y, origin.z)
    start = perf_counter()
    for index in range(refreshes):
        entity.position = across if index % 2 == 0 else origin
        server.interest.refresh(session)
    elapsed = perf_counter() - start
    return [_make_row("interest_refresh", "shared", bots, refreshes, elapsed)]


class _StaticPolicy(Policy):
    def __init__(self, bounds: Bounds) -> None:
        self.bounds = bounds

    def initial_bounds(self, system, dyconit_id, subscriber) -> Bounds:
        return self.bounds


#: Per-tick commit burst size used by the batched middleware benches —
#: roughly one move event per connected player per tick at the larger
#: fleet size, matching how the engine's commit buffer drains.
COMMIT_BATCH = 256


def _commit_events(commits: int) -> list[EntityMoveEvent]:
    return [
        EntityMoveEvent(
            time=float(index),
            entity_id=index % 64 + 1,
            old_position=Vec3(0, 0, 0),
            new_position=Vec3(1, 0, 0),
        )
        for index in range(commits)
    ]


def _make_commit_system(subscribers: int, use_batched: bool) -> DyconitSystem:
    system = DyconitSystem(
        _StaticPolicy(Bounds.INFINITE),
        time_source=lambda: 0.0,
        use_batched_commit=use_batched,
    )
    dyconit_id = ("chunk", 0, 0)
    for subscriber_id in range(subscribers):
        system.subscribe(
            dyconit_id,
            Subscriber(subscriber_id=subscriber_id, deliver=lambda d, u: None),
        )
    return system


def bench_dyconit_commit_flush(subscribers: int, commits: int = 20_000):
    """Middleware enqueue throughput and sort-free flush drain cost.

    Legacy vs batched impl rows (the S17 pair, like scan/indexed for the
    broadcast benches): the legacy impl is the per-object ``commit_to``
    loop against dict-of-SubscriptionState queues; the batched impl
    drains the same event stream through ``commit_many`` in per-tick
    bursts against the flat columnar store.
    """
    dyconit_id = ("chunk", 0, 0)
    events = _commit_events(commits)
    rows = []
    for impl, use_batched in (("legacy", False), ("batched", True)):
        system = _make_commit_system(subscribers, use_batched)
        start = perf_counter()
        if use_batched:
            for offset in range(0, len(events), COMMIT_BATCH):
                system.commit_many(
                    [
                        (dyconit_id, event, None)
                        for event in events[offset : offset + COMMIT_BATCH]
                    ]
                )
        else:
            for event in events:
                system.commit_to(dyconit_id, event)
        commit_elapsed = perf_counter() - start
        start = perf_counter()
        system.flush_all()
        flush_elapsed = perf_counter() - start
        delivered = system.stats.updates_delivered
        rows.append(
            _make_row("dyconit_commit", impl, subscribers, commits, commit_elapsed)
        )
        rows.append(
            _make_row(
                "dyconit_flush", impl, subscribers, max(1, delivered), flush_elapsed
            )
        )
    return rows


def bench_commit_batch(subscribers: int, commits: int = 20_000):
    """A realistic per-tick burst spread over many dyconits.

    Unlike :func:`bench_dyconit_commit_flush` (one hot dyconit), the
    event stream here touches 16 chunk dyconits in entity-id runs — the
    shape the engine's commit buffer actually produces — so the batched
    impl also amortizes alias resolution and dyconit lookup per run.
    Each subscriber is subscribed to every chunk (an 11×11 view covers
    a 16-chunk neighbourhood easily).
    """
    chunk_ids = [("chunk", cx, 0) for cx in range(16)]
    events = _commit_events(commits)
    rows = []
    for impl, use_batched in (("legacy", False), ("batched", True)):
        system = DyconitSystem(
            _StaticPolicy(Bounds.INFINITE),
            time_source=lambda: 0.0,
            use_batched_commit=use_batched,
        )
        for subscriber_id in range(subscribers):
            subscriber = Subscriber(
                subscriber_id=subscriber_id, deliver=lambda d, u: None
            )
            for chunk_id in chunk_ids:
                system.subscribe(chunk_id, subscriber)
        # Entity e wanders chunk e%16: consecutive events for one entity
        # form same-dyconit runs, as in a real buffered tick.
        targets = [chunk_ids[event.entity_id % 16] for event in events]
        start = perf_counter()
        if use_batched:
            for offset in range(0, len(events), COMMIT_BATCH):
                system.commit_many(
                    [
                        (targets[index], events[index], None)
                        for index in range(
                            offset, min(offset + COMMIT_BATCH, len(events))
                        )
                    ]
                )
        else:
            for index, event in enumerate(events):
                system.commit_to(targets[index], event)
        elapsed = perf_counter() - start
        system.flush_all()
        rows.append(_make_row("commit_batch", impl, subscribers, commits, elapsed))
    return rows


# ----------------------------------------------------------------------
# Suite driver
# ----------------------------------------------------------------------


def run_suite(
    bot_counts=(50, 150), events: int = 2_000, crossings: int = 1_000,
    refreshes: int = 400, commits: int = 20_000, seed: int = 7,
    faults: FaultPlan | None = None,
) -> dict:
    """Run every bench at each fleet size; returns the BENCH_fanout payload."""
    rows: list[BenchRow] = []
    for bots in bot_counts:
        rows.extend(
            bench_direct_broadcast(bots, events=events, seed=seed, faults=faults)
        )
        rows.extend(
            bench_entity_crossing(bots, crossings=crossings, seed=seed, faults=faults)
        )
        rows.extend(
            bench_interest_refresh(bots, refreshes=refreshes, seed=seed, faults=faults)
        )
    rows.extend(bench_dyconit_commit_flush(50, commits=commits))
    rows.extend(bench_commit_batch(50, commits=commits))
    speedups = {}
    by_key = {(row.bench, row.impl, row.bots): row for row in rows}
    # Each optimized impl is reported as a speedup over its baseline
    # twin: indexed-vs-scan for the fan-out benches, batched-vs-legacy
    # for the S17 commit pipeline.
    baseline_impl = {"indexed": "scan", "batched": "legacy"}
    for (bench, impl, bots), row in by_key.items():
        baseline_name = baseline_impl.get(impl)
        if baseline_name is None:
            continue
        baseline = by_key.get((bench, baseline_name, bots))
        if baseline is not None and baseline.ops_per_sec > 0:
            speedups[f"{bench}@{bots}"] = round(
                row.ops_per_sec / baseline.ops_per_sec, 2
            )
    return {
        # /2: dyconit_commit/dyconit_flush grew legacy+batched impl rows
        # (S17) and the commit_batch bench joined the suite.
        "schema": "bench-fanout/2",
        "params": {
            "bot_counts": list(bot_counts),
            "events": events,
            "crossings": crossings,
            "refreshes": refreshes,
            "commits": commits,
            "seed": seed,
            "spread_radius": SPREAD_RADIUS,
            "faults": None if faults is None else repr(faults),
        },
        "rows": [row.to_dict() for row in rows],
        "speedups": speedups,
    }
