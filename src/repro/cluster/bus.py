"""Deterministic inter-shard message bus.

The bus is the *only* channel between shards, and its delivery schedule
is a pure function of what was posted:

* one FIFO queue per **directed edge** ``(src, dst)``, with a per-edge
  sequence number stamped on every message (the auditor checks gaps);
* nothing is delivered at post time — messages wait for the cluster's
  pump, which runs at a **barrier** after all shards ticked;
* the pump drains edges in sorted ``(src, dst)`` order, messages within
  an edge in FIFO order, and repeats in rounds until the bus is empty —
  a handoff processed in round 1 may post subscriptions answered by
  snapshots in rounds 2 and 3. Cascades provably terminate (a snapshot
  application posts nothing), but a defensive round cap turns a cycle
  bug into a loud error instead of a hang.

Byte accounting mirrors :class:`~repro.net.transport.Transport`: every
message's modelled wire size is summed per edge and per message kind, so
E11 can report inter-shard dyconit bandwidth next to client bandwidth.
"""

from __future__ import annotations

from typing import Callable

from repro.cluster.messages import ShardMessage

#: A pump that needs more rounds than this is cycling, not converging.
MAX_PUMP_ROUNDS = 32

#: Receives (src shard, message); bound to the destination shard.
MessageHandler = Callable[[int, ShardMessage], None]


class BusPumpDivergenceError(RuntimeError):
    """The pump hit :data:`MAX_PUMP_ROUNDS` with messages still queued.

    A bare round-cap RuntimeError used to abort the run mid-tick with no
    way to tell *which* edges were cycling; this carries a snapshot of
    every non-empty edge — queue depth, the seq range still queued, and
    the pending message kinds — so the cycle is diagnosable post-mortem.
    """

    def __init__(self, rounds: int, edges: dict[tuple[int, int], dict]) -> None:
        self.rounds = rounds
        #: edge -> {"depth", "first_seq", "last_seq", "kinds"}.
        self.edges = edges
        pending = sum(info["depth"] for info in edges.values())
        lines = [
            f"bus pump did not converge after {rounds} rounds "
            f"({pending} messages still pending on {len(edges)} edge(s)):"
        ]
        for edge, info in sorted(edges.items()):
            kinds = ", ".join(
                f"{kind}x{count}" for kind, count in sorted(info["kinds"].items())
            )
            lines.append(
                f"  edge {edge[0]}->{edge[1]}: depth={info['depth']} "
                f"seqs=[{info['first_seq']}..{info['last_seq']}] kinds={kinds}"
            )
        super().__init__("\n".join(lines))


class InterShardBus:
    """Per-edge FIFO queues drained in deterministic order."""

    def __init__(self) -> None:
        self._queues: dict[tuple[int, int], list[tuple[int, ShardMessage]]] = {}
        self._next_seq: dict[tuple[int, int], int] = {}
        self._delivered_seq: dict[tuple[int, int], int] = {}
        self._handlers: dict[int, MessageHandler] = {}
        self.total_bytes = 0
        self.total_messages = 0
        self.bytes_by_edge: dict[tuple[int, int], int] = {}
        self.messages_by_kind: dict[str, int] = {}
        #: Rounds the most recent :meth:`pump` took (telemetry gauge
        #: ``bus_pump_rounds`` is set from this at each barrier).
        self.last_pump_rounds = 0

    def attach(self, shard_id: int, handler: MessageHandler) -> None:
        if shard_id in self._handlers:
            raise ValueError(f"shard {shard_id} already attached to the bus")
        self._handlers[shard_id] = handler

    # ------------------------------------------------------------------
    # Posting
    # ------------------------------------------------------------------

    def post(self, src: int, dst: int, message: ShardMessage) -> None:
        if src == dst:
            raise ValueError(f"shard {src} posting to itself")
        if dst not in self._handlers:
            raise ValueError(f"no shard {dst} attached to the bus")
        edge = (src, dst)
        seq = self._next_seq.get(edge, 0)
        self._next_seq[edge] = seq + 1
        self._queues.setdefault(edge, []).append((seq, message))
        size = message.wire_size()
        self.total_bytes += size
        self.total_messages += 1
        self.bytes_by_edge[edge] = self.bytes_by_edge.get(edge, 0) + size
        kind = type(message).__name__
        self.messages_by_kind[kind] = self.messages_by_kind.get(kind, 0) + 1

    @property
    def pending_messages(self) -> int:
        return sum(len(queue) for queue in self._queues.values())

    def pending_by_edge(self) -> dict[tuple[int, int], list[ShardMessage]]:
        """Undelivered messages per edge (for the invariant auditor)."""
        return {
            edge: [message for __, message in queue]
            for edge, queue in self._queues.items()
            if queue
        }

    # ------------------------------------------------------------------
    # Draining
    # ------------------------------------------------------------------

    def take_round(self) -> list[tuple[tuple[int, int], list[ShardMessage]]]:
        """Remove and return one round's worth of messages.

        Snapshots every non-empty edge in sorted ``(src, dst)`` order,
        pops exactly the snapshotted prefixes off the live queues (so
        messages posted while the round is being *processed* wait for
        the next round), and verifies the per-edge seq chain. Delivery
        itself is the caller's job: :meth:`pump` feeds the batches to
        the attached handlers in place, and the parallel shard runner
        ships the same batches to worker processes — both see the exact
        round structure the serial pump defines.
        """
        batches = [
            (edge, list(queue))
            for edge, queue in sorted(self._queues.items())
            if queue
        ]
        round_out: list[tuple[tuple[int, int], list[ShardMessage]]] = []
        for edge, batch in batches:
            del self._queues[edge][: len(batch)]
            expected = self._delivered_seq.get(edge, 0)
            messages: list[ShardMessage] = []
            for seq, message in batch:
                if seq != expected:
                    raise RuntimeError(
                        f"bus FIFO violated on edge {edge}: "
                        f"delivering seq {seq}, expected {expected}"
                    )
                expected = seq + 1
                messages.append(message)
            self._delivered_seq[edge] = expected
            round_out.append((edge, messages))
        return round_out

    def _divergence_snapshot(self) -> dict[tuple[int, int], dict]:
        edges: dict[tuple[int, int], dict] = {}
        for edge, queue in sorted(self._queues.items()):
            if not queue:
                continue
            kinds: dict[str, int] = {}
            for __, message in queue:
                kind = type(message).__name__
                kinds[kind] = kinds.get(kind, 0) + 1
            edges[edge] = {
                "depth": len(queue),
                "first_seq": queue[0][0],
                "last_seq": queue[-1][0],
                "kinds": kinds,
            }
        return edges

    def pump(self) -> int:
        """Drain every edge until the bus is empty; returns messages
        delivered. Runs in rounds: each round snapshots the queues and
        delivers them in sorted edge order, so messages posted *during*
        a round are deferred to the next round and total order stays a
        pure function of the posting history."""
        delivered_total = 0
        for round_index in range(MAX_PUMP_ROUNDS):
            round_batches = self.take_round()
            if not round_batches:
                self.last_pump_rounds = round_index
                return delivered_total
            for edge, messages in round_batches:
                handler = self._handlers[edge[1]]
                for message in messages:
                    handler(edge[0], message)
                    delivered_total += 1
        self.last_pump_rounds = MAX_PUMP_ROUNDS
        raise BusPumpDivergenceError(MAX_PUMP_ROUNDS, self._divergence_snapshot())
